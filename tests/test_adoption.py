"""Tests for the logistic adoption model (Eq. 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import ParameterError


class TestPaperValues:
    """Numbers quoted in the paper's examples."""

    def test_example1_single_piece(self):
        model = AdoptionModel(alpha=3.0, beta=1.0)
        assert model.probability(1) == pytest.approx(0.12, abs=0.005)

    def test_example1_two_pieces(self):
        model = AdoptionModel(alpha=3.0, beta=1.0)
        # p(X_b) = 1 / (1 + exp(3 - 2)) = 0.27
        assert model.probability(2) == pytest.approx(0.27, abs=0.005)

    def test_zero_branch(self):
        model = AdoptionModel(alpha=3.0, beta=1.0)
        assert model.probability(0) == 0.0

    def test_literal_eq6_mode(self):
        model = AdoptionModel(alpha=3.0, beta=1.0, zero_if_unreached=False)
        assert model.probability(0) == pytest.approx(1 / (1 + math.exp(3)))

    def test_hardness_construction_values(self):
        """Step 5 of the reduction: p = 1/2 at n pieces, tiny below."""
        n = 7
        model = AdoptionModel(
            alpha=2 * n * math.log(2 * n), beta=2 * math.log(2 * n)
        )
        assert model.probability(n) == pytest.approx(0.5)
        assert model.probability(n - 1) <= 1 / (1 + (2 * n) ** 2) + 1e-12


class TestBasics:
    def test_vectorised(self):
        model = AdoptionModel(alpha=2.0, beta=1.0)
        out = model.probability(np.array([0, 1, 2, 3]))
        assert out.shape == (4,)
        assert out[0] == 0.0
        assert np.all(np.diff(out[1:]) > 0)

    def test_logistic_has_no_zero_branch(self):
        model = AdoptionModel(alpha=2.0, beta=1.0)
        assert model.logistic(0) > 0.0

    def test_monotone_in_count(self):
        model = AdoptionModel(alpha=4.0, beta=0.7)
        values = model.probability(np.arange(0, 12))
        assert np.all(np.diff(values) >= 0)

    def test_from_ratio(self):
        model = AdoptionModel.from_ratio(0.5)
        assert model.beta == 1.0
        assert model.alpha == pytest.approx(2.0)

    def test_from_ratio_custom_beta(self):
        model = AdoptionModel.from_ratio(0.25, beta=2.0)
        assert model.alpha == pytest.approx(8.0)

    def test_inflection(self):
        model = AdoptionModel(alpha=3.0, beta=1.5)
        assert model.inflection_count() == pytest.approx(2.0)
        assert model.logistic(model.inflection_count()) == pytest.approx(0.5)

    def test_parameter_validation(self):
        for bad in (0.0, -1.0, math.nan):
            with pytest.raises(ParameterError):
                AdoptionModel(alpha=bad, beta=1.0)
            with pytest.raises(ParameterError):
                AdoptionModel(alpha=1.0, beta=bad)

    def test_equality_and_hash(self):
        a = AdoptionModel(alpha=2.0, beta=1.0)
        b = AdoptionModel(alpha=2.0, beta=1.0)
        c = AdoptionModel(alpha=2.0, beta=1.0, zero_if_unreached=False)
        assert a == b and hash(a) == hash(b)
        assert a != c


@settings(max_examples=40, deadline=None)
@given(
    alpha=st.floats(0.1, 20.0),
    beta=st.floats(0.1, 5.0),
    count=st.integers(0, 30),
)
def test_probability_bounds_and_consistency(alpha, beta, count):
    model = AdoptionModel(alpha=alpha, beta=beta)
    p = model.probability(count)
    assert 0.0 <= p <= 1.0  # == 1.0 only via float underflow of exp
    if count >= 1:
        assert p == pytest.approx(model.logistic(count))
    else:
        assert p == 0.0
