"""Tests for the interdependent-pieces extension (paper future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.running_example import (
    running_example_adoption,
    running_example_campaign,
    running_example_graph,
)
from repro.diffusion.interdependent import (
    InteractionMatrix,
    simulate_interdependent_utility,
)
from repro.diffusion.projection import project_campaign
from repro.diffusion.simulate import simulate_adoption_utility
from repro.exceptions import ParameterError


@pytest.fixture(scope="module")
def world():
    graph = running_example_graph()
    campaign = running_example_campaign()
    adoption = running_example_adoption()
    return project_campaign(graph, campaign), adoption


class TestInteractionMatrix:
    def test_independent_factory(self):
        m = InteractionMatrix.independent(3)
        assert m.is_independent()
        assert m.num_pieces == 3

    def test_uniform_factory(self):
        m = InteractionMatrix.uniform(3, 0.4)
        assert m.values[0, 1] == 0.4
        assert m.values[1, 1] == 0.0
        assert not m.is_independent()

    def test_validation(self):
        with pytest.raises(ParameterError):
            InteractionMatrix(np.ones((2, 3)))
        with pytest.raises(ParameterError):
            InteractionMatrix(np.full((2, 2), 2.0))
        with pytest.raises(ParameterError):
            InteractionMatrix(np.eye(2))  # self-interaction

    def test_values_read_only(self):
        m = InteractionMatrix.independent(2)
        with pytest.raises(ValueError):
            m.values[0, 1] = 0.5


class TestSimulation:
    PLAN = [[0], [4]]

    def test_zero_interaction_matches_independent_model(self, world):
        pgs, adoption = world
        independent = simulate_adoption_utility(
            pgs, self.PLAN, adoption, rounds=200, seed=1
        )
        zero = simulate_interdependent_utility(
            pgs,
            self.PLAN,
            adoption,
            InteractionMatrix.independent(2),
            rounds=200,
            seed=1,
        )
        # The running example is deterministic: both are exact.
        assert zero == pytest.approx(independent, abs=1e-9)
        assert zero == pytest.approx(1.05, abs=0.01)

    def test_complementary_interaction_raises_utility(self, world):
        pgs, adoption = world
        base = simulate_interdependent_utility(
            pgs, self.PLAN, adoption,
            InteractionMatrix.independent(2), rounds=300, seed=2,
        )
        boosted = simulate_interdependent_utility(
            pgs, self.PLAN, adoption,
            InteractionMatrix.uniform(2, 0.8), rounds=300, seed=2,
        )
        assert boosted > base

    def test_competitive_interaction_lowers_utility(self, world):
        pgs, adoption = world
        base = simulate_interdependent_utility(
            pgs, self.PLAN, adoption,
            InteractionMatrix.independent(2), rounds=300, seed=3,
        )
        suppressed = simulate_interdependent_utility(
            pgs, self.PLAN, adoption,
            InteractionMatrix.uniform(2, -0.8), rounds=300, seed=3,
        )
        assert suppressed < base

    def test_effect_monotone_in_rho(self, world):
        pgs, adoption = world
        values = [
            simulate_interdependent_utility(
                pgs, self.PLAN, adoption,
                InteractionMatrix.uniform(2, rho), rounds=400, seed=4,
            )
            for rho in (-0.9, 0.0, 0.9)
        ]
        assert values[0] <= values[1] <= values[2]

    def test_shape_validation(self, world):
        pgs, adoption = world
        with pytest.raises(ParameterError):
            simulate_interdependent_utility(
                pgs, [[0]], adoption, InteractionMatrix.independent(2)
            )
        with pytest.raises(ParameterError):
            simulate_interdependent_utility(
                pgs, self.PLAN, adoption, InteractionMatrix.independent(3)
            )
