"""The content-addressed artifact layer (``repro.artifacts``).

Contracts under test:

* fingerprints — the graph fingerprint hashes *content* (edge-order
  independent; any edge mutation changes it), the campaign fingerprint
  hashes the piece vectors (names excluded);
* cache keys — every cache-relevant ``Runtime`` field changes
  :meth:`ResolvedRuntime.cache_key`, while pure execution knobs
  (``workers``, ``executor``, store placement) leave it byte-identical,
  so a pool resize or a memory/disk move still hits;
* stores — memory and disk stores round-trip (meta + arrays), count
  hits/misses/puts, survive process handoff (disk), and treat
  token-mismatched or uncommitted objects as misses;
* resolution — the ``artifacts`` spec grammar (None/off/memory/path/
  instance) and its ``ConfigError`` rejects.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.artifacts import (
    Artifact,
    ArtifactKey,
    ArtifactStore,
    DiskArtifactStore,
    MemoryArtifactStore,
    piece_graphs_digest,
    resolve_artifact_store,
)
from repro.diffusion.projection import project_campaign
from repro.exceptions import ConfigError, StoreError
from repro.graph.digraph import TopicGraph
from repro.runtime import Runtime, resolve_runtime
from repro.topics.distributions import Campaign, Piece

EDGES = [
    (0, 1, {0: 0.5}),
    (1, 2, {1: 0.25}),
    (2, 0, {0: 0.125, 1: 0.0625}),
    (0, 3, {1: 0.75}),
    (3, 1, {0: 0.375}),
]


def _graph(edges=EDGES) -> TopicGraph:
    return TopicGraph.from_edges(4, 2, edges)


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------


class TestGraphFingerprint:
    def test_stable_and_cached(self):
        g = _graph()
        fp = g.fingerprint()
        assert isinstance(fp, str) and len(fp) == 64
        assert g.fingerprint() == fp  # cached second call
        assert _graph().fingerprint() == fp  # fresh build, same content

    def test_edge_order_independent(self):
        shuffled = [EDGES[i] for i in (3, 0, 4, 2, 1)]
        assert _graph(shuffled).fingerprint() == _graph().fingerprint()

    def test_any_edge_mutation_changes_it(self):
        base = _graph().fingerprint()
        # retarget one edge
        retargeted = [(0, 1, {0: 0.5}), *EDGES[1:]]
        retargeted[0] = (0, 2, {0: 0.5})
        assert _graph(retargeted).fingerprint() != base
        # nudge one probability
        nudged = list(EDGES)
        nudged[1] = (1, 2, {1: 0.2500001})
        assert _graph(nudged).fingerprint() != base
        # drop one edge
        assert _graph(EDGES[:-1]).fingerprint() != base

    def test_vertex_count_matters(self):
        a = TopicGraph.from_edges(4, 2, EDGES)
        b = TopicGraph.from_edges(5, 2, EDGES)  # extra isolated vertex
        assert a.fingerprint() != b.fingerprint()


class TestCampaignFingerprint:
    def test_vectors_define_it_names_do_not(self):
        a = Campaign([Piece("tax", [1.0, 0.0]), Piece("health", [0.0, 1.0])])
        b = Campaign([Piece("x", [1.0, 0.0]), Piece("y", [0.0, 1.0])])
        assert a.fingerprint() == b.fingerprint()

    def test_vector_change_invalidates(self):
        a = Campaign([Piece("p", [1.0, 0.0])])
        b = Campaign([Piece("p", [0.9, 0.1])])
        assert a.fingerprint() != b.fingerprint()

    def test_piece_order_matters(self):
        # Pieces are positional (seed sets are per-index): swapping two
        # pieces is a different campaign.
        a = Campaign([Piece("a", [1.0, 0.0]), Piece("b", [0.0, 1.0])])
        b = Campaign([Piece("b", [0.0, 1.0]), Piece("a", [1.0, 0.0])])
        assert a.fingerprint() != b.fingerprint()


class TestPieceGraphsDigest:
    def test_tracks_projection_content(self, small_random_graph, small_campaign):
        pgs = project_campaign(small_random_graph, small_campaign)
        again = project_campaign(small_random_graph, small_campaign)
        assert piece_graphs_digest(pgs) == piece_graphs_digest(again)
        assert piece_graphs_digest(pgs[:2]) != piece_graphs_digest(pgs)
        assert piece_graphs_digest(list(reversed(pgs))) != piece_graphs_digest(
            pgs
        )


# ----------------------------------------------------------------------
# runtime cache keys (satellite: invalidation contracts)
# ----------------------------------------------------------------------


class TestRuntimeCacheKey:
    def _key(self, **fields):
        return resolve_runtime(Runtime(**fields)).cache_key()

    def test_execution_knobs_do_not_invalidate(self, tmp_path):
        base = self._key(seed=7)
        assert self._key(seed=7, workers=4) == base
        assert self._key(seed=7, workers="auto", executor="thread") == base
        # store placement is a bit-identity contract, not an input
        assert (
            self._key(
                seed=7,
                store="disk",
                shard_dir=str(tmp_path / "s"),
                max_resident_bytes=1 << 20,
            )
            == base
        )
        # the artifact spec itself is not part of the key either
        assert self._key(seed=7, artifacts=str(tmp_path / "a")) == base

    def test_cache_relevant_fields_invalidate(self):
        base = self._key(seed=7)
        assert self._key(seed=8) != base
        assert self._key(seed=7, backend="python") != base
        assert self._key(seed=7, model="lt") != base

    def test_model_normalisation(self):
        # None resolves to the library default ("ic"); tuples are joined
        assert self._key(seed=7, model="ic") == self._key(seed=7)
        assert self._key(seed=7, model=("ic", "lt")) != self._key(
            seed=7, model="ic"
        )

    def test_unseeded_is_unreproducible(self):
        assert "seed=unreproducible" in self._key()
        assert "seed=unreproducible" in resolve_runtime(
            Runtime(), seed=np.random.default_rng(1)
        ).cache_key()
        assert "seed=7" in self._key(seed=7)


# ----------------------------------------------------------------------
# keys and stores
# ----------------------------------------------------------------------


def _mk_key(**overrides) -> ArtifactKey:
    fields = dict(
        graph="g" * 64,
        campaign="c" * 64,
        runtime="backend=batch:model=ic:seed=7",
        stage="sample",
        extra=("theta=100",),
    )
    fields.update(overrides)
    return ArtifactKey(**fields)


class TestArtifactKey:
    def test_token_and_digest(self):
        key = _mk_key()
        assert key.token.startswith("v1:graph=")
        assert "stage=sample" in key.token
        assert key.token.endswith("theta=100")
        assert key.digest == _mk_key().digest
        assert len(key.digest) == 64

    def test_every_component_discriminates(self):
        base = _mk_key().digest
        assert _mk_key(graph="h" * 64).digest != base
        assert _mk_key(campaign="d" * 64).digest != base
        assert _mk_key(runtime="backend=batch:model=ic:seed=8").digest != base
        assert _mk_key(stage="solve").digest != base
        assert _mk_key(extra=("theta=200",)).digest != base


class TestMemoryArtifactStore:
    def test_roundtrip_and_stats(self):
        store = MemoryArtifactStore()
        key = _mk_key()
        assert store.get(key) is None
        store.put(key, {"n": 4}, {"roots": np.arange(5)})
        hit = store.get(key)
        assert hit is not None and hit.meta["n"] == 4
        np.testing.assert_array_equal(hit.arrays["roots"], np.arange(5))
        assert len(store) == 1
        assert store.stats() == {"hits": 1, "misses": 1, "puts": 1}

    def test_cannot_host_directories(self):
        store = MemoryArtifactStore()
        assert not store.hosts_directories
        with pytest.raises(StoreError):
            store.stage_dir(_mk_key())
        with pytest.raises(StoreError):
            store.commit(_mk_key(), {})


class TestDiskArtifactStore:
    def test_roundtrip_and_persistent_stats(self, tmp_path):
        root = str(tmp_path / "cache")
        store = DiskArtifactStore(root)
        key = _mk_key()
        assert store.get(key) is None
        store.put(key, {"n": 4}, {"roots": np.arange(5, dtype=np.int64)})
        hit = store.get(key)
        assert hit is not None and hit.meta["n"] == 4
        assert hit.path is not None and os.path.isdir(hit.path)
        np.testing.assert_array_equal(hit.arrays["roots"], np.arange(5))
        # a second instance over the same root sees object and counters
        again = DiskArtifactStore(root)
        assert again.get(key) is not None
        assert again.stats() == {"hits": 2, "misses": 1, "puts": 1}

    def test_token_mismatch_is_a_miss(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path))
        key = _mk_key()
        committed = store.put(key, {"n": 4})
        meta_path = os.path.join(committed.path, "meta.json")
        with open(meta_path) as fh:
            meta = json.load(fh)
        meta["token"] = "v0:something-older"
        with open(meta_path, "w") as fh:
            json.dump(meta, fh)
        assert store.get(key) is None

    def test_uncommitted_directory_is_a_miss(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path))
        key = _mk_key()
        stage = store.stage_dir(key)
        with open(os.path.join(stage, "partial.bin"), "wb") as fh:
            fh.write(b"\x00" * 16)
        assert store.get(key) is None  # never committed — not visible
        committed = store.commit(key, {"format": "shards"})
        hit = store.get(key)
        assert hit is not None
        assert hit.meta["format"] == "shards"
        # the staging dir was renamed into the content address, payload
        # included — staged work is never visible before the commit
        assert hit.path == committed.path
        assert not os.path.exists(stage)
        assert os.path.exists(os.path.join(hit.path, "partial.bin"))

    def test_duplicate_commit_is_benign(self, tmp_path):
        """Two racers committing one key: loser is a no-op, no torn dir."""
        store = DiskArtifactStore(str(tmp_path))
        key = _mk_key()
        a = store.stage_dir(key)
        with open(os.path.join(a, "payload.bin"), "wb") as fh:
            fh.write(b"A" * 8)
        first = store.commit(key, {"who": "a"})
        # a second producer staged before the first committed
        b = store.stage_dir(key)
        with open(os.path.join(b, "payload.bin"), "wb") as fh:
            fh.write(b"B" * 8)
        second = store.commit(key, {"who": "b"})
        assert second.path == first.path
        hit = store.get(key)
        assert hit is not None and hit.meta["who"] == "a"  # winner kept
        assert not os.path.exists(b)  # loser's staging discarded

    def test_stale_occupant_is_replaced(self, tmp_path):
        """A stale object under an older token is swapped out on commit."""
        store = DiskArtifactStore(str(tmp_path))
        key = _mk_key()
        committed = store.put(key, {"n": 4})
        meta_path = os.path.join(committed.path, "meta.json")
        with open(meta_path) as fh:
            meta = json.load(fh)
        meta["token"] = "v0:something-older"
        with open(meta_path, "w") as fh:
            json.dump(meta, fh)
        assert store.get(key) is None  # stale occupant — miss
        store.put(key, {"n": 5})
        hit = store.get(key)
        assert hit is not None and hit.meta["n"] == 5

    def test_truncated_stats_reads_as_empty(self, tmp_path):
        root = str(tmp_path / "cache")
        store = DiskArtifactStore(root)
        store.get(_mk_key())  # one miss
        # torn legacy base + a torn delta file must both read as empty
        with open(os.path.join(root, "stats.json"), "w") as fh:
            fh.write('{"hits": 1')  # truncated mid-write
        with open(os.path.join(root, "stats.d", "dead.json"), "w") as fh:
            fh.write('{"mis')
        stats = store.stats()
        assert stats == {"hits": 0, "misses": 1, "puts": 0}


class TestResolveArtifactStore:
    def test_off_specs(self):
        assert resolve_artifact_store(None) is None
        assert resolve_artifact_store("off") is None

    def test_memory_is_process_shared(self):
        a = resolve_artifact_store("memory")
        b = resolve_artifact_store("memory")
        assert isinstance(a, MemoryArtifactStore)
        assert a is b

    def test_disk_instance_per_path(self, tmp_path):
        a = resolve_artifact_store(str(tmp_path / "x"))
        b = resolve_artifact_store(str(tmp_path / "x"))
        c = resolve_artifact_store(str(tmp_path / "y"))
        assert isinstance(a, DiskArtifactStore)
        assert a is b
        assert c is not a

    def test_instance_passthrough(self):
        store = MemoryArtifactStore()
        assert resolve_artifact_store(store) is store

    def test_rejects_garbage(self):
        with pytest.raises(ConfigError):
            resolve_artifact_store(123)

    def test_runtime_field_validation(self):
        with pytest.raises(ConfigError):
            Runtime(artifacts=123)
        # "off" stays "off" through resolution (so re-resolving a
        # resolved runtime cannot let the env default leak back in);
        # only artifact_store() maps it to None.
        rt = resolve_runtime(Runtime(artifacts="off"))
        assert rt.artifacts == "off"
        assert rt.artifact_store() is None
        assert resolve_runtime(rt).artifact_store() is None

    def test_abstract_store_surface(self):
        base = ArtifactStore()
        with pytest.raises(NotImplementedError):
            base.get(_mk_key())
        with pytest.raises(NotImplementedError):
            base.stats()
        assert isinstance(
            Artifact(key=_mk_key(), meta={}), Artifact
        )
