"""Tests for the incremental coverage state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import CoverageState
from repro.core.plan import AssignmentPlan
from repro.datasets.running_example import (
    running_example_adoption,
    running_example_campaign,
    running_example_graph,
)
from repro.exceptions import SolverError
from repro.sampling.mrr import MRRCollection


@pytest.fixture()
def mrr() -> MRRCollection:
    return MRRCollection.generate(
        running_example_graph(), running_example_campaign(), theta=800, seed=2
    )


class TestCoverageState:
    def test_fresh_state_empty(self, mrr):
        state = CoverageState(mrr)
        assert state.counts.sum() == 0
        assert not state.covered.any()

    def test_add_updates_counts(self, mrr):
        state = CoverageState(mrr)
        fresh = state.add(0, 0)  # vertex a covers piece t1
        assert fresh.size > 0
        assert state.counts.sum() == fresh.size

    def test_add_idempotent(self, mrr):
        state = CoverageState(mrr)
        first = state.add(0, 0)
        second = state.add(0, 0)
        assert second.size == 0
        assert state.counts.sum() == first.size

    def test_counts_match_mrr_coverage(self, mrr):
        plan = AssignmentPlan([{0}, {4}])
        state = CoverageState.from_plan(mrr, plan)
        np.testing.assert_array_equal(
            state.counts, mrr.coverage_counts(plan.seed_lists())
        )

    def test_newly_covered_does_not_mutate(self, mrr):
        state = CoverageState(mrr)
        preview = state.newly_covered(0, 0)
        assert preview.size > 0
        assert state.counts.sum() == 0
        committed = state.add(0, 0)
        np.testing.assert_array_equal(np.sort(preview), np.sort(committed))

    def test_copy_is_independent(self, mrr):
        state = CoverageState(mrr)
        state.add(0, 0)
        clone = state.copy()
        clone.add(4, 1)
        assert clone.counts.sum() > state.counts.sum()

    def test_utility_matches_estimator(self, mrr):
        adoption = running_example_adoption()
        plan = AssignmentPlan([{0}, {4}])
        state = CoverageState.from_plan(mrr, plan)
        assert state.utility(adoption) == pytest.approx(
            mrr.estimate(plan.seed_lists(), adoption)
        )

    def test_piece_range_validated(self, mrr):
        with pytest.raises(SolverError):
            CoverageState(mrr).add(0, 9)

    def test_counts_never_exceed_pieces(self, mrr):
        state = CoverageState(mrr)
        for v in range(5):
            for j in range(2):
                state.add(v, j)
        assert state.counts.max() <= mrr.num_pieces
