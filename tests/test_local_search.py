"""Tests for the exchange local search extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.local_search import local_search
from repro.core.plan import AssignmentPlan
from repro.core.brute_force import brute_force_oipa
from repro.core.problem import OIPAProblem
from repro.datasets.running_example import running_example_problem
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import SolverError
from repro.graph.generators import (
    build_topic_graph,
    preferential_attachment_digraph,
)
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import Campaign


@pytest.fixture()
def example():
    problem = running_example_problem(k=2)
    mrr = MRRCollection.generate(
        problem.graph, problem.campaign, theta=2000, seed=51
    )
    return problem, mrr


class TestLocalSearch:
    def test_never_decreases_utility(self, example):
        problem, mrr = example
        start = AssignmentPlan([{1}, {2}])  # a weak plan
        result = local_search(problem, mrr, start)
        assert result.utility >= result.initial_utility - 1e-12
        assert result.improvement >= 0.0

    def test_fills_unused_budget(self, example):
        problem, mrr = example
        start = AssignmentPlan([{0}, set()])  # one slot unused
        result = local_search(problem, mrr, start)
        assert result.plan.size == problem.k
        assert result.fills >= 1

    def test_reaches_optimum_on_running_example(self, example):
        problem, mrr = example
        start = AssignmentPlan([{1}, {3}])  # clearly sub-optimal
        result = local_search(problem, mrr, start)
        best_plan, best_utility = brute_force_oipa(problem, mrr)
        assert result.utility == pytest.approx(best_utility, rel=1e-9)
        assert result.plan == best_plan

    def test_optimal_start_is_stable(self, example):
        problem, mrr = example
        best_plan, best_utility = brute_force_oipa(problem, mrr)
        result = local_search(problem, mrr, best_plan)
        assert result.plan == best_plan
        assert result.swaps == 0

    def test_result_plan_feasible(self, example):
        problem, mrr = example
        result = local_search(problem, mrr, problem.empty_plan())
        problem.validate_plan(result.plan)

    def test_infeasible_start_rejected(self, example):
        problem, mrr = example
        too_big = AssignmentPlan([{0, 1, 2}, {3, 4}])
        with pytest.raises(SolverError):
            local_search(problem, mrr, too_big)

    def test_rounds_bounded(self, example):
        problem, mrr = example
        result = local_search(
            problem, mrr, problem.empty_plan(), max_rounds=1
        )
        assert result.rounds == 1

    def test_improves_solver_incumbent_or_keeps_it(self):
        """On a random instance, polishing a BAB-P plan cannot hurt."""
        from repro.core.bab import solve_bab_progressive

        src, dst = preferential_attachment_digraph(100, 3, seed=52)
        graph = build_topic_graph(
            100, src, dst, 4, topics_per_edge=2.0, prob_mean=0.2, seed=53
        )
        campaign = Campaign.sample_unit(3, 4, seed=54)
        adoption = AdoptionModel.from_ratio(0.3)
        pool = np.arange(0, 100, 8)
        problem = OIPAProblem(graph, campaign, adoption, k=5, pool=pool)
        mrr = MRRCollection.generate(graph, campaign, theta=1200, seed=55)
        incumbent = solve_bab_progressive(problem, mrr, max_nodes=30)
        polished = local_search(problem, mrr, incumbent.plan, max_rounds=3)
        assert polished.utility >= incumbent.utility - 1e-9
