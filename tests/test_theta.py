"""Tests for sample-size bounds."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ParameterError
from repro.sampling.theta import (
    estimation_error,
    hoeffding_theta,
    relative_error_theta,
)


class TestHoeffding:
    def test_known_value(self):
        # ln(2/0.05) / (2 * 0.01^2) = 18444.xx -> ceil
        expected = math.ceil(math.log(2 / 0.05) / (2 * 0.01**2))
        assert hoeffding_theta(0.01, 0.05) == expected

    def test_tighter_epsilon_needs_more_samples(self):
        assert hoeffding_theta(0.005, 0.05) > hoeffding_theta(0.01, 0.05)

    def test_tighter_delta_needs_more_samples(self):
        assert hoeffding_theta(0.01, 0.001) > hoeffding_theta(0.01, 0.1)

    def test_round_trip_with_estimation_error(self):
        theta = hoeffding_theta(0.02, 0.05)
        eps = estimation_error(theta, 0.05)
        assert eps <= 0.02 + 1e-9

    def test_validation(self):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ParameterError):
                hoeffding_theta(bad, 0.05)
            with pytest.raises(ParameterError):
                hoeffding_theta(0.01, bad)


class TestEstimationError:
    def test_decreases_with_theta(self):
        assert estimation_error(10_000, 0.05) < estimation_error(1_000, 0.05)

    def test_validation(self):
        with pytest.raises(ParameterError):
            estimation_error(0, 0.05)
        with pytest.raises(ParameterError):
            estimation_error(100, 1.5)


class TestRelativeError:
    def test_thin_means_need_more_samples(self):
        thin = relative_error_theta(0.1, 0.05, 0.001)
        thick = relative_error_theta(0.1, 0.05, 0.1)
        assert thin > thick

    def test_scales_inverse_mu(self):
        a = relative_error_theta(0.1, 0.05, 0.01)
        b = relative_error_theta(0.1, 0.05, 0.001)
        assert b == pytest.approx(10 * a, rel=0.01)

    def test_validation(self):
        with pytest.raises(ParameterError):
            relative_error_theta(0.1, 0.05, 0.0)
