"""Shared fixtures: small deterministic graphs, campaigns, collections."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import OIPAProblem
from repro.diffusion.adoption import AdoptionModel
from repro.graph.digraph import TopicGraph
from repro.graph.generators import (
    build_topic_graph,
    preferential_attachment_digraph,
)
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import Campaign, unit_piece


@pytest.fixture()
def line_graph() -> TopicGraph:
    """0 -> 1 -> 2 -> 3, all edges certain for topic 0, dead for topic 1."""
    edges = [(i, i + 1, {0: 1.0}) for i in range(3)]
    return TopicGraph.from_edges(4, 2, edges)


@pytest.fixture()
def two_topic_star() -> TopicGraph:
    """Hub 0 reaches 1..4: edges to 1,2 carry topic 0; to 3,4 topic 1."""
    edges = [
        (0, 1, {0: 1.0}),
        (0, 2, {0: 1.0}),
        (0, 3, {1: 1.0}),
        (0, 4, {1: 1.0}),
    ]
    return TopicGraph.from_edges(5, 2, edges)


@pytest.fixture()
def small_random_graph() -> TopicGraph:
    """A 60-vertex power-law graph with 4 topics (deterministic seed)."""
    src, dst = preferential_attachment_digraph(60, 3, seed=11)
    return build_topic_graph(
        60, src, dst, 4, topics_per_edge=2.0, prob_mean=0.2, seed=12
    )


@pytest.fixture()
def small_campaign() -> Campaign:
    """Three unit pieces over 4 topics."""
    return Campaign([unit_piece(z, 4, name=f"t{z}") for z in range(3)])


@pytest.fixture()
def adoption() -> AdoptionModel:
    return AdoptionModel(alpha=2.0, beta=1.0)


@pytest.fixture()
def small_problem(small_random_graph, small_campaign, adoption) -> OIPAProblem:
    pool = np.arange(0, 60, 4)  # 15 eligible promoters
    return OIPAProblem(
        small_random_graph, small_campaign, adoption, k=4, pool=pool
    )


@pytest.fixture()
def small_mrr(small_random_graph, small_campaign) -> MRRCollection:
    return MRRCollection.generate(
        small_random_graph, small_campaign, theta=600, seed=21
    )
