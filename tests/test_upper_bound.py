"""Tests for the tau upper-bound state (Def. 6)."""

from __future__ import annotations

import itertools

import pytest

from repro.core.coverage import CoverageState
from repro.core.plan import AssignmentPlan
from repro.core.tangent import MajorantTable
from repro.core.upper_bound import TauState
from repro.datasets.running_example import (
    running_example_adoption,
    running_example_campaign,
    running_example_graph,
)
from repro.exceptions import SolverError
from repro.sampling.mrr import MRRCollection


@pytest.fixture()
def setup():
    mrr = MRRCollection.generate(
        running_example_graph(), running_example_campaign(), theta=1000, seed=3
    )
    adoption = running_example_adoption()
    table = MajorantTable(adoption, 2)
    return mrr, adoption, table


def fresh_tau(mrr, table, adoption, base_plan=None):
    base = CoverageState.from_plan(
        mrr, base_plan or AssignmentPlan.empty(mrr.num_pieces)
    )
    return TauState(mrr, table, base, adoption)


class TestTauState:
    def test_empty_base_value_is_zero(self, setup):
        mrr, adoption, table = setup
        tau = fresh_tau(mrr, table, adoption)
        assert tau.value == pytest.approx(0.0)

    def test_marginal_matches_add(self, setup):
        mrr, adoption, table = setup
        tau = fresh_tau(mrr, table, adoption)
        predicted = tau.marginal_gain(0, 0)
        realised = tau.add(0, 0)
        assert predicted == pytest.approx(realised)
        assert tau.value == pytest.approx(realised)

    def test_evaluation_counter(self, setup):
        mrr, adoption, table = setup
        tau = fresh_tau(mrr, table, adoption)
        tau.marginal_gain(0, 0)
        tau.marginal_gain(1, 1)
        assert tau.evaluations == 2

    def test_tau_dominates_sigma(self, setup):
        """tau(S-bar | empty) >= sigma(S-bar) for every small plan."""
        mrr, adoption, table = setup
        vertices = range(5)
        for v1, v2 in itertools.product(vertices, vertices):
            tau = fresh_tau(mrr, table, adoption)
            tau.add(v1, 0)
            tau.add(v2, 1)
            sigma = mrr.estimate([[v1], [v2]], adoption)
            assert tau.value >= sigma - 1e-9, (v1, v2)

    def test_tau_tight_at_base(self, setup):
        """After refinement the anchor equals the logistic at the base."""
        mrr, adoption, table = setup
        base_plan = AssignmentPlan([{0}, {4}])
        tau = fresh_tau(mrr, table, adoption, base_plan)
        base_cov = CoverageState.from_plan(mrr, base_plan)
        anchors = table.values[base_cov.counts, base_cov.counts]
        assert tau.value == pytest.approx(
            mrr.n / mrr.theta * anchors.sum()
        )

    def test_submodularity_of_marginals(self, setup):
        """delta(v | small context) >= delta(v | larger context)."""
        mrr, adoption, table = setup
        small = fresh_tau(mrr, table, adoption)
        gain_small = small.marginal_gain(4, 1)
        large = fresh_tau(mrr, table, adoption)
        large.add(0, 0)
        large.add(3, 1)
        gain_large = large.marginal_gain(4, 1)
        assert gain_small >= gain_large - 1e-9

    def test_monotonicity_adds_never_negative(self, setup):
        mrr, adoption, table = setup
        tau = fresh_tau(mrr, table, adoption)
        for v in range(5):
            for j in range(2):
                assert tau.add(v, j) >= -1e-12

    def test_utility_view_matches_mrr(self, setup):
        mrr, adoption, table = setup
        tau = fresh_tau(mrr, table, adoption)
        tau.add(0, 0)
        tau.add(4, 1)
        assert tau.utility() == pytest.approx(
            mrr.estimate([[0], [4]], adoption)
        )

    def test_piece_count_mismatch_rejected(self, setup):
        mrr, adoption, _ = setup
        wrong_table = MajorantTable(adoption, 5)
        base = CoverageState(mrr)
        with pytest.raises(SolverError):
            TauState(mrr, wrong_table, base, adoption)

    def test_base_refinement_shrinks_headroom(self, setup):
        """Fig. 2: refining on a covered piece steepens the local bound.

        The gain credited for the *second* piece from a refined base
        (count 1) must be at most the chord gain from the unrefined
        envelope continued at count 1 — refinement never loosens tau.
        """
        mrr, adoption, table = setup
        unrefined_gain = table.gains[0, 1]
        refined_gain = table.gains[1, 1]
        true_gain = adoption.probability(2) - adoption.probability(1)
        assert refined_gain >= true_gain - 1e-12
        # And the refined anchor is exact while the unrefined value at
        # count 1 was an over-estimate (or equal):
        assert table.values[1, 1] <= table.values[0, 1] + 1e-12
