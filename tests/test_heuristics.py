"""Tests for the MaxDegree / Random heuristic baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import OIPAProblem
from repro.diffusion.adoption import AdoptionModel
from repro.graph.digraph import TopicGraph
from repro.im.heuristics import max_degree_baseline, random_baseline
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import Campaign, unit_piece


@pytest.fixture()
def star_world():
    edges = [(0, i, {0: 1.0}) for i in range(1, 6)]
    edges += [(6, 7, {0: 1.0})]
    graph = TopicGraph.from_edges(8, 2, edges)
    campaign = Campaign([unit_piece(0, 2), unit_piece(1, 2)])
    adoption = AdoptionModel(alpha=1.0, beta=1.0)
    problem = OIPAProblem(
        graph, campaign, adoption, k=2, pool=np.arange(8)
    )
    mrr = MRRCollection.generate(graph, campaign, theta=800, seed=1)
    return problem, mrr


class TestMaxDegree:
    def test_hub_selected_first(self, star_world):
        problem, mrr = star_world
        result = max_degree_baseline(problem, mrr)
        assert 0 in result.seeds  # the 5-edge hub
        assert result.name == "MaxDegree"

    def test_single_piece_plan(self, star_world):
        problem, mrr = star_world
        result = max_degree_baseline(problem, mrr)
        non_empty = [s for s in result.plan.seed_sets if s]
        assert len(non_empty) == 1
        assert result.plan.size <= problem.k

    def test_pool_respected(self, star_world):
        problem, mrr = star_world
        restricted = OIPAProblem(
            problem.graph,
            problem.campaign,
            problem.adoption,
            k=2,
            pool=np.array([6, 7]),
        )
        result = max_degree_baseline(restricted, mrr)
        assert set(result.seeds) <= {6, 7}

    def test_utility_is_mrr_estimate(self, star_world):
        problem, mrr = star_world
        result = max_degree_baseline(problem, mrr)
        assert result.utility == pytest.approx(
            mrr.estimate(result.plan.seed_lists(), problem.adoption)
        )


class TestRandom:
    def test_budget_and_round_robin(self, star_world):
        problem, mrr = star_world
        result = random_baseline(problem, mrr, seed=2)
        assert result.plan.size <= problem.k
        # k=2 with 2 pieces: round-robin gives one seed per piece.
        sizes = [len(s) for s in result.plan.seed_sets]
        assert sizes.count(1) == 2

    def test_deterministic_given_seed(self, star_world):
        problem, mrr = star_world
        a = random_baseline(problem, mrr, seed=3)
        b = random_baseline(problem, mrr, seed=3)
        assert a.plan == b.plan

    def test_pool_respected(self, star_world):
        problem, mrr = star_world
        result = random_baseline(problem, mrr, seed=4)
        assert set(v for v, _ in result.plan.assignments()) <= set(
            problem.pool.tolist()
        )

    def test_quality_ordering_vs_informed_methods(self, star_world):
        """Random should not beat the degree heuristic on a star."""
        problem, mrr = star_world
        degree = max_degree_baseline(problem, mrr)
        rng_utils = [
            random_baseline(problem, mrr, seed=s).utility for s in range(8)
        ]
        assert degree.utility >= np.mean(rng_utils) - 1e-9
