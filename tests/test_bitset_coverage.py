"""The bitset coverage engine: primitives, CoW isolation, bit-identity.

Three layers of guarantees:

* the packed primitives (:mod:`repro.core.bitset`) agree with dense
  bool arrays on every operation, including duplicate / unsorted bit
  batches and word-boundary positions;
* copy-on-write cloning is *isolating* — no mutation of a clone ever
  reaches its parent (the BAB-branch regression) and no mutation of the
  parent ever reaches a clone, for the cell rows and the counts alike;
* the refactored solvers are **bit-identical** to the historical dense
  kernels: ``compute_bound`` reproduces a dense reference
  implementation of Algorithm 2 field-for-field, and the BAB driver's
  branch-clone bases give exactly the same search as per-node
  ``from_plan`` rebuilds, on the running example and a synthetic
  instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bab import BranchAndBoundSolver
from repro.core.bitset import (
    PieceBitMatrix,
    SampleBitset,
    pack_bool,
    popcount,
    unpack_words,
)
from repro.core.compute_bound import CandidateSpace, compute_bound
from repro.core.coverage import CoverageState
from repro.core.plan import AssignmentPlan
from repro.core.progressive import compute_bound_progressive
from repro.core.tangent import MajorantTable
from repro.core.upper_bound import TauState
from repro.datasets.running_example import running_example_problem
from repro.sampling.mrr import MRRCollection


@pytest.fixture(scope="module")
def example():
    problem = running_example_problem(k=2)
    mrr = MRRCollection.generate(
        problem.graph, problem.campaign, theta=2500, seed=11
    )
    return problem, mrr


# ----------------------------------------------------------------------
# packed primitives
# ----------------------------------------------------------------------


class TestBitsetPrimitives:
    @pytest.mark.parametrize("size", [0, 1, 63, 64, 65, 130, 1000])
    def test_pack_unpack_roundtrip(self, size):
        rng = np.random.default_rng(size)
        mask = rng.random(size) < 0.3
        words = pack_bool(mask)
        np.testing.assert_array_equal(unpack_words(words, size), mask)
        assert popcount(words) == int(mask.sum())

    def test_set_many_duplicates_and_unsorted(self):
        bits = SampleBitset(200)
        idx = np.array([199, 0, 63, 64, 0, 199, 128, 63], dtype=np.int64)
        bits.set_many(idx)
        assert bits.count() == 5
        np.testing.assert_array_equal(
            bits.test(np.arange(200, dtype=np.int64)),
            np.isin(np.arange(200), idx),
        )

    def test_test_aligns_with_input_order(self):
        bits = SampleBitset(100)
        bits.set_many(np.array([7, 64], dtype=np.int64))
        query = np.array([64, 3, 7, 7, 99], dtype=np.int64)
        np.testing.assert_array_equal(
            bits.test(query), [True, False, True, True, False]
        )

    def test_matrix_matches_dense_reference(self):
        rng = np.random.default_rng(5)
        theta, pieces = 300, 3
        matrix = PieceBitMatrix(pieces, theta)
        dense = np.zeros((theta, pieces), dtype=bool)
        for _ in range(20):
            j = int(rng.integers(pieces))
            samples = rng.integers(0, theta, size=rng.integers(1, 40))
            matrix.set_many(j, samples.astype(np.int64))
            dense[samples, j] = True
        np.testing.assert_array_equal(matrix.to_bool(), dense)
        assert matrix.count_cells() == int(dense.sum())


# ----------------------------------------------------------------------
# copy-on-write isolation (the BAB-branch regression)
# ----------------------------------------------------------------------


class TestCopyOnWrite:
    def test_branch_clone_never_aliases_parent(self, example):
        """Simulated BAB branch: the include child's mutations must not
        leak into the parent node's state through any shared slab."""
        _, mrr = example
        parent = CoverageState.from_plan(mrr, AssignmentPlan([{0}, {4}]))
        before_counts = parent.counts.copy()
        before_covered = parent.covered.copy()

        include = parent.copy()  # branch on (vertex 2, piece 1)
        include.add(2, 1)
        include.add_many(np.array([1, 3], dtype=np.int64), 0)

        np.testing.assert_array_equal(parent.counts, before_counts)
        np.testing.assert_array_equal(parent.covered, before_covered)

    def test_parent_mutation_never_reaches_clone(self, example):
        _, mrr = example
        parent = CoverageState.from_plan(mrr, AssignmentPlan([{0}, set()]))
        clone = parent.copy()
        snap_counts = clone.counts.copy()
        snap_covered = clone.covered.copy()
        parent.add(4, 1)
        parent.add(2, 0)
        np.testing.assert_array_equal(clone.counts, snap_counts)
        np.testing.assert_array_equal(clone.covered, snap_covered)

    def test_grandchildren_stay_independent(self, example):
        """Re-sharing an already-shared row (clone of a clone) still
        isolates every state in the chain."""
        _, mrr = example
        root = CoverageState(mrr)
        child = root.copy()
        child.add(0, 0)
        grandchild = child.copy()
        grandchild.add(4, 1)
        child_snap = child.covered.copy()
        grandchild.add(2, 0)
        assert not root.covered.any()
        np.testing.assert_array_equal(child.covered, child_snap)

    def test_tau_growth_never_mutates_base(self, example):
        problem, mrr = example
        table = MajorantTable(problem.adoption, problem.num_pieces)
        base = CoverageState.from_plan(mrr, AssignmentPlan([{0}, set()]))
        snap_counts = base.counts.copy()
        snap_covered = base.covered.copy()
        tau = TauState(mrr, table, base, problem.adoption)
        tau.add(4, 1)
        tau.add(2, 0)
        np.testing.assert_array_equal(base.counts, snap_counts)
        np.testing.assert_array_equal(base.covered, snap_covered)


# ----------------------------------------------------------------------
# dense-reference bit-identity of the solvers
# ----------------------------------------------------------------------


class _DenseTau:
    """The seed's dense TauState: bool (theta, l) matrix, scalar loops."""

    def __init__(self, mrr, table, plan, adoption):
        self.mrr = mrr
        self.table = table
        self.covered = np.zeros((mrr.theta, mrr.num_pieces), dtype=bool)
        counts = np.zeros(mrr.theta, dtype=np.int64)
        for j, seeds in enumerate(plan.seed_lists()):
            for v in seeds:
                samples = mrr.samples_containing(j, int(v))
                fresh = samples[~self.covered[samples, j]]
                self.covered[fresh, j] = True
                counts[fresh] += 1
        self.base_counts = counts.copy()
        self.counts = counts
        self.scale = mrr.n / mrr.theta
        self.evaluations = 0
        # Anchor sum via the count histogram against the majorant
        # diagonal — the same O(l) fold TauState performs (the one
        # deliberate departure from the seed's per-sample
        # `values[b, b]` gather, whose pairwise sum rounds differently;
        # everything downstream of the anchor is compared exactly).
        hist = np.bincount(
            self.base_counts, minlength=mrr.num_pieces + 1
        ).astype(np.float64)
        self.value = float(self.scale * (hist * table.anchor_diag).sum())

    def marginal_gain(self, vertex, piece):
        self.evaluations += 1
        samples = self.mrr.samples_containing(piece, vertex)
        if samples.size == 0:
            return 0.0
        fresh = samples[~self.covered[samples, piece]]
        if fresh.size == 0:
            return 0.0
        gains = self.table.gains[self.base_counts[fresh], self.counts[fresh]]
        return float(self.scale * gains.sum())

    def add(self, vertex, piece):
        samples = self.mrr.samples_containing(piece, vertex)
        fresh = samples[~self.covered[samples, piece]]
        if fresh.size == 0:
            return
        gains = self.table.gains[self.base_counts[fresh], self.counts[fresh]]
        self.value += float(self.scale * gains.sum())
        self.covered[fresh, piece] = True
        self.counts[fresh] += 1

    def utility(self, adoption):
        return self.mrr.estimate_from_counts(
            self.counts.astype(np.int64), adoption
        )


def _dense_compute_bound(mrr, table, adoption, plan, candidates, k):
    """Algorithm 2 exactly as the seed ran it: dense state, plain rescan."""
    tau = _DenseTau(mrr, table, plan, adoption)
    budget = k - plan.size
    pairs = candidates.pairs(plan)
    picks = []
    chosen = set()
    for _ in range(budget):
        remaining = [pair for pair in pairs if pair not in chosen]
        if not remaining:
            break
        gains = np.array(
            [tau.marginal_gain(v, j) for v, j in remaining], dtype=np.float64
        )
        best = int(np.argmax(gains))
        if gains[best] <= 0.0:
            break
        best_pair = remaining[best]
        tau.add(*best_pair)
        chosen.add(best_pair)
        picks.append(best_pair)
    out = plan
    for v, j in picks:
        out = out.with_assignment(v, j)
    return {
        "plan": out,
        "lower": tau.utility(adoption),
        "upper": tau.value,
        "first_pick": picks[0] if picks else None,
        "evaluations": tau.evaluations,
        "selected": len(picks),
    }


def _partial_plans(problem):
    yield problem.empty_plan()
    pool = [int(v) for v in problem.pool]
    yield AssignmentPlan(
        [{pool[0]}] + [set() for _ in range(problem.num_pieces - 1)]
    )
    if len(pool) > 1 and problem.num_pieces > 1:
        yield AssignmentPlan(
            [{pool[0]}, {pool[1]}]
            + [set() for _ in range(problem.num_pieces - 2)]
        )


class TestDenseBitIdentity:
    @pytest.mark.parametrize("lazy", [False, True])
    def test_compute_bound_matches_dense_reference(self, example, lazy):
        problem, mrr = example
        table = MajorantTable(problem.adoption, problem.num_pieces)
        space = CandidateSpace(problem.pool, problem.num_pieces)
        for plan in _partial_plans(problem):
            expected = _dense_compute_bound(
                mrr, table, problem.adoption, plan, space, problem.k
            )
            got = compute_bound(
                mrr,
                table,
                problem.adoption,
                plan,
                space,
                problem.k,
                lazy=lazy,
            )
            assert got.plan == expected["plan"]
            assert got.lower == expected["lower"]
            assert got.upper == expected["upper"]
            assert got.first_pick == expected["first_pick"]
            assert got.selected == expected["selected"]
            if not lazy:  # the lazy variant legitimately evaluates less
                assert got.evaluations == expected["evaluations"]

    def test_branch_clone_base_equals_rebuild(self, example):
        """The BAB driver's cloned bases reproduce `from_plan` exactly."""
        problem, mrr = example
        table = MajorantTable(problem.adoption, problem.num_pieces)
        space = CandidateSpace(problem.pool, problem.num_pieces)
        plan = problem.empty_plan()
        root = compute_bound(
            mrr, table, problem.adoption, plan, space, problem.k
        )
        v_star, j_star = root.first_pick
        node_cov = CoverageState.from_plan(mrr, plan)
        include_cov = node_cov.copy()
        include_cov.add(v_star, j_star)
        include_plan = plan.with_assignment(v_star, j_star)
        child_space = space.without(v_star, j_star)
        for child_plan, base in (
            (include_plan, include_cov),
            (plan, node_cov),
        ):
            fresh = compute_bound(
                mrr,
                table,
                problem.adoption,
                child_plan,
                child_space,
                problem.k,
            )
            cloned = compute_bound(
                mrr,
                table,
                problem.adoption,
                child_plan,
                child_space,
                problem.k,
                base=base,
            )
            assert cloned.plan == fresh.plan
            assert cloned.lower == fresh.lower
            assert cloned.upper == fresh.upper
            assert cloned.evaluations == fresh.evaluations

    @pytest.mark.parametrize("bound", ["greedy", "progressive"])
    def test_solver_branch_clones_match_rebuild_path(
        self, example, bound, monkeypatch
    ):
        """Full search, clone-based bases vs per-child rebuilds: the
        whole SolverResult (plan, bounds, work counters) must agree."""
        problem, mrr = example

        def make_solver():
            return BranchAndBoundSolver(
                problem, mrr, bound=bound, gap_tolerance=0.0
            )

        clone_result = make_solver().solve()

        original = BranchAndBoundSolver._compute_bound

        def rebuild_only(self, plan, candidates, base=None):
            return original(self, plan, candidates, None)

        monkeypatch.setattr(
            BranchAndBoundSolver, "_compute_bound", rebuild_only
        )
        rebuild_result = make_solver().solve()

        assert clone_result.plan == rebuild_result.plan
        assert clone_result.utility == rebuild_result.utility
        assert clone_result.upper_bound == rebuild_result.upper_bound
        for field in (
            "nodes_expanded",
            "nodes_pruned",
            "bounds_computed",
            "tau_evaluations",
            "incumbent_updates",
        ):
            assert getattr(clone_result.diagnostics, field) == getattr(
                rebuild_result.diagnostics, field
            ), field

    def test_progressive_bound_accepts_base(self, example):
        problem, mrr = example
        table = MajorantTable(problem.adoption, problem.num_pieces)
        space = CandidateSpace(problem.pool, problem.num_pieces)
        plan = problem.empty_plan()
        fresh = compute_bound_progressive(
            mrr, table, problem.adoption, plan, space, problem.k
        )
        via_base = compute_bound_progressive(
            mrr,
            table,
            problem.adoption,
            plan,
            space,
            problem.k,
            base=CoverageState.from_plan(mrr, plan),
        )
        assert via_base.plan == fresh.plan
        assert via_base.lower == fresh.lower
        assert via_base.upper == fresh.upper
