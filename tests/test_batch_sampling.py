"""The batched sampling engine: backend equivalence and validation bugs.

Three groups of guarantees:

* **Exact stream equality** where draw order is preserved — the batch
  forward cascade and a single-root-block RR sampler consume the rng
  stream bit-for-bit like the reference Python loops, so outputs must be
  identical, not just statistically close (property-tested over random
  instances).
* **Distributional equivalence** for real (multi-root) blocks — matched
  sample counts must agree on mean RR-set size, membership
  probabilities, and AU estimates within Monte-Carlo tolerance.
* **Validation regressions** — mismatched-``n`` piece graphs raise
  instead of corrupting counts, and out-of-range vertices fail loudly
  in the coverage state.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.coverage import CoverageState
from repro.diffusion.adoption import AdoptionModel
from repro.diffusion.projection import PieceGraph, project_campaign
from repro.diffusion.simulate import simulate_adoption_utility, simulate_cascade
from repro.exceptions import ParameterError, SamplingError, SolverError
from repro.graph.digraph import TopicGraph
from repro.graph.generators import (
    build_topic_graph,
    preferential_attachment_digraph,
)
from repro.sampling.batch import (
    BACKENDS,
    DEFAULT_BACKEND,
    BatchRRSampler,
    check_backend,
    simulate_cascade_batch,
)
from repro.sampling.mrr import MRRCollection
from repro.sampling.rr import ReverseReachableSampler
from repro.topics.distributions import Campaign, unit_piece
from repro.utils.frontier import Int64Buffer, stable_unique
from repro.utils.rng import as_generator

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

world_params = st.fixed_dictionaries(
    {
        "n": st.integers(10, 80),
        "edges_per_vertex": st.integers(1, 4),
        "prob_mean": st.sampled_from([0.05, 0.2, 0.5]),
        "seed": st.integers(0, 10_000),
    }
)


def build_piece_graph(params) -> PieceGraph:
    src, dst = preferential_attachment_digraph(
        params["n"], params["edges_per_vertex"], seed=params["seed"]
    )
    graph = build_topic_graph(
        params["n"],
        src,
        dst,
        3,
        topics_per_edge=1.5,
        prob_mean=params["prob_mean"],
        seed=params["seed"] + 1,
    )
    campaign = Campaign.sample_unit(1, 3, seed=params["seed"] + 2)
    return project_campaign(graph, campaign)[0]


def project(edges, n, topics=1, piece=0):
    g = TopicGraph.from_edges(n, topics, edges)
    return PieceGraph.project(g, unit_piece(piece, topics))


class TestExactStreamEquality:
    @given(params=world_params)
    @SETTINGS
    def test_single_root_blocks_match_reference_sampler(self, params):
        """block_size=1 preserves draw order: bitwise-equal CSR output."""
        pg = build_piece_graph(params)
        roots = as_generator(params["seed"]).integers(0, pg.n, size=40)
        ref = ReverseReachableSampler(pg, backend="python")
        ref_ptr, ref_nodes = ref.sample_many(roots, as_generator(3))
        batch = BatchRRSampler(pg, block_size=1)
        ptr, nodes = batch.sample_many(roots, as_generator(3))
        assert np.array_equal(ref_ptr, ptr)
        assert np.array_equal(ref_nodes, nodes)

    @given(params=world_params)
    @SETTINGS
    def test_forward_cascade_matches_reference_loop(self, params):
        """The batch cascade kernel is bitwise-equal to the Python loop."""
        pg = build_piece_graph(params)
        seeds = as_generator(params["seed"]).integers(0, pg.n, size=3)
        ref = simulate_cascade(pg, seeds, as_generator(17), backend="python")
        batch = simulate_cascade_batch(pg, seeds, as_generator(17))
        assert np.array_equal(ref, batch)
        default = simulate_cascade(pg, seeds, as_generator(17))
        assert np.array_equal(ref, default)

    @given(params=world_params)
    @SETTINGS
    def test_rr_sets_are_duplicate_free_with_root_first(self, params):
        pg = build_piece_graph(params)
        roots = as_generator(params["seed"] + 7).integers(0, pg.n, size=30)
        ptr, nodes = BatchRRSampler(pg).sample_many(roots, as_generator(5))
        assert ptr.shape == (roots.size + 1,)
        assert ptr[-1] == nodes.size
        for i, root in enumerate(roots):
            rr = nodes[ptr[i] : ptr[i + 1]]
            assert rr[0] == root
            assert len(set(rr.tolist())) == rr.size


class TestDeterministicStructure:
    def test_certain_chain_rr_is_ancestry(self):
        pg = project([(0, 1, {0: 1.0}), (1, 2, {0: 1.0})], 3)
        sampler = BatchRRSampler(pg)
        ptr, nodes = sampler.sample_many(
            np.array([2, 1, 0]), as_generator(0)
        )
        assert set(nodes[ptr[0] : ptr[1]].tolist()) == {0, 1, 2}
        assert set(nodes[ptr[1] : ptr[2]].tolist()) == {0, 1}
        assert nodes[ptr[2] : ptr[3]].tolist() == [0]

    def test_dead_edges_rr_is_root_only(self):
        pg = project([(0, 1, {0: 0.0})], 2)
        assert BatchRRSampler(pg).sample(1, as_generator(0)).tolist() == [1]

    def test_root_range_checked(self):
        pg = project([], 2)
        with pytest.raises(SamplingError):
            BatchRRSampler(pg).sample_many(np.array([5]), as_generator(0))

    def test_empty_roots(self):
        pg = project([], 2)
        ptr, nodes = BatchRRSampler(pg).sample_many(
            np.array([], dtype=np.int64), as_generator(0)
        )
        assert ptr.tolist() == [0]
        assert nodes.size == 0

    def test_scratch_reuse_across_blocks(self):
        """Marks must not leak between blocks of the same sampler."""
        pg = project([(0, 1, {0: 1.0}), (1, 2, {0: 1.0})], 3)
        sampler = BatchRRSampler(pg, block_size=2)
        rng = as_generator(0)
        ptr, nodes = sampler.sample_many(np.array([2, 2, 0]), rng)
        assert set(nodes[ptr[0] : ptr[1]].tolist()) == {0, 1, 2}
        assert set(nodes[ptr[1] : ptr[2]].tolist()) == {0, 1, 2}
        assert nodes[ptr[2] : ptr[3]].tolist() == [0]

    def test_invalid_block_size_rejected(self):
        pg = project([], 2)
        with pytest.raises(ParameterError):
            BatchRRSampler(pg, block_size=0)


class TestDistributionalEquivalence:
    @pytest.fixture(scope="class")
    def world(self):
        src, dst = preferential_attachment_digraph(120, 3, seed=31)
        graph = build_topic_graph(
            120, src, dst, 4, topics_per_edge=2.0, prob_mean=0.2, seed=32
        )
        campaign = Campaign.sample_unit(3, 4, seed=33)
        return graph, campaign

    def test_membership_probability_matches_exact_value(self):
        """P(u in RR(x)) on the 3-vertex example: 0.2 + 0.8*0.7*0.5."""
        edges = [(0, 1, {0: 0.7}), (1, 2, {0: 0.5}), (0, 2, {0: 0.2})]
        pg = project(edges, 3)
        sampler = BatchRRSampler(pg)
        rng = as_generator(42)
        trials = 6000
        ptr, nodes = sampler.sample_many(
            np.full(trials, 2, dtype=np.int64), rng
        )
        hits = sum(
            0 in nodes[ptr[i] : ptr[i + 1]] for i in range(trials)
        )
        assert hits / trials == pytest.approx(0.48, abs=0.03)

    def test_mean_rr_size_agrees_between_backends(self, world):
        graph, campaign = world
        pg = project_campaign(graph, campaign)[0]
        roots = as_generator(1).integers(0, graph.n, size=3000)
        p_ptr, _ = ReverseReachableSampler(pg, backend="python").sample_many(
            roots, as_generator(2)
        )
        b_ptr, _ = ReverseReachableSampler(pg, backend="batch").sample_many(
            roots, as_generator(3)
        )
        p_mean = float(np.diff(p_ptr).mean())
        b_mean = float(np.diff(b_ptr).mean())
        assert b_mean == pytest.approx(p_mean, rel=0.1)

    def test_au_estimates_agree_between_backends(self, world):
        """Matched theta: both backends estimate the same plan utility."""
        graph, campaign = world
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        plan = [[0, 5, 9], [1, 7], [2, 11, 20]]
        estimates = {}
        for backend in BACKENDS:
            mrr = MRRCollection.generate(
                graph, campaign, theta=4000, seed=8, backend=backend
            )
            estimates[backend] = mrr.estimate(plan, adoption)
        sim = simulate_adoption_utility(
            project_campaign(graph, campaign),
            plan,
            adoption,
            rounds=400,
            seed=9,
        )
        assert estimates["batch"] == pytest.approx(
            estimates["python"], rel=0.1
        )
        assert estimates["batch"] == pytest.approx(sim, rel=0.15)

    def test_same_seed_same_backend_is_deterministic(self, world):
        graph, campaign = world
        a = MRRCollection.generate(graph, campaign, theta=500, seed=4)
        b = MRRCollection.generate(graph, campaign, theta=500, seed=4)
        for j in range(campaign.num_pieces):
            assert np.array_equal(a.rr_set_sizes(j), b.rr_set_sizes(j))


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError):
            check_backend("numba")
        pg = project([], 2)
        with pytest.raises(ParameterError):
            ReverseReachableSampler(pg, backend="numba")
        with pytest.raises(ParameterError):
            simulate_cascade(pg, [0], as_generator(0), backend="numba")

    def test_default_backend_follows_env(self):
        """Default is batch, unless the REPRO_BACKEND CI matrix overrides."""
        import os

        from repro import native

        expected = os.environ.get("REPRO_BACKEND") or "batch"
        assert DEFAULT_BACKEND == expected
        # an env default of "native" resolves to "batch" when the
        # compiled tier is unavailable (the graceful-fallback contract)
        if expected == "native" and not native.compiled():
            expected = "batch"
        assert check_backend(None) == expected
        pg = project([], 2)
        assert ReverseReachableSampler(pg).backend == expected

    def test_per_call_backend_override(self):
        pg = project([(0, 1, {0: 1.0})], 2)
        sampler = ReverseReachableSampler(pg, backend="batch")
        ptr, nodes = sampler.sample_many(
            np.array([1]), as_generator(0), backend="python"
        )
        assert set(nodes[ptr[0] : ptr[1]].tolist()) == {0, 1}


class TestLegacyPythonPath:
    def test_csr_layout_preserved(self):
        pg = project([(0, 1, {0: 1.0})], 2)
        sampler = ReverseReachableSampler(pg, backend="python")
        ptr, nodes = sampler.sample_many(np.array([0, 1, 1]), as_generator(0))
        assert ptr.shape == (4,)
        assert ptr[-1] == nodes.size
        assert nodes[ptr[0] : ptr[1]].tolist() == [0]
        assert set(nodes[ptr[1] : ptr[2]].tolist()) == {0, 1}

    def test_int64_buffer_growth(self):
        buf = Int64Buffer(1)
        chunks = [np.arange(k, dtype=np.int64) for k in (1, 5, 17, 63)]
        for c in chunks:
            buf.extend(c)
        expected = np.concatenate(chunks)
        assert len(buf) == expected.size
        assert np.array_equal(buf.to_array(), expected)
        # to_array transfers ownership and resets; the buffer is reusable
        assert len(buf) == 0
        buf.extend(np.array([42], dtype=np.int64))
        assert buf.to_array().tolist() == [42]

    def test_stable_unique_keeps_first_occurrence_order(self):
        values = np.array([7, 3, 7, 1, 3, 9], dtype=np.int64)
        assert stable_unique(values).tolist() == [7, 3, 1, 9]


class TestValidationRegressions:
    def _mismatched_world(self):
        src, dst = preferential_attachment_digraph(30, 2, seed=51)
        graph = build_topic_graph(
            30, src, dst, 2, topics_per_edge=1.5, prob_mean=0.2, seed=52
        )
        campaign = Campaign.sample_unit(2, 2, seed=53)
        good = project_campaign(graph, campaign)
        small = project([(0, 1, {0: 0.5})], 10)
        return graph, campaign, good, small

    def test_adoption_utility_rejects_mismatched_piece_graphs(self):
        _, _, good, small = self._mismatched_world()
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        with pytest.raises(ParameterError, match="vertex set"):
            simulate_adoption_utility(
                [good[0], small], [[1], [2]], adoption, rounds=2, seed=0
            )

    def test_mrr_generate_rejects_mismatched_piece_graphs(self):
        graph, campaign, good, small = self._mismatched_world()
        with pytest.raises(SamplingError, match="vertex set"):
            MRRCollection.generate(
                graph,
                campaign,
                theta=50,
                seed=0,
                piece_graphs=[good[0], small],
            )

    def test_coverage_rejects_out_of_range_vertex(self, small_mrr):
        state = CoverageState(small_mrr)
        for bad in (-1, small_mrr.n, small_mrr.n + 100):
            with pytest.raises(SolverError, match="vertex"):
                state.add(bad, 0)
            with pytest.raises(SolverError, match="vertex"):
                state.newly_covered(bad, 0)

    def test_coverage_rejects_out_of_range_piece(self, small_mrr):
        state = CoverageState(small_mrr)
        with pytest.raises(SolverError, match="piece"):
            state.newly_covered(0, small_mrr.num_pieces)
