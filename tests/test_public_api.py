"""The public API surface: a snapshot of exports and entry signatures.

Everything advertised in ``__all__`` imports and works, and — since the
`Runtime`/`Session` redesign made the execution surface part of the
compatibility contract — the export list and the parameter lists of the
main entry points are pinned verbatim.  A change here is an API change:
update the snapshot *deliberately*, in the same commit that documents
the new surface.
"""

from __future__ import annotations

import inspect

import repro

#: The exact export list (sorted).  Additions are append-and-sort;
#: removals/renames are breaking changes.
PUBLIC_EXPORTS = [
    "AdoptionModel",
    "ArtifactStore",
    "AssignmentPlan",
    "BaselineResult",
    "BatchRRSampler",
    "BranchAndBoundSolver",
    "BudgetExhaustedError",
    "Campaign",
    "CliqueReduction",
    "ConfigError",
    "DatasetError",
    "DeltaError",
    "DiskArtifactStore",
    "EdgeOp",
    "ExperimentError",
    "GraphDelta",
    "GraphError",
    "GraphFormatError",
    "IncrementalTrace",
    "InfluenceServer",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "MRRCollection",
    "MemoryArtifactStore",
    "MemoryStore",
    "OIPAProblem",
    "ParameterError",
    "Piece",
    "PieceGraph",
    "PipelineTrace",
    "ReproError",
    "ReverseReachableSampler",
    "Runtime",
    "STAGES",
    "SamplingError",
    "Session",
    "SessionResult",
    "ShardStore",
    "SolverError",
    "SolverResult",
    "Stage",
    "StageEvent",
    "StoreBusyError",
    "StoreError",
    "TopicError",
    "TopicGraph",
    "UpdateResult",
    "__version__",
    "apply_delta",
    "available_solvers",
    "brute_force_oipa",
    "create_server",
    "im_baseline",
    "load_dataset",
    "load_topic_graph",
    "project_campaign",
    "register_solver",
    "resolve_artifact_store",
    "resolve_runtime",
    "save_topic_graph",
    "simulate_adoption_utility",
    "solve_bab",
    "solve_bab_progressive",
    "stage",
    "tim_baseline",
    "uniform_piece",
    "unit_piece",
]

#: Parameter-name snapshots of the execution surface.  Every entry point
#: carries ``runtime=`` plus the (deprecated) legacy execution kwargs;
#: dropping or reordering a name breaks callers.
ENTRY_SIGNATURES = {
    "MRRCollection.generate": [
        "graph", "campaign", "theta", "seed", "piece_graphs", "runtime",
        "backend", "model", "workers", "executor", "store", "shard_dir",
        "max_resident_bytes",
    ],
    "ris_influence_maximization": [
        "piece_graph", "k", "theta", "pool", "seed", "runtime", "backend",
        "model", "workers", "executor", "store", "shard_dir",
        "max_resident_bytes",
    ],
    "celf_greedy_im": [
        "piece_graph", "k", "pool", "rounds", "seed", "runtime", "backend",
        "model", "workers", "executor",
    ],
    "simulate_piece_spread": [
        "piece_graph", "seeds", "rounds", "seed", "runtime", "backend",
        "model", "workers", "executor", "pool",
    ],
    "simulate_adoption_utility": [
        "piece_graphs", "plan_seed_sets", "adoption", "rounds", "seed",
        "return_std", "runtime", "backend", "model", "workers", "executor",
    ],
    "generate_adaptive": [
        "graph", "campaign", "adoption", "probe_plan", "epsilon", "delta",
        "initial_theta", "max_theta", "seed", "runtime", "backend",
    ],
    "im_baseline": [
        "problem", "mrr", "theta", "seed", "runtime", "backend",
    ],
    "Runtime": [
        "backend", "model", "workers", "executor", "store", "shard_dir",
        "max_resident_bytes", "artifacts", "seed",
    ],
    "Session.__init__": [
        "self", "graph", "campaign", "adoption", "k", "pool",
        "pool_fraction", "seed", "runtime",
    ],
    "Session.solve": [
        "self", "method", "theta", "seed", "evaluate", "eval_theta",
        "options",
    ],
}


def _entry(name: str):
    from repro.diffusion.simulate import (
        simulate_adoption_utility,
        simulate_piece_spread,
    )
    from repro.im.greedy import celf_greedy_im
    from repro.im.ris import ris_influence_maximization
    from repro.sampling.adaptive import generate_adaptive

    return {
        "MRRCollection.generate": repro.MRRCollection.generate,
        "ris_influence_maximization": ris_influence_maximization,
        "celf_greedy_im": celf_greedy_im,
        "simulate_piece_spread": simulate_piece_spread,
        "simulate_adoption_utility": simulate_adoption_utility,
        "generate_adaptive": generate_adaptive,
        "im_baseline": repro.im_baseline,
        "Runtime": repro.Runtime,
        "Session.__init__": repro.Session.__init__,
        "Session.solve": repro.Session.solve,
    }[name]


def test_version():
    assert repro.__version__


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_export_snapshot():
    assert sorted(repro.__all__) == PUBLIC_EXPORTS


def test_entry_signature_snapshot():
    for name, expected in ENTRY_SIGNATURES.items():
        params = list(inspect.signature(_entry(name)).parameters)
        assert params == expected, (
            f"{name} signature drifted:\n  have {params}\n  want {expected}"
        )


def test_registered_solvers_snapshot():
    assert repro.available_solvers() == (
        "bab", "bab-p", "brute-force", "celf", "celf-mrr", "im",
        "local-search", "ris", "tim",
    )


def test_quickstart_snippet():
    """The README / module docstring quickstart, condensed."""
    bundle = repro.load_dataset("lastfm", scale=0.08, seed=99)
    campaign = repro.Campaign.sample_unit(2, bundle.graph.num_topics, seed=1)
    problem = repro.OIPAProblem.with_random_pool(
        bundle.graph,
        campaign,
        repro.AdoptionModel(alpha=2.0, beta=1.0),
        k=3,
        seed=1,
    )
    mrr = repro.MRRCollection.generate(bundle.graph, campaign, theta=500, seed=1)
    result = repro.solve_bab_progressive(problem, mrr, max_nodes=20)
    assert result.plan.size <= 3
    assert result.utility >= 0.0


def test_session_quickstart_snippet():
    """The new three-line quickstart, verbatim."""
    session = repro.Session.from_dataset(
        "lastfm", scale=0.08, dataset_seed=99, pieces=2, k=3, seed=1
    )
    result = session.solve("bab-p", theta=500, max_nodes=20)
    assert result.plan.size <= 3
    assert result.estimate >= 0.0


def test_plan_and_problem_types_exported():
    plan = repro.AssignmentPlan.empty(2)
    assert plan.num_pieces == 2
    assert isinstance(repro.unit_piece(0, 3), repro.Piece)


def test_exceptions_exported_and_hierarchy():
    assert issubclass(repro.SolverError, repro.ReproError)
    assert issubclass(repro.GraphFormatError, repro.GraphError)
    assert issubclass(repro.ConfigError, repro.ParameterError)


def test_graph_io_roundtrip_via_public_api(tmp_path):
    g = repro.TopicGraph.from_edges(3, 2, [(0, 1, {0: 0.5}), (1, 2, {1: 0.25})])
    path = tmp_path / "g.tsv"
    repro.save_topic_graph(g, path)
    assert repro.load_topic_graph(path) == g


def test_clique_reduction_exported():
    red = repro.CliqueReduction(3, [(0, 1)])
    assert red.problem().k == 3
