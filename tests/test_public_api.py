"""The public API surface: everything advertised in __all__ imports and works."""

from __future__ import annotations

import repro


def test_version():
    assert repro.__version__


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_snippet():
    """The README / module docstring quickstart, condensed."""
    bundle = repro.load_dataset("lastfm", scale=0.08, seed=99)
    campaign = repro.Campaign.sample_unit(2, bundle.graph.num_topics, seed=1)
    problem = repro.OIPAProblem.with_random_pool(
        bundle.graph,
        campaign,
        repro.AdoptionModel(alpha=2.0, beta=1.0),
        k=3,
        seed=1,
    )
    mrr = repro.MRRCollection.generate(bundle.graph, campaign, theta=500, seed=1)
    result = repro.solve_bab_progressive(problem, mrr, max_nodes=20)
    assert result.plan.size <= 3
    assert result.utility >= 0.0


def test_plan_and_problem_types_exported():
    plan = repro.AssignmentPlan.empty(2)
    assert plan.num_pieces == 2
    assert isinstance(repro.unit_piece(0, 3), repro.Piece)


def test_exceptions_exported_and_hierarchy():
    assert issubclass(repro.SolverError, repro.ReproError)
    assert issubclass(repro.GraphFormatError, repro.GraphError)


def test_graph_io_roundtrip_via_public_api(tmp_path):
    g = repro.TopicGraph.from_edges(3, 2, [(0, 1, {0: 0.5}), (1, 2, {1: 0.25})])
    path = tmp_path / "g.tsv"
    repro.save_topic_graph(g, path)
    assert repro.load_topic_graph(path) == g


def test_clique_reduction_exported():
    red = repro.CliqueReduction(3, [(0, 1)])
    assert red.problem().k == 3
