"""Unit tests for repro.utils (rng, timer, tables, validation)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.tables import format_series, format_table
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 4)
        assert len(gens) == 4

    def test_children_are_independent_streams(self):
        a, b = spawn_generators(3, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic_given_seed(self):
        a1, b1 = spawn_generators(5, 2)
        a2, b2 = spawn_generators(5, 2)
        np.testing.assert_array_equal(a1.random(5), a2.random(5))
        np.testing.assert_array_equal(b1.random(5), b2.random(5))

    def test_generator_seed_accepted(self):
        gens = spawn_generators(np.random.default_rng(1), 2)
        assert len(gens) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count_ok(self):
        assert spawn_generators(0, 0) == []


class TestTimer:
    def test_context_manager(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.01

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_split_monotone(self):
        t = Timer().start()
        first = t.split()
        second = t.split()
        assert second >= first >= 0.0

    def test_split_after_stop_frozen(self):
        t = Timer().start()
        t.stop()
        assert t.split() == t.elapsed

    def test_repr_mentions_state(self):
        t = Timer().start()
        assert "running" in repr(t)
        t.stop()
        assert "stopped" in repr(t)


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [33, 4.0]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "33" in lines[3]

    def test_title_rendered(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = format_table(["v"], [[1.23456789]], floatfmt=".2f")
        assert "1.23" in out

    def test_bool_cells(self):
        out = format_table(["ok"], [[True]])
        assert "True" in out


class TestFormatSeries:
    def test_columns_per_series(self):
        out = format_series("k", [1, 2], {"IM": [0.5, 0.6], "BAB": [1.0, 1.5]})
        header = out.splitlines()[0]
        assert "IM" in header and "BAB" in header and header.startswith("k")

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_series("k", [1, 2], {"IM": [0.5]})


class TestValidation:
    @pytest.mark.parametrize("value", [1, 0.5, 1e-9])
    def test_check_positive_accepts(self, value):
        assert check_positive("x", value) == float(value)

    @pytest.mark.parametrize("value", [0, -1, float("nan"), float("inf")])
    def test_check_positive_rejects(self, value):
        with pytest.raises(ParameterError, match="x"):
            check_positive("x", value)

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ParameterError):
            check_non_negative("x", -0.1)

    @pytest.mark.parametrize("value", [1, 5, 10**9])
    def test_check_positive_int_accepts(self, value):
        assert check_positive_int("n", value) == value

    @pytest.mark.parametrize("value", [0, -3, 1.5, True])
    def test_check_positive_int_rejects(self, value):
        with pytest.raises(ParameterError):
            check_positive_int("n", value)

    def test_check_probability_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ParameterError):
            check_probability("p", 1.01)

    def test_check_fraction_open_interval(self):
        assert check_fraction("f", 0.5) == 0.5
        for bad in (0.0, 1.0, -0.1):
            with pytest.raises(ParameterError):
                check_fraction("f", bad)
