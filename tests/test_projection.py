"""Tests for piece-projected influence graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.projection import PieceGraph, project_campaign
from repro.graph.digraph import TopicGraph
from repro.topics.distributions import Campaign, Piece, unit_piece


@pytest.fixture()
def graph() -> TopicGraph:
    return TopicGraph.from_edges(
        3,
        2,
        [
            (0, 1, {0: 0.8, 1: 0.2}),
            (1, 2, {1: 0.6}),
            (2, 0, {0: 0.4}),
        ],
    )


class TestProjection:
    def test_unit_piece_probabilities(self, graph):
        pg = PieceGraph.project(graph, unit_piece(0, 2))
        np.testing.assert_allclose(pg.out_prob, [0.8, 0.0, 0.4])

    def test_mixture_piece(self, graph):
        pg = PieceGraph.project(graph, Piece("mix", np.array([0.5, 0.5])))
        np.testing.assert_allclose(pg.out_prob, [0.5, 0.3, 0.2])

    def test_raw_vector_accepted(self, graph):
        pg = PieceGraph.project(graph, np.array([1.0, 0.0]))
        np.testing.assert_allclose(pg.out_prob, [0.8, 0.0, 0.4])

    def test_in_probs_aligned_with_reverse_adjacency(self, graph):
        pg = PieceGraph.project(graph, unit_piece(0, 2))
        # vertex 1's only in-edge is 0 -> 1 with p = 0.8 under topic 0
        lo, hi = pg.in_ptr[1], pg.in_ptr[2]
        assert pg.in_src[lo:hi].tolist() == [0]
        np.testing.assert_allclose(pg.in_prob[lo:hi], [0.8])

    def test_num_edges(self, graph):
        pg = PieceGraph.project(graph, unit_piece(1, 2))
        assert pg.num_edges == 3
        assert pg.n == 3

    def test_shared_arrays_not_copied(self, graph):
        pg = PieceGraph.project(graph, unit_piece(0, 2))
        assert pg.out_ptr is graph.out_ptr
        assert pg.out_dst is graph.out_dst


class TestFromEdgeProbabilities:
    def test_explicit_probabilities(self, graph):
        probs = np.array([0.1, 0.2, 0.3])
        pg = PieceGraph.from_edge_probabilities(graph, probs)
        np.testing.assert_allclose(pg.out_prob, probs)
        # Reverse view must be the same numbers re-indexed.
        total_in = sorted(pg.in_prob.tolist())
        assert total_in == sorted(probs.tolist())

    def test_shape_validation(self, graph):
        with pytest.raises(ValueError):
            PieceGraph.from_edge_probabilities(graph, np.array([0.1]))


class TestProjectCampaign:
    def test_one_graph_per_piece(self, graph):
        campaign = Campaign([unit_piece(0, 2), unit_piece(1, 2)])
        pgs = project_campaign(graph, campaign)
        assert len(pgs) == 2
        np.testing.assert_allclose(pgs[0].out_prob, [0.8, 0.0, 0.4])
        np.testing.assert_allclose(pgs[1].out_prob, [0.2, 0.6, 0.0])
