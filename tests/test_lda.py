"""Tests for the collapsed-Gibbs LDA and document fold-in."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError, TopicError
from repro.topics.lda import fit_lda, infer_document_topics


def clustered_corpus(rng, docs_per_topic=30, words_per_doc=12):
    """Two topics with disjoint vocabularies: 0-9 and 10-19."""
    documents = []
    labels = []
    for topic in (0, 1):
        base = topic * 10
        for _ in range(docs_per_topic):
            documents.append(
                [int(base + rng.integers(0, 10)) for _ in range(words_per_doc)]
            )
            labels.append(topic)
    return documents, labels


class TestFitLda:
    def test_separates_disjoint_vocabularies(self):
        rng = np.random.default_rng(0)
        documents, labels = clustered_corpus(rng)
        model = fit_lda(documents, 2, 20, sweeps=60, burn_in=30, seed=1)
        # Documents from the same true cluster should agree on their
        # dominant inferred topic; opposite clusters should disagree.
        dominant = model.doc_topic.argmax(axis=1)
        group0 = dominant[np.array(labels) == 0]
        group1 = dominant[np.array(labels) == 1]
        assert np.mean(group0 == np.bincount(group0).argmax()) > 0.9
        assert np.bincount(group0).argmax() != np.bincount(group1).argmax()

    def test_topic_word_rows_normalised(self):
        rng = np.random.default_rng(2)
        documents, _ = clustered_corpus(rng, docs_per_topic=10)
        model = fit_lda(documents, 2, 20, sweeps=20, burn_in=10, seed=3)
        np.testing.assert_allclose(model.topic_word.sum(axis=1), 1.0)
        np.testing.assert_allclose(model.doc_topic.sum(axis=1), 1.0)

    def test_top_words_come_from_cluster_vocabulary(self):
        rng = np.random.default_rng(4)
        documents, _ = clustered_corpus(rng)
        model = fit_lda(documents, 2, 20, sweeps=60, burn_in=30, seed=5)
        for topic in range(2):
            top = set(model.top_words(topic, 5).tolist())
            # Top words should be drawn from one vocabulary half.
            low = sum(1 for w in top if w < 10)
            assert low == 0 or low == 5

    def test_log_likelihood_trend_improves(self):
        rng = np.random.default_rng(6)
        documents, _ = clustered_corpus(rng, docs_per_topic=15)
        model = fit_lda(documents, 2, 20, sweeps=30, burn_in=15, seed=7)
        trace = model.log_likelihood_trace
        assert np.mean(trace[-5:]) > np.mean(trace[:5])

    def test_empty_documents_allowed(self):
        model = fit_lda([[], [0, 1]], 2, 5, sweeps=4, burn_in=1, seed=8)
        assert model.doc_topic.shape == (2, 2)

    def test_word_out_of_vocab_rejected(self):
        with pytest.raises(TopicError):
            fit_lda([[99]], 2, 5, sweeps=2, burn_in=1)

    def test_burn_in_bounds(self):
        with pytest.raises(ParameterError):
            fit_lda([[0]], 2, 5, sweeps=5, burn_in=5)

    def test_top_words_topic_range(self):
        model = fit_lda([[0, 1]], 2, 5, sweeps=4, burn_in=1, seed=9)
        with pytest.raises(TopicError):
            model.top_words(5)


class TestFoldIn:
    @pytest.fixture()
    def model(self):
        rng = np.random.default_rng(10)
        documents, _ = clustered_corpus(rng)
        return fit_lda(documents, 2, 20, sweeps=60, burn_in=30, seed=11)

    def test_fold_in_matches_cluster(self, model):
        theta0 = infer_document_topics(model, [0, 1, 2, 3, 4])
        theta1 = infer_document_topics(model, [10, 11, 12, 13, 14])
        assert theta0.argmax() != theta1.argmax()
        assert theta0.max() > 0.7 and theta1.max() > 0.7

    def test_empty_document_is_uniform(self, model):
        theta = infer_document_topics(model, [])
        np.testing.assert_allclose(theta, [0.5, 0.5])

    def test_distribution_normalised(self, model):
        theta = infer_document_topics(model, [0, 15, 3])
        assert theta.sum() == pytest.approx(1.0)
        assert np.all(theta >= 0)

    def test_out_of_vocab_rejected(self, model):
        with pytest.raises(TopicError):
            infer_document_topics(model, [200])

    def test_iterations_validated(self, model):
        with pytest.raises(ParameterError):
            infer_document_topics(model, [0], iterations=0)
