"""Cross-cutting property-based tests over randomised OIPA pipelines.

Each hypothesis case builds a fresh random instance (graph, campaign,
adoption model, samples) and checks invariants that must survive *any*
configuration — the end-to-end analogues of the per-module properties:

* sigma is monotone under plan containment (Def. 5's positive half);
* tau dominates sigma and is tight at its base;
* the greedy bound is monotone in the budget and respects exclusions;
* solver incumbents are feasible and within their guarantee of the
  greedy root (a cheap stand-in for brute force at random sizes);
* IC estimator consistency: more samples cannot change what a
  deterministic instance's estimate converges to.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bab import BranchAndBoundSolver
from repro.core.compute_bound import CandidateSpace, compute_bound
from repro.core.coverage import CoverageState
from repro.core.plan import AssignmentPlan
from repro.core.problem import OIPAProblem
from repro.core.tangent import MajorantTable
from repro.core.upper_bound import TauState
from repro.diffusion.adoption import AdoptionModel
from repro.graph.generators import build_topic_graph, preferential_attachment_digraph
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import Campaign

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

instance_params = st.fixed_dictionaries(
    {
        "n": st.integers(20, 60),
        "topics": st.integers(2, 5),
        "pieces": st.integers(1, 4),
        "ratio": st.sampled_from([0.3, 0.5, 0.7]),
        "seed": st.integers(0, 10_000),
    }
)


def build_instance(params, theta=400, k=3):
    rng_seed = params["seed"]
    src, dst = preferential_attachment_digraph(
        params["n"], 2, seed=rng_seed
    )
    graph = build_topic_graph(
        params["n"],
        src,
        dst,
        params["topics"],
        topics_per_edge=1.5,
        prob_mean=0.25,
        seed=rng_seed + 1,
    )
    campaign = Campaign.sample_unit(
        params["pieces"], params["topics"], seed=rng_seed + 2
    )
    adoption = AdoptionModel.from_ratio(params["ratio"])
    pool = np.arange(0, params["n"], 4)
    problem = OIPAProblem(graph, campaign, adoption, k, pool=pool)
    mrr = MRRCollection.generate(
        graph, campaign, theta=theta, seed=rng_seed + 3
    )
    return problem, mrr


@SETTINGS
@given(params=instance_params, data=st.data())
def test_sigma_monotone_under_containment(params, data):
    problem, mrr = build_instance(params)
    pool = problem.pool.tolist()
    small_sets = [
        set(data.draw(st.lists(st.sampled_from(pool), max_size=2)))
        for _ in range(problem.num_pieces)
    ]
    extra = [
        set(data.draw(st.lists(st.sampled_from(pool), max_size=2)))
        for _ in range(problem.num_pieces)
    ]
    small = AssignmentPlan(small_sets)
    big = small.union(AssignmentPlan(extra))
    sigma_small = mrr.estimate(small.seed_lists(), problem.adoption)
    sigma_big = mrr.estimate(big.seed_lists(), problem.adoption)
    assert big.contains(small)
    assert sigma_big >= sigma_small - 1e-12


@SETTINGS
@given(params=instance_params, data=st.data())
def test_tau_dominates_sigma_everywhere(params, data):
    problem, mrr = build_instance(params)
    table = MajorantTable(problem.adoption, problem.num_pieces)
    pool = problem.pool.tolist()
    base_sets = [
        set(data.draw(st.lists(st.sampled_from(pool), max_size=1)))
        for _ in range(problem.num_pieces)
    ]
    base_plan = AssignmentPlan(base_sets)
    base_cov = CoverageState.from_plan(mrr, base_plan)
    tau = TauState(mrr, table, base_cov, problem.adoption)
    # tau at the base dominates sigma of the base plan.
    sigma_base = mrr.estimate(base_plan.seed_lists(), problem.adoption)
    assert tau.value >= sigma_base - 1e-9
    # Add a couple of random assignments: dominance persists.
    for _ in range(2):
        v = data.draw(st.sampled_from(pool))
        j = data.draw(st.integers(0, problem.num_pieces - 1))
        tau.add(v, j)
    assert tau.value >= tau.utility() - 1e-9


@SETTINGS
@given(params=instance_params)
def test_greedy_bound_monotone_in_budget(params):
    problem, mrr = build_instance(params)
    table = MajorantTable(problem.adoption, problem.num_pieces)
    space = CandidateSpace(problem.pool, problem.num_pieces)
    uppers, lowers = [], []
    for k in (1, 2, 4):
        res = compute_bound(
            mrr, table, problem.adoption, problem.empty_plan(), space, k
        )
        uppers.append(res.upper)
        lowers.append(res.lower)
    assert uppers == sorted(uppers)
    assert all(b >= a - 1e-9 for a, b in zip(lowers, lowers[1:]))


@SETTINGS
@given(params=instance_params)
def test_solver_incumbent_feasible_and_guaranteed(params):
    problem, mrr = build_instance(params)
    solver = BranchAndBoundSolver(
        problem, mrr, gap_tolerance=0.0, max_nodes=40
    )
    result = solver.solve()
    problem.validate_plan(result.plan)
    # The incumbent can never be worse than the root greedy completion.
    table = MajorantTable(problem.adoption, problem.num_pieces)
    space = CandidateSpace(problem.pool, problem.num_pieces)
    root = compute_bound(
        mrr, table, problem.adoption, problem.empty_plan(), space, problem.k
    )
    assert result.utility >= root.lower - 1e-9
    assert result.upper_bound >= result.utility - 1e-9


@SETTINGS
@given(params=instance_params, data=st.data())
def test_exclusions_are_respected_throughout(params, data):
    problem, mrr = build_instance(params)
    table = MajorantTable(problem.adoption, problem.num_pieces)
    pool = problem.pool.tolist()
    banned_v = data.draw(st.sampled_from(pool))
    banned_j = data.draw(st.integers(0, problem.num_pieces - 1))
    space = CandidateSpace(problem.pool, problem.num_pieces).without(
        banned_v, banned_j
    )
    res = compute_bound(
        mrr, table, problem.adoption, problem.empty_plan(), space, problem.k
    )
    assert (banned_v, banned_j) not in res.plan
