"""Tests for action logs and the synthetic cascade generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError, TopicError
from repro.graph.digraph import TopicGraph
from repro.topics.action_log import Action, ActionLog, generate_action_log


def make_log() -> ActionLog:
    return ActionLog(
        users=np.array([2, 0, 1]),
        items=np.array([0, 0, 1]),
        times=np.array([3.0, 1.0, 2.0]),
        num_users=3,
        num_items=2,
    )


class TestActionLog:
    def test_sorted_by_time(self):
        log = make_log()
        assert log.times.tolist() == [1.0, 2.0, 3.0]
        assert log.users.tolist() == [0, 1, 2]

    def test_len_and_iter(self):
        log = make_log()
        assert len(log) == 3
        actions = list(log)
        assert actions[0] == Action(time=1.0, user=0, item=0)

    def test_item_actions(self):
        log = make_log()
        users, times = log.item_actions(0)
        assert users.tolist() == [0, 2]
        assert times.tolist() == [1.0, 3.0]

    def test_actions_per_item(self):
        assert make_log().actions_per_item().tolist() == [2, 1]

    def test_arrays_read_only(self):
        log = make_log()
        with pytest.raises(ValueError):
            log.users[0] = 5

    def test_out_of_range_user_rejected(self):
        with pytest.raises(ParameterError):
            ActionLog(
                users=np.array([5]),
                items=np.array([0]),
                times=np.array([0.0]),
                num_users=3,
                num_items=1,
            )

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ParameterError):
            ActionLog(
                users=np.array([0, 1]),
                items=np.array([0]),
                times=np.array([0.0]),
                num_users=3,
                num_items=1,
            )

    def test_empty_log(self):
        log = ActionLog(
            users=np.array([], dtype=np.int64),
            items=np.array([], dtype=np.int64),
            times=np.array([]),
            num_users=2,
            num_items=2,
        )
        assert len(log) == 0
        assert log.actions_per_item().tolist() == [0, 0]


class TestGenerateActionLog:
    @pytest.fixture()
    def chain(self) -> TopicGraph:
        # 0 -> 1 -> 2 always succeed on topic 0; topic 1 never spreads.
        return TopicGraph.from_edges(
            3, 2, [(0, 1, {0: 1.0}), (1, 2, {0: 1.0})]
        )

    def test_deterministic_chain_cascade(self, chain):
        item_topics = np.array([[1.0, 0.0]])
        log = generate_action_log(
            chain, item_topics, seeds_per_item=1, seed=1
        )
        # Whatever the seed user, the cascade closes downstream: the
        # number of actions equals seed + reachable set.
        users = set(log.users.tolist())
        assert len(users) == len(log)
        # Action times respect cascade depth ordering.
        by_time = {int(u): float(t) for u, t in zip(log.users, log.times)}
        for u in users:
            for v in users:
                if u < v:  # deeper in the chain
                    assert by_time[u] < by_time[v]

    def test_dead_topic_produces_only_seed_actions(self, chain):
        item_topics = np.array([[0.0, 1.0]])
        log = generate_action_log(
            chain, item_topics, seeds_per_item=2, seed=2
        )
        assert len(log) == 2  # nothing propagates on topic 1

    def test_multiple_items(self, chain):
        item_topics = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        log = generate_action_log(chain, item_topics, seeds_per_item=1, seed=3)
        assert log.num_items == 3
        assert set(log.items.tolist()) <= {0, 1, 2}

    def test_shape_validation(self, chain):
        with pytest.raises(TopicError):
            generate_action_log(chain, np.ones((2, 3)), seed=4)

    def test_jitter_bounds_validated(self, chain):
        with pytest.raises(ParameterError):
            generate_action_log(
                chain, np.array([[1.0, 0.0]]), time_jitter=0.7, seed=5
            )

    def test_deterministic_given_seed(self, chain):
        item_topics = np.array([[1.0, 0.0]])
        a = generate_action_log(chain, item_topics, seeds_per_item=1, seed=6)
        b = generate_action_log(chain, item_topics, seeds_per_item=1, seed=6)
        assert a.users.tolist() == b.users.tolist()
        assert a.times.tolist() == b.times.tolist()
