"""Tests for the dataset registry and synthetic pipelines.

Pipelines run at tiny scales here; the statistical shape assertions
(power-law degrees, topic sparsity) are what the paper's Table III
substitution rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.registry import (
    DATASET_SPECS,
    clear_dataset_cache,
    load_dataset,
)
from repro.datasets.synth import (
    build_dblp_like,
    build_lastfm_like,
    build_tweet_like,
)
from repro.exceptions import DatasetError


class TestRegistry:
    def test_specs_present(self):
        assert set(DATASET_SPECS) == {"lastfm", "dblp", "tweet"}

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError, match="unknown"):
            load_dataset("facebook")

    def test_caching_returns_same_object(self):
        clear_dataset_cache()
        a = load_dataset("lastfm", scale=0.1, seed=1)
        b = load_dataset("lastfm", scale=0.1, seed=1)
        assert a is b

    def test_cache_distinguishes_scale_and_seed(self):
        clear_dataset_cache()
        a = load_dataset("lastfm", scale=0.1, seed=1)
        b = load_dataset("lastfm", scale=0.1, seed=2)
        assert a is not b

    def test_bundle_fields(self):
        clear_dataset_cache()
        bundle = load_dataset("lastfm", scale=0.1, seed=3)
        assert bundle.name == "lastfm"
        assert bundle.graph.n >= 50
        assert bundle.build_seconds >= 0
        assert len(bundle.table3_row()) == 9

    def test_clear_cache_forces_rebuild(self):
        clear_dataset_cache()
        a = load_dataset("lastfm", scale=0.1, seed=4)
        clear_dataset_cache()
        b = load_dataset("lastfm", scale=0.1, seed=4)
        assert a is not b
        assert a.graph == b.graph  # deterministic rebuild


class TestLastfmPipeline:
    def test_structure_and_learning(self):
        graph, meta = build_lastfm_like(scale=0.08, seed=5, num_items=60)
        assert graph.num_topics == 20
        assert meta["pipeline"] == "tic-log"
        assert meta["actions"] > 0
        # Learned graphs stay sparse.
        assert graph.tp_topics.size / graph.num_edges < 6.0

    def test_deterministic(self):
        g1, _ = build_lastfm_like(scale=0.08, seed=6, num_items=40)
        g2, _ = build_lastfm_like(scale=0.08, seed=6, num_items=40)
        assert g1 == g2


class TestDblpPipeline:
    def test_structure(self):
        graph, meta = build_dblp_like(scale=0.01, seed=7)
        assert graph.num_topics == 9
        assert meta["pipeline"] == "fields"
        assert graph.num_edges > graph.n  # co-author graph is dense-ish
        # Sparse per-edge fields.
        assert graph.tp_topics.size / graph.num_edges < 5.0

    def test_probabilities_bounded(self):
        graph, _ = build_dblp_like(scale=0.01, seed=8)
        assert graph.tp_probs.max() <= 1.0
        assert graph.tp_probs.min() >= 0.0


class TestTweetPipeline:
    def test_structure(self):
        graph, meta = build_tweet_like(
            scale=0.01, seed=9, vocab_size=60, lda_sample_docs=150
        )
        assert graph.num_topics == 50
        assert meta["pipeline"] == "lda-hashtags"
        # The defining property: extreme edge sparsity (~1-2 topics/edge
        # and average degree near 1.2).
        avg_degree = graph.num_edges / graph.n
        assert avg_degree < 3.0
        assert graph.tp_topics.size / max(graph.num_edges, 1) < 2.5

    def test_scale_validation(self):
        with pytest.raises(DatasetError):
            build_tweet_like(scale=-1.0)


class TestPowerLawShape:
    def test_lastfm_heavy_tail(self):
        graph, _ = build_lastfm_like(scale=0.3, seed=10, num_items=30)
        degree = np.asarray(graph.out_degrees() + graph.in_degrees())
        # Heavy tail: the max degree is far above the median.
        assert degree.max() >= 5 * max(np.median(degree), 1)
