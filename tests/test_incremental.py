"""The incremental subsystem: deltas, keyed sampling, warm re-solve.

The three contracts this suite pins:

1. **Append = cold.** Growing theta through ``Session.update`` appends
   keyed shards bit-identical to a cold ``sample_incremental`` at the
   larger theta — across memory/disk stores and worker counts.
2. **Update = cold on the new graph.** After a delta, the updated
   collection (kept shards + regenerated holes) is bit-identical to a
   cold keyed generate on the post-delta graph, and only delta-touched
   shards were resampled (asserted via the ``IncrementalTrace`` and the
   kept shard files' identity on disk).
3. **Warm = cold solutions.** The warm-started ``celf-mrr`` re-solve
   (and the BAB incumbent warm start) select exactly the plan a cold
   solve on the same collection would.
"""

from __future__ import annotations

import hashlib
import os
import time

import numpy as np
import pytest

from repro.api import Session, available_solvers
from repro.core.bab import solve_bab
from repro.exceptions import DeltaError, SolverError
from repro.graph.digraph import TopicGraph
from repro.graph.generators import (
    build_topic_graph,
    preferential_attachment_digraph,
)
from repro.incremental import (
    EdgeOp,
    GraphDelta,
    IncrementalTrace,
    apply_delta,
    piece_dirty_heads,
)
from repro.incremental.sampler import (
    incremental_fingerprint,
    keyed_block_roots,
    keyed_roots,
    keyed_task_seed,
)
from repro.incremental.warm import (
    WarmGains,
    celf_assign,
    prime_incumbent,
    staleness_bound,
)
from repro.runtime import Runtime
from repro.sampling.store import ShardStore, store_fingerprint
from repro.topics.distributions import Campaign, unit_piece


def collection_digest(mrr) -> str:
    """Content digest over roots + every per-piece inverted index."""
    h = hashlib.sha256(np.ascontiguousarray(mrr.roots).tobytes())
    for j in range(mrr.num_pieces):
        ptr, nodes = mrr.index_arrays(j)
        h.update(np.ascontiguousarray(ptr).tobytes())
        h.update(np.ascontiguousarray(nodes).tobytes())
    return h.hexdigest()


def make_session(graph, campaign, *, runtime=None, k=4, seed=13) -> Session:
    return Session(graph, campaign, k=k, seed=seed, runtime=runtime)


@pytest.fixture()
def session(small_random_graph, small_campaign) -> Session:
    return make_session(small_random_graph, small_campaign)


# -- deltas ----------------------------------------------------------------


class TestGraphDelta:
    def test_payload_round_trip(self):
        delta = GraphDelta(
            (
                EdgeOp("add", 0, 5, topics={1: 0.4, 0: 0.2}),
                EdgeOp("remove", 2, 3),
                EdgeOp("reweight", 1, 4, topics={2: 0.9}),
            )
        )
        again = GraphDelta.from_payload(delta.to_payload())
        assert again == delta
        assert again.fingerprint() == delta.fingerprint()

    def test_compose_is_concatenation(self):
        a = GraphDelta((EdgeOp("remove", 0, 1),))
        b = GraphDelta((EdgeOp("add", 0, 1, topics={0: 0.5}),))
        assert a.compose(b).ops == a.ops + b.ops
        with pytest.raises(DeltaError, match="compose"):
            a.compose({"ops": []})

    @pytest.mark.parametrize(
        "kwargs, fragment",
        [
            (dict(op="mutate", src=0, dst=1), "unknown edge op"),
            (dict(op="add", src=2, dst=2, topics={0: 0.5}), "self-loop"),
            (dict(op="remove", src=-1, dst=1), "negative"),
            (dict(op="remove", src=0, dst=1, topics={0: 0.5}), "remove"),
            (dict(op="add", src=0, dst=1), "needs a topic vector"),
            (dict(op="add", src=0, dst=1, topics={0: 1.5}), "outside"),
            (
                dict(op="add", src=0, dst=1, topics=[(0, 0.5), (0, 0.6)]),
                "duplicate topic",
            ),
        ],
    )
    def test_bad_ops_raise(self, kwargs, fragment):
        with pytest.raises(DeltaError, match=fragment):
            EdgeOp(**kwargs)

    def test_apply_matches_from_scratch_fingerprint(self):
        edges = [(0, 1, {0: 0.7}), (1, 2, {1: 0.5}), (2, 3, {0: 0.3})]
        graph = TopicGraph.from_edges(4, 2, edges)
        updated = apply_delta(graph, GraphDelta((EdgeOp("remove", 1, 2),)))
        scratch = TopicGraph.from_edges(4, 2, [edges[0], edges[2]])
        assert updated.fingerprint() == scratch.fingerprint()
        # zero-op delta returns the same graph object
        assert apply_delta(graph, GraphDelta(())) is graph

    def test_apply_validates_against_live_state(self):
        graph = TopicGraph.from_edges(3, 1, [(0, 1, {0: 0.5})])
        with pytest.raises(DeltaError, match="already exists"):
            apply_delta(graph, GraphDelta((EdgeOp("add", 0, 1, topics={0: 0.2}),)))
        with pytest.raises(DeltaError, match="does not exist"):
            apply_delta(graph, GraphDelta((EdgeOp("remove", 1, 0),)))
        with pytest.raises(DeltaError, match="outside vertex range"):
            apply_delta(graph, GraphDelta((EdgeOp("remove", 0, 7),)))
        # remove-then-add of one edge is a legal rewrite
        rewritten = apply_delta(
            graph,
            GraphDelta(
                (
                    EdgeOp("remove", 0, 1),
                    EdgeOp("add", 0, 1, topics={0: 0.9}),
                )
            ),
        )
        assert rewritten.has_edge(0, 1)

    def test_dirty_heads_structural_ops_dirty_every_piece(self):
        graph = TopicGraph.from_edges(
            4, 2, [(0, 1, {0: 1.0}), (1, 2, {0: 1.0})]
        )
        campaign = Campaign([unit_piece(0, 2), unit_piece(1, 2)])
        dirty = piece_dirty_heads(
            graph, campaign, GraphDelta((EdgeOp("remove", 1, 2),))
        )
        assert [d.tolist() for d in dirty] == [[2], [2]]

    def test_dirty_heads_reweight_filters_clean_pieces(self):
        # Edge (0, 1) carries both topics; the reweight changes only
        # topic 0's probability, so the unit piece on topic 1 projects
        # the same clipped probability and stays clean.
        graph = TopicGraph.from_edges(3, 2, [(0, 1, {0: 0.5, 1: 0.4})])
        campaign = Campaign([unit_piece(0, 2), unit_piece(1, 2)])
        delta = GraphDelta(
            (EdgeOp("reweight", 0, 1, topics={0: 0.9, 1: 0.4}),)
        )
        dirty = piece_dirty_heads(graph, campaign, delta)
        assert dirty[0].tolist() == [1]
        assert dirty[1].tolist() == []


# -- the keyed sampler -----------------------------------------------------


class TestKeyedSampler:
    def test_roots_are_prefix_consistent_across_theta(self):
        small = keyed_roots(99, 1000, 700, 256)
        large = keyed_roots(99, 1000, 1500, 256)
        assert np.array_equal(large[:700], small)

    def test_block_roots_depend_only_on_coordinates(self):
        a = keyed_block_roots(7, 100, 256, 3)
        b = keyed_block_roots(7, 100, 256, 3)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, keyed_block_roots(7, 100, 256, 4))
        assert not np.array_equal(a, keyed_block_roots(8, 100, 256, 3))

    def test_task_seeds_distinct_per_coordinate(self):
        spawned = {
            tuple(keyed_task_seed(5, j, b).generate_state(2))
            for j in range(3)
            for b in range(4)
        }
        assert len(spawned) == 12

    def test_fingerprint_is_scheme_tagged(self):
        roots = np.zeros(10, dtype=np.int64)
        base = store_fingerprint(100, roots, ["ic"], "python")
        keyed = incremental_fingerprint(
            100, roots, ["ic"], "python", entropy=42
        )
        assert keyed.startswith(base)
        assert "inc-entropy=42" in keyed
        assert keyed != incremental_fingerprint(
            100, roots, ["ic"], "python", entropy=43
        )

    def test_bad_theta_raises(self):
        from repro.exceptions import SamplingError

        with pytest.raises(SamplingError):
            keyed_roots(1, 10, 0, 256)


# -- theta growth by append ------------------------------------------------


STORE_MATRIX = [
    ("memory", 1),
    ("memory", 4),
    ("disk", 1),
    ("disk", 4),
]


class TestThetaAppend:
    @pytest.mark.parametrize("store, workers", STORE_MATRIX)
    def test_append_is_bit_identical_to_cold(
        self, small_random_graph, small_campaign, tmp_path, store, workers
    ):
        def runtime(tag):
            kwargs = {"workers": workers}
            if store == "disk":
                kwargs["store"] = "disk"
                kwargs["shard_dir"] = str(tmp_path / tag)
            else:
                kwargs["store"] = "memory"
            return Runtime(**kwargs)

        grown = make_session(
            small_random_graph, small_campaign, runtime=runtime("grow")
        )
        grown.sample_incremental(500)
        grown.solve("celf-mrr")
        update = grown.update(GraphDelta(()), theta=900)

        cold = make_session(
            small_random_graph, small_campaign, runtime=runtime("cold")
        )
        cold_mrr = cold.sample_incremental(900)

        assert collection_digest(grown.mrr) == collection_digest(cold_mrr)
        assert update.trace.theta_new == 900
        assert update.trace.shards_appended > 0
        assert update.trace.shards_invalidated == 0
        # the warm plan equals the cold solve on the grown collection
        cold_result = cold.solve("celf-mrr")
        assert update.plan == cold_result.plan
        assert update.estimate == pytest.approx(cold_result.estimate)
        grown.close()
        cold.close()

    def test_append_only_samples_new_and_tail_shards(
        self, small_random_graph, small_campaign
    ):
        session = make_session(small_random_graph, small_campaign)
        session.sample_incremental(512)  # exact multiple of block 256
        old_blocks = session.mrr.store.num_blocks
        pieces = session.num_pieces
        update = session.update(GraphDelta(()), theta=1024)
        assert update.trace.shards_invalidated == 0
        # no partial tail at 512, so resampled == appended exactly
        assert update.trace.shards_resampled == update.trace.shards_appended
        assert update.trace.shards_kept == pieces * old_blocks


# -- delta invalidation ----------------------------------------------------


def low_frequency_add_delta(session) -> tuple[GraphDelta, set]:
    """An edge-add whose head is rare in the sampled RR sets.

    Picks the pool-external vertex with the lowest total index
    frequency, adds an edge onto it from the next vertex, and returns
    the delta together with the exactly-expected invalid (piece, block)
    pairs per the store's touch summaries.
    """
    mrr = session.mrr
    freq = sum(
        mrr.vertex_frequencies(j).astype(np.int64)
        for j in range(session.num_pieces)
    )
    # rarest vertex that actually occurs: a zero-frequency head would
    # (correctly) touch no shard at all, which tests nothing
    occurring = np.flatnonzero(freq > 0)
    head = int(occurring[np.argmin(freq[occurring])])
    src = (head + 1) % session.graph.n
    if session.graph.has_edge(src, head):
        src = (head + 2) % session.graph.n
    delta = GraphDelta((EdgeOp("add", src, head, topics={0: 0.5}),))
    dirty = piece_dirty_heads(session.graph, session.campaign, delta)
    expected = {
        (j, b)
        for j in range(session.num_pieces)
        for b in mrr.store.blocks_touching(j, dirty[j])
    }
    return delta, expected


class TestDeltaInvalidation:
    @pytest.fixture()
    def big_session(self, tmp_path):
        # Large sparse graph: a low-frequency head leaves most shards
        # untouched, so the update genuinely reuses work.
        src, dst = preferential_attachment_digraph(3000, 2, seed=31)
        graph = build_topic_graph(
            3000, src, dst, 3, topics_per_edge=1.5, prob_mean=0.1, seed=32
        )
        campaign = Campaign([unit_piece(z, 3) for z in range(2)])
        runtime = Runtime(
            store="disk", shard_dir=str(tmp_path / "shards"), workers=2
        )
        session = make_session(graph, campaign, runtime=runtime)
        session.sample_incremental(1024)
        yield session
        session.close()

    def test_update_regenerates_exactly_touched_shards(self, big_session):
        session = big_session
        session.solve("celf-mrr")
        delta, expected = low_frequency_add_delta(session)
        assert expected, "delta must touch at least one shard"
        total = session.num_pieces * session.mrr.store.num_blocks
        assert len(expected) < total, "pick a rarer head for a real test"

        shard_dir = session.mrr.store.shard_dir

        def shard_mtimes():
            return {
                name: os.stat(os.path.join(shard_dir, name)).st_mtime_ns
                for name in os.listdir(shard_dir)
                if name.startswith("piece") and name.endswith(".npz")
            }

        before = shard_mtimes()
        update = session.update(delta)
        trace = update.trace
        assert isinstance(trace, IncrementalTrace)
        assert trace.shards_invalidated == len(expected)
        assert trace.shards_resampled == len(expected)
        assert trace.shards_kept == total - len(expected)
        assert 0 < trace.kept_fraction < 1

        # kept shard files were not rewritten
        invalid_names = {
            f"piece{j:03d}_block{b:05d}.npz" for j, b in expected
        }
        after = shard_mtimes()
        for name, mtime in before.items():
            if name not in invalid_names:
                assert after[name] == mtime, f"kept shard {name} rewritten"

        # and the result equals a cold keyed generate on the new graph
        # (session.graph is already the post-delta graph after update)
        cold = make_session(session.graph, session.campaign)
        cold_mrr = cold.sample_incremental(1024)
        assert collection_digest(session.mrr) == collection_digest(cold_mrr)
        cold_result = cold.solve("celf-mrr")
        assert update.plan == cold_result.plan
        cold.close()

    def test_update_requires_a_lineage(self, session):
        with pytest.raises(SolverError, match="sample_incremental"):
            session.update(GraphDelta(()))

    def test_update_cannot_shrink_theta(self, session):
        session.sample_incremental(400)
        with pytest.raises(SolverError, match="shrink"):
            session.update(GraphDelta(()), theta=300)


# -- artifact-hosted updates (copy-on-write) -------------------------------


class TestHostedUpdate:
    def test_cow_update_commits_under_the_new_cold_key(
        self, small_random_graph, small_campaign, tmp_path
    ):
        runtime = Runtime(store="disk", artifacts=str(tmp_path / "art"))
        session = make_session(
            small_random_graph, small_campaign, runtime=runtime
        )
        session.sample_incremental(500)
        assert session._inc.hosted
        old_dir = session.mrr.store.shard_dir

        delta = GraphDelta((EdgeOp("add", 57, 58, topics={0: 0.3}),))
        session.solve("celf-mrr")
        session.update(delta, theta=800)
        new_dir = session.mrr.store.shard_dir
        assert new_dir != old_dir

        # the original cached artifact was never mutated
        old = ShardStore.open(old_dir)
        assert old.theta == 500
        old.close()

        # a fresh session cold-opening the post-delta graph at the new
        # theta is served wholesale from the COW commit
        fresh = make_session(
            apply_delta(small_random_graph, delta),
            small_campaign,
            runtime=runtime,
        )
        mrr = fresh.sample_incremental(800)
        assert fresh.stage_trace.actions("sample") == ["hit"]
        assert collection_digest(mrr) == collection_digest(session.mrr)
        fresh.close()
        session.close()


# -- warm-started solving --------------------------------------------------


class TestWarmSolve:
    def test_celf_mrr_is_registered(self):
        assert "celf-mrr" in available_solvers()

    def test_warm_celf_selects_the_cold_plan(self, session):
        session.sample_incremental(600)
        cold_plan, record, cold_diag = celf_assign(
            session.problem, session.mrr
        )
        warm_plan, _, warm_diag = celf_assign(
            session.problem, session.mrr, warm=record, margin=0.0
        )
        assert warm_plan == cold_plan
        assert warm_diag["warm"] is True
        # a fresh record on the same collection is exact: the warm caps
        # can only skip evaluations, never add them
        assert warm_diag["evaluations"] <= cold_diag["evaluations"]

    def test_warm_gains_validate_shapes(self, session):
        session.sample_incremental(400)
        pool = session.problem.pool
        with pytest.raises(SolverError, match="shape"):
            WarmGains(pool, np.zeros((2, pool.size + 1)))
        record = WarmGains(np.array([0, 1]), np.zeros((2, 2)))
        with pytest.raises(SolverError, match="different pool"):
            celf_assign(session.problem, session.mrr, warm=record)

    def test_staleness_bound_values(self):
        assert staleness_bound(100, 10, 10, 0, 0) == 0.0
        # pure in-place change: changed/new + changed/old
        assert staleness_bound(100, 10, 10, 1, 0) == pytest.approx(20.0)
        # pure growth: appended/new + rescaling of kept rows
        assert staleness_bound(100, 10, 20, 0, 10) == pytest.approx(100.0)
        with pytest.raises(SolverError, match="theta pair"):
            staleness_bound(100, 0, 10, 0, 0)
        with pytest.raises(SolverError, match="theta pair"):
            staleness_bound(100, 10, 5, 0, 0)

    def test_update_reuses_the_previous_method(self, session):
        session.sample_incremental(400)
        session.solve("local-search")
        update = session.update(GraphDelta(()))
        assert update.result.method == "local-search"


class TestBabWarmStart:
    def test_incumbent_must_be_valid(self, small_problem, small_mrr):
        from repro.core.plan import AssignmentPlan

        bogus = AssignmentPlan([[1], [], []])  # 1 is not in the pool
        with pytest.raises(SolverError):
            solve_bab(small_problem, small_mrr, incumbent=bogus)

    def test_incumbent_does_not_change_the_answer(
        self, small_problem, small_mrr
    ):
        cold = solve_bab(small_problem, small_mrr)
        warm = solve_bab(small_problem, small_mrr, incumbent=cold.plan)
        assert warm.utility == pytest.approx(cold.utility)
        assert warm.plan == cold.plan

    def test_prime_incumbent_scores_the_plan(self, small_problem, small_mrr):
        cold = solve_bab(small_problem, small_mrr)
        lower = prime_incumbent(small_problem, small_mrr, cold.plan)
        assert lower == pytest.approx(cold.utility)


# -- service integration ---------------------------------------------------


BASE_SPEC = {
    "dataset": "lastfm",
    "scale": 0.08,
    "theta": 300,
    "k": 3,
    "pieces": 2,
    "method": "celf-mrr",
    "evaluate": False,
}


class TestServiceUpdates:
    def make_queue(self, tmp_path, **kwargs):
        from repro.service import JobQueue

        kwargs.setdefault("workers", 2)
        kwargs.setdefault("runtime", Runtime(artifacts=str(tmp_path / "art")))
        kwargs.setdefault("spool_dir", None)
        return JobQueue(**kwargs)

    @staticmethod
    def missing_edge():
        """A (src, dst) pair absent from the base spec's graph."""
        probe = Session.from_dataset(
            BASE_SPEC["dataset"],
            pieces=BASE_SPEC["pieces"],
            scale=BASE_SPEC["scale"],
            k=BASE_SPEC["k"],
            seed=BASE_SPEC.get("seed", 0),
        )
        with probe:
            graph = probe.graph
            dst = next(
                d for d in range(1, graph.n) if not graph.has_edge(0, d)
            )
        return 0, dst

    def test_update_job_runs_the_incremental_path(self, tmp_path):
        from repro.exceptions import ConfigError

        src, dst = self.missing_edge()
        with self.make_queue(tmp_path) as queue:
            base = queue.submit(dict(BASE_SPEC))
            base = queue.wait(base.id, timeout=300)
            assert base.state == "done"
            delta = {"ops": [{"op": "add", "src": src, "dst": dst,
                              "topics": {"0": 0.4}}]}
            record = queue.submit_update(base.id, {"delta": delta})
            assert record.spec.update_of == base.id
            record = queue.wait(record.id, timeout=300)
            assert record.state == "done", record.error
            inc = record.result["incremental"]
            assert inc["theta_old"] == BASE_SPEC["theta"]
            assert inc["shards_invalidated"] > 0
            # chained update composes the deltas into one spec
            delta2 = {"ops": [{"op": "remove", "src": src, "dst": dst}]}
            chained = queue.submit_update(record.id, {"delta": delta2})
            assert len(chained.spec.delta["ops"]) == 2
            with pytest.raises(ConfigError, match="missing 'delta'"):
                queue.submit_update(base.id, {})
            with pytest.raises(ConfigError, match="unknown update field"):
                queue.submit_update(base.id, {"delta": delta, "theta": 1})
            with pytest.raises(KeyError):
                queue.submit_update("job-missing", {"delta": delta})
            chained = queue.wait(chained.id, timeout=300)
            assert chained.state == "done", chained.error

    def test_http_update_route(self, tmp_path):
        import json as jsonlib
        import threading
        import urllib.request

        from repro.service import create_server

        queue = self.make_queue(tmp_path)
        server = create_server(queue)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            req = urllib.request.Request(
                f"{server.url}/v1/jobs",
                data=jsonlib.dumps(BASE_SPEC).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req) as resp:
                base = jsonlib.loads(resp.read())
            queue.wait(base["id"], timeout=300)
            body = {"delta": {"ops": [{"op": "remove", "src": 0, "dst": 1}]}}
            req = urllib.request.Request(
                f"{server.url}/v1/jobs/{base['id']}/update",
                data=jsonlib.dumps(body).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req) as resp:
                assert resp.status == 201
                record = jsonlib.loads(resp.read())
            assert record["spec"]["update_of"] == base["id"]
            assert record["spec"]["delta"] == body["delta"]
        finally:
            server.close()


class TestJobTTL:
    def make_record(self, job_id, state, finished_at):
        from repro.service import JobRecord, JobSpec

        record = JobRecord(id=job_id, spec=JobSpec.from_payload(BASE_SPEC))
        record.state = state
        if finished_at is not None:
            record.finished_at = finished_at
        return record

    def test_sweep_evicts_only_old_terminal_records(self, tmp_path):
        from repro.service import JobQueue, JobStore

        spool = str(tmp_path / "spool")
        queue = JobQueue(
            workers=1, runtime=Runtime(), spool_dir=spool, job_ttl=100.0
        )
        try:
            now = time.time()
            old_done = self.make_record("job-old", "done", now - 1000)
            fresh_done = self.make_record("job-new", "done", now - 1)
            running = self.make_record("job-run", "running", None)
            for record in (old_done, fresh_done, running):
                queue._records[record.id] = record
                queue.store.save(record)
            assert queue.sweep() == 1
            assert "job-old" not in queue._records
            assert "job-new" in queue._records
            assert "job-run" in queue._records
            # the spool file is gone too — a restart stays swept
            recovered = JobStore(spool).recover()
            assert "job-old" not in recovered
            assert queue.metrics()["jobs_evicted"] == 1
        finally:
            queue.close()

    def test_no_ttl_means_no_eviction(self, tmp_path):
        from repro.service import JobQueue

        queue = JobQueue(workers=1, runtime=Runtime(), spool_dir=None)
        try:
            record = self.make_record("job-x", "done", time.time() - 1e9)
            queue._records[record.id] = record
            assert queue.sweep() == 0
            assert "job-x" in queue._records
        finally:
            queue.close()

    def test_bad_ttl_rejected(self):
        from repro.exceptions import ConfigError
        from repro.service import JobQueue

        with pytest.raises(ConfigError, match="job_ttl"):
            JobQueue(workers=1, spool_dir=None, job_ttl=-5)
