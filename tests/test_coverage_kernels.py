"""The vectorized inverted-index coverage kernels vs their loop references.

The CSR inverted index (vertex -> RR-set ids) already powers per-vertex
lookups; this suite pins the *batched* kernels layered on it:

* :func:`repro.core.coverage.coverage_gains` must equal the per-vertex
  loop ``(~covered[samples_containing(piece, v)]).sum()`` on random MRR
  collections and random covered masks (property-tested);
* greedy max-coverage seed sets must be identical across the lazy
  (CELF) path, the dense vectorized path, and the historical
  per-candidate loop reimplemented here as the oracle;
* :meth:`TauState.marginal_gains` must match the scalar
  :meth:`TauState.marginal_gain` per candidate, with identical
  evaluation accounting, and ``compute_bound``'s lazy/plain variants
  must keep selecting the same assignments.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.compute_bound import CandidateSpace, compute_bound
from repro.core.coverage import CoverageState, coverage_gains
from repro.core.tangent import MajorantTable
from repro.core.upper_bound import TauState
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import SolverError
from repro.graph.generators import (
    build_topic_graph,
    preferential_attachment_digraph,
)
from repro.im.ris import max_coverage_seeds
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import Campaign

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

collection_params = st.fixed_dictionaries(
    {
        "n": st.integers(10, 60),
        "pieces": st.integers(1, 3),
        "theta": st.integers(20, 150),
        "seed": st.integers(0, 10_000),
    }
)


def build_collection(params) -> MRRCollection:
    src, dst = preferential_attachment_digraph(
        params["n"], 3, seed=params["seed"]
    )
    graph = build_topic_graph(
        params["n"], src, dst, 4,
        topics_per_edge=2.0, prob_mean=0.25, seed=params["seed"] + 1,
    )
    campaign = Campaign.sample_unit(params["pieces"], 4, seed=params["seed"] + 2)
    return MRRCollection.generate(
        graph, campaign, theta=params["theta"], seed=params["seed"] + 3
    )


def loop_gains(mrr, piece, pool, covered) -> np.ndarray:
    """The historical per-candidate marginal-gain loop (the oracle)."""
    return np.array(
        [
            int((~covered[mrr.samples_containing(piece, int(v))]).sum())
            for v in pool
        ],
        dtype=np.int64,
    )


def loop_greedy(mrr, piece, pool, k) -> list[int]:
    """The pre-kernel greedy max coverage, kept verbatim as the oracle."""
    covered = np.zeros(mrr.theta, dtype=bool)
    seeds: list[int] = []
    chosen: set[int] = set()
    for _ in range(k):
        best_gain, best_v = 0, None
        for v in pool:
            v = int(v)
            if v in chosen:
                continue
            gain = int((~covered[mrr.samples_containing(piece, v)]).sum())
            if gain > best_gain:
                best_gain, best_v = gain, v
        if best_v is None:
            break
        covered[mrr.samples_containing(piece, best_v)] = True
        chosen.add(best_v)
        seeds.append(best_v)
    return seeds


class TestCoverageGainsKernel:
    @given(params=collection_params)
    @SETTINGS
    def test_matches_loop_reference(self, params):
        mrr = build_collection(params)
        rng = np.random.default_rng(params["seed"])
        pool = np.arange(mrr.n, dtype=np.int64)
        for piece in range(mrr.num_pieces):
            covered = rng.random(mrr.theta) < 0.3
            assert np.array_equal(
                coverage_gains(mrr, piece, pool, covered),
                loop_gains(mrr, piece, pool, covered),
            )

    def test_empty_pool_and_empty_index(self, small_mrr):
        covered = np.zeros(small_mrr.theta, dtype=bool)
        empty = coverage_gains(
            small_mrr, 0, np.zeros(0, dtype=np.int64), covered
        )
        assert empty.size == 0

    def test_validation(self, small_mrr):
        covered = np.zeros(small_mrr.theta, dtype=bool)
        with pytest.raises(SolverError, match="vertex"):
            coverage_gains(small_mrr, 0, np.array([small_mrr.n]), covered)
        with pytest.raises(SolverError, match="covered"):
            coverage_gains(
                small_mrr, 0, np.array([0]), np.zeros(3, dtype=bool)
            )

    @given(params=collection_params)
    @SETTINGS
    def test_coverage_state_gains_and_add_many(self, params):
        """Batch state ops equal the per-call add/newly_covered path."""
        mrr = build_collection(params)
        rng = np.random.default_rng(params["seed"] + 9)
        scalar_state, batch_state = CoverageState(mrr), CoverageState(mrr)
        for piece in range(mrr.num_pieces):
            picks = rng.integers(0, mrr.n, size=4)
            for v in picks:
                scalar_state.add(int(v), piece)
            batch_state.add_many(picks, piece)
        assert np.array_equal(scalar_state.covered, batch_state.covered)
        assert np.array_equal(scalar_state.counts, batch_state.counts)
        pool = np.arange(mrr.n, dtype=np.int64)
        for piece in range(mrr.num_pieces):
            expected = np.array(
                [
                    scalar_state.newly_covered(int(v), piece).size
                    for v in pool
                ],
                dtype=np.int64,
            )
            kernel = coverage_gains(
                mrr, piece, pool, batch_state.covered[:, piece]
            )
            assert np.array_equal(kernel, expected)


class TestGreedyEquivalence:
    @given(params=collection_params)
    @SETTINGS
    def test_all_three_selections_identical(self, params):
        """Lazy CELF, dense vectorized, and the loop oracle agree."""
        mrr = build_collection(params)
        pool = np.arange(mrr.n, dtype=np.int64)
        k = 4
        lazy, s_lazy = max_coverage_seeds(mrr, 0, pool, k, lazy=True)
        dense, s_dense = max_coverage_seeds(mrr, 0, pool, k, lazy=False)
        oracle = loop_greedy(mrr, 0, pool, k)
        assert lazy == dense == oracle
        assert s_lazy == pytest.approx(s_dense)

    def test_pinned_instance_seeds(self):
        """A pinned seeded instance: the refactor must not move seeds."""
        mrr = build_collection(
            {"n": 50, "pieces": 2, "theta": 120, "seed": 2024}
        )
        pool = np.arange(0, 50, 2, dtype=np.int64)
        for piece in range(2):
            lazy, _ = max_coverage_seeds(mrr, piece, pool, 5, lazy=True)
            dense, _ = max_coverage_seeds(mrr, piece, pool, 5, lazy=False)
            assert lazy == dense == loop_greedy(mrr, piece, pool, 5)


class TestTauKernel:
    def _tau(self, mrr, adoption):
        table = MajorantTable(adoption, mrr.num_pieces)
        base = CoverageState(mrr)
        base.add(0, 0)
        return TauState(mrr, table, base, adoption)

    @given(params=collection_params)
    @SETTINGS
    def test_marginal_gains_match_scalar(self, params):
        mrr = build_collection(params)
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        tau_vec = self._tau(mrr, adoption)
        tau_ref = self._tau(mrr, adoption)
        pool = np.arange(mrr.n, dtype=np.int64)
        for piece in range(mrr.num_pieces):
            vec = tau_vec.marginal_gains(pool, piece)
            ref = np.array(
                [tau_ref.marginal_gain(int(v), piece) for v in pool]
            )
            np.testing.assert_allclose(vec, ref, rtol=1e-12, atol=1e-15)
        assert tau_vec.evaluations == tau_ref.evaluations

    def test_validation(self, small_mrr):
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        tau = self._tau(small_mrr, adoption)
        with pytest.raises(SolverError, match="piece"):
            tau.marginal_gains(np.array([0]), small_mrr.num_pieces)
        with pytest.raises(SolverError, match="vertex"):
            tau.marginal_gains(np.array([-2]), 0)

    @given(params=collection_params)
    @SETTINGS
    def test_compute_bound_lazy_matches_plain(self, params):
        """The kernel-backed greedies still select identical plans."""
        mrr = build_collection(params)
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        table = MajorantTable(adoption, mrr.num_pieces)
        pool = np.arange(0, mrr.n, 3, dtype=np.int64)
        space = CandidateSpace(pool, mrr.num_pieces)
        from repro.core.plan import AssignmentPlan

        empty = AssignmentPlan([set() for _ in range(mrr.num_pieces)])
        lazy = compute_bound(
            mrr, table, adoption, empty, space, k=3, lazy=True
        )
        plain = compute_bound(
            mrr, table, adoption, empty, space, k=3, lazy=False
        )
        assert lazy.plan.seed_sets == plain.plan.seed_sets
        assert lazy.upper == pytest.approx(plain.upper)
        assert lazy.lower == pytest.approx(plain.lower)
        assert lazy.evaluations <= plain.evaluations
