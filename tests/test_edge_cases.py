"""Cross-cutting edge cases and failure injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.plan import AssignmentPlan
from repro.core.problem import OIPAProblem
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import SamplingError, SolverError
from repro.graph.digraph import TopicGraph
from repro.graph.io import load_topic_graph, save_topic_graph
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import Campaign, unit_piece


class TestZeroTopicEdges:
    """Edges may carry an empty topic vector (no influence at all)."""

    def test_construction_and_projection(self):
        g = TopicGraph.from_edges(3, 2, [(0, 1, {}), (1, 2, {0: 0.5})])
        assert g.num_edges == 2
        p = g.piece_probabilities(np.array([1.0, 0.0]))
        np.testing.assert_allclose(p, [0.0, 0.5])

    def test_io_roundtrip_with_empty_entries(self, tmp_path):
        g = TopicGraph.from_edges(3, 2, [(0, 1, {}), (1, 2, {1: 0.25})])
        path = tmp_path / "g.tsv"
        save_topic_graph(g, path)
        assert load_topic_graph(path) == g


class TestDegenerateInstances:
    def test_isolated_vertices_instance(self):
        """A graph with no edges: every plan scores only its seeds."""
        g = TopicGraph.from_edges(6, 2, [])
        campaign = Campaign([unit_piece(0, 2), unit_piece(1, 2)])
        adoption = AdoptionModel(alpha=1.0, beta=1.0)
        mrr = MRRCollection.generate(g, campaign, theta=600, seed=71)
        # Each RR set is exactly its root.
        assert mrr.rr_set_sizes(0).max() == 1
        est = mrr.estimate([[0], [0]], adoption)
        # Only samples rooted at vertex 0 are covered (both pieces).
        expected = (
            6
            / 600
            * adoption.probability(2)
            * int((mrr.roots == 0).sum())
        )
        assert est == pytest.approx(expected)

    def test_single_vertex_pool(self):
        g = TopicGraph.from_edges(4, 1, [(0, 1, {0: 1.0})])
        campaign = Campaign([unit_piece(0, 1)])
        adoption = AdoptionModel(alpha=1.0, beta=1.0)
        problem = OIPAProblem(g, campaign, adoption, 2, pool=np.array([0]))
        mrr = MRRCollection.generate(g, campaign, theta=300, seed=72)
        from repro.core.bab import solve_bab

        result = solve_bab(problem, mrr, gap_tolerance=0.0)
        assert result.plan == AssignmentPlan([{0}])

    def test_empty_pool_rejected(self):
        g = TopicGraph.from_edges(2, 1, [(0, 1, {0: 0.5})])
        campaign = Campaign([unit_piece(0, 1)])
        adoption = AdoptionModel(alpha=1.0, beta=1.0)
        with pytest.raises(SolverError):
            OIPAProblem(g, campaign, adoption, 1, pool=np.array([], dtype=np.int64))

    def test_pool_out_of_range_rejected(self):
        g = TopicGraph.from_edges(2, 1, [(0, 1, {0: 0.5})])
        campaign = Campaign([unit_piece(0, 1)])
        adoption = AdoptionModel(alpha=1.0, beta=1.0)
        with pytest.raises(SolverError):
            OIPAProblem(g, campaign, adoption, 1, pool=np.array([5]))

    def test_plan_validation_catches_foreign_vertex(self):
        g = TopicGraph.from_edges(4, 1, [(0, 1, {0: 0.5})])
        campaign = Campaign([unit_piece(0, 1)])
        adoption = AdoptionModel(alpha=1.0, beta=1.0)
        problem = OIPAProblem(g, campaign, adoption, 2, pool=np.array([0, 1]))
        with pytest.raises(SolverError, match="not in the promoter pool"):
            problem.validate_plan(AssignmentPlan([{3}]))

    def test_campaign_topic_mismatch_rejected(self):
        g = TopicGraph.from_edges(2, 2, [(0, 1, {0: 0.5})])
        campaign = Campaign([unit_piece(0, 5)])
        adoption = AdoptionModel(alpha=1.0, beta=1.0)
        with pytest.raises(SolverError, match="topic space"):
            OIPAProblem(g, campaign, adoption, 1)

    def test_mrr_empty_graph_rejected(self):
        g = TopicGraph.from_edges(0, 1, [])
        campaign = Campaign([unit_piece(0, 1)])
        with pytest.raises(SamplingError):
            MRRCollection.generate(g, campaign, theta=10, seed=73)


class TestBaselineSampleTimeField:
    def test_im_reports_sampling_separately(self):
        from repro.im.baselines import im_baseline

        g = TopicGraph.from_edges(
            5, 1, [(0, i, {0: 0.8}) for i in range(1, 5)]
        )
        campaign = Campaign([unit_piece(0, 1)])
        adoption = AdoptionModel(alpha=1.0, beta=1.0)
        problem = OIPAProblem(g, campaign, adoption, 1, pool=np.arange(5))
        mrr = MRRCollection.generate(g, campaign, theta=400, seed=74)
        result = im_baseline(problem, mrr, seed=1)
        assert result.sample_seconds > 0.0
        assert result.elapsed_seconds >= 0.0
