"""Tests for the experiment harness (config, runner, figures, CLI)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.experiments.cli import build_parser, main
from repro.experiments.config import (
    FULL_PROFILE,
    PAPER_PARAMETER_GRID,
    QUICK_PROFILE,
    ExperimentProfile,
    get_profile,
)
from repro.experiments.runner import prepare_instance, run_cell, run_methods

#: A deliberately tiny profile so harness tests stay fast.
TINY_PROFILE = ExperimentProfile(
    name="tiny",
    datasets=("lastfm",),
    dataset_scale={"lastfm": 0.08},
    theta=400,
    k_grid=(2, 3),
    default_k=3,
    l_grid=(1, 2),
    default_l=2,
    epsilon_grid=(0.3, 0.7),
    max_nodes=20,
    eval_theta=800,
)


class TestConfig:
    def test_paper_grid_matches_table4(self):
        assert PAPER_PARAMETER_GRID["k"] == tuple(range(10, 101, 10))
        assert PAPER_PARAMETER_GRID["l"] == (1, 2, 3, 4, 5)
        assert PAPER_PARAMETER_GRID["beta_over_alpha"] == (0.3, 0.5, 0.7)
        assert len(PAPER_PARAMETER_GRID["epsilon"]) == 9

    def test_get_profile(self):
        assert get_profile("quick") is QUICK_PROFILE
        assert get_profile("full") is FULL_PROFILE
        with pytest.raises(ExperimentError):
            get_profile("huge")

    def test_with_overrides(self):
        p = QUICK_PROFILE.with_overrides(theta=123)
        assert p.theta == 123
        assert QUICK_PROFILE.theta != 123  # original untouched

    def test_theta_for_multiplier(self):
        opt, ev = QUICK_PROFILE.theta_for("tweet")
        assert opt > QUICK_PROFILE.theta
        assert ev > opt

    def test_theta_for_default(self):
        opt, ev = TINY_PROFILE.theta_for("lastfm")
        assert opt == 400 and ev == 800


class TestRunner:
    @pytest.fixture(scope="class")
    def instance(self):
        return prepare_instance(
            "lastfm", TINY_PROFILE, k=3, num_pieces=2, beta_over_alpha=0.5
        )

    def test_prepare_instance_shapes(self, instance):
        assert instance.problem.k == 3
        assert instance.mrr_opt.theta == 400
        assert instance.mrr_eval.theta == 800
        assert instance.sample_seconds > 0

    @pytest.mark.parametrize("method", ["IM", "TIM", "BAB", "BAB-P"])
    def test_run_cell_every_method(self, instance, method):
        cell = run_cell(instance, method, max_nodes=10)
        assert cell.method == method
        assert cell.utility >= 0.0
        assert cell.elapsed_seconds >= 0.0
        assert cell.k == 3

    def test_unknown_method_rejected(self, instance):
        with pytest.raises(ExperimentError):
            run_cell(instance, "MAGIC")

    def test_run_methods_shares_instance(self):
        cells = run_methods("lastfm", TINY_PROFILE)
        assert set(cells) == {"IM", "TIM", "BAB", "BAB-P"}
        ks = {c.k for c in cells.values()}
        assert ks == {TINY_PROFILE.default_k}

    def test_cell_result_row(self, instance):
        cell = run_cell(instance, "TIM")
        row = cell.as_row()
        assert row[0] == "lastfm"
        assert row[1] == "TIM"

    def test_determinism_of_prepared_instances(self):
        a = prepare_instance(
            "lastfm", TINY_PROFILE, k=2, num_pieces=2, beta_over_alpha=0.5
        )
        b = prepare_instance(
            "lastfm", TINY_PROFILE, k=2, num_pieces=2, beta_over_alpha=0.5
        )
        np.testing.assert_array_equal(a.problem.pool, b.problem.pool)
        np.testing.assert_array_equal(a.mrr_opt.roots, b.mrr_opt.roots)


class TestFigures:
    def test_table3(self):
        from repro.experiments.figures import table3_datasets

        result = table3_datasets(TINY_PROFILE)
        assert "lastfm" in result.text
        assert "paper |V|" in result.text

    def test_figure3_epsilon_sweep(self):
        from repro.experiments.figures import figure3_epsilon

        result = figure3_epsilon(TINY_PROFILE)
        panel = result.panels["lastfm"]
        assert panel["epsilon"] == [0.3, 0.7]
        assert len(panel["BAB-P"]) == 2

    def test_figure4_sweep_structure(self):
        from repro.experiments.figures import figure4_promoters

        result = figure4_promoters(TINY_PROFILE)
        panel = result.panels["lastfm"]
        assert panel["k"] == [2, 3]
        assert set(panel["utility"]) == {"IM", "TIM", "BAB", "BAB-P"}
        # Utility grows (weakly, modulo noise) with k for the solver.
        bab = panel["utility"]["BAB"]
        assert bab[-1] >= bab[0] - 0.5

    def test_headline_claims_structure(self):
        from repro.experiments.figures import headline_claims

        result = headline_claims(TINY_PROFILE)
        panel = result.panels["lastfm"]
        assert "speedup_time" in panel
        assert "BAB" in panel["utilities"]


class TestMixedModelAndStore:
    def test_models_for_cycles_and_scalars(self):
        profile = TINY_PROFILE.with_overrides(model=("ic", "lt"))
        assert profile.models_for(5) == ("ic", "lt", "ic", "lt", "ic")
        assert profile.models_for(1) == ("ic",)
        assert TINY_PROFILE.models_for(3) is None
        scalar = TINY_PROFILE.with_overrides(model="lt")
        assert scalar.models_for(2) == ("lt", "lt")
        with pytest.raises(ExperimentError):
            TINY_PROFILE.with_overrides(model=()).models_for(2)

    def test_prepare_instance_mixed_models(self):
        profile = TINY_PROFILE.with_overrides(model=("ic", "lt"))
        instance = prepare_instance(
            "lastfm", profile, k=3, num_pieces=2, beta_over_alpha=0.5
        )
        cell = run_cell(instance, "BAB-P", max_nodes=10)
        assert cell.utility >= 0.0
        # The LT piece really sampled under LT: a different model mix
        # with the same seed must change the collection.
        ic_only = prepare_instance(
            "lastfm", TINY_PROFILE, k=3, num_pieces=2, beta_over_alpha=0.5
        )
        assert not np.array_equal(
            instance.mrr_opt.rr_set_sizes(1), ic_only.mrr_opt.rr_set_sizes(1)
        )

    def test_prepare_instance_disk_store(self, tmp_path):
        disk_profile = TINY_PROFILE.with_overrides(
            store="disk", shard_dir=str(tmp_path), workers=1
        )
        mem_profile = TINY_PROFILE.with_overrides(workers=1)
        disk = prepare_instance(
            "lastfm", disk_profile, k=3, num_pieces=2, beta_over_alpha=0.5
        )
        mem = prepare_instance(
            "lastfm", mem_profile, k=3, num_pieces=2, beta_over_alpha=0.5
        )
        assert disk.mrr_opt.store.kind == "disk"
        # Opt and eval collections shard into distinct subdirectories.
        assert disk.mrr_opt.store.shard_dir != disk.mrr_eval.store.shard_dir
        np.testing.assert_array_equal(disk.mrr_opt.roots, mem.mrr_opt.roots)
        cell_disk = run_cell(disk, "BAB", max_nodes=10)
        cell_mem = run_cell(mem, "BAB", max_nodes=10)
        assert cell_disk.utility == cell_mem.utility


class TestCli:
    def test_parser_targets(self):
        parser = build_parser()
        args = parser.parse_args(["table3"])
        assert args.target == "table3"
        assert args.profile == "quick"

    def test_model_and_store_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["table3", "--model", "ic", "lt", "--store", "disk",
             "--shard-dir", "/tmp/x", "--max-resident-mb", "64"]
        )
        assert args.model == ["ic", "lt"]
        assert args.store == "disk"
        assert args.shard_dir == "/tmp/x"
        assert args.max_resident_mb == 64
        with pytest.raises(SystemExit):
            parser.parse_args(["table3", "--model", "sir"])
        with pytest.raises(SystemExit):
            parser.parse_args(["table3", "--store", "s3"])

    def test_shard_dir_rejects_explicit_memory_store(self):
        with pytest.raises(SystemExit):
            main(["table3", "--store", "memory", "--shard-dir", "/tmp/x"])

    def test_params_target_prints_table4(self, capsys):
        assert main(["params"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out
        assert "beta_over_alpha" in out

    def test_bad_target_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_out_file_written(self, tmp_path, capsys, monkeypatch):
        # Patch in the tiny profile so the CLI run stays fast.
        import repro.experiments.cli as cli

        monkeypatch.setitem(cli.__dict__, "get_profile", lambda name: TINY_PROFILE)
        out_file = tmp_path / "report.txt"
        assert main(["table3", "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert "lastfm" in out_file.read_text()
