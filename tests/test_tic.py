"""Tests for TIC influence-probability learning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.topics.action_log import ActionLog, generate_action_log
from repro.topics.tic import extract_propagation_events, learn_tic_probabilities
from repro.graph.digraph import TopicGraph


def simple_log() -> ActionLog:
    """Item 0: u0 then u1 (propagation). Item 1: u1 only (failed trial)."""
    return ActionLog(
        users=np.array([0, 1, 0]),
        items=np.array([0, 0, 1]),
        times=np.array([0.0, 1.0, 0.0]),
        num_users=3,
        num_items=2,
    )


class TestEventExtraction:
    def test_success_and_trial_buckets(self):
        succ, trials = extract_propagation_events({(0, 1)}, simple_log())
        assert trials[(0, 1)] == [0, 1]
        assert succ[(0, 1)] == [0]

    def test_window_excludes_late_actions(self):
        log = ActionLog(
            users=np.array([0, 1]),
            items=np.array([0, 0]),
            times=np.array([0.0, 100.0]),
            num_users=2,
            num_items=1,
        )
        succ, trials = extract_propagation_events({(0, 1)}, log, window=5.0)
        assert (0, 1) in trials
        assert (0, 1) not in succ

    def test_direction_matters(self):
        # v acted before u: no propagation credit for (u, v).
        log = ActionLog(
            users=np.array([1, 0]),
            items=np.array([0, 0]),
            times=np.array([0.0, 1.0]),
            num_users=2,
            num_items=1,
        )
        succ, _ = extract_propagation_events({(0, 1)}, log)
        assert (0, 1) not in succ

    def test_bad_window_rejected(self):
        with pytest.raises(ParameterError):
            extract_propagation_events(set(), simple_log(), window=0)


class TestSupervisedLearning:
    def test_strong_edge_recovers_high_probability(self):
        # Edge (0,1) fires on topic-0 items in 3 of 3 trials.
        log = ActionLog(
            users=np.array([0, 1, 0, 1, 0, 1]),
            items=np.array([0, 0, 1, 1, 2, 2]),
            times=np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0]),
            num_users=2,
            num_items=3,
        )
        item_topics = np.array([[1.0, 0.0]] * 3)
        g = learn_tic_probabilities(
            2, [(0, 1)], log, 2, item_topics=item_topics, smoothing=0.5
        )
        p = g.edge_topic_vector(0)
        assert p[0] > 0.7
        assert p[1] < 0.05

    def test_never_fires_edge_gets_floor(self):
        log = ActionLog(
            users=np.array([0, 0, 0]),
            items=np.array([0, 1, 2]),
            times=np.array([0.0, 0.0, 0.0]),
            num_users=2,
            num_items=3,
        )
        item_topics = np.eye(3)
        g = learn_tic_probabilities(
            2, [(0, 1)], log, 3, item_topics=item_topics, min_probability=1e-3
        )
        p = g.edge_topic_vector(0)
        assert p.max() == pytest.approx(1e-3)
        assert np.count_nonzero(p) == 1  # sparse fallback, not dense

    def test_topic_attribution_follows_items(self):
        # Propagations happen only on topic-1 items.
        log = ActionLog(
            users=np.array([0, 1, 0]),
            items=np.array([0, 0, 1]),
            times=np.array([0.0, 1.0, 0.0]),
            num_users=2,
            num_items=2,
        )
        item_topics = np.array([[0.0, 1.0], [1.0, 0.0]])
        g = learn_tic_probabilities(
            2, [(0, 1)], log, 2, item_topics=item_topics
        )
        p = g.edge_topic_vector(0)
        assert p[1] > p[0]

    def test_duplicate_edges_rejected(self):
        with pytest.raises(ParameterError):
            learn_tic_probabilities(
                2, [(0, 1), (0, 1)], simple_log(), 2,
                item_topics=np.ones((2, 2)),
            )

    def test_bad_item_topics_shape(self):
        from repro.exceptions import TopicError

        with pytest.raises(TopicError):
            learn_tic_probabilities(
                2, [(0, 1)], simple_log(), 2, item_topics=np.ones((5, 2))
            )


class TestEMLearning:
    def test_em_runs_and_returns_graph(self):
        log = simple_log()
        g = learn_tic_probabilities(
            3, [(0, 1), (1, 2)], log, 2, em_iterations=3, seed=1
        )
        assert g.n == 3
        assert g.num_edges == 2

    def test_em_separates_topic_specific_edges(self):
        """Contrastive cascades force the two item groups onto
        different topics.

        Users 0 and 2 act on *every* item; propagation over (0, 1)
        succeeds only on group-A items (0-2) and over (2, 3) only on
        group-B items (3-5).  A single-topic explanation must compromise
        (p = 1/2 with half the trials failed); the two-topic solution
        explains everything, so EM should separate the groups.
        """
        users, items, times = [], [], []
        for i in range(6):
            users += [0, 2]
            items += [i, i]
            times += [0.0, 0.0]
            if i < 3:
                users.append(1)
            else:
                users.append(3)
            items.append(i)
            times.append(1.0)
        log = ActionLog(
            users=np.array(users),
            items=np.array(items),
            times=np.array(times),
            num_users=4,
            num_items=6,
        )
        g = learn_tic_probabilities(
            4, [(0, 1), (2, 3)], log, 2, em_iterations=40, seed=3
        )
        p01 = g.edge_topic_vector(g.edge_id(0, 1))
        p23 = g.edge_topic_vector(g.edge_id(2, 3))
        # Each edge should be confident on *some* topic, and the two
        # edges should specialise on different topics.
        assert p01.max() > 0.5 and p23.max() > 0.5
        assert int(np.argmax(p01)) != int(np.argmax(p23))


class TestEndToEndRecovery:
    def test_pipeline_recovers_strong_edges(self):
        """Simulate from a known TIC model, re-learn, compare ranking."""
        truth = TopicGraph.from_edges(
            6,
            2,
            [
                (0, 1, {0: 0.95}),
                (0, 2, {0: 0.05}),
                (3, 4, {1: 0.95}),
                (3, 5, {1: 0.05}),
            ],
        )
        item_topics = np.tile(np.array([[1.0, 0.0], [0.0, 1.0]]), (40, 1))
        log = generate_action_log(
            truth, item_topics, seeds_per_item=2, seed=5
        )
        learned = learn_tic_probabilities(
            6,
            [(0, 1), (0, 2), (3, 4), (3, 5)],
            log,
            2,
            item_topics=item_topics,
        )
        strong_01 = learned.edge_topic_vector(learned.edge_id(0, 1))[0]
        weak_02 = learned.edge_topic_vector(learned.edge_id(0, 2))[0]
        strong_34 = learned.edge_topic_vector(learned.edge_id(3, 4))[1]
        weak_35 = learned.edge_topic_vector(learned.edge_id(3, 5))[1]
        assert strong_01 > weak_02
        assert strong_34 > weak_35
