"""Tests for the reverse-reachable sampler.

The load-bearing property: P(u ∈ RR(x)) equals the probability that a
cascade seeded at {u} activates x.  We verify it both on deterministic
structures (exactly) and statistically on probabilistic edges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.projection import PieceGraph
from repro.diffusion.simulate import simulate_cascade
from repro.exceptions import SamplingError
from repro.graph.digraph import TopicGraph
from repro.sampling.rr import ReverseReachableSampler
from repro.topics.distributions import unit_piece
from repro.utils.rng import as_generator


def project(edges, n, topics=1, piece=0):
    g = TopicGraph.from_edges(n, topics, edges)
    return PieceGraph.project(g, unit_piece(piece, topics))


class TestDeterministicStructure:
    def test_certain_chain_rr_is_ancestry(self):
        pg = project([(0, 1, {0: 1.0}), (1, 2, {0: 1.0})], 3)
        sampler = ReverseReachableSampler(pg)
        rng = as_generator(0)
        assert set(sampler.sample(2, rng).tolist()) == {0, 1, 2}
        assert set(sampler.sample(1, rng).tolist()) == {0, 1}
        assert set(sampler.sample(0, rng).tolist()) == {0}

    def test_dead_edges_rr_is_root_only(self):
        pg = project([(0, 1, {0: 0.0})], 2)
        sampler = ReverseReachableSampler(pg)
        assert sampler.sample(1, as_generator(0)).tolist() == [1]

    def test_root_always_included(self):
        pg = project([], 4)
        sampler = ReverseReachableSampler(pg)
        for root in range(4):
            assert sampler.sample(root, as_generator(root)).tolist() == [root]

    def test_root_range_checked(self):
        pg = project([], 2)
        with pytest.raises(SamplingError):
            ReverseReachableSampler(pg).sample(5, as_generator(0))

    def test_no_duplicates_in_rr_set(self):
        # Diamond: two paths into 3; the RR set must contain 0 once.
        pg = project(
            [
                (0, 1, {0: 1.0}),
                (0, 2, {0: 1.0}),
                (1, 3, {0: 1.0}),
                (2, 3, {0: 1.0}),
            ],
            4,
        )
        rr = ReverseReachableSampler(pg).sample(3, as_generator(0))
        assert len(rr) == len(set(rr.tolist())) == 4


class TestStatisticalEquivalence:
    def test_membership_matches_forward_activation(self):
        """P(u in RR(x)) == P(cascade from u reaches x), within MC noise."""
        edges = [
            (0, 1, {0: 0.7}),
            (1, 2, {0: 0.5}),
            (0, 2, {0: 0.2}),
        ]
        pg = project(edges, 3)
        rng = as_generator(42)
        trials = 6000
        sampler = ReverseReachableSampler(pg)
        rr_hits = sum(
            0 in sampler.sample(2, rng) for _ in range(trials)
        )
        fwd_hits = sum(
            simulate_cascade(pg, [0], rng)[2] for _ in range(trials)
        )
        rr_rate, fwd_rate = rr_hits / trials, fwd_hits / trials
        # Exact probability: 0.2 + 0.8 * 0.7 * 0.5 = 0.48
        assert rr_rate == pytest.approx(0.48, abs=0.03)
        assert fwd_rate == pytest.approx(0.48, abs=0.03)

    def test_single_edge_probability(self):
        pg = project([(0, 1, {0: 0.3})], 2)
        rng = as_generator(7)
        sampler = ReverseReachableSampler(pg)
        hits = sum(0 in sampler.sample(1, rng) for _ in range(6000))
        assert hits / 6000 == pytest.approx(0.3, abs=0.025)


class TestSampleMany:
    def test_csr_layout(self):
        pg = project([(0, 1, {0: 1.0})], 2)
        sampler = ReverseReachableSampler(pg)
        roots = np.array([0, 1, 1])
        ptr, nodes = sampler.sample_many(roots, as_generator(0))
        assert ptr.shape == (4,)
        assert ptr[-1] == nodes.size
        assert nodes[ptr[0] : ptr[1]].tolist() == [0]
        assert set(nodes[ptr[1] : ptr[2]].tolist()) == {0, 1}

    def test_empty_roots(self):
        pg = project([], 2)
        ptr, nodes = ReverseReachableSampler(pg).sample_many(
            np.array([], dtype=np.int64), as_generator(0)
        )
        assert ptr.tolist() == [0]
        assert nodes.size == 0

    def test_scratch_reuse_is_safe(self):
        """Consecutive samples must not leak visited marks."""
        pg = project([(0, 1, {0: 1.0}), (1, 2, {0: 1.0})], 3)
        sampler = ReverseReachableSampler(pg)
        rng = as_generator(0)
        first = set(sampler.sample(2, rng).tolist())
        second = set(sampler.sample(0, rng).tolist())
        assert first == {0, 1, 2}
        assert second == {0}
