"""The staged pipeline and its artifact cache, end to end.

The acceptance contracts of the artifact-cache PR:

* a warm ``Session.run`` against an on-disk store performs **zero
  sampling** — asserted through the stage-execution trace, not wall
  clock;
* cold, warm, and legacy (cache-off) runs produce bit-identical seed
  sets and estimates;
* two solvers over one session share one sampled collection, and a
  second process-equivalent session reuses it from disk;
* ineligible configurations (explicit shard dirs, caller-owned store
  instances, unseeded draws, ``artifacts="off"``) bypass the cache and
  never corrupt it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session
from repro.artifacts import MemoryArtifactStore, resolve_artifact_store
from repro.diffusion.adoption import AdoptionModel
from repro.graph.generators import (
    build_topic_graph,
    preferential_attachment_digraph,
)
from repro.pipeline import STAGES, PipelineTrace, StageEvent, stage
from repro.runtime import Runtime
from repro.sampling.mrr import MRRCollection
from repro.sampling.store import MemoryStore
from repro.topics.distributions import Campaign

THETA = 400


@pytest.fixture(scope="module")
def world():
    src, dst = preferential_attachment_digraph(70, 3, seed=31)
    graph = build_topic_graph(
        70, src, dst, 4, topics_per_edge=2.0, prob_mean=0.2, seed=32
    )
    campaign = Campaign.sample_unit(3, 4, seed=33)
    return graph, campaign


def _session(world, *, artifacts, seed=5, **runtime_fields) -> Session:
    graph, campaign = world
    return Session(
        graph,
        campaign,
        AdoptionModel(alpha=2.0, beta=1.0),
        k=3,
        seed=seed,
        runtime=Runtime(artifacts=artifacts, **runtime_fields),
    )


# ----------------------------------------------------------------------
# stage vocabulary and trace
# ----------------------------------------------------------------------


class TestStagesAndTrace:
    def test_stage_dataflow_is_a_chain(self):
        assert STAGES == ("plan", "sample", "index", "solve", "evaluate")
        produced = set()
        for name in STAGES:
            s = stage(name)
            assert s.name == name
            for need in s.consumes:
                assert need in produced, f"{name} consumes unmade {need}"
            produced.add(s.produces)
        with pytest.raises(KeyError):
            stage("deploy")

    def test_trace_records_and_validates(self):
        trace = PipelineTrace()
        trace.record("sample", "run", "opt")
        trace.record("sample", "hit")
        assert trace.actions("sample") == ["run", "hit"]
        assert trace.ran("sample") and trace.sampled()
        assert list(trace) == [
            StageEvent("sample", "run", "opt"),
            StageEvent("sample", "hit"),
        ]
        with pytest.raises(KeyError):
            trace.record("deploy", "run")
        with pytest.raises(ValueError):
            trace.record("sample", "skipped")
        trace.clear()
        assert len(trace) == 0 and not trace.sampled()


# ----------------------------------------------------------------------
# the tentpole: warm runs perform zero sampling, bit-identically
# ----------------------------------------------------------------------


class TestWarmSessionRun:
    def test_warm_run_skips_sampling_and_matches_cold(self, world, tmp_path):
        cache = str(tmp_path / "artifacts")
        legacy = _session(world, artifacts="off").run(
            "bab-p", theta=THETA, max_nodes=40
        )

        cold_session = _session(world, artifacts=cache)
        cold = cold_session.run("bab-p", theta=THETA, max_nodes=40)
        cold_trace = cold_session.stage_trace
        assert cold_trace.sampled()
        assert cold_trace.actions("solve") == ["run"]
        assert cold_trace.ran("evaluate")

        warm_session = _session(world, artifacts=cache)
        warm = warm_session.run("bab-p", theta=THETA, max_nodes=40)
        warm_trace = warm_session.stage_trace
        # zero sampling: the opt AND eval collections came from cache
        assert not warm_trace.sampled()
        assert warm_trace.actions("sample") == ["hit", "hit"]
        assert warm_trace.actions("index") == ["hit", "hit"]
        assert warm_trace.actions("solve") == ["hit"]
        # the evaluate reduction itself always executes
        assert warm_trace.actions("evaluate") == ["run"]

        # bit-identical across legacy / cold / warm
        for result in (cold, warm):
            assert result.plan.seed_sets == legacy.plan.seed_sets
            assert result.estimate == legacy.estimate
            assert result.evaluation == legacy.evaluation

    def test_warm_collections_bit_identical(self, world, tmp_path):
        cache = str(tmp_path / "artifacts")
        a = _session(world, artifacts=cache)
        a.sample(THETA)
        b = _session(world, artifacts=cache)
        b.sample(THETA)
        assert not b.stage_trace.sampled()
        np.testing.assert_array_equal(a.mrr.roots, b.mrr.roots)
        for j in range(a.num_pieces):
            np.testing.assert_array_equal(
                a.mrr._rr_ptr[j], b.mrr._rr_ptr[j]
            )
            np.testing.assert_array_equal(
                a.mrr._rr_nodes[j], b.mrr._rr_nodes[j]
            )
            pa, sa = a.mrr.index_arrays(j)
            pb, sb = b.mrr.index_arrays(j)
            np.testing.assert_array_equal(pa, pb)
            np.testing.assert_array_equal(sa, sb)

    def test_two_solvers_share_one_sample_artifact(self, world, tmp_path):
        cache = str(tmp_path / "artifacts")
        session = _session(world, artifacts=cache)
        session.sample(THETA)
        first = session.solve("tim")
        second = session.solve("bab-p", max_nodes=40)
        assert session.stage_trace.actions("sample") == ["run"]
        store = resolve_artifact_store(cache)
        # one sample-stage put; both solvers consumed the same artifact
        sample_puts = [
            1
            for e in session.stage_trace
            if e.stage == "sample" and e.action == "run"
        ]
        assert len(sample_puts) == 1
        assert first.plan != second.plan or first.method != second.method
        assert store.stats()["puts"] >= 3  # sample + two solve products

    def test_theta_is_in_the_key(self, world, tmp_path):
        cache = str(tmp_path / "artifacts")
        a = _session(world, artifacts=cache)
        a.sample(THETA)
        b = _session(world, artifacts=cache)
        b.sample(2 * THETA)  # different theta: a genuine re-sample
        assert b.stage_trace.sampled()
        assert b.mrr.theta == 2 * THETA

    def test_memory_store_spec_shares_in_process(self, world):
        # store="memory" is pinned: a MemoryArtifactStore cannot host
        # shard directories, so a REPRO_STORE=disk ambient default
        # would (correctly) make these sessions cache-ineligible.
        store = MemoryArtifactStore()
        a = _session(world, artifacts=store, store="memory")
        a.sample(THETA)
        b = _session(world, artifacts=store, store="memory")
        b.sample(THETA)
        assert not b.stage_trace.sampled()
        assert store.stats()["hits"] >= 1
        np.testing.assert_array_equal(a.mrr.roots, b.mrr.roots)


class TestDiskTargetCaching:
    def test_out_of_core_collection_cached_as_shards(self, world, tmp_path):
        cache = str(tmp_path / "artifacts")
        a = _session(world, artifacts=cache, store="disk")
        a.sample(THETA)
        assert a.mrr.store.kind == "disk"
        b = _session(world, artifacts=cache, store="disk")
        b.sample(THETA)
        assert not b.stage_trace.sampled()
        assert b.stage_trace.actions("index") == ["hit"]
        assert b.mrr.store.kind == "disk"  # stayed out-of-core
        np.testing.assert_array_equal(a.mrr.roots, b.mrr.roots)

    def test_cross_format_disk_then_memory(self, world, tmp_path):
        """A shards artifact serves a later in-RAM session (and back).

        The in-RAM sessions use ``workers=1`` so they are on the same
        (piece, root block) sampling stream the disk store always uses
        — serial in-RAM draws are a different stream and different
        artifacts (see ``test_serial_and_blocked_streams_do_not_alias``).
        """
        cache = str(tmp_path / "artifacts")
        disk = _session(world, artifacts=cache, store="disk")
        disk.sample(THETA)
        mem = _session(world, artifacts=cache, store="memory", workers=1)
        mem.sample(THETA)
        assert not mem.stage_trace.sampled()
        assert mem.mrr.store.kind == "memory"
        np.testing.assert_array_equal(disk.mrr.roots, mem.mrr.roots)
        for j in range(mem.num_pieces):
            pa, sa = disk.mrr.index_arrays(j)
            pb, sb = mem.mrr.index_arrays(j)
            np.testing.assert_array_equal(pa, pb)
            np.testing.assert_array_equal(sa, sb)

    def test_cross_format_memory_then_disk(self, world, tmp_path):
        cache = str(tmp_path / "artifacts")
        mem = _session(world, artifacts=cache, store="memory", workers=1)
        mem.sample(THETA)
        disk = _session(world, artifacts=cache, store="disk")
        disk.sample(THETA)
        # arrays artifact streams into a fresh shard store: no sampling,
        # but the index stage re-runs over the streamed blocks
        assert not disk.stage_trace.sampled()
        assert disk.stage_trace.actions("index") == ["run"]
        assert disk.mrr.store.kind == "disk"
        np.testing.assert_array_equal(mem.mrr.roots, disk.mrr.roots)

    def test_serial_and_blocked_streams_do_not_alias(self, world, tmp_path):
        """Serial in-RAM draws and (piece, root block) draws are
        different sampling streams: both are deterministic, but their RR
        sets differ, so one must never be served from the other's
        artifact.  Each stream still warms its own entry.  (Knobs are
        pinned explicitly so the CI matrix env vars cannot flip them.)
        """
        cache = str(tmp_path / "artifacts")
        serial_rt = dict(workers="serial", store="memory")
        blocked_rt = dict(workers=1, store="memory")
        serial = _session(world, artifacts=cache, **serial_rt)
        serial.sample(THETA)
        blocked = _session(world, artifacts=cache, **blocked_rt)
        blocked.sample(THETA)
        assert blocked.stage_trace.sampled()  # miss: different stream
        np.testing.assert_array_equal(serial.mrr.roots, blocked.mrr.roots)
        serial_again = _session(world, artifacts=cache, **serial_rt)
        serial_again.sample(THETA)
        assert not serial_again.stage_trace.sampled()
        blocked_again = _session(world, artifacts=cache, **blocked_rt)
        blocked_again.sample(THETA)
        assert not blocked_again.stage_trace.sampled()


# ----------------------------------------------------------------------
# eligibility: configurations that must bypass the cache
# ----------------------------------------------------------------------


class TestCacheEligibility:
    def _assert_samples_twice(self, make_session):
        a = make_session()
        a.sample(THETA)
        b = make_session()
        b.sample(THETA)
        assert b.stage_trace.sampled()

    def test_artifacts_off_bypasses(self, world):
        self._assert_samples_twice(lambda: _session(world, artifacts="off"))

    def test_explicit_shard_dir_bypasses(self, world, tmp_path):
        cache = str(tmp_path / "artifacts")
        session = _session(
            world,
            artifacts=cache,
            store="disk",
            shard_dir=str(tmp_path / "mine"),
        )
        session.sample(THETA)
        again = _session(
            world,
            artifacts=cache,
            store="disk",
            shard_dir=str(tmp_path / "mine2"),
        )
        again.sample(THETA)
        assert again.stage_trace.sampled()

    def test_caller_owned_store_instance_bypasses(self, world, tmp_path):
        cache = str(tmp_path / "artifacts")
        graph, campaign = world
        for _ in range(2):
            collection, events, key = MRRCollection.generate_traced(
                graph,
                campaign,
                THETA,
                runtime=Runtime(
                    artifacts=cache, seed=5, store=MemoryStore()
                ),
            )
            assert key is None
            assert ("sample", "run") in events

    def test_unseeded_session_bypasses(self, world, tmp_path):
        cache = str(tmp_path / "artifacts")
        self._assert_samples_twice(
            lambda: _session(world, artifacts=cache, seed=None)
        )

    def test_generator_seed_bypasses(self, world, tmp_path):
        cache = str(tmp_path / "artifacts")
        graph, campaign = world
        _, events, key = MRRCollection.generate_traced(
            graph,
            campaign,
            THETA,
            seed=np.random.default_rng(5),
            runtime=Runtime(artifacts=cache),
        )
        assert key is None
        assert ("sample", "run") in events

    def test_bool_seed_is_not_an_int_seed(self, world, tmp_path):
        cache = str(tmp_path / "artifacts")
        graph, campaign = world
        _, _, key = MRRCollection.generate_traced(
            graph, campaign, THETA, seed=True,
            runtime=Runtime(artifacts=cache),
        )
        assert key is None


# ----------------------------------------------------------------------
# solve-stage replay
# ----------------------------------------------------------------------


class TestSolveStageReplay:
    def test_solve_replays_without_solver_execution(self, world, tmp_path):
        cache = str(tmp_path / "artifacts")
        a = _session(world, artifacts=cache)
        a.sample(THETA)
        cold = a.solve("bab-p", max_nodes=40)
        assert a.stage_trace.actions("solve") == ["run"]

        b = _session(world, artifacts=cache)
        b.sample(THETA)
        warm = b.solve("bab-p", max_nodes=40)
        assert b.stage_trace.actions("solve") == ["hit"]
        assert warm.plan.seed_sets == cold.plan.seed_sets
        assert warm.estimate == cold.estimate
        assert warm.diagnostics["termination"] == (
            cold.diagnostics["termination"]
        )

    def test_options_are_in_the_key(self, world, tmp_path):
        cache = str(tmp_path / "artifacts")
        a = _session(world, artifacts=cache)
        a.sample(THETA)
        a.solve("bab-p", max_nodes=40)
        b = _session(world, artifacts=cache)
        b.sample(THETA)
        b.solve("bab-p", max_nodes=60)  # different options: a run
        assert b.stage_trace.actions("solve") == ["run"]

    def test_k_is_in_the_key(self, world, tmp_path):
        cache = str(tmp_path / "artifacts")
        graph, campaign = world
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        a = Session(
            graph, campaign, adoption, k=3, seed=5,
            runtime=Runtime(artifacts=cache),
        )
        a.sample(THETA)
        a.solve("tim")
        b = Session(
            graph, campaign, adoption, k=4, seed=5,
            runtime=Runtime(artifacts=cache),
        )
        b.sample(THETA)
        b.solve("tim")
        assert b.stage_trace.actions("solve") == ["run"]

    def test_custom_solver_not_cached(self, world, tmp_path):
        from repro.api import _SOLVERS, register_solver

        cache = str(tmp_path / "artifacts")
        calls = []

        def probe(session, **options):
            calls.append(1)
            from repro.core.plan import AssignmentPlan

            plan = AssignmentPlan.empty(session.num_pieces)
            return plan, 0.0, {"probed": True}

        register_solver("probe-solver", probe)
        try:
            for _ in range(2):
                s = _session(world, artifacts=cache)
                s.sample(THETA)
                s.solve("probe-solver")
        finally:
            _SOLVERS.pop("probe-solver", None)
        assert len(calls) == 2  # ran both times: not declared cacheable
