"""Tests for the IM and TIM baselines (Sec. VI-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import OIPAProblem
from repro.diffusion.adoption import AdoptionModel
from repro.graph.digraph import TopicGraph
from repro.im.baselines import im_baseline, tim_baseline
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import Campaign, unit_piece


@pytest.fixture()
def topic_split_world():
    """Two disjoint influence communities keyed by topic.

    Hub 0 spreads topic 0 to vertices 1-4; hub 5 spreads topic 1 to
    6-9.  A topic-aware selector must send piece t_z to its own hub.
    """
    edges = [(0, i, {0: 1.0}) for i in range(1, 5)]
    edges += [(5, i, {1: 1.0}) for i in range(6, 10)]
    graph = TopicGraph.from_edges(10, 2, edges)
    campaign = Campaign([unit_piece(0, 2), unit_piece(1, 2)])
    adoption = AdoptionModel(alpha=1.0, beta=1.0)
    problem = OIPAProblem(
        graph, campaign, adoption, k=1, pool=np.arange(10)
    )
    mrr = MRRCollection.generate(graph, campaign, theta=2000, seed=21)
    return problem, mrr


class TestSinglePieceSemantics:
    def test_im_uses_one_piece_only(self, topic_split_world):
        problem, mrr = topic_split_world
        result = im_baseline(problem, mrr, seed=1)
        non_empty = [s for s in result.plan.seed_sets if s]
        assert len(non_empty) == 1
        assert result.plan.size <= problem.k

    def test_tim_uses_one_piece_only(self, topic_split_world):
        problem, mrr = topic_split_world
        result = tim_baseline(problem, mrr)
        non_empty = [s for s in result.plan.seed_sets if s]
        assert len(non_empty) == 1

    def test_tim_selects_matching_hub(self, topic_split_world):
        """TIM's piece-aware selection must pair a hub with its topic."""
        problem, mrr = topic_split_world
        result = tim_baseline(problem, mrr)
        hub = next(iter(result.plan.seed_sets[result.chosen_piece]))
        assert (result.chosen_piece, hub) in {(0, 0), (1, 5)}

    def test_utilities_match_mrr_estimates(self, topic_split_world):
        problem, mrr = topic_split_world
        for result in (im_baseline(problem, mrr, seed=2), tim_baseline(problem, mrr)):
            assert result.utility == pytest.approx(
                mrr.estimate(result.plan.seed_lists(), problem.adoption)
            )

    def test_seeds_within_pool(self):
        edges = [(0, i, {0: 1.0}) for i in range(1, 5)]
        graph = TopicGraph.from_edges(5, 1, edges)
        campaign = Campaign([unit_piece(0, 1)])
        adoption = AdoptionModel(alpha=1.0, beta=1.0)
        pool = np.array([1, 2])  # the hub is NOT eligible
        problem = OIPAProblem(graph, campaign, adoption, k=2, pool=pool)
        mrr = MRRCollection.generate(graph, campaign, theta=500, seed=22)
        for result in (im_baseline(problem, mrr, seed=3), tim_baseline(problem, mrr)):
            for v, _ in result.plan.assignments():
                assert v in (1, 2)

    def test_tim_beats_im_on_topic_split(self, topic_split_world):
        """The paper's motivating gap: IM flattens topics and suffers.

        With k=1 on the split world, IM's flat-graph seed is one of the
        two hubs but its piece choice is then forced; TIM gets the
        pairing right by construction.  TIM must be at least as good.
        """
        problem, mrr = topic_split_world
        im = im_baseline(problem, mrr, seed=4)
        tim = tim_baseline(problem, mrr)
        assert tim.utility >= im.utility - 1e-9

    def test_elapsed_time_recorded(self, topic_split_world):
        problem, mrr = topic_split_world
        result = tim_baseline(problem, mrr)
        assert result.elapsed_seconds >= 0.0
        assert result.name == "TIM"
