"""Tests for research-field topic assignment (dblp pipeline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError, TopicError
from repro.topics.fields import assign_field_topics, venue_topic_profiles


class TestVenueProfiles:
    def test_rows_normalised(self):
        profiles = venue_topic_profiles(50, 6, seed=1)
        assert profiles.shape == (50, 6)
        np.testing.assert_allclose(profiles.sum(axis=1), 1.0)

    def test_concentration_sharpens_profiles(self):
        sharp = venue_topic_profiles(200, 6, concentration=0.05, seed=2)
        flat = venue_topic_profiles(200, 6, concentration=5.0, seed=2)
        assert sharp.max(axis=1).mean() > flat.max(axis=1).mean()

    def test_deterministic(self):
        a = venue_topic_profiles(20, 4, seed=3)
        b = venue_topic_profiles(20, 4, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ParameterError):
            venue_topic_profiles(0, 4)
        with pytest.raises(ParameterError):
            venue_topic_profiles(4, 4, concentration=0)


class TestAssignFieldTopics:
    def _simple(self):
        src = np.array([0, 1])
        dst = np.array([1, 2])
        profiles = np.array(
            [
                [0.9, 0.1],
                [0.8, 0.2],
                [0.1, 0.9],
            ]
        )
        in_degrees = np.array([0.0, 1.0, 1.0])
        return src, dst, profiles, in_degrees

    def test_csr_alignment(self):
        src, dst, profiles, in_deg = self._simple()
        ptr, topics, probs = assign_field_topics(
            src, dst, profiles, in_deg, sparsity_floor=0.0
        )
        assert ptr.shape == (3,)
        assert ptr[-1] == topics.size == probs.size

    def test_shared_field_scores_higher(self):
        src, dst, profiles, in_deg = self._simple()
        ptr, topics, probs = assign_field_topics(
            src, dst, profiles, in_deg, sparsity_floor=0.0
        )
        # Edge 0 -> 1 shares field 0; edge 1 -> 2 has mismatched profiles.
        e0 = {int(z): p for z, p in zip(topics[ptr[0]:ptr[1]], probs[ptr[0]:ptr[1]])}
        e1 = {int(z): p for z, p in zip(topics[ptr[1]:ptr[2]], probs[ptr[1]:ptr[2]])}
        assert e0[0] > e0[1]
        assert e0[0] > max(e1.values()) - 1e-12

    def test_floor_sparsifies(self):
        src, dst, profiles, in_deg = self._simple()
        ptr, _, _ = assign_field_topics(
            src, dst, profiles, in_deg, sparsity_floor=0.5
        )
        counts = np.diff(ptr)
        assert np.all(counts >= 1)  # at least the argmax survives
        assert counts.sum() < 4  # but the floor dropped entries

    def test_in_degree_normalisation(self):
        src = np.array([0, 0])
        dst = np.array([1, 2])
        profiles = np.array([[1.0], [1.0], [1.0]])
        in_deg = np.array([0.0, 1.0, 10.0])
        _, _, probs = assign_field_topics(
            src, dst, profiles, in_deg, sparsity_floor=0.0
        )
        assert probs[0] > probs[1]  # popular target is harder to influence

    def test_probabilities_clipped(self):
        src = np.array([0])
        dst = np.array([1])
        profiles = np.array([[1.0], [1.0]])
        in_deg = np.array([0.0, 1.0])
        _, _, probs = assign_field_topics(
            src, dst, profiles, in_deg, scale=50.0, sparsity_floor=0.0
        )
        assert probs[0] == 1.0

    def test_validation(self):
        src, dst, profiles, in_deg = self._simple()
        with pytest.raises(ParameterError):
            assign_field_topics(src, dst[:1], profiles, in_deg)
        with pytest.raises(TopicError):
            assign_field_topics(src, dst, profiles[0], in_deg)
        with pytest.raises(ParameterError):
            assign_field_topics(src, dst, profiles, in_deg, sparsity_floor=1.5)

    def test_empty_edges(self):
        ptr, topics, probs = assign_field_topics(
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.ones((2, 2)) / 2,
            np.zeros(2),
        )
        assert ptr.tolist() == [0]
        assert topics.size == probs.size == 0
