"""Tests for the concave majorant construction (Def. 6, Fig. 2, Alg. 4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import brentq

from repro.core.tangent import MajorantTable, refine_tangent_slope
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import ParameterError


def sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


class TestRefine:
    def test_tangency_conditions(self):
        """The returned line touches the sigmoid with matching slope."""
        for x0 in (-0.5, -1.0, -3.0, -8.0):
            w, t = refine_tangent_slope(x0)
            # Slope matches the sigmoid derivative at t.
            ft = sigmoid(t)
            assert w == pytest.approx(ft * (1 - ft), abs=1e-6)
            # The line through (x0, f(x0)) hits f(t) at t.
            line_at_t = sigmoid(x0) + w * (t - x0)
            assert line_at_t == pytest.approx(ft, abs=1e-6)

    def test_agrees_with_scipy_root(self):
        """Cross-check Algorithm 4 against brentq on the tangency equation."""
        for x0 in (-0.7, -2.0, -5.0):
            w_alg4, _ = refine_tangent_slope(x0)

            def tangency(t, x0=x0):
                ft = sigmoid(t)
                return sigmoid(x0) + ft * (1 - ft) * (t - x0) - ft

            t_ref = brentq(tangency, 1e-9, 60.0)
            ft = sigmoid(t_ref)
            assert w_alg4 == pytest.approx(ft * (1 - ft), abs=1e-6)

    def test_line_dominates_sigmoid_on_segment(self):
        x0 = -4.0
        w, t = refine_tangent_slope(x0)
        xs = np.linspace(x0, t, 200)
        line = sigmoid(x0) + w * (xs - x0)
        assert np.all(line >= sigmoid(xs) - 1e-9)

    def test_anchor_past_inflection_rejected(self):
        with pytest.raises(ParameterError):
            refine_tangent_slope(0.0)
        with pytest.raises(ParameterError):
            refine_tangent_slope(1.0)

    def test_bad_tol_rejected(self):
        with pytest.raises(ParameterError):
            refine_tangent_slope(-1.0, tol=0)

    @settings(max_examples=40, deadline=None)
    @given(x0=st.floats(-25.0, -1e-3))
    def test_slope_in_valid_range(self, x0):
        w, t = refine_tangent_slope(x0)
        assert 0.0 < w <= 0.25
        assert t >= 0.0


def tables(adoption, l):
    return (
        MajorantTable(adoption, l, method="tangent"),
        MajorantTable(adoption, l, method="chord"),
    )


class TestMajorantTable:
    @pytest.mark.parametrize("method", ["tangent", "chord"])
    @pytest.mark.parametrize("alpha,beta,l", [
        (2.0, 1.0, 3),
        (10 / 3, 1.0, 5),
        (3.0, 1.0, 2),
        (1.4, 1.0, 4),
        (5.0, 0.5, 6),
    ])
    def test_majorant_dominates_adoption(self, method, alpha, beta, l):
        adoption = AdoptionModel(alpha=alpha, beta=beta)
        table = MajorantTable(adoption, l, method=method)
        for base in range(l + 1):
            for c in range(base, l + 1):
                phi = table.values[base, c]
                g = adoption.probability(c)
                assert phi >= g - 1e-9, (base, c)

    @pytest.mark.parametrize("method", ["tangent", "chord"])
    def test_gains_nonincreasing_concavity(self, method):
        adoption = AdoptionModel(alpha=10 / 3, beta=1.0)
        table = MajorantTable(adoption, 5, method=method)
        for base in range(5):
            row = table.gains[base, base:5]
            assert np.all(np.diff(row) <= 1e-9), base

    @pytest.mark.parametrize("method", ["tangent", "chord"])
    def test_gains_nonnegative_monotone(self, method):
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        table = MajorantTable(adoption, 4, method=method)
        assert np.all(table.gains >= -1e-12)

    def test_zero_branch_anchor_is_zero(self):
        """tau(empty|empty) must equal sigma(empty) = 0 (see tangent.py)."""
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        for method in ("tangent", "chord"):
            table = MajorantTable(adoption, 3, method=method)
            assert table.anchor(0) == pytest.approx(0.0)

    def test_nonzero_base_anchor_is_logistic(self):
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        tangent, chord = tables(adoption, 3)
        for base in range(1, 4):
            assert tangent.anchor(base) == pytest.approx(
                adoption.logistic(base)
            )
            assert chord.anchor(base) == pytest.approx(
                adoption.probability(base)
            )

    def test_literal_eq6_mode_keeps_logistic_anchor(self):
        adoption = AdoptionModel(alpha=2.0, beta=1.0, zero_if_unreached=False)
        table = MajorantTable(adoption, 3, method="tangent")
        assert table.anchor(0) == pytest.approx(adoption.logistic(0))

    def test_chord_no_looser_than_tangent_above_base_zero(self):
        """The discrete envelope is tighter than the tangent construction."""
        adoption = AdoptionModel(alpha=10 / 3, beta=1.0)
        tangent, chord = tables(adoption, 5)
        for base in range(1, 6):
            assert np.all(
                chord.values[base, base:] <= tangent.values[base, base:] + 1e-9
            )

    def test_full_base_row_is_point(self):
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        table = MajorantTable(adoption, 3)
        assert table.values[3, 3] == pytest.approx(adoption.probability(3))
        assert table.gain(3, 3) == 0.0

    def test_method_validated(self):
        with pytest.raises(ParameterError):
            MajorantTable(AdoptionModel(2.0, 1.0), 3, method="secant")

    def test_pieces_validated(self):
        with pytest.raises(ParameterError):
            MajorantTable(AdoptionModel(2.0, 1.0), 0)


@settings(max_examples=30, deadline=None)
@given(
    alpha=st.floats(0.5, 12.0),
    beta=st.floats(0.2, 3.0),
    l=st.integers(1, 8),
    method=st.sampled_from(["tangent", "chord"]),
)
def test_majorant_properties_hold_generally(alpha, beta, l, method):
    """Dominance + monotonicity + concavity over random parameters."""
    adoption = AdoptionModel(alpha=alpha, beta=beta)
    table = MajorantTable(adoption, l, method=method)
    for base in range(l + 1):
        row = table.values[base, base:]
        g = adoption.probability(np.arange(base, l + 1))
        assert np.all(row >= g - 1e-9)
        assert np.all(np.diff(row) >= -1e-9)  # monotone
        if row.size >= 3:
            assert np.all(np.diff(row, 2) <= 1e-9)  # concave
