"""Tests for the CELF Monte-Carlo greedy IM substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.projection import PieceGraph
from repro.exceptions import SolverError
from repro.graph.digraph import TopicGraph
from repro.im.greedy import celf_greedy_im
from repro.im.ris import ris_influence_maximization
from repro.topics.distributions import unit_piece


def star_graph() -> PieceGraph:
    edges = [(0, i, {0: 1.0}) for i in range(1, 6)]
    g = TopicGraph.from_edges(6, 1, edges)
    return PieceGraph.project(g, unit_piece(0, 1))


class TestCelfGreedy:
    def test_hub_wins_on_star(self):
        seeds, spread = celf_greedy_im(star_graph(), 1, rounds=20, seed=1)
        assert seeds == [0]
        assert spread == pytest.approx(6.0)

    def test_pool_restriction(self):
        seeds, _ = celf_greedy_im(
            star_graph(), 1, pool=np.array([2, 3]), rounds=10, seed=2
        )
        assert seeds[0] in (2, 3)

    def test_empty_pool_rejected(self):
        with pytest.raises(SolverError):
            celf_greedy_im(star_graph(), 1, pool=np.array([], dtype=np.int64))

    def test_matches_ris_quality_on_random_graph(self):
        """RIS and MC greedy must agree on seed-set quality (not identity)."""
        from repro.diffusion.simulate import simulate_piece_spread
        from repro.graph.generators import (
            build_topic_graph,
            preferential_attachment_digraph,
        )

        src, dst = preferential_attachment_digraph(60, 2, seed=3)
        g = build_topic_graph(60, src, dst, 1, prob_mean=0.25, seed=4)
        pg = PieceGraph.project(g, unit_piece(0, 1))
        mc_seeds, _ = celf_greedy_im(pg, 2, rounds=150, seed=5)
        ris_seeds, _ = ris_influence_maximization(pg, 2, theta=6000, seed=6)
        mc_quality = simulate_piece_spread(pg, mc_seeds, rounds=800, seed=7)
        ris_quality = simulate_piece_spread(pg, ris_seeds, rounds=800, seed=7)
        assert mc_quality == pytest.approx(ris_quality, rel=0.15)
