"""Cross-module integration tests.

These exercise the full pipeline — dataset -> campaign -> sampling ->
solvers -> evaluation — and assert the paper's qualitative claims hold
end-to-end at test scale.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.bab import solve_bab, solve_bab_progressive
from repro.core.problem import OIPAProblem
from repro.diffusion.adoption import AdoptionModel
from repro.diffusion.projection import project_campaign
from repro.diffusion.simulate import simulate_adoption_utility
from repro.graph.generators import (
    build_topic_graph,
    preferential_attachment_digraph,
)
from repro.im.baselines import im_baseline, tim_baseline
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import Campaign


@pytest.fixture(scope="module")
def world():
    """A hard-regime instance where multifaceted optimisation matters."""
    src, dst = preferential_attachment_digraph(220, 3, seed=31)
    graph = build_topic_graph(
        220, src, dst, 6, topics_per_edge=2.0, prob_mean=0.18, seed=32
    )
    campaign = Campaign.sample_unit(4, 6, seed=33)
    adoption = AdoptionModel.from_ratio(0.3)  # hard: needs several pieces
    problem = OIPAProblem.with_random_pool(
        graph, campaign, adoption, k=8, pool_fraction=0.25, seed=34
    )
    mrr_opt = MRRCollection.generate(graph, campaign, theta=4000, seed=35)
    mrr_eval = MRRCollection.generate(graph, campaign, theta=8000, seed=36)
    return problem, mrr_opt, mrr_eval


class TestMethodOrdering:
    """The paper's core claim: BAB/BAB-P dominate IM/TIM."""

    @pytest.fixture(scope="class")
    def results(self, world):
        problem, mrr_opt, mrr_eval = world

        def evaluate(plan):
            return mrr_eval.estimate(plan.seed_lists(), problem.adoption)

        bab = solve_bab(problem, mrr_opt, max_nodes=60)
        babp = solve_bab_progressive(problem, mrr_opt, max_nodes=60)
        im = im_baseline(problem, mrr_opt, seed=37)
        tim = tim_baseline(problem, mrr_opt)
        return {
            "BAB": evaluate(bab.plan),
            "BAB-P": evaluate(babp.plan),
            "IM": evaluate(im.plan),
            "TIM": evaluate(tim.plan),
        }

    def test_bab_beats_both_baselines(self, results):
        assert results["BAB"] > results["IM"]
        assert results["BAB"] > results["TIM"]

    def test_bab_progressive_beats_both_baselines(self, results):
        assert results["BAB-P"] > results["IM"]
        assert results["BAB-P"] > results["TIM"]

    def test_bab_progressive_close_to_bab(self, results):
        assert results["BAB-P"] >= (1 - 1 / math.e - 0.5) * results["BAB"]


class TestEstimatorConsistencyEndToEnd:
    def test_solver_plan_utility_confirmed_by_simulation(self, world):
        """The optimised plan's estimate survives forward simulation."""
        problem, mrr_opt, _ = world
        result = solve_bab(problem, mrr_opt, max_nodes=30)
        pgs = project_campaign(problem.graph, problem.campaign)
        simulated, std = simulate_adoption_utility(
            pgs,
            result.plan.seed_lists(),
            problem.adoption,
            rounds=600,
            seed=38,
            return_std=True,
        )
        mrr_se = problem.graph.n * 0.5 / np.sqrt(mrr_opt.theta)
        assert abs(result.utility - simulated) < 4 * (std + mrr_se)


class TestBudgetMonotonicity:
    def test_more_budget_never_hurts(self, world):
        problem, mrr_opt, mrr_eval = world
        utilities = []
        for k in (2, 5, 8):
            sub_problem = OIPAProblem(
                problem.graph,
                problem.campaign,
                problem.adoption,
                k,
                problem.pool,
            )
            result = solve_bab(sub_problem, mrr_opt, max_nodes=30)
            utilities.append(
                mrr_eval.estimate(result.plan.seed_lists(), problem.adoption)
            )
        assert utilities[0] <= utilities[1] + 0.3
        assert utilities[1] <= utilities[2] + 0.3
        assert utilities[-1] > utilities[0]  # strictly better overall


class TestAdoptionDifficulty:
    def test_utility_rises_with_beta_over_alpha(self, world):
        """Fig. 6's trend: easier adoption -> higher utility."""
        problem, mrr_opt, mrr_eval = world
        utilities = []
        for ratio in (0.3, 0.7):
            adoption = AdoptionModel.from_ratio(ratio)
            sub_problem = OIPAProblem(
                problem.graph, problem.campaign, adoption, problem.k,
                problem.pool,
            )
            result = solve_bab(sub_problem, mrr_opt, max_nodes=30)
            utilities.append(
                mrr_eval.estimate(result.plan.seed_lists(), adoption)
            )
        assert utilities[1] > utilities[0]
