"""Tests for ComputeBoundPro (Algorithm 3)."""

from __future__ import annotations

import math

import pytest

from repro.core.compute_bound import CandidateSpace, compute_bound
from repro.core.plan import AssignmentPlan
from repro.core.progressive import compute_bound_progressive
from repro.core.tangent import MajorantTable
from repro.datasets.running_example import running_example_problem
from repro.exceptions import ParameterError, SolverError
from repro.graph.generators import build_topic_graph, preferential_attachment_digraph
from repro.core.problem import OIPAProblem
from repro.diffusion.adoption import AdoptionModel
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import Campaign


@pytest.fixture()
def small_ctx():
    problem = running_example_problem(k=2)
    mrr = MRRCollection.generate(
        problem.graph, problem.campaign, theta=2000, seed=5
    )
    table = MajorantTable(problem.adoption, problem.num_pieces)
    space = CandidateSpace(problem.pool, problem.num_pieces)
    return problem, mrr, table, space


@pytest.fixture(scope="module")
def larger_ctx():
    src, dst = preferential_attachment_digraph(250, 3, seed=6)
    graph = build_topic_graph(
        250, src, dst, 5, topics_per_edge=2.0, prob_mean=0.15, seed=7
    )
    campaign = Campaign.sample_unit(3, 5, seed=8)
    adoption = AdoptionModel.from_ratio(0.3)
    problem = OIPAProblem.with_random_pool(
        graph, campaign, adoption, k=8, pool_fraction=0.3, seed=9
    )
    mrr = MRRCollection.generate(graph, campaign, theta=2500, seed=10)
    table = MajorantTable(adoption, 3)
    space = CandidateSpace(problem.pool, 3)
    return problem, mrr, table, space


class TestSmallInstance:
    def test_matches_optimum_on_running_example(self, small_ctx):
        problem, mrr, table, space = small_ctx
        result = compute_bound_progressive(
            mrr, table, problem.adoption, problem.empty_plan(), space, 2,
            epsilon=0.1,
        )
        assert result.plan == AssignmentPlan([{0}, {4}])

    def test_upper_dominates_lower(self, small_ctx):
        problem, mrr, table, space = small_ctx
        result = compute_bound_progressive(
            mrr, table, problem.adoption, problem.empty_plan(), space, 2
        )
        assert result.upper >= result.lower - 1e-9

    def test_epsilon_validated(self, small_ctx):
        problem, mrr, table, space = small_ctx
        with pytest.raises(ParameterError):
            compute_bound_progressive(
                mrr, table, problem.adoption, problem.empty_plan(), space, 2,
                epsilon=0.0,
            )

    def test_oversized_partial_rejected(self, small_ctx):
        problem, mrr, table, space = small_ctx
        partial = AssignmentPlan([{0, 1}, {2, 3}])
        with pytest.raises(SolverError):
            compute_bound_progressive(
                mrr, table, problem.adoption, partial, space, 2
            )

    def test_respects_exclusions(self, small_ctx):
        problem, mrr, table, space = small_ctx
        child = space.without(0, 0)
        result = compute_bound_progressive(
            mrr, table, problem.adoption, problem.empty_plan(), child, 2,
            epsilon=0.1,
        )
        assert (0, 0) not in result.plan


class TestTheorem3Guarantee:
    @pytest.mark.parametrize("epsilon", [0.1, 0.3, 0.5, 0.9])
    def test_ratio_vs_greedy_tau(self, larger_ctx, epsilon):
        """Lemma 3 / Theorem 3: tau(prog) >= (1-1/e-eps) * tau(opt).

        The greedy's tau over-estimates tau(opt) by at most 1/(1-1/e),
        so the conservative check is
        tau(prog) >= (1 - 1/e - eps) * tau(greedy).
        """
        problem, mrr, table, space = larger_ctx
        greedy = compute_bound(
            mrr, table, problem.adoption, problem.empty_plan(), space,
            problem.k,
        )
        prog = compute_bound_progressive(
            mrr, table, problem.adoption, problem.empty_plan(), space,
            problem.k, epsilon=epsilon,
        )
        ratio = 1.0 - math.exp(-1) - epsilon
        assert prog.upper >= ratio * greedy.upper - 1e-9

    def test_evaluations_fewer_than_plain_greedy(self, larger_ctx):
        """Theorem 4's point: far fewer tau evaluations than O(k P l)."""
        problem, mrr, table, space = larger_ctx
        plain = compute_bound(
            mrr, table, problem.adoption, problem.empty_plan(), space,
            problem.k, lazy=False,
        )
        prog = compute_bound_progressive(
            mrr, table, problem.adoption, problem.empty_plan(), space,
            problem.k, epsilon=0.5,
        )
        assert prog.evaluations < plain.evaluations / 2

    def test_smaller_epsilon_no_worse_quality(self, larger_ctx):
        """Fig. 3's trend: decreasing eps should not hurt (weakly)."""
        problem, mrr, table, space = larger_ctx
        fine = compute_bound_progressive(
            mrr, table, problem.adoption, problem.empty_plan(), space,
            problem.k, epsilon=0.1,
        )
        coarse = compute_bound_progressive(
            mrr, table, problem.adoption, problem.empty_plan(), space,
            problem.k, epsilon=0.9,
        )
        assert fine.upper >= coarse.upper - 1e-9

    def test_selection_is_threshold_consistent(self, larger_ctx):
        """Every selected pair had marginal >= the final threshold once."""
        problem, mrr, table, space = larger_ctx
        result = compute_bound_progressive(
            mrr, table, problem.adoption, problem.empty_plan(), space,
            problem.k, epsilon=0.5,
        )
        assert 0 < result.selected <= problem.k
        assert result.first_pick in result.plan.assignments()
