"""Tests for adaptive MRR sizing."""

from __future__ import annotations

import pytest

from repro.datasets.running_example import (
    running_example_adoption,
    running_example_campaign,
    running_example_graph,
)
from repro.exceptions import SamplingError
from repro.sampling.adaptive import generate_adaptive, theta_for_error_target
from repro.sampling.theta import hoeffding_theta


class TestThetaForErrorTarget:
    def test_matches_hoeffding_with_floor(self):
        assert theta_for_error_target(0.01, 0.05) == hoeffding_theta(0.01, 0.05)
        assert theta_for_error_target(0.4, 0.4, minimum=5000) == 5000

    def test_tighter_targets_need_more(self):
        assert theta_for_error_target(0.005, 0.05) > theta_for_error_target(
            0.02, 0.05
        )


class TestGenerateAdaptive:
    @pytest.fixture()
    def world(self):
        return (
            running_example_graph(),
            running_example_campaign(),
            running_example_adoption(),
        )

    def test_converges_on_small_instance(self, world):
        graph, campaign, adoption = world
        mrr, info = generate_adaptive(
            graph,
            campaign,
            adoption,
            [[0], [4]],
            epsilon=0.05,
            delta=0.1,
            initial_theta=500,
            seed=1,
        )
        assert info["trace"], "doubling trace must be recorded"
        assert mrr.theta >= 250
        # The final estimate agrees with the known exact value.
        assert mrr.estimate([[0], [4]], adoption) == pytest.approx(
            1.05, abs=0.08
        )

    def test_ceiling_respected(self, world):
        graph, campaign, adoption = world
        mrr, info = generate_adaptive(
            graph,
            campaign,
            adoption,
            [[0], [4]],
            epsilon=0.01,
            delta=0.05,
            initial_theta=200,
            max_theta=800,
            seed=2,
        )
        assert mrr.theta <= 800
        assert info["hoeffding_ceiling"] == 800

    def test_trace_thetas_grow(self, world):
        graph, campaign, adoption = world
        _, info = generate_adaptive(
            graph,
            campaign,
            adoption,
            [[0], [4]],
            epsilon=0.005,
            delta=0.05,
            initial_theta=100,
            max_theta=1600,
            seed=3,
        )
        thetas = [step["theta"] for step in info["trace"]]
        assert thetas == sorted(thetas)

    def test_probe_plan_validated(self, world):
        graph, campaign, adoption = world
        with pytest.raises(SamplingError):
            generate_adaptive(
                graph, campaign, adoption, [[0]], epsilon=0.05, delta=0.1
            )

    def test_deterministic_given_seed(self, world):
        graph, campaign, adoption = world
        a, _ = generate_adaptive(
            graph, campaign, adoption, [[0], [4]],
            epsilon=0.05, delta=0.1, initial_theta=400, seed=4,
        )
        b, _ = generate_adaptive(
            graph, campaign, adoption, [[0], [4]],
            epsilon=0.05, delta=0.1, initial_theta=400, seed=4,
        )
        assert (a.roots == b.roots).all()
