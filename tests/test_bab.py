"""Tests for the branch-and-bound framework (Algorithm 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.bab import BranchAndBoundSolver, solve_bab, solve_bab_progressive
from repro.core.brute_force import brute_force_oipa
from repro.core.plan import AssignmentPlan
from repro.core.problem import OIPAProblem
from repro.datasets.running_example import running_example_problem
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import BudgetExhaustedError, SolverError
from repro.graph.generators import build_topic_graph, preferential_attachment_digraph
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import Campaign


@pytest.fixture()
def example():
    problem = running_example_problem(k=2)
    mrr = MRRCollection.generate(
        problem.graph, problem.campaign, theta=2500, seed=11
    )
    return problem, mrr


@pytest.fixture(scope="module")
def random_instance():
    """A small but non-trivial instance in the non-concave regime."""
    src, dst = preferential_attachment_digraph(80, 2, seed=12)
    graph = build_topic_graph(
        80, src, dst, 4, topics_per_edge=2.0, prob_mean=0.2, seed=13
    )
    campaign = Campaign.sample_unit(2, 4, seed=14)
    adoption = AdoptionModel.from_ratio(0.3)  # alpha = 10/3: hard regime
    pool = np.arange(0, 80, 10)  # 8 promoters
    problem = OIPAProblem(graph, campaign, adoption, k=3, pool=pool)
    mrr = MRRCollection.generate(graph, campaign, theta=1500, seed=15)
    return problem, mrr


class TestRunningExample:
    def test_bab_finds_paper_optimum(self, example):
        problem, mrr = example
        result = solve_bab(problem, mrr, gap_tolerance=0.0)
        assert result.plan == AssignmentPlan([{0}, {4}])
        assert result.utility == pytest.approx(1.05, abs=0.05)

    def test_bab_progressive_finds_paper_optimum(self, example):
        problem, mrr = example
        result = solve_bab_progressive(
            problem, mrr, epsilon=0.1, gap_tolerance=0.0
        )
        assert result.plan == AssignmentPlan([{0}, {4}])

    def test_gap_and_bounds_consistent(self, example):
        problem, mrr = example
        result = solve_bab(problem, mrr, gap_tolerance=0.0)
        assert result.upper_bound >= result.utility - 1e-9
        assert result.gap >= 0.0

    def test_plan_within_budget_and_pool(self, example):
        problem, mrr = example
        result = solve_bab(problem, mrr)
        problem.validate_plan(result.plan)


class TestApproximationGuarantee:
    def test_bab_vs_brute_force(self, random_instance):
        """Theorem 2: utility >= (1 - 1/e) * OPT on the same MRR sets."""
        problem, mrr = random_instance
        optimum_plan, optimum = brute_force_oipa(problem, mrr)
        result = solve_bab(problem, mrr, gap_tolerance=0.0)
        assert result.utility >= (1 - 1 / math.e) * optimum - 1e-9
        # And the B&B upper bound must dominate the true optimum's
        # guarantee-scaled value.
        assert result.upper_bound >= (1 - 1 / math.e) * optimum - 1e-9

    @pytest.mark.parametrize("epsilon", [0.1, 0.5])
    def test_bab_progressive_vs_brute_force(self, random_instance, epsilon):
        """Theorem 3: utility >= (1 - 1/e - eps) * OPT."""
        problem, mrr = random_instance
        _, optimum = brute_force_oipa(problem, mrr)
        result = solve_bab_progressive(
            problem, mrr, epsilon=epsilon, gap_tolerance=0.0
        )
        assert result.utility >= (1 - 1 / math.e - epsilon) * optimum - 1e-9

    def test_chord_majorant_also_guaranteed(self, random_instance):
        problem, mrr = random_instance
        _, optimum = brute_force_oipa(problem, mrr)
        result = BranchAndBoundSolver(
            problem, mrr, gap_tolerance=0.0, majorant="chord"
        ).solve()
        assert result.utility >= (1 - 1 / math.e) * optimum - 1e-9


class TestDiagnosticsAndTermination:
    def test_diagnostics_populated(self, random_instance):
        problem, mrr = random_instance
        result = solve_bab(problem, mrr, gap_tolerance=0.0)
        d = result.diagnostics
        assert d.bounds_computed >= 1
        assert d.tau_evaluations > 0
        assert d.elapsed_seconds >= 0.0
        assert d.termination in {"gap", "exhausted", "node_budget"}

    def test_node_budget_returns_incumbent(self, random_instance):
        problem, mrr = random_instance
        result = solve_bab(problem, mrr, gap_tolerance=0.0, max_nodes=1)
        assert result.diagnostics.termination in {"node_budget", "gap", "exhausted"}
        assert result.plan.size <= problem.k

    def test_strict_budget_raises(self, random_instance):
        problem, mrr = random_instance
        solver = BranchAndBoundSolver(
            problem, mrr, gap_tolerance=0.0, max_nodes=1, strict_budget=True
        )
        try:
            result = solver.solve()
            # Converging within one node is legal; then no raise.
            assert result.diagnostics.termination != "node_budget"
        except BudgetExhaustedError as err:
            assert err.incumbent is not None

    def test_loose_gap_terminates_faster(self, random_instance):
        problem, mrr = random_instance
        tight = solve_bab(problem, mrr, gap_tolerance=0.0)
        loose = solve_bab(problem, mrr, gap_tolerance=0.5)
        assert (
            loose.diagnostics.nodes_expanded
            <= tight.diagnostics.nodes_expanded
        )

    def test_progressive_fewer_evaluations(self, random_instance):
        problem, mrr = random_instance
        plain = solve_bab(problem, mrr, gap_tolerance=0.01)
        prog = solve_bab_progressive(problem, mrr, gap_tolerance=0.01)
        evals_per_bound_plain = (
            plain.diagnostics.tau_evaluations / plain.diagnostics.bounds_computed
        )
        evals_per_bound_prog = (
            prog.diagnostics.tau_evaluations / prog.diagnostics.bounds_computed
        )
        assert evals_per_bound_prog < evals_per_bound_plain


class TestValidation:
    def test_bad_bound_kind(self, example):
        problem, mrr = example
        with pytest.raises(SolverError):
            BranchAndBoundSolver(problem, mrr, bound="magic")

    def test_mrr_piece_mismatch(self, example):
        problem, _ = example
        other = MRRCollection.generate(
            problem.graph,
            Campaign.sample_unit(3, 2, seed=1),
            theta=50,
            seed=1,
        )
        with pytest.raises(SolverError):
            BranchAndBoundSolver(problem, other)

    def test_mrr_graph_mismatch(self, example, random_instance):
        problem, _ = example
        _, other_mrr = random_instance
        with pytest.raises(SolverError):
            BranchAndBoundSolver(problem, other_mrr)
