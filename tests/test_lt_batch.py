"""The batched LT engine: cross-backend equivalence and model wiring.

Mirrors ``tests/test_batch_sampling.py`` for the Linear Threshold
substrate:

* **Exact stream equality** — a ``block_size=1`` :class:`BatchLTSampler`
  consumes the rng stream bit-for-bit like the reference
  single-predecessor walk, and the batched LT forward cascade draws the
  same thresholds and produces the same activation mask as the
  per-vertex loop (property-tested over random normalised instances).
* **Distributional equivalence** for real (multi-walk) blocks — matched
  sample counts must agree on the RR-set size histogram (chi-square
  homogeneity) and on membership probabilities with exact values.
* **Model wiring** — the ``model="ic"|"lt"`` knob on MRR generation,
  RIS selection, spread simulation, and the AU simulator (including
  per-piece heterogeneous model lists) routes through the LT engine,
  and the ``REPRO_BACKEND`` env override pins the CI backend matrix.
"""

from __future__ import annotations

import math
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.diffusion.adoption import AdoptionModel
from repro.diffusion.projection import PieceGraph, project_campaign
from repro.diffusion.simulate import (
    simulate_adoption_utility,
    simulate_model_cascade,
    simulate_piece_spread,
)
from repro.diffusion.threshold import (
    LinearThresholdSampler,
    normalize_lt_weights,
    simulate_lt_cascade,
)
from repro.exceptions import ParameterError, SamplingError
from repro.graph.digraph import TopicGraph
from repro.graph.generators import (
    build_topic_graph,
    preferential_attachment_digraph,
)
from repro.im.ris import ris_influence_maximization
from repro.sampling.batch import (
    BACKENDS,
    DEFAULT_MODEL,
    BatchLTSampler,
    check_model,
    simulate_lt_cascade_batch,
)
from repro.sampling.mrr import MRRCollection, resolve_models
from repro.topics.distributions import Campaign, unit_piece
from repro.utils.rng import as_generator

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

world_params = st.fixed_dictionaries(
    {
        "n": st.integers(10, 80),
        "edges_per_vertex": st.integers(1, 4),
        "prob_mean": st.sampled_from([0.05, 0.2, 0.5]),
        "seed": st.integers(0, 10_000),
    }
)


def build_lt_piece_graph(params) -> PieceGraph:
    """A random piece graph with LT-feasible (normalised) weights."""
    src, dst = preferential_attachment_digraph(
        params["n"], params["edges_per_vertex"], seed=params["seed"]
    )
    graph = build_topic_graph(
        params["n"],
        src,
        dst,
        3,
        topics_per_edge=1.5,
        prob_mean=params["prob_mean"],
        seed=params["seed"] + 1,
    )
    campaign = Campaign.sample_unit(1, 3, seed=params["seed"] + 2)
    return normalize_lt_weights(project_campaign(graph, campaign)[0])


def project(edges, n, topics=1, piece=0):
    g = TopicGraph.from_edges(n, topics, edges)
    return PieceGraph.project(g, unit_piece(piece, topics))


def chi2_critical(df: int, z: float = 3.09) -> float:
    """Wilson-Hilferty chi-square quantile at alpha ~= 0.001."""
    h = 2.0 / (9.0 * df)
    return df * (1.0 - h + z * math.sqrt(h)) ** 3


def chi2_homogeneity(a: np.ndarray, b: np.ndarray) -> tuple[float, int]:
    """Two-sample chi-square over integer-valued samples of equal count.

    Bins with fewer than 10 combined observations are merged into one
    tail bin so the asymptotic approximation holds.
    """
    assert a.size == b.size
    top = int(max(a.max(), b.max())) + 1
    ca = np.bincount(a, minlength=top).astype(np.float64)
    cb = np.bincount(b, minlength=top).astype(np.float64)
    big = (ca + cb) >= 10
    stat = float((((ca - cb) ** 2)[big] / (ca + cb)[big]).sum())
    bins = int(big.sum())
    ra, rb = ca[~big].sum(), cb[~big].sum()
    if ra + rb > 0:
        stat += (ra - rb) ** 2 / (ra + rb)
        bins += 1
    return stat, max(bins - 1, 1)


class TestExactStreamEquality:
    @given(params=world_params)
    @SETTINGS
    def test_single_walk_blocks_match_reference_sampler(self, params):
        """block_size=1 preserves draw order: bitwise-equal CSR output."""
        pg = build_lt_piece_graph(params)
        roots = as_generator(params["seed"]).integers(0, pg.n, size=40)
        ref = LinearThresholdSampler(pg, backend="python")
        ref_ptr, ref_nodes = ref.sample_many(roots, as_generator(3))
        batch = BatchLTSampler(pg, block_size=1)
        ptr, nodes = batch.sample_many(roots, as_generator(3))
        assert np.array_equal(ref_ptr, ptr)
        assert np.array_equal(ref_nodes, nodes)

    @given(params=world_params)
    @SETTINGS
    def test_lt_cascade_matches_reference_loop(self, params):
        """The batch LT kernel draws the same thresholds, same mask."""
        pg = build_lt_piece_graph(params)
        seeds = as_generator(params["seed"]).integers(0, pg.n, size=3)
        ref = simulate_lt_cascade(pg, seeds, as_generator(17), backend="python")
        batch = simulate_lt_cascade_batch(pg, seeds, as_generator(17))
        assert np.array_equal(ref, batch)
        default = simulate_lt_cascade(pg, seeds, as_generator(17))
        assert np.array_equal(ref, default)

    @given(params=world_params)
    @SETTINGS
    def test_walks_are_duplicate_free_with_root_first(self, params):
        pg = build_lt_piece_graph(params)
        roots = as_generator(params["seed"] + 7).integers(0, pg.n, size=30)
        ptr, nodes = BatchLTSampler(pg).sample_many(roots, as_generator(5))
        assert ptr.shape == (roots.size + 1,)
        assert ptr[-1] == nodes.size
        for i, root in enumerate(roots):
            rr = nodes[ptr[i] : ptr[i + 1]]
            assert rr[0] == root
            assert len(set(rr.tolist())) == rr.size


class TestDeterministicStructure:
    def test_certain_chain_walk_is_ancestry(self):
        pg = project([(0, 1, {0: 1.0}), (1, 2, {0: 1.0})], 3)
        ptr, nodes = BatchLTSampler(pg).sample_many(
            np.array([2, 1, 0]), as_generator(0)
        )
        assert nodes[ptr[0] : ptr[1]].tolist() == [2, 1, 0]
        assert nodes[ptr[1] : ptr[2]].tolist() == [1, 0]
        assert nodes[ptr[2] : ptr[3]].tolist() == [0]

    def test_dead_edges_walk_is_root_only(self):
        pg = project([(0, 1, {0: 0.0})], 2)
        assert BatchLTSampler(pg).sample(1, as_generator(0)).tolist() == [1]

    def test_cycle_is_cut(self):
        pg = project(
            [(0, 1, {0: 1.0}), (1, 2, {0: 1.0}), (2, 0, {0: 1.0})], 3
        )
        rr = BatchLTSampler(pg).sample(0, as_generator(4))
        assert sorted(rr.tolist()) == [0, 1, 2]
        assert len(set(rr.tolist())) == rr.size

    def test_root_range_checked(self):
        pg = project([], 2)
        with pytest.raises(SamplingError):
            BatchLTSampler(pg).sample_many(np.array([5]), as_generator(0))

    def test_empty_roots(self):
        pg = project([], 2)
        ptr, nodes = BatchLTSampler(pg).sample_many(
            np.array([], dtype=np.int64), as_generator(0)
        )
        assert ptr.tolist() == [0]
        assert nodes.size == 0

    def test_scratch_reuse_across_blocks(self):
        """Marks must not leak between blocks of the same sampler."""
        pg = project([(0, 1, {0: 1.0}), (1, 2, {0: 1.0})], 3)
        sampler = BatchLTSampler(pg, block_size=2)
        ptr, nodes = sampler.sample_many(np.array([2, 2, 2]), as_generator(0))
        for i in range(3):
            assert nodes[ptr[i] : ptr[i + 1]].tolist() == [2, 1, 0]

    def test_invalid_block_size_rejected(self):
        pg = project([], 2)
        with pytest.raises(ParameterError):
            BatchLTSampler(pg, block_size=0)


class TestDistributionalEquivalence:
    @pytest.fixture(scope="class")
    def lt_world(self):
        src, dst = preferential_attachment_digraph(100, 3, seed=61)
        graph = build_topic_graph(
            100, src, dst, 4, topics_per_edge=2.0, prob_mean=0.3, seed=62
        )
        campaign = Campaign.sample_unit(2, 4, seed=63)
        pgs = [
            normalize_lt_weights(pg)
            for pg in project_campaign(graph, campaign)
        ]
        return graph, campaign, pgs

    def test_membership_probability_matches_exact_value(self):
        """P(0 in RR(2)) on a two-hop path is w(1,2)*w(0,1) = 0.3."""
        pg = project([(0, 1, {0: 0.6}), (1, 2, {0: 0.5})], 3)
        ptr, nodes = BatchLTSampler(pg).sample_many(
            np.full(6000, 2, dtype=np.int64), as_generator(42)
        )
        hits = sum(0 in nodes[ptr[i] : ptr[i + 1]] for i in range(6000))
        assert hits / 6000 == pytest.approx(0.3, abs=0.03)

    def test_size_distribution_chi_square(self, lt_world):
        """Batched blocks agree with the reference walk in distribution."""
        _, _, pgs = lt_world
        pg = pgs[0]
        roots = as_generator(1).integers(0, pg.n, size=4000)
        p_ptr, _ = LinearThresholdSampler(pg, backend="python").sample_many(
            roots, as_generator(2)
        )
        b_ptr, _ = BatchLTSampler(pg).sample_many(roots, as_generator(3))
        stat, df = chi2_homogeneity(np.diff(p_ptr), np.diff(b_ptr))
        assert stat < chi2_critical(df), (
            f"chi2 {stat:.1f} over critical {chi2_critical(df):.1f} (df={df})"
        )

    def test_mean_walk_length_agrees_between_backends(self, lt_world):
        _, _, pgs = lt_world
        roots = as_generator(4).integers(0, pgs[0].n, size=3000)
        sampler = LinearThresholdSampler(pgs[0])
        p_ptr, _ = sampler.sample_many(roots, as_generator(5), backend="python")
        b_ptr, _ = sampler.sample_many(roots, as_generator(6), backend="batch")
        assert float(np.diff(b_ptr).mean()) == pytest.approx(
            float(np.diff(p_ptr).mean()), rel=0.1
        )

    def test_lt_estimates_agree_with_simulation(self, lt_world):
        """MRR-on-LT estimate tracks the forward LT simulation (Lemma 2)."""
        graph, campaign, pgs = lt_world
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        plan = [[0, 5, 9], [1, 7, 12]]
        estimates = {}
        for backend in BACKENDS:
            mrr = MRRCollection.generate(
                graph,
                campaign,
                theta=4000,
                seed=8,
                piece_graphs=pgs,
                backend=backend,
                model="lt",
            )
            estimates[backend] = mrr.estimate(plan, adoption)
        sim = simulate_adoption_utility(
            pgs, plan, adoption, rounds=400, seed=9, model="lt"
        )
        assert estimates["batch"] == pytest.approx(
            estimates["python"], rel=0.1
        )
        assert estimates["batch"] == pytest.approx(sim, rel=0.15)


class TestModelWiring:
    def test_check_model(self):
        assert check_model(None) == DEFAULT_MODEL == "ic"
        assert check_model("lt") == "lt"
        with pytest.raises(ParameterError):
            check_model("sir")

    def test_resolve_models_scalar_and_sequence(self):
        assert resolve_models(None, 3) == ("ic", "ic", "ic")
        assert resolve_models("lt", 2) == ("lt", "lt")
        assert resolve_models(["ic", "lt"], 2) == ("ic", "lt")
        with pytest.raises(SamplingError):
            resolve_models(["ic"], 2)
        with pytest.raises(ParameterError):
            resolve_models(["ic", "sir"], 2)

    def test_simulate_model_cascade_dispatches(self):
        pg = project([(0, 1, {0: 1.0})], 2)
        ic = simulate_model_cascade(pg, [0], as_generator(0), model="ic")
        lt = simulate_model_cascade(pg, [0], as_generator(0), model="lt")
        assert ic.tolist() == [True, True]
        assert lt.tolist() == [True, True]
        with pytest.raises(ParameterError):
            simulate_model_cascade(pg, [0], as_generator(0), model="sir")

    def test_piece_spread_lt_matches_exact_value(self):
        pg = project([(0, 1, {0: 0.4})], 2)
        spread = simulate_piece_spread(
            pg, [0], rounds=4000, seed=1, model="lt"
        )
        assert spread == pytest.approx(1.4, abs=0.03)

    def test_ris_lt_selects_hub_on_star(self):
        edges = [(0, i, {0: 1.0}) for i in range(1, 6)]
        pg = project(edges, 6)
        seeds, spread = ris_influence_maximization(
            pg, 1, theta=500, seed=1, model="lt"
        )
        assert seeds == [0]
        assert spread == pytest.approx(6.0, abs=0.5)

    def test_heterogeneous_models_per_piece(self):
        """A mixed IC/LT campaign samples each piece under its model."""
        src, dst = preferential_attachment_digraph(40, 2, seed=71)
        graph = build_topic_graph(
            40, src, dst, 2, topics_per_edge=1.5, prob_mean=0.3, seed=72
        )
        campaign = Campaign.sample_unit(2, 2, seed=73)
        pgs = [
            normalize_lt_weights(pg)
            for pg in project_campaign(graph, campaign)
        ]
        mrr = MRRCollection.generate(
            graph,
            campaign,
            theta=300,
            seed=74,
            piece_graphs=pgs,
            model=["ic", "lt"],
        )
        assert mrr.num_pieces == 2
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        est = mrr.estimate([[0, 3], [1]], adoption)
        sim = simulate_adoption_utility(
            pgs, [[0, 3], [1]], adoption, rounds=300, seed=75,
            model=["ic", "lt"],
        )
        assert est == pytest.approx(sim, rel=0.3)

    def test_adoption_utility_rejects_bad_model_spec(self):
        pg = project([(0, 1, {0: 0.5})], 2)
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        with pytest.raises(ParameterError):
            simulate_adoption_utility(
                [pg, pg], [[0], [1]], adoption, rounds=2, model=["ic"]
            )


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        pg = project([], 2)
        with pytest.raises(ParameterError):
            LinearThresholdSampler(pg, backend="numba")
        with pytest.raises(ParameterError):
            simulate_lt_cascade(pg, [0], as_generator(0), backend="numba")

    def test_per_call_backend_override(self):
        pg = project([(0, 1, {0: 1.0})], 2)
        sampler = LinearThresholdSampler(pg, backend="batch")
        assert sampler.backend == "batch"
        ptr, nodes = sampler.sample_many(
            np.array([1]), as_generator(0), backend="python"
        )
        assert nodes[ptr[0] : ptr[1]].tolist() == [1, 0]

    def test_repro_backend_env_sets_default(self):
        """The CI matrix knob: REPRO_BACKEND overrides the default."""
        code = (
            "import repro.sampling.batch as b; "
            "assert b.DEFAULT_BACKEND == 'python', b.DEFAULT_BACKEND"
        )
        env = dict(os.environ, REPRO_BACKEND="python")
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
        )
        assert proc.returncode == 0, proc.stderr.decode()

    def test_repro_backend_env_empty_means_default(self):
        """`REPRO_BACKEND= cmd` (the unset-for-one-command idiom) must
        fall back to the batch default instead of failing at import."""
        code = (
            "import repro.sampling.batch as b; "
            "assert b.DEFAULT_BACKEND == 'batch', b.DEFAULT_BACKEND"
        )
        env = dict(os.environ, REPRO_BACKEND="")
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
        )
        assert proc.returncode == 0, proc.stderr.decode()

    def test_repro_backend_env_rejects_unknown(self):
        env = dict(os.environ, REPRO_BACKEND="numba")
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", "import repro.sampling.batch"],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
        )
        assert proc.returncode != 0
        assert b"REPRO_BACKEND" in proc.stderr


class TestFeasibilityValidation:
    def test_samplers_reject_unnormalized_weights(self):
        """Excess incoming mass would silently inflate every RR-based
        estimate (the walk always finds a predecessor) — fail loudly."""
        pg = project([(0, 2, {0: 0.8}), (1, 2, {0: 0.8})], 3)
        with pytest.raises(ParameterError, match="normalise"):
            LinearThresholdSampler(pg)
        with pytest.raises(ParameterError, match="normalise"):
            BatchLTSampler(pg)
        with pytest.raises(ParameterError, match="normalise"):
            ris_influence_maximization(pg, 1, theta=10, seed=0, model="lt")
        norm = normalize_lt_weights(pg)
        assert LinearThresholdSampler(norm).sample(2, as_generator(0)).size
        assert BatchLTSampler(norm).sample(2, as_generator(0)).size


class TestNormalizeRegressions:
    def test_negative_weight_rejected(self):
        pg = project([(0, 1, {0: 0.5}), (2, 1, {0: 0.3})], 3)
        pg.in_prob[0] = -0.1
        with pytest.raises(ParameterError, match="negative"):
            normalize_lt_weights(pg)

    @given(params=world_params)
    @SETTINGS
    def test_vectorized_rebuild_keeps_views_consistent(self, params):
        """Forward and reverse views stay the same multiset after rescale,
        and every in-sum is <= 1."""
        src, dst = preferential_attachment_digraph(
            params["n"], params["edges_per_vertex"], seed=params["seed"]
        )
        graph = build_topic_graph(
            params["n"], src, dst, 3,
            topics_per_edge=1.5, prob_mean=0.5, seed=params["seed"] + 1,
        )
        campaign = Campaign.sample_unit(1, 3, seed=params["seed"] + 2)
        pg = project_campaign(graph, campaign)[0]
        norm = normalize_lt_weights(pg)
        assert np.allclose(
            np.sort(norm.out_prob), np.sort(norm.in_prob)
        )
        for v in range(norm.n):
            lo, hi = norm.in_ptr[v], norm.in_ptr[v + 1]
            assert float(norm.in_prob[lo:hi].sum()) <= 1.0 + 1e-9
        # forward slots rescale by their *destination* vertex's factor
        for s in range(norm.num_edges):
            dst_v = int(norm.out_dst[s])
            lo, hi = pg.in_ptr[dst_v], pg.in_ptr[dst_v + 1]
            total = float(pg.in_prob[lo:hi].sum())
            expected = pg.out_prob[s] / total if total > 1.0 else pg.out_prob[s]
            assert norm.out_prob[s] == pytest.approx(expected)
