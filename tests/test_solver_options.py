"""Option-matrix tests for the branch-and-bound solver.

The solver exposes four orthogonal knobs (bound kind, laziness,
majorant, gap tolerance).  These tests pin the interactions the other
test files do not already cover.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.bab import BranchAndBoundSolver
from repro.core.brute_force import brute_force_oipa
from repro.core.problem import OIPAProblem
from repro.diffusion.adoption import AdoptionModel
from repro.graph.generators import (
    build_topic_graph,
    preferential_attachment_digraph,
)
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import Campaign


@pytest.fixture(scope="module")
def instance():
    src, dst = preferential_attachment_digraph(70, 2, seed=61)
    graph = build_topic_graph(
        70, src, dst, 3, topics_per_edge=1.5, prob_mean=0.25, seed=62
    )
    campaign = Campaign.sample_unit(2, 3, seed=63)
    adoption = AdoptionModel.from_ratio(0.3)
    pool = np.arange(0, 70, 9)
    problem = OIPAProblem(graph, campaign, adoption, k=3, pool=pool)
    mrr = MRRCollection.generate(graph, campaign, theta=1200, seed=64)
    return problem, mrr


@pytest.mark.parametrize("lazy", [False, True])
@pytest.mark.parametrize("majorant", ["tangent", "chord"])
def test_option_matrix_all_guaranteed(instance, lazy, majorant):
    """Every (lazy, majorant) combination keeps the (1-1/e) guarantee."""
    problem, mrr = instance
    _, optimum = brute_force_oipa(problem, mrr)
    solver = BranchAndBoundSolver(
        problem,
        mrr,
        gap_tolerance=0.0,
        lazy=lazy,
        majorant=majorant,
    )
    result = solver.solve()
    assert result.utility >= (1 - 1 / math.e) * optimum - 1e-9


def test_lazy_and_plain_same_incumbent(instance):
    """Laziness changes work, never the selected plans."""
    problem, mrr = instance
    plain = BranchAndBoundSolver(
        problem, mrr, gap_tolerance=0.0, lazy=False
    ).solve()
    lazy = BranchAndBoundSolver(
        problem, mrr, gap_tolerance=0.0, lazy=True
    ).solve()
    assert lazy.utility == pytest.approx(plain.utility)
    assert (
        lazy.diagnostics.tau_evaluations < plain.diagnostics.tau_evaluations
    )


def test_progressive_epsilon_affects_work(instance):
    problem, mrr = instance
    fine = BranchAndBoundSolver(
        problem, mrr, bound="progressive", epsilon=0.05, gap_tolerance=0.0
    ).solve()
    coarse = BranchAndBoundSolver(
        problem, mrr, bound="progressive", epsilon=0.9, gap_tolerance=0.0
    ).solve()
    per_bound_fine = fine.diagnostics.tau_evaluations / max(
        fine.diagnostics.bounds_computed, 1
    )
    per_bound_coarse = coarse.diagnostics.tau_evaluations / max(
        coarse.diagnostics.bounds_computed, 1
    )
    assert per_bound_coarse <= per_bound_fine


def test_gap_zero_explores_more_than_huge_gap(instance):
    problem, mrr = instance
    exact = BranchAndBoundSolver(problem, mrr, gap_tolerance=0.0).solve()
    loose = BranchAndBoundSolver(problem, mrr, gap_tolerance=10.0).solve()
    assert (
        loose.diagnostics.nodes_expanded <= exact.diagnostics.nodes_expanded
    )
    # The loose run returns the root greedy solution.
    assert loose.diagnostics.bounds_computed >= 1


def test_negative_gap_rejected(instance):
    from repro.exceptions import ParameterError

    problem, mrr = instance
    with pytest.raises(ParameterError):
        BranchAndBoundSolver(problem, mrr, gap_tolerance=-0.1)


def test_budget_larger_than_candidates(instance):
    """k above the candidate pair count must terminate cleanly."""
    problem, mrr = instance
    big = OIPAProblem(
        problem.graph,
        problem.campaign,
        problem.adoption,
        k=problem.pool_size * problem.num_pieces + 5,
        pool=problem.pool,
    )
    result = BranchAndBoundSolver(big, mrr, gap_tolerance=0.0).solve()
    assert result.plan.size <= big.k
    assert result.utility > 0


def test_k_equals_one(instance):
    problem, mrr = instance
    single = OIPAProblem(
        problem.graph, problem.campaign, problem.adoption, 1, problem.pool
    )
    result = BranchAndBoundSolver(single, mrr, gap_tolerance=0.0).solve()
    assert result.plan.size == 1
    _, optimum = brute_force_oipa(single, mrr)
    # k=1: greedy == optimal, so BAB must be exactly optimal.
    assert result.utility == pytest.approx(optimum)
