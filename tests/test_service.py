"""The influence service: specs, spool, queue, single-flight, HTTP."""

from __future__ import annotations

import json
import os
import threading
import urllib.error
import urllib.request

import pytest

from repro import ConfigError, Runtime
from repro.service import (
    JobQueue,
    JobRecord,
    JobSpec,
    JobStore,
    create_server,
    execute_spec,
)

#: One small, fast, fully deterministic campaign job.
SPEC = {
    "dataset": "lastfm",
    "scale": 0.08,
    "theta": 300,
    "k": 3,
    "method": "bab-p",
    "options": {"max_nodes": 20},
}


def make_queue(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("runtime", Runtime(artifacts=str(tmp_path / "art")))
    kwargs.setdefault("spool_dir", None)
    return JobQueue(**kwargs)


def sample_runs(record) -> int:
    return sum(
        1
        for e in record.trace
        if e["stage"] == "sample" and e["action"] == "run"
    )


# -- JobSpec ---------------------------------------------------------------


def test_spec_round_trip_and_fingerprint():
    spec = JobSpec.from_payload(SPEC)
    again = JobSpec.from_payload(spec.to_payload())
    assert again == spec
    assert again.fingerprint() == spec.fingerprint()
    other = JobSpec.from_payload({**SPEC, "theta": 301})
    assert other.fingerprint() != spec.fingerprint()


def test_spec_defaults_are_reproducible():
    spec = JobSpec.from_payload({"dataset": "lastfm", "theta": 100})
    assert spec.seed == 0
    assert spec.evaluate is True


@pytest.mark.parametrize(
    "payload, fragment",
    [
        ({"dataset": "nope", "theta": 10}, "unknown dataset"),
        ({"dataset": "lastfm"}, "missing"),
        ({"dataset": "lastfm", "theta": 0}, "positive integer"),
        ({"dataset": "lastfm", "theta": 10, "typo": 1}, "unknown job field"),
        ({"dataset": "lastfm", "theta": 10, "seed": "x"}, "seed"),
        ({"dataset": "lastfm", "theta": 10, "scale": -1}, "scale"),
        ({"dataset": "lastfm", "theta": 10, "model": "bogus"}, "model"),
        (
            {"dataset": "lastfm", "theta": 10, "options": {"theta": 20}},
            "top-level job field",
        ),
        (
            {"dataset": "lastfm", "theta": 10, "options": {"f": object()}},
            "JSON-serialisable",
        ),
        ([1, 2], "JSON object"),
    ],
)
def test_spec_rejects_bad_payloads(payload, fragment):
    with pytest.raises(ConfigError, match=fragment):
        JobSpec.from_payload(payload)


# -- JobStore --------------------------------------------------------------


def test_spool_terminal_records_survive_recovery(tmp_path):
    store = JobStore(tmp_path / "spool")
    done = JobRecord(
        id="job-aaa",
        spec=JobSpec.from_payload(SPEC),
        state="done",
        result={"estimate": 1.5},
        trace=[{"stage": "plan", "action": "run", "detail": "", "seconds": 0}],
    )
    store.save(done)
    recovered = JobStore(tmp_path / "spool").recover()
    assert recovered["job-aaa"].state == "done"
    assert recovered["job-aaa"].result == {"estimate": 1.5}
    assert recovered["job-aaa"].trace == done.trace


def test_spool_interrupted_records_marked_failed(tmp_path):
    store = JobStore(tmp_path / "spool")
    store.save(JobRecord(id="job-bbb", spec=JobSpec.from_payload(SPEC),
                         state="running"))
    recovered = JobStore(tmp_path / "spool").recover()
    assert recovered["job-bbb"].state == "failed"
    assert "restart" in recovered["job-bbb"].error
    # ... and the failure was persisted, not just reported
    again = JobStore(tmp_path / "spool").recover()
    assert again["job-bbb"].state == "failed"


def test_spool_skips_torn_record_files(tmp_path):
    store = JobStore(tmp_path / "spool")
    store.save(JobRecord(id="job-ok", spec=JobSpec.from_payload(SPEC),
                         state="done"))
    torn = os.path.join(store.spool_dir, "jobs", "job-torn.json")
    with open(torn, "w") as fh:
        fh.write('{"id": "job-torn", "sp')
    recovered = JobStore(tmp_path / "spool").recover()
    assert set(recovered) == {"job-ok"}


def test_memory_only_store_is_a_no_op(tmp_path):
    store = JobStore(None)
    store.save(JobRecord(id="job-x", spec=JobSpec.from_payload(SPEC)))
    assert store.recover() == {}
    assert list(tmp_path.iterdir()) == []


# -- JobQueue --------------------------------------------------------------


def test_queue_cold_then_warm_jobs(tmp_path):
    with make_queue(tmp_path) as queue:
        cold = queue.submit(SPEC)
        cold = queue.wait(cold.id, timeout=180)
        assert cold.state == "done"
        assert cold.error is None
        assert sample_runs(cold) > 0
        assert len(cold.result["seed_sets"]) == 3
        assert cold.result["evaluation"] is not None
        # timing is surfaced per stage, and sampling took measurable time
        sampled = [e for e in cold.trace if e["stage"] == "sample"]
        assert any(e["seconds"] > 0 for e in sampled)

        warm = queue.wait(queue.submit(SPEC).id, timeout=180)
        assert warm.state == "done"
        # the warm run performed zero sampling and is bit-identical
        assert sample_runs(warm) == 0
        assert warm.result["seed_sets"] == cold.result["seed_sets"]
        assert warm.result["estimate"] == cold.result["estimate"]

        metrics = queue.metrics()
        assert metrics["jobs"]["done"] == 2
        assert metrics["cache"]["hits"] > 0


def test_queue_rejects_unknown_solver(tmp_path):
    with make_queue(tmp_path) as queue:
        with pytest.raises(ConfigError, match="unknown solver"):
            queue.submit({**SPEC, "method": "gradient-descent"})


def test_queue_failed_job_is_a_result_not_a_crash(tmp_path):
    with make_queue(tmp_path) as queue:
        # an option the solver does not accept fails inside the worker
        record = queue.submit(
            {**SPEC, "options": {"no_such_option": 1}}
        )
        record = queue.wait(record.id, timeout=180)
        assert record.state == "failed"
        assert record.error
        assert record.result is None


def test_queue_cancel_before_start(tmp_path):
    with make_queue(tmp_path, workers=1) as queue:
        first = queue.submit(SPEC)
        second = queue.submit({**SPEC, "theta": 301})
        cancelled = queue.cancel(second.id)
        assert cancelled.state == "cancelled"
        assert queue.wait(first.id, timeout=180).state == "done"
        assert queue.get(second.id).state == "cancelled"
        states = queue.metrics()["jobs"]
        assert states["cancelled"] == 1 and states["done"] == 1


def test_queue_single_flight_coalesces_identical_specs(tmp_path):
    with make_queue(tmp_path, workers=2) as queue:
        ids = [queue.submit(SPEC).id for _ in range(2)]
        records = [queue.wait(i, timeout=180) for i in ids]
        assert all(r.state == "done" for r in records)
        # the stampede sampled exactly once: one job ran the pipeline,
        # the other coalesced behind it and replayed cache hits
        assert sum(sample_runs(r) for r in records) == sample_runs(
            max(records, key=sample_runs)
        )
        assert [r.result["seed_sets"] for r in records] == [
            records[0].result["seed_sets"]
        ] * 2


def test_queue_restart_recovers_spool(tmp_path):
    spool = str(tmp_path / "spool")
    with make_queue(tmp_path, spool_dir=spool) as queue:
        record = queue.wait(queue.submit(SPEC).id, timeout=180)
        assert record.state == "done"
        job_id = record.id
    reborn = make_queue(tmp_path, spool_dir=spool)
    try:
        assert reborn.get(job_id).state == "done"
        assert reborn.get(job_id).result == record.result
    finally:
        reborn.close()


def test_execute_spec_inline_matches_session_run(tmp_path):
    result, trace = execute_spec(
        JobSpec.from_payload(SPEC),
        runtime=Runtime(artifacts=str(tmp_path / "art")),
    )
    assert set(result) == {
        "method", "seed_sets", "estimate", "evaluation", "diagnostics",
    }
    assert [e["stage"] for e in trace][:2] == ["plan", "sample"]


# -- HTTP ------------------------------------------------------------------


@pytest.fixture()
def service(tmp_path):
    queue = make_queue(tmp_path)
    server = create_server(queue)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.close()
        thread.join(timeout=10)


def _request(server, method, path, payload=None):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        server.url + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def test_http_submit_poll_result_metrics(service):
    status, record = _request(service, "POST", "/v1/jobs", SPEC)
    assert status == 201
    job_id = record["id"]
    assert record["state"] in ("queued", "running")
    assert "result" not in record  # status payloads stay light

    service.queue.wait(job_id, timeout=180)
    status, polled = _request(service, "GET", f"/v1/jobs/{job_id}")
    assert status == 200 and polled["state"] == "done"
    assert "result" not in polled

    status, result = _request(service, "GET", f"/v1/jobs/{job_id}/result")
    assert status == 200
    assert result["result"]["seed_sets"]
    assert any(e["action"] == "run" for e in result["trace"])

    status, health = _request(service, "GET", "/healthz")
    assert (status, health["status"]) == (200, "ok")
    status, metrics = _request(service, "GET", "/metrics")
    assert status == 200
    assert metrics["jobs"]["submitted"] == 1
    assert metrics["cache"]["puts"] > 0


def test_http_result_codes_over_the_lifecycle(service):
    status, record = _request(service, "POST", "/v1/jobs", SPEC)
    job_id = record["id"]
    status, body = _request(service, "GET", f"/v1/jobs/{job_id}/result")
    if status == 202:  # still queued/running at poll time
        assert body["state"] in ("queued", "running")
    service.queue.wait(job_id, timeout=180)
    status, _ = _request(service, "GET", f"/v1/jobs/{job_id}/result")
    assert status == 200

    status, record = _request(
        service, "POST", "/v1/jobs",
        {**SPEC, "options": {"no_such_option": 1}},
    )
    service.queue.wait(record["id"], timeout=180)
    status, body = _request(
        service, "GET", f"/v1/jobs/{record['id']}/result"
    )
    assert status == 409
    assert body["state"] == "failed" and body["error"]


def test_http_error_routes(service):
    status, body = _request(service, "GET", "/v1/jobs/job-unknown")
    assert status == 404 and "unknown job" in body["error"]
    status, body = _request(service, "GET", "/v1/nothing")
    assert status == 404
    status, body = _request(service, "POST", "/v1/jobs", {"dataset": "lastfm"})
    assert status == 400 and "theta" in body["error"]
    status, body = _request(
        service, "POST", "/v1/jobs", {**SPEC, "dataset": "nope"}
    )
    assert status == 400 and "unknown dataset" in body["error"]


def test_http_rejects_non_json_body(service):
    req = urllib.request.Request(
        service.url + "/v1/jobs", data=b"not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(req, timeout=30)
    assert err.value.code == 400


def test_http_cancel_route(tmp_path):
    queue = make_queue(tmp_path, workers=1)
    server = create_server(queue)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        _, first = _request(server, "POST", "/v1/jobs", SPEC)
        _, second = _request(
            server, "POST", "/v1/jobs", {**SPEC, "theta": 301}
        )
        status, body = _request(
            server, "POST", f"/v1/jobs/{second['id']}/cancel"
        )
        assert (status, body["state"]) == (200, "cancelled")
        queue.wait(first["id"], timeout=180)
    finally:
        server.close()
        thread.join(timeout=10)


def test_cli_parser_defaults():
    from repro.service.__main__ import build_parser

    args = build_parser().parse_args([])
    assert (args.host, args.port) == ("127.0.0.1", 8008)
    assert args.workers is None and args.spool is None
    args = build_parser().parse_args(
        ["--port", "0", "--workers", "3", "--artifact-dir", "/tmp/a"]
    )
    assert (args.port, args.workers, args.artifact_dir) == (0, 3, "/tmp/a")
