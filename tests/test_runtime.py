"""Runtime config: precedence, validation, and legacy bit-identity.

The contract under test (repro.runtime):

* one resolution order everywhere — explicit kwarg > ``Runtime`` field
  > ``REPRO_*`` env > library default;
* every execution knob is validated at entry in *every* entry point
  (``ConfigError``), including knobs the taken path would historically
  have ignored (e.g. ``executor`` on a serial run);
* legacy per-call kwargs emit ``DeprecationWarning`` and produce
  bit-identical results to the ``runtime=`` spelling;
* the ``REPRO_*`` variables are parsed in exactly one module.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import numpy as np
import pytest

import repro
import repro.runtime as runtime_mod
import repro.sampling.batch as batch_mod
import repro.sampling.parallel as parallel_mod
import repro.sampling.store as store_mod
from repro.diffusion.adoption import AdoptionModel
from repro.diffusion.projection import project_campaign
from repro.diffusion.simulate import (
    simulate_adoption_utility,
    simulate_piece_spread,
)
from repro.exceptions import ConfigError
from repro.im.greedy import celf_greedy_im
from repro.im.ris import ris_influence_maximization
from repro.runtime import ResolvedRuntime, Runtime, resolve_runtime
from repro.sampling.adaptive import generate_adaptive
from repro.sampling.mrr import MRRCollection
from repro.sampling.store import MemoryStore


@pytest.fixture(autouse=True)
def _no_ambient_artifact_cache(monkeypatch):
    """Neutralise any ``REPRO_ARTIFACTS`` ambient default.

    These tests spy on sampler internals (call counts, spawned
    streams); an ambient artifact cache would serve repeat generations
    from the store and starve the spies.  Explicit ``artifacts=`` knobs
    under test still work — only the env-derived default is cleared.
    """
    monkeypatch.setattr(runtime_mod, "DEFAULT_ARTIFACTS", None)


@pytest.fixture()
def piece_graph(small_random_graph, small_campaign):
    return project_campaign(small_random_graph, small_campaign)[0]


# --------------------------------------------------------------------------
# Construction-time validation
# --------------------------------------------------------------------------


class TestRuntimeConstruction:
    def test_defaults_are_all_deferred(self):
        rt = Runtime()
        assert (rt.backend, rt.model, rt.workers, rt.executor) == (
            None, None, None, None
        )
        assert (rt.store, rt.shard_dir, rt.max_resident_bytes, rt.seed) == (
            None, None, None, None
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "numba"},
            {"model": "sir"},
            {"model": ("ic", "sir")},
            {"workers": -1},
            {"workers": 2.5},
            {"workers": True},
            {"executor": "fork"},
            {"store": "s3"},
            {"max_resident_bytes": 0},
            {"max_resident_bytes": "lots"},
        ],
    )
    def test_bad_field_fails_at_construction(self, kwargs):
        with pytest.raises(ConfigError):
            Runtime(**kwargs)

    def test_good_fields_accepted(self, tmp_path):
        rt = Runtime(
            backend="python",
            model=["ic", "lt"],
            workers="auto",
            executor="process",
            store="disk",
            shard_dir=tmp_path,
            max_resident_bytes=1 << 20,
            seed=7,
        )
        assert rt.model == ("ic", "lt")  # normalised to a tuple
        assert rt.shard_dir == str(tmp_path)
        assert Runtime(store=MemoryStore()).store.kind == "memory"

    def test_frozen_and_replace(self):
        rt = Runtime(backend="python")
        with pytest.raises(AttributeError):
            rt.backend = "batch"
        assert rt.replace(workers=2) == Runtime(backend="python", workers=2)
        with pytest.raises(ConfigError):
            rt.replace(backend="numba")


# --------------------------------------------------------------------------
# Resolution order: explicit kwarg > Runtime field > env > default
# --------------------------------------------------------------------------


class TestResolutionOrder:
    def test_library_defaults(self, monkeypatch):
        monkeypatch.setattr(batch_mod, "DEFAULT_BACKEND", "batch")
        monkeypatch.setattr(parallel_mod, "DEFAULT_WORKERS", None)
        monkeypatch.setattr(parallel_mod, "DEFAULT_EXECUTOR", "thread")
        monkeypatch.setattr(store_mod, "DEFAULT_STORE", "memory")
        rt = resolve_runtime(None)
        assert (rt.backend, rt.workers, rt.executor, rt.store) == (
            "batch", 0, "thread", "memory"
        )
        assert rt.pool_width is None

    def test_env_layer_beats_default(self, monkeypatch):
        # The module globals are the parsed-once env layer (see
        # repro.runtime); patching them models REPRO_* being set.
        monkeypatch.setattr(batch_mod, "DEFAULT_BACKEND", "python")
        monkeypatch.setattr(parallel_mod, "DEFAULT_WORKERS", 3)
        monkeypatch.setattr(parallel_mod, "DEFAULT_EXECUTOR", "spawned")
        monkeypatch.setattr(store_mod, "DEFAULT_STORE", "disk")
        rt = resolve_runtime(None)
        assert (rt.backend, rt.workers, rt.executor, rt.store) == (
            "python", 3, "spawned", "disk"
        )

    def test_runtime_field_beats_env(self, monkeypatch):
        monkeypatch.setattr(batch_mod, "DEFAULT_BACKEND", "python")
        monkeypatch.setattr(parallel_mod, "DEFAULT_WORKERS", 3)
        monkeypatch.setattr(store_mod, "DEFAULT_STORE", "disk")
        rt = resolve_runtime(
            Runtime(backend="batch", workers="serial", store="memory")
        )
        assert (rt.backend, rt.workers, rt.store) == ("batch", 0, "memory")

    def test_explicit_kwarg_beats_runtime_field(self):
        base = Runtime(backend="batch", workers=4, executor="thread")
        rt = resolve_runtime(
            base, backend="python", workers=0, executor="process"
        )
        assert (rt.backend, rt.workers, rt.executor) == (
            "python", 0, "process"
        )

    def test_resolved_runtime_is_idempotent(self, monkeypatch):
        rt = resolve_runtime(Runtime(workers=0, backend="python"))
        # Flipping the env layer afterwards must not leak back in: a
        # ResolvedRuntime's fields are concrete.
        monkeypatch.setattr(batch_mod, "DEFAULT_BACKEND", "batch")
        monkeypatch.setattr(parallel_mod, "DEFAULT_WORKERS", 8)
        again = resolve_runtime(rt)
        assert isinstance(again, ResolvedRuntime)
        assert (again.backend, again.workers) == ("python", 0)

    def test_seed_policy(self):
        assert resolve_runtime(Runtime(seed=5)).seed == 5
        assert resolve_runtime(Runtime(seed=5), seed=9).seed == 9
        assert resolve_runtime(None).seed is None

    def test_env_vars_actually_feed_the_layer(self):
        # A fresh interpreter with REPRO_* set must resolve through the
        # env layer — and an explicit Runtime field must still win.
        code = (
            "from repro.runtime import Runtime, resolve_runtime\n"
            "rt = resolve_runtime(None)\n"
            "assert (rt.backend, rt.workers, rt.executor, rt.store) == "
            "('python', 2, 'spawned', 'disk'), rt\n"
            "rt = resolve_runtime(Runtime(backend='batch', "
            "workers='serial', executor='thread', store='memory'))\n"
            "assert (rt.backend, rt.workers, rt.executor, rt.store) == "
            "('batch', 0, 'thread', 'memory'), rt\n"
            "print('ok')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            env={
                "PYTHONPATH": str(
                    pathlib.Path(repro.__file__).parents[1]
                ),
                "REPRO_BACKEND": "python",
                "REPRO_WORKERS": "2",
                "REPRO_EXECUTOR": "spawned",
                "REPRO_STORE": "disk",
            },
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "ok"

    def test_exactly_one_env_resolution_path(self):
        """No per-module REPRO_* parsing outside repro.runtime."""
        package_root = pathlib.Path(repro.__file__).parent
        # dist.py *copies* os.environ to compose a child worker
        # process's environment (subprocess launch) — it reads no
        # REPRO_* knob; the parse-once invariant is about config reads.
        allowed = {"sampling/dist.py"}
        offenders = []
        for path in sorted(package_root.rglob("*.py")):
            rel = path.relative_to(package_root).as_posix()
            if path.name == "runtime.py" or rel in allowed:
                continue
            if "os.environ" in path.read_text(encoding="utf-8"):
                offenders.append(rel)
        assert not offenders, (
            f"env parsing outside repro.runtime: {offenders}"
        )


# --------------------------------------------------------------------------
# Entry validation: bad knobs fail at entry, everywhere, as ConfigError
# --------------------------------------------------------------------------


class TestEntryValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            {"executor": "fork"},
            {"backend": "numba"},
            {"store": "s3"},
            {"workers": -2},
            {"model": "sir"},
        ],
    )
    def test_every_entry_point_validates_at_entry(
        self, small_random_graph, small_campaign, piece_graph, bad
    ):
        adoption = AdoptionModel.from_ratio(0.5)
        rt_bad = pytest.raises(ConfigError)
        with rt_bad:
            MRRCollection.generate(
                small_random_graph, small_campaign, 10, seed=0,
                runtime=Runtime(**bad),
            )
        entry_points = [
            lambda: ris_influence_maximization(
                piece_graph, 2, 10, seed=0, **bad
            ),
        ]
        if "store" not in bad:
            # The simulators and CELF have no store knob; every other
            # execution kwarg is shared across all entry points.
            entry_points += [
                lambda: simulate_piece_spread(
                    piece_graph, [0], rounds=2, seed=0, **bad
                ),
                lambda: simulate_adoption_utility(
                    [piece_graph], [[0]], adoption, rounds=2, seed=0, **bad
                ),
                lambda: celf_greedy_im(
                    piece_graph, 1, rounds=2, seed=0, **bad
                ),
            ]
        for call in entry_points:
            with pytest.raises(ConfigError), pytest.warns(
                DeprecationWarning
            ):
                call()

    def test_serial_path_no_longer_ignores_bad_executor(
        self, small_random_graph, small_campaign
    ):
        # Historically only celf_greedy_im checked executor; a serial
        # generate silently accepted garbage.  Now it fails at entry.
        with pytest.raises(ConfigError):
            MRRCollection.generate(
                small_random_graph, small_campaign, 10, seed=0,
                runtime=Runtime(executor="fork"),
            )

    def test_single_graph_entries_reject_model_sequences(self, piece_graph):
        # Regression: a per-piece model list on a single-graph entry
        # point must fail at entry as ConfigError, not surface as a
        # SamplingError from deep inside resolve_models.
        rt = Runtime(model=("ic", "lt"))
        with pytest.raises(ConfigError, match="single influence graph"):
            celf_greedy_im(piece_graph, 1, rounds=2, seed=0, runtime=rt)
        with pytest.raises(ConfigError, match="single influence graph"):
            simulate_piece_spread(piece_graph, [0], rounds=2, runtime=rt)
        with pytest.raises(ConfigError, match="single influence graph"):
            ris_influence_maximization(
                piece_graph, 2, 10, seed=0, runtime=rt
            )
        # ...while a one-element sequence still resolves.
        spread = simulate_piece_spread(
            piece_graph, [0], rounds=2, seed=0, runtime=Runtime(model=("ic",))
        )
        assert spread >= 0.0

    def test_with_shard_subdir(self, tmp_path):
        rt = Runtime(store="disk", shard_dir=str(tmp_path))
        sub = rt.with_shard_subdir("cell", 3)
        assert sub.shard_dir == str(tmp_path / "cell" / "3")
        assert Runtime().with_shard_subdir("x").shard_dir is None
        resolved = resolve_runtime(rt).with_shard_subdir("y")
        assert resolved.shard_dir == str(tmp_path / "y")

    def test_adaptive_and_baseline_validate(
        self, small_random_graph, small_campaign
    ):
        adoption = AdoptionModel.from_ratio(0.5)
        probe = [[0] for _ in range(small_campaign.num_pieces)]
        with pytest.raises(ConfigError):
            generate_adaptive(
                small_random_graph, small_campaign, adoption, probe,
                initial_theta=10, max_theta=20, seed=0,
                runtime=Runtime(backend="numba"),
            )


# --------------------------------------------------------------------------
# Legacy kwargs: deprecation + bit-identity with the runtime path
# --------------------------------------------------------------------------


class TestLegacyBitIdentity:
    def test_generate_legacy_vs_runtime(
        self, small_random_graph, small_campaign
    ):
        with pytest.warns(DeprecationWarning, match="MRRCollection.generate"):
            legacy = MRRCollection.generate(
                small_random_graph, small_campaign, 200, seed=3,
                backend="python", workers=2,
            )
        new = MRRCollection.generate(
            small_random_graph, small_campaign, 200, seed=3,
            runtime=Runtime(backend="python", workers=2),
        )
        assert np.array_equal(legacy.roots, new.roots)
        for j in range(legacy.num_pieces):
            for a, b in zip(legacy._rr_ptr, new._rr_ptr):
                assert np.array_equal(a, b)
            for a, b in zip(legacy._rr_nodes, new._rr_nodes):
                assert np.array_equal(a, b)

    def test_generate_runtime_matches_no_knobs_default(
        self, small_random_graph, small_campaign
    ):
        bare = MRRCollection.generate(
            small_random_graph, small_campaign, 150, seed=5
        )
        via_runtime = MRRCollection.generate(
            small_random_graph, small_campaign, 150, seed=5,
            runtime=Runtime(),
        )
        for a, b in zip(bare._rr_nodes, via_runtime._rr_nodes):
            assert np.array_equal(a, b)

    def test_ris_legacy_vs_runtime(self, piece_graph):
        with pytest.warns(DeprecationWarning):
            seeds_legacy, spread_legacy = ris_influence_maximization(
                piece_graph, 3, 300, seed=11, backend="batch", workers=2
            )
        seeds_new, spread_new = ris_influence_maximization(
            piece_graph, 3, 300, seed=11,
            runtime=Runtime(backend="batch", workers=2),
        )
        assert seeds_legacy == seeds_new
        assert spread_legacy == spread_new

    def test_celf_legacy_vs_runtime(self, piece_graph):
        with pytest.warns(DeprecationWarning):
            seeds_legacy, spread_legacy = celf_greedy_im(
                piece_graph, 2, rounds=5, seed=4, backend="batch"
            )
        seeds_new, spread_new = celf_greedy_im(
            piece_graph, 2, rounds=5, seed=4, runtime=Runtime(backend="batch")
        )
        assert seeds_legacy == seeds_new
        assert spread_legacy == spread_new

    def test_simulators_legacy_vs_runtime(self, piece_graph):
        with pytest.warns(DeprecationWarning):
            legacy = simulate_piece_spread(
                piece_graph, [0, 1], rounds=8, seed=2, workers=2
            )
        new = simulate_piece_spread(
            piece_graph, [0, 1], rounds=8, seed=2, runtime=Runtime(workers=2)
        )
        assert legacy == new
        adoption = AdoptionModel.from_ratio(0.5)
        with pytest.warns(DeprecationWarning):
            legacy = simulate_adoption_utility(
                [piece_graph], [[0]], adoption, rounds=8, seed=2,
                backend="python",
            )
        new = simulate_adoption_utility(
            [piece_graph], [[0]], adoption, rounds=8, seed=2,
            runtime=Runtime(backend="python"),
        )
        assert legacy == new

    def test_store_knob_legacy_vs_runtime(
        self, small_random_graph, small_campaign, tmp_path
    ):
        with pytest.warns(DeprecationWarning):
            legacy = MRRCollection.generate(
                small_random_graph, small_campaign, 120, seed=9,
                store="disk", shard_dir=str(tmp_path / "legacy"),
            )
        new = MRRCollection.generate(
            small_random_graph, small_campaign, 120, seed=9,
            runtime=Runtime(store="disk", shard_dir=str(tmp_path / "new")),
        )
        assert legacy.store.kind == new.store.kind == "disk"
        for j in range(legacy.num_pieces):
            a = legacy.index_arrays(j)
            b = new.index_arrays(j)
            assert np.array_equal(a[0], b[0])
            assert np.array_equal(a[1], b[1])

    def test_runtime_store_and_workers_observable(
        self, small_random_graph, small_campaign, monkeypatch, tmp_path
    ):
        # store: a Runtime-selected disk store actually writes shards...
        shard_dir = tmp_path / "shards"
        mrr = MRRCollection.generate(
            small_random_graph, small_campaign, 60, seed=1,
            runtime=Runtime(store="disk", shard_dir=str(shard_dir)),
        )
        assert mrr.store.kind == "disk"
        assert any(shard_dir.glob("piece*.npz"))
        # ...and an explicit kwarg overrides the Runtime field back to
        # memory (precedence, observable end to end).
        with pytest.warns(DeprecationWarning):
            mem = MRRCollection.generate(
                small_random_graph, small_campaign, 60, seed=1,
                store="memory",
                runtime=Runtime(store="disk"),
            )
        assert mem.store.kind == "memory"
        # workers: the parallel runtime is engaged iff the resolved
        # width asks for it.
        calls = []
        original = parallel_mod.sample_piece_blocks

        def spy(*args, **kwargs):
            calls.append(kwargs.get("workers"))
            return original(*args, **kwargs)

        monkeypatch.setattr(parallel_mod, "sample_piece_blocks", spy)
        # Pin the store: sample_piece_blocks is the *memory*-store
        # fan-out (disk streams through stream_piece_blocks), so the
        # spy must not depend on the REPRO_STORE matrix leg.
        MRRCollection.generate(
            small_random_graph, small_campaign, 60, seed=1,
            runtime=Runtime(workers=2, store="memory"),
        )
        assert calls == [2]
        with pytest.warns(DeprecationWarning):
            MRRCollection.generate(
                small_random_graph, small_campaign, 60, seed=1,
                runtime=Runtime(workers=2, store="memory"), workers=0,
            )
        assert calls == [2]  # explicit serial kwarg beat the field

    def test_no_warning_on_runtime_path(
        self, small_random_graph, small_campaign, recwarn
    ):
        MRRCollection.generate(
            small_random_graph, small_campaign, 30, seed=0,
            runtime=Runtime(backend="batch", workers=1),
        )
        deprecations = [
            w for w in recwarn.list
            if issubclass(w.category, DeprecationWarning)
        ]
        assert not deprecations
