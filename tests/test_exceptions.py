"""The exception hierarchy is what callers catch on — lock it down."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    BudgetExhaustedError,
    DatasetError,
    ExperimentError,
    GraphError,
    GraphFormatError,
    ParameterError,
    ReproError,
    SamplingError,
    SolverError,
    TopicError,
)

ALL_ERRORS = [
    GraphError,
    GraphFormatError,
    TopicError,
    ParameterError,
    SamplingError,
    SolverError,
    BudgetExhaustedError,
    DatasetError,
    ExperimentError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_every_error_derives_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_graph_format_error_is_graph_error():
    assert issubclass(GraphFormatError, GraphError)


def test_budget_exhausted_is_solver_error():
    assert issubclass(BudgetExhaustedError, SolverError)


def test_graph_format_error_line_prefix():
    err = GraphFormatError("bad token", line=7)
    assert "line 7" in str(err)
    assert err.line == 7


def test_graph_format_error_without_line():
    err = GraphFormatError("bad header")
    assert err.line is None
    assert "bad header" in str(err)


def test_budget_exhausted_carries_incumbent():
    sentinel = object()
    err = BudgetExhaustedError("out of nodes", incumbent=sentinel)
    assert err.incumbent is sentinel


def test_catching_base_catches_all():
    for exc in ALL_ERRORS:
        with pytest.raises(ReproError):
            if exc is GraphFormatError:
                raise exc("x", line=1)
            raise exc("x")
