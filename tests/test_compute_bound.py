"""Tests for ComputeBound (Algorithm 2)."""

from __future__ import annotations

import pytest

from repro.core.compute_bound import CandidateSpace, compute_bound
from repro.core.plan import AssignmentPlan
from repro.core.tangent import MajorantTable
from repro.datasets.running_example import running_example_problem
from repro.exceptions import SolverError
from repro.sampling.mrr import MRRCollection


@pytest.fixture()
def ctx():
    problem = running_example_problem(k=2)
    mrr = MRRCollection.generate(
        problem.graph, problem.campaign, theta=2000, seed=4
    )
    table = MajorantTable(problem.adoption, problem.num_pieces)
    space = CandidateSpace(problem.pool, problem.num_pieces)
    return problem, mrr, table, space


class TestCandidateSpace:
    def test_all_pairs(self, ctx):
        problem, _, _, space = ctx
        pairs = space.pairs(problem.empty_plan())
        assert len(pairs) == 5 * 2

    def test_without_removes_pair(self, ctx):
        problem, _, _, space = ctx
        child = space.without(0, 1)
        pairs = child.pairs(problem.empty_plan())
        assert (0, 1) not in pairs
        assert (0, 0) in pairs

    def test_plan_members_not_selectable(self, ctx):
        problem, _, _, space = ctx
        plan = AssignmentPlan([{0}, set()])
        pairs = space.pairs(plan)
        assert (0, 0) not in pairs
        assert (0, 1) in pairs

    def test_len(self, ctx):
        _, _, _, space = ctx
        assert len(space.without(0, 0)) == len(space) - 1


class TestComputeBound:
    def test_finds_the_paper_optimum(self, ctx):
        problem, mrr, table, space = ctx
        result = compute_bound(
            mrr, table, problem.adoption, problem.empty_plan(), space, 2
        )
        assert result.plan == AssignmentPlan([{0}, {4}])
        assert result.selected == 2
        assert result.lower == pytest.approx(1.05, abs=0.05)

    def test_upper_dominates_lower(self, ctx):
        problem, mrr, table, space = ctx
        result = compute_bound(
            mrr, table, problem.adoption, problem.empty_plan(), space, 2
        )
        assert result.upper >= result.lower - 1e-9

    def test_lazy_and_plain_select_identically(self, ctx):
        problem, mrr, table, space = ctx
        plain = compute_bound(
            mrr, table, problem.adoption, problem.empty_plan(), space, 2,
            lazy=False,
        )
        lazy = compute_bound(
            mrr, table, problem.adoption, problem.empty_plan(), space, 2,
            lazy=True,
        )
        assert plain.plan == lazy.plan
        assert plain.upper == pytest.approx(lazy.upper)
        assert lazy.evaluations <= plain.evaluations

    def test_respects_partial_plan(self, ctx):
        problem, mrr, table, space = ctx
        partial = AssignmentPlan([{0}, set()])
        result = compute_bound(
            mrr, table, problem.adoption, partial, space, 2
        )
        assert result.plan.contains(partial)
        assert result.plan.size == 2
        assert result.selected == 1

    def test_respects_exclusions(self, ctx):
        problem, mrr, table, space = ctx
        # Remove the optimal pair (a -> t1): greedy must avoid it.
        child = space.without(0, 0)
        result = compute_bound(
            mrr, table, problem.adoption, problem.empty_plan(), child, 2
        )
        assert (0, 0) not in result.plan

    def test_first_pick_is_best_individual(self, ctx):
        problem, mrr, table, space = ctx
        result = compute_bound(
            mrr, table, problem.adoption, problem.empty_plan(), space, 2
        )
        assert result.first_pick is not None
        v, j = result.first_pick
        assert (v, j) in result.plan

    def test_oversized_partial_plan_rejected(self, ctx):
        problem, mrr, table, space = ctx
        partial = AssignmentPlan([{0, 1}, {2, 3}])
        with pytest.raises(SolverError):
            compute_bound(mrr, table, problem.adoption, partial, space, 2)

    def test_zero_budget_returns_partial(self, ctx):
        problem, mrr, table, space = ctx
        partial = AssignmentPlan([{0}, {4}])
        result = compute_bound(
            mrr, table, problem.adoption, partial, space, 2
        )
        assert result.plan == partial
        assert result.first_pick is None
        assert result.selected == 0

    def test_greedy_monotone_improvement(self, ctx):
        """Each extra budget unit can only help."""
        problem, mrr, table, space = ctx
        lowers = [
            compute_bound(
                mrr, table, problem.adoption, problem.empty_plan(), space, k
            ).lower
            for k in (1, 2, 3, 4)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(lowers, lowers[1:]))
