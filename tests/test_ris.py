"""Tests for RIS-style influence maximisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.projection import PieceGraph
from repro.exceptions import SolverError
from repro.graph.digraph import TopicGraph
from repro.im.ris import max_coverage_seeds, ris_influence_maximization
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import unit_piece


def handcrafted_collection() -> MRRCollection:
    """5 samples over 4 vertices; vertex 0 covers 3, vertex 1 covers 2.

    RR sets: {0}, {0,1}, {0}, {1}, {2}.
    """
    ptr = np.array([0, 1, 3, 4, 5, 6])
    nodes = np.array([0, 0, 1, 0, 1, 2])
    roots = np.zeros(5, dtype=np.int64)
    return MRRCollection(4, roots, [ptr], [nodes])


class TestMaxCoverage:
    def test_greedy_order(self):
        mrr = handcrafted_collection()
        seeds, spread = max_coverage_seeds(
            mrr, 0, np.arange(4), k=2
        )
        # Vertex 0 covers samples {0,1,2}; then vertex 1 adds {3}.
        assert seeds == [0, 1]
        assert spread == pytest.approx(4 / 5 * 4)

    def test_k_larger_than_useful_candidates(self):
        mrr = handcrafted_collection()
        seeds, spread = max_coverage_seeds(mrr, 0, np.arange(4), k=10)
        # Vertex 3 never appears in any RR set: it is never selected.
        assert 3 not in seeds
        assert spread == pytest.approx(4 / 5 * 5)

    def test_pool_restriction(self):
        mrr = handcrafted_collection()
        seeds, _ = max_coverage_seeds(mrr, 0, np.array([1, 2]), k=2)
        assert seeds == [1, 2]

    def test_lazy_matches_plain(self):
        mrr = handcrafted_collection()
        lazy, s1 = max_coverage_seeds(mrr, 0, np.arange(4), k=3, lazy=True)
        plain, s2 = max_coverage_seeds(mrr, 0, np.arange(4), k=3, lazy=False)
        assert set(lazy) == set(plain)
        assert s1 == pytest.approx(s2)

    def test_empty_pool_rejected(self):
        mrr = handcrafted_collection()
        with pytest.raises(SolverError):
            max_coverage_seeds(mrr, 0, np.array([], dtype=np.int64), k=1)


class TestEndToEnd:
    def test_hub_selected_on_star(self):
        """On a certain star graph the hub is the unique best seed."""
        edges = [(0, i, {0: 1.0}) for i in range(1, 6)]
        g = TopicGraph.from_edges(6, 1, edges)
        pg = PieceGraph.project(g, unit_piece(0, 1))
        seeds, spread = ris_influence_maximization(pg, 1, theta=500, seed=1)
        assert seeds == [0]
        assert spread == pytest.approx(6.0, abs=0.5)

    def test_two_components_need_two_seeds(self):
        edges = [
            (0, 1, {0: 1.0}),
            (0, 2, {0: 1.0}),
            (3, 4, {0: 1.0}),
            (3, 5, {0: 1.0}),
        ]
        g = TopicGraph.from_edges(6, 1, edges)
        pg = PieceGraph.project(g, unit_piece(0, 1))
        seeds, _ = ris_influence_maximization(pg, 2, theta=800, seed=2)
        assert set(seeds) == {0, 3}

    def test_spread_estimate_tracks_simulation(self):
        from repro.diffusion.simulate import simulate_piece_spread
        from repro.graph.generators import (
            build_topic_graph,
            preferential_attachment_digraph,
        )

        src, dst = preferential_attachment_digraph(100, 3, seed=3)
        g = build_topic_graph(100, src, dst, 1, prob_mean=0.2, seed=4)
        pg = PieceGraph.project(g, unit_piece(0, 1))
        seeds, est = ris_influence_maximization(pg, 3, theta=8000, seed=5)
        simulated = simulate_piece_spread(pg, seeds, rounds=600, seed=6)
        assert est == pytest.approx(simulated, rel=0.15)
