"""Tests for forward cascade simulation and MC adoption utility."""

from __future__ import annotations

import pytest

from repro.diffusion.projection import PieceGraph, project_campaign
from repro.diffusion.simulate import (
    simulate_adoption_utility,
    simulate_cascade,
    simulate_piece_spread,
)
from repro.exceptions import ParameterError
from repro.graph.digraph import TopicGraph
from repro.topics.distributions import unit_piece
from repro.utils.rng import as_generator


@pytest.fixture()
def certain_chain() -> PieceGraph:
    g = TopicGraph.from_edges(
        4, 1, [(0, 1, {0: 1.0}), (1, 2, {0: 1.0}), (2, 3, {0: 1.0})]
    )
    return PieceGraph.project(g, unit_piece(0, 1))


@pytest.fixture()
def dead_chain() -> PieceGraph:
    g = TopicGraph.from_edges(3, 1, [(0, 1, {0: 0.0}), (1, 2, {0: 0.0})])
    return PieceGraph.project(g, unit_piece(0, 1))


class TestSimulateCascade:
    def test_certain_edges_activate_everything_downstream(self, certain_chain):
        active = simulate_cascade(certain_chain, [0], as_generator(0))
        assert active.tolist() == [True, True, True, True]

    def test_dead_edges_activate_only_seeds(self, dead_chain):
        active = simulate_cascade(dead_chain, [0], as_generator(0))
        assert active.tolist() == [True, False, False]

    def test_multiple_seeds(self, dead_chain):
        active = simulate_cascade(dead_chain, [0, 2], as_generator(0))
        assert active.tolist() == [True, False, True]

    def test_no_seeds(self, certain_chain):
        active = simulate_cascade(certain_chain, [], as_generator(0))
        assert not active.any()

    def test_bad_seed_rejected(self, certain_chain):
        with pytest.raises(ParameterError):
            simulate_cascade(certain_chain, [99], as_generator(0))

    def test_probability_half_edge_statistics(self):
        g = TopicGraph.from_edges(2, 1, [(0, 1, {0: 0.5})])
        pg = PieceGraph.project(g, unit_piece(0, 1))
        rng = as_generator(1)
        hits = sum(
            simulate_cascade(pg, [0], rng)[1] for _ in range(4000)
        )
        assert hits / 4000 == pytest.approx(0.5, abs=0.03)


class TestPieceSpread:
    def test_deterministic_spread(self, certain_chain):
        spread = simulate_piece_spread(certain_chain, [0], rounds=5, seed=0)
        assert spread == pytest.approx(4.0)

    def test_spread_monotone_in_seeds(self, dead_chain):
        one = simulate_piece_spread(dead_chain, [0], rounds=5, seed=0)
        two = simulate_piece_spread(dead_chain, [0, 1], rounds=5, seed=0)
        assert two > one

    def test_rounds_validated(self, certain_chain):
        with pytest.raises(ParameterError):
            simulate_piece_spread(certain_chain, [0], rounds=0)


class TestAdoptionUtility:
    def _running_example(self):
        from repro.datasets.running_example import (
            running_example_adoption,
            running_example_campaign,
            running_example_graph,
        )

        graph = running_example_graph()
        campaign = running_example_campaign()
        return (
            project_campaign(graph, campaign),
            running_example_adoption(),
        )

    def test_matches_paper_example1(self):
        """sigma({{a},{e}}) = 1.05 — deterministic, so MC is exact."""
        pgs, adoption = self._running_example()
        utility = simulate_adoption_utility(
            pgs, [[0], [4]], adoption, rounds=3, seed=0
        )
        assert utility == pytest.approx(1.05, abs=0.01)

    def test_empty_plan_scores_zero(self):
        pgs, adoption = self._running_example()
        assert simulate_adoption_utility(pgs, [[], []], adoption, rounds=2) == 0.0

    def test_std_error_returned(self):
        pgs, adoption = self._running_example()
        utility, std = simulate_adoption_utility(
            pgs, [[0], [4]], adoption, rounds=10, seed=1, return_std=True
        )
        assert std == pytest.approx(0.0)  # deterministic instance

    def test_plan_piece_count_validated(self):
        pgs, adoption = self._running_example()
        with pytest.raises(ParameterError):
            simulate_adoption_utility(pgs, [[0]], adoption, rounds=2)

    def test_monotone_in_assignments(self):
        pgs, adoption = self._running_example()
        small = simulate_adoption_utility(pgs, [[0], []], adoption, rounds=4, seed=2)
        large = simulate_adoption_utility(
            pgs, [[0], [4]], adoption, rounds=4, seed=2
        )
        assert large >= small
