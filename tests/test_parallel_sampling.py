"""The parallel per-piece sampling runtime (:mod:`repro.sampling.parallel`).

The runtime's contracts, as the module states them:

* the (piece, root block) task decomposition and the spawned child
  streams depend only on (theta, pieces, seed) — so for fixed seeds a
  ``workers=4`` pool reproduces ``workers=1`` bit-for-bit, for IC, LT
  and heterogeneous per-piece model lists, at every entry point that
  grew the knob;
* a worker exception cancels the remaining tasks, shuts the pool down
  and re-raises — it can never hang the caller;
* ``workers=None`` keeps the historical serial stream byte-for-byte,
  and ``workers=0`` forces it even under a ``REPRO_WORKERS`` default.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.diffusion.projection import project_campaign
from repro.diffusion.simulate import (
    simulate_adoption_utility,
    simulate_piece_spread,
)
from repro.diffusion.threshold import normalize_lt_weights
from repro.exceptions import ParameterError
from repro.graph.generators import (
    build_topic_graph,
    preferential_attachment_digraph,
)
from repro.im.greedy import celf_greedy_im
from repro.im.ris import ris_influence_maximization
import repro.runtime as runtime_mod
from repro.sampling import parallel
from repro.sampling.mrr import MRRCollection
from repro.sampling.parallel import (
    parallel_map,
    resolve_workers,
    round_chunks,
    task_block_size,
)
from repro.topics.distributions import Campaign


@pytest.fixture(autouse=True)
def _no_ambient_artifact_cache(monkeypatch):
    """Neutralise any ``REPRO_ARTIFACTS`` ambient default.

    These tests assert sampler-internal behaviour (worker failure
    propagation, pool fan-out); a warm artifact cache would skip the
    sampling these assertions instrument.
    """
    monkeypatch.setattr(runtime_mod, "DEFAULT_ARTIFACTS", None)


@pytest.fixture(scope="module")
def world():
    """A mid-sized deterministic world with normalised (LT-safe) pieces."""
    n = 400
    src, dst = preferential_attachment_digraph(n, 3, seed=51)
    graph = build_topic_graph(
        n, src, dst, 6, topics_per_edge=2.0, prob_mean=0.15, seed=52
    )
    campaign = Campaign.sample_unit(3, 6, seed=53)
    piece_graphs = [
        normalize_lt_weights(pg) for pg in project_campaign(graph, campaign)
    ]
    return graph, campaign, piece_graphs


def _mrr_fingerprint(mrr: MRRCollection):
    return (
        mrr.roots.tolist(),
        [mrr._rr_ptr[j].tolist() for j in range(mrr.num_pieces)],
        [mrr._rr_nodes[j].tolist() for j in range(mrr.num_pieces)],
    )


class TestKnobResolution:
    def test_resolve_workers_values(self, monkeypatch):
        monkeypatch.setattr(parallel, "DEFAULT_WORKERS", None)
        assert resolve_workers(None) is None
        assert resolve_workers(0) is None
        assert resolve_workers("serial") is None
        assert resolve_workers(3) == 3
        assert resolve_workers("auto") >= 1

    def test_env_default_and_forced_serial(self, monkeypatch):
        monkeypatch.setattr(parallel, "DEFAULT_WORKERS", 4)
        assert resolve_workers(None) == 4
        assert resolve_workers(0) is None  # per-call opt-out wins
        assert resolve_workers("serial") is None

    def test_invalid_workers_rejected(self):
        with pytest.raises(ParameterError):
            resolve_workers(-2)
        with pytest.raises(ParameterError):
            resolve_workers("many")
        with pytest.raises(ParameterError):
            resolve_workers(2.5)

    def test_invalid_executor_rejected(self):
        with pytest.raises(ParameterError):
            parallel_map(abs, [1], 2, executor="fiber")

    def test_task_decomposition_is_worker_independent(self):
        # Pure functions of theta / rounds — nothing about the pool.
        assert task_block_size(100) >= 100 or task_block_size(100) >= 1
        assert task_block_size(10_000) == task_block_size(10_000)
        chunks = round_chunks(20)
        assert chunks[0][0] == 0 and chunks[-1][1] == 20
        assert all(stop > start for start, stop in chunks)
        with pytest.raises(ParameterError):
            task_block_size(0)
        with pytest.raises(ParameterError):
            round_chunks(0)


class TestDeterministicFanOut:
    @pytest.mark.parametrize("model", ["ic", "lt", ["ic", "lt", "ic"]])
    def test_generate_workers_reproduce_exactly(self, world, model):
        """workers=1 and workers=4 build bit-identical collections."""
        graph, campaign, pgs = world
        fingerprints = []
        for workers in (1, 4):
            mrr = MRRCollection.generate(
                graph,
                campaign,
                theta=700,
                seed=77,
                piece_graphs=pgs,
                model=model,
                workers=workers,
            )
            fingerprints.append(_mrr_fingerprint(mrr))
        assert fingerprints[0] == fingerprints[1]

    def test_generate_process_executor_matches_threads(self, world):
        graph, campaign, pgs = world
        by_executor = [
            _mrr_fingerprint(
                MRRCollection.generate(
                    graph,
                    campaign,
                    theta=600,
                    seed=78,
                    piece_graphs=pgs,
                    workers=2,
                    executor=executor,
                )
            )
            for executor in ("thread", "process")
        ]
        assert by_executor[0] == by_executor[1]

    def test_serial_default_is_untouched(self, world, monkeypatch):
        """workers=None (no env default) is the historical single-stream
        draw, and workers=0 forces the same path explicitly."""
        monkeypatch.setattr(parallel, "DEFAULT_WORKERS", None)
        graph, campaign, pgs = world
        legacy = MRRCollection.generate(
            graph, campaign, theta=500, seed=79, piece_graphs=pgs
        )
        again = MRRCollection.generate(
            graph, campaign, theta=500, seed=79, piece_graphs=pgs, workers=0
        )
        assert _mrr_fingerprint(legacy) == _mrr_fingerprint(again)

    def test_adoption_utility_workers_reproduce_exactly(self, world):
        _, _, pgs = world
        plan = [[0, 5], [3], [8, 2]]
        from repro.diffusion.adoption import AdoptionModel

        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        results = [
            simulate_adoption_utility(
                pgs,
                plan,
                adoption,
                rounds=40,
                seed=5,
                model=["ic", "lt", "ic"],
                return_std=True,
                workers=workers,
            )
            for workers in (1, 4)
        ]
        assert results[0] == results[1]

    def test_piece_spread_workers_reproduce_exactly(self, world):
        _, _, pgs = world
        values = {
            workers: simulate_piece_spread(
                pgs[0], [0, 7], rounds=40, seed=6, workers=workers
            )
            for workers in (1, 4)
        }
        assert values[1] == values[4]

    def test_ris_workers_reproduce_exactly(self, world):
        _, _, pgs = world
        outcomes = [
            ris_influence_maximization(
                pgs[0], 4, 800, seed=9, workers=workers
            )
            for workers in (1, 4)
        ]
        assert outcomes[0] == outcomes[1]

    def test_celf_workers_reproduce_exactly(self, world):
        _, _, pgs = world
        pool = np.arange(0, 400, 16, dtype=np.int64)
        outcomes = [
            celf_greedy_im(
                pgs[0], 3, pool=pool, rounds=24, seed=13, workers=workers
            )
            for workers in (1, 4)
        ]
        assert outcomes[0] == outcomes[1]


class TestFailureHandling:
    def test_worker_exception_propagates_and_pool_drains(self):
        baseline = threading.active_count()

        def boom(item):
            if item == 7:
                raise ValueError("task 7 exploded")
            return item

        # executor pinned: these are the *thread*-pool drain semantics
        # (closures and active_count don't translate to process pools,
        # which the REPRO_EXECUTOR matrix leg would otherwise select).
        with pytest.raises(ValueError, match="task 7 exploded"):
            parallel_map(boom, list(range(16)), 4, executor="thread")
        # The with-block joined the pool: no orphaned workers linger.
        assert threading.active_count() <= baseline + 1

    def test_generate_surfaces_worker_errors(self, world, monkeypatch):
        graph, campaign, pgs = world

        def failing_task(args):
            raise RuntimeError("sampler crashed in a worker")

        monkeypatch.setattr(parallel, "_sample_task", failing_task)
        # Thread pool pinned: the monkeypatched task only exists in
        # this process, so process/spawned executors would never see it.
        with pytest.raises(RuntimeError, match="crashed in a worker"):
            MRRCollection.generate(
                graph,
                campaign,
                theta=600,
                seed=80,
                piece_graphs=pgs,
                workers=4,
                executor="thread",
            )

    def test_results_preserve_task_order(self):
        import time

        def jittered(item):
            time.sleep(0.001 * ((7 - item) % 5))
            return item * item

        assert parallel_map(
            jittered, list(range(12)), 4, executor="thread"
        ) == [i * i for i in range(12)]

    def test_reusable_pool_survives_errors_and_reuse(self):
        """A caller-owned pool (make_pool) serves many rounds, stays
        usable after a failing round, and shuts down under the caller."""
        from repro.sampling.parallel import make_pool

        assert make_pool(1) is None  # inline path needs no pool
        # Thread pool pinned: the boom/abs closures below cannot cross
        # a process boundary.
        pool = make_pool(3, executor="thread")
        try:
            first = parallel_map(abs, [-3, -1, -2], 3, pool=pool)
            assert first == [3, 1, 2]

            def boom(item):
                raise KeyError(item)

            with pytest.raises(KeyError):
                parallel_map(boom, [1, 2], 3, pool=pool)
            again = parallel_map(abs, [-9], 3, pool=pool)
            assert again == [9]
        finally:
            pool.shutdown(wait=True, cancel_futures=True)


class TestCliWorkersFlag:
    @pytest.mark.parametrize(
        ("text", "expected"), [("4", 4), ("auto", "auto"), ("serial", "serial")]
    )
    def test_accepted_values(self, text, expected):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(["params", "--workers", text])
        assert args.workers == expected

    def test_garbage_rejected_cleanly(self, capsys):
        from repro.experiments.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["params", "--workers", "many"])
        assert "expected an integer" in capsys.readouterr().err
