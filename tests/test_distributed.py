"""Distributed sampling: work-leases, spawned workers, shared stores.

The ``executor="spawned"`` topology (``repro.sampling.dist``) and the
primitives underneath it:

* :class:`~repro.utils.locks.FileLease` — exclusivity, ttl expiry +
  steal, token-guarded release, keepalive;
* shared-writer :class:`ShardStore` semantics — out-of-order shard
  arrival, shards committed by foreign pids, duplicate completion as a
  benign no-op;
* the worker CLI (``python -m repro.sampling.worker``) end-to-end,
  including the hand-launched ``REPRO_DIST_LAUNCH=0`` topology;
* crash recovery — a worker SIGKILLed mid-run leaves an expirable
  lease whose task a peer re-claims, and the final collection is still
  bit-identical to the serial one;
* the artifact cache's cross-process producer flight and the bounded
  ``StoreBusyError`` retry;
* the segment LRU fronting ``ShardStore.gather_index``.
"""

from __future__ import annotations

import hashlib
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.artifacts import ArtifactKey, DiskArtifactStore
from repro.exceptions import StoreBusyError
from repro.graph.generators import (
    build_topic_graph,
    preferential_attachment_digraph,
)
from repro.runtime import Runtime
from repro.sampling import dist
from repro.sampling.mrr import MRRCollection
from repro.sampling.store import ShardStore, store_fingerprint
from repro.topics.distributions import Campaign
from repro.utils.locks import FileLease

THETA = 800
PIECES = 3


@pytest.fixture(scope="module")
def world():
    src, dst = preferential_attachment_digraph(80, 3, seed=11)
    graph = build_topic_graph(
        80, src, dst, 4, topics_per_edge=2.0, prob_mean=0.2, seed=12
    )
    campaign = Campaign.sample_unit(PIECES, 4, seed=13)
    return graph, campaign


@pytest.fixture(scope="module")
def serial_mrr(world):
    graph, campaign = world
    return MRRCollection.generate(
        graph, campaign, THETA, seed=21, runtime=Runtime(workers=1)
    )


def _collection_digest(collection) -> str:
    h = hashlib.sha256()
    h.update(collection.roots.tobytes())
    for piece in range(collection.num_pieces):
        h.update(collection.rr_set_sizes(piece).tobytes())
        for sample in range(collection.theta):
            h.update(np.sort(collection.rr_set(piece, sample)).tobytes())
    return h.hexdigest()


def _assert_identical(a, b) -> None:
    np.testing.assert_array_equal(a.roots, b.roots)
    assert _collection_digest(a) == _collection_digest(b)


# ----------------------------------------------------------------------
# FileLease
# ----------------------------------------------------------------------


class TestFileLease:
    def test_exclusive_acquire(self, tmp_path):
        path = str(tmp_path / "a.lock")
        first = FileLease(path, ttl=30.0)
        second = FileLease(path, ttl=30.0)
        assert first.try_acquire()
        assert first.try_acquire()  # re-acquire is a no-op True
        assert not second.try_acquire()
        first.release()
        assert not os.path.exists(path)
        assert second.try_acquire()
        second.release()

    def test_expired_lease_is_stolen(self, tmp_path):
        path = str(tmp_path / "a.lock")
        holder = FileLease(path, ttl=0.05)
        assert holder.try_acquire()
        thief = FileLease(path, ttl=30.0)
        assert not thief.try_acquire()
        time.sleep(0.15)
        assert thief.try_acquire()
        # The original holder's release must not drop the thief's claim.
        holder.release()
        assert os.path.exists(path)
        thief.release()
        assert not os.path.exists(path)

    def test_refresh_keeps_lease_alive(self, tmp_path):
        path = str(tmp_path / "a.lock")
        holder = FileLease(path, ttl=0.3)
        assert holder.try_acquire()
        thief = FileLease(path, ttl=0.3)
        for _ in range(3):
            time.sleep(0.15)
            holder.refresh()
            assert not thief.try_acquire()
        holder.release()

    def test_keepalive_thread(self, tmp_path):
        path = str(tmp_path / "a.lock")
        holder = FileLease(path, ttl=0.3)
        assert holder.try_acquire()
        thief = FileLease(path, ttl=0.3)
        with holder.keepalive():
            time.sleep(0.6)  # well past the ttl: heartbeat must cover us
            assert not thief.try_acquire()
        assert not os.path.exists(path)  # context exit released

    def test_torn_record_is_reclaimed_by_age(self, tmp_path):
        path = str(tmp_path / "a.lock")
        with open(path, "wb") as fh:
            fh.write(b"not json{{{")
        lease = FileLease(path, ttl=0.5)
        # Fresh torn file: a create-then-write may be mid-flight — wait.
        assert not lease.try_acquire()
        # Stale torn file: crash debris — reclaim it.
        past = time.time() - 60.0
        os.utime(path, (past, past))
        assert lease.try_acquire()
        lease.release()
        assert not os.path.exists(path)


# ----------------------------------------------------------------------
# shared-writer ShardStore semantics
# ----------------------------------------------------------------------


def _begin_shared(shard_dir, n, theta, block, fingerprint):
    store = ShardStore(str(shard_dir), shared_writer=True)
    store.begin(n, 1, theta, block, fingerprint=fingerprint)
    return store


class TestSharedWriter:
    def test_out_of_order_and_foreign_pid_shards(self, tmp_path):
        """Blocks arriving in any order, from writers the coordinator's
        manifest never saw, finalize into one valid store."""
        fp = store_fingerprint(8, np.zeros(6, dtype=np.int64), ("rr",), None)
        coord = ShardStore(str(tmp_path))
        coord.begin(8, 1, 6, 2, fingerprint=fp)
        # A "foreign" shared writer commits blocks 2 and 0 (reverse
        # order) — the coordinator's in-memory completion set never
        # hears about them.
        foreign = _begin_shared(tmp_path, 8, 6, 2, fp)
        for b in (2, 0):
            ptr = np.array([0, 1, 2], dtype=np.int64)
            nodes = np.array([b, b + 1], dtype=np.int64)
            foreign.put_block(0, b, ptr, nodes)
        assert not coord.has_block(0, 0)
        assert coord.rescan() == 2
        assert coord.has_block(0, 0) and coord.has_block(0, 2)
        coord.put_block(
            0,
            1,
            np.array([0, 1, 2], dtype=np.int64),
            np.array([4, 5], dtype=np.int64),
        )
        coord.save_roots(np.arange(6, dtype=np.int64))
        coord.finalize()
        assert coord.finalized
        reopened = ShardStore.open(str(tmp_path))
        np.testing.assert_array_equal(
            reopened.rr_set(0, 4), np.array([2], dtype=np.int64)
        )

    def test_shared_writer_never_touches_manifest(self, tmp_path):
        fp = store_fingerprint(8, np.zeros(4, dtype=np.int64), ("rr",), None)
        coord = ShardStore(str(tmp_path))
        coord.begin(8, 1, 4, 2, fingerprint=fp)
        manifest = os.path.join(str(tmp_path), "manifest.json")
        before = os.stat(manifest).st_mtime_ns
        worker = _begin_shared(tmp_path, 8, 4, 2, fp)
        worker.put_block(
            0,
            0,
            np.array([0, 1, 2], dtype=np.int64),
            np.array([1, 2], dtype=np.int64),
        )
        assert os.stat(manifest).st_mtime_ns == before

    def test_duplicate_completion_is_benign(self, tmp_path):
        """Two writers racing the same block: both commits succeed and
        the surviving bytes are the (identical) payload."""
        fp = store_fingerprint(8, np.zeros(4, dtype=np.int64), ("rr",), None)
        coord = ShardStore(str(tmp_path))
        coord.begin(8, 1, 4, 2, fingerprint=fp)
        ptr = np.array([0, 1, 2], dtype=np.int64)
        nodes = np.array([3, 4], dtype=np.int64)
        a = _begin_shared(tmp_path, 8, 4, 2, fp)
        b = _begin_shared(tmp_path, 8, 4, 2, fp)
        a.put_block(0, 0, ptr, nodes)
        # b has not rescanned: its has_block is stale, so its put really
        # re-commits the same file — the duplicate completion.
        b.put_block(0, 0, ptr, nodes)
        coord.put_block(0, 1, ptr, nodes)
        coord.save_roots(np.arange(4, dtype=np.int64))
        coord.finalize()
        reopened = ShardStore.open(str(tmp_path))
        np.testing.assert_array_equal(reopened.rr_set(0, 0), nodes[:1])


# ----------------------------------------------------------------------
# spawned end-to-end
# ----------------------------------------------------------------------


class TestSpawnedGenerate:
    def test_three_workers_bit_identical_to_serial(
        self, world, serial_mrr, tmp_path
    ):
        """The acceptance bar: a 3-process spawned generate lands on
        exactly the serial collection, and cleans its rendezvous."""
        graph, campaign = world
        shard_dir = str(tmp_path / "shards")
        spawned = MRRCollection.generate(
            graph,
            campaign,
            THETA,
            seed=21,
            runtime=Runtime(
                workers=3, executor="spawned", store="disk",
                shard_dir=shard_dir,
            ),
        )
        _assert_identical(serial_mrr, spawned)
        assert not os.path.exists(os.path.join(shard_dir, dist.DIST_DIR))

    def test_spawned_memory_target_degrades_to_process_pool(
        self, world, serial_mrr
    ):
        """No shard dir to rendezvous on: spawned degrades to the
        bit-identical process pool."""
        graph, campaign = world
        got = MRRCollection.generate(
            graph,
            campaign,
            THETA,
            seed=21,
            runtime=Runtime(workers=2, executor="spawned", store="memory"),
        )
        _assert_identical(serial_mrr, got)

    def test_hand_launched_workers(self, world, serial_mrr, tmp_path):
        """The REPRO_DIST_LAUNCH=0 topology: the coordinator launches
        nothing; two by-hand worker processes fill the store."""
        graph, campaign = world
        shard_dir = str(tmp_path / "shards")
        procs = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.sampling.worker",
                    "--shard-dir",
                    shard_dir,
                    "--wait",
                    "60",
                ],
                env=dist._worker_env(),
            )
            for _ in range(2)
        ]
        try:
            env_runtime = Runtime(
                workers=2, executor="spawned", store="disk",
                shard_dir=shard_dir,
            )
            os.environ["REPRO_DIST_LAUNCH"] = "0"
            try:
                import repro.runtime as runtime_mod

                old = runtime_mod.DEFAULT_DIST_LAUNCH
                runtime_mod.DEFAULT_DIST_LAUNCH = 0
                try:
                    got = MRRCollection.generate(
                        graph, campaign, THETA, seed=21, runtime=env_runtime
                    )
                finally:
                    runtime_mod.DEFAULT_DIST_LAUNCH = old
            finally:
                del os.environ["REPRO_DIST_LAUNCH"]
            _assert_identical(serial_mrr, got)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                proc.wait(timeout=30)
        # The workers saw completion and exited cleanly on their own or
        # were terminated after the collection was already complete.
        assert all(proc.returncode is not None for proc in procs)

    def test_worker_sigkill_mid_run_lease_reclaimed(
        self, world, serial_mrr, tmp_path
    ):
        """A worker killed -9 mid-task leaves a lease that expires; the
        remaining topology re-claims it and the result is identical."""
        graph, campaign = world
        shard_dir = str(tmp_path / "shards")
        # Start a doomed worker by hand with a short ttl, let it claim
        # work, then SIGKILL it and run the normal spawned generate
        # against the same directory.
        doomed = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.sampling.worker",
                "--shard-dir",
                shard_dir,
                "--ttl",
                "1.0",
                "--wait",
                "60",
            ],
            env=dist._worker_env(),
        )
        try:
            got = MRRCollection.generate(
                graph,
                campaign,
                THETA,
                seed=21,
                runtime=Runtime(
                    workers=2, executor="spawned", store="disk",
                    shard_dir=shard_dir,
                ),
            )
        finally:
            if doomed.poll() is None:
                os.kill(doomed.pid, signal.SIGKILL)
            doomed.wait(timeout=30)
        _assert_identical(serial_mrr, got)

    def test_run_worker_inline_fills_store(self, world, serial_mrr, tmp_path):
        """run_worker drives a fill to completion in-process: the
        coordinator-side protocol (spec, leases, rescan) end-to-end
        without subprocess indirection."""
        graph, campaign = world
        shard_dir = str(tmp_path / "shards")
        from repro.diffusion.projection import project_campaign
        from repro.sampling.mrr import resolve_models
        from repro.sampling.parallel import spawn_task_seeds, task_block_size
        from repro.utils.rng import as_generator

        rng = as_generator(21)
        piece_graphs = list(project_campaign(graph, campaign))
        models = resolve_models(None, campaign.num_pieces)
        roots = rng.integers(0, graph.n, size=THETA)
        fp = store_fingerprint(graph.n, roots, models, None)
        store = ShardStore(shard_dir)
        store.begin(
            graph.n,
            len(piece_graphs),
            THETA,
            task_block_size(THETA),
            fingerprint=fp,
        )
        store.save_roots(roots)
        entropy = int(rng.integers(0, 2**63 - 1))
        spec = dist.JobSpec(
            n=graph.n,
            theta=THETA,
            block_size=store.block_size,
            num_pieces=store.num_pieces,
            num_blocks=store.num_blocks,
            models=tuple(models),
            backend=None,
            entropy=entropy,
            fingerprint=fp,
            piece_graphs=piece_graphs,
        )
        dist.write_job_spec(shard_dir, spec)
        done = dist.run_worker(shard_dir, spec_wait=5.0)
        assert done == store.num_pieces * store.num_blocks
        store.rescan()
        store.finalize()
        got = MRRCollection.from_store(ShardStore.open(shard_dir))
        # Same single entropy draw as spawn_task_seeds makes from an
        # identically-positioned rng: the serial collection.
        rng2 = as_generator(21)
        roots2 = rng2.integers(0, graph.n, size=THETA)
        np.testing.assert_array_equal(roots, roots2)
        seeds = spawn_task_seeds(rng2, store.num_pieces * store.num_blocks)
        assert [s.entropy for s in spec.task_seeds()] == [
            s.entropy for s in seeds
        ]
        _assert_identical(serial_mrr, got)


# ----------------------------------------------------------------------
# producer flight + busy retry
# ----------------------------------------------------------------------


def _flight_worker(root: str, worker: int) -> str:
    """Race N processes through one cacheable generate; report action."""
    from repro.api import Session

    session = Session.from_dataset(
        "lastfm",
        scale=0.08,
        pieces=2,
        k=2,
        seed=1,
        runtime=Runtime(artifacts=root),
    )
    session.sample(theta=400)
    events = [
        (e.stage, e.action)
        for e in session.stage_trace.events
        if e.stage == "sample"
    ]
    return events[0][1]


class TestProducerFlight:
    def test_disk_flight_single_producer(self, tmp_path):
        root = str(tmp_path / "store")
        store = DiskArtifactStore(root)
        key = ArtifactKey(
            graph="g" * 64, campaign="c" * 64, runtime="rt",
            stage="sample", extra=("q=1",),
        )
        first = store.producer_flight(key)
        second = store.producer_flight(key)
        assert first.claim()
        assert not second.claim()
        # Producer commits, then releases: the waiter gets the object.
        store.put(key, {"ok": 1}, {"x": np.arange(3, dtype=np.int64)})
        first.release()
        hit = second.wait(lambda: store.get(key), timeout=5.0)
        assert hit is not None and hit.meta["ok"] == 1
        second.release()

    def test_waiter_inherits_dead_producers_flight(self, tmp_path):
        root = str(tmp_path / "store")
        store = DiskArtifactStore(root)
        key = ArtifactKey(
            graph="g" * 64, campaign="c" * 64, runtime="rt",
            stage="sample", extra=("q=2",),
        )
        dead = store.producer_flight(key)
        assert dead.claim()
        # Simulate producer death: stop the keepalive without releasing
        # and age the lease past its ttl.
        dead._lease._stop_keepalive()
        dead._lease.ttl = 0.05
        dead._lease.refresh()
        time.sleep(0.15)
        waiter = store.producer_flight(key)
        assert not waiter.claim() or True  # may steal immediately
        got = waiter.wait(lambda: store.get(key), timeout=5.0, poll=0.02)
        assert got is None  # inherited the flight, nothing committed
        waiter.release()

    def test_stampede_elects_one_producer(self, tmp_path):
        """N processes cold-starting one key: every result is identical
        and the store records exactly one sample put."""
        root = str(tmp_path / "artifacts")
        with ProcessPoolExecutor(max_workers=3) as pool:
            actions = list(
                pool.map(_flight_worker, [root] * 3, range(3))
            )
        assert sorted(actions).count("run") >= 1
        # All processes converged on one committed object.
        store = DiskArtifactStore(root)
        stats = store.stats()
        assert stats["puts"] == 1, stats


class TestBusyRetry:
    def test_busy_hit_retries_then_succeeds(self, world, tmp_path, monkeypatch):
        """A transiently-busy cached shard dir is retried, not abandoned."""
        calls = {"n": 0}
        original = MRRCollection._from_artifact.__func__

        def flaky(cls, hit, rt, store_obj):
            calls["n"] += 1
            if calls["n"] == 1:
                raise StoreBusyError("mid-commit")
            return original(cls, hit, rt, store_obj)

        graph, campaign = world
        root = str(tmp_path / "artifacts")
        runtime = Runtime(artifacts=root)
        first = MRRCollection.generate(
            graph, campaign, 200, seed=5, runtime=runtime
        )
        monkeypatch.setattr(
            MRRCollection, "_from_artifact", classmethod(flaky)
        )
        again = MRRCollection.generate(
            graph, campaign, 200, seed=5, runtime=runtime
        )
        assert calls["n"] == 2  # one busy failure + one successful retry
        _assert_identical(first, again)

    def test_busy_every_time_falls_back_to_private_generation(
        self, world, tmp_path, monkeypatch
    ):
        graph, campaign = world
        root = str(tmp_path / "artifacts")
        runtime = Runtime(artifacts=root)
        first = MRRCollection.generate(
            graph, campaign, 200, seed=5, runtime=runtime
        )
        calls = {"n": 0}

        def always_busy(cls, hit, rt, store_obj):
            calls["n"] += 1
            raise StoreBusyError("still busy")

        monkeypatch.setattr(
            MRRCollection, "_from_artifact", classmethod(always_busy)
        )
        monkeypatch.setattr(MRRCollection, "_BUSY_BACKOFF", 0.001)
        again = MRRCollection.generate(
            graph, campaign, 200, seed=5, runtime=runtime
        )
        assert calls["n"] == MRRCollection._BUSY_RETRIES
        _assert_identical(first, again)


# ----------------------------------------------------------------------
# segment LRU
# ----------------------------------------------------------------------


class TestSegmentLRU:
    @pytest.fixture()
    def disk(self, world, tmp_path):
        graph, campaign = world
        return MRRCollection.generate(
            graph,
            campaign,
            THETA,
            seed=21,
            runtime=Runtime(store="disk", shard_dir=str(tmp_path / "s")),
        )

    def test_repeat_gather_hits_and_identical_output(self, disk):
        store = disk.store
        pool = np.arange(0, disk.n, 7, dtype=np.int64)[:32]
        cold, cold_deg = store.gather_index(0, pool)
        stats = store.stats()
        assert stats["index_cache_hits"] == 0
        assert stats["index_cache_misses"] > 0
        warm, warm_deg = store.gather_index(0, pool)
        np.testing.assert_array_equal(cold, warm)
        np.testing.assert_array_equal(cold_deg, warm_deg)
        stats = store.stats()
        assert stats["index_cache_hits"] > 0

    def test_cache_bytes_stay_bounded(self, disk):
        store = disk.store
        store._seg_budget = 2048
        rng = np.random.default_rng(5)
        for _ in range(20):
            pool = np.sort(
                rng.choice(disk.n, size=16, replace=False)
            ).astype(np.int64)
            store.gather_index(0, pool)
            assert store.stats()["index_cache_bytes"] <= 2048

    def test_zero_budget_disables_cache(self, world, tmp_path):
        graph, campaign = world
        collection = MRRCollection.generate(
            graph,
            campaign,
            THETA,
            seed=21,
            runtime=Runtime(store="disk", shard_dir=str(tmp_path / "s")),
        )
        store = ShardStore.open(
            collection.store.shard_dir, index_cache_bytes=0
        )
        pool = np.arange(0, graph.n, 9, dtype=np.int64)[:16]
        store.gather_index(0, pool)
        store.gather_index(0, pool)
        stats = store.stats()
        assert stats["index_cache_hits"] == 0
        assert stats["index_cache_entries"] == 0

    def test_large_pools_bypass_cache(self, disk):
        store = disk.store
        before = store.stats()["index_cache_misses"]
        pool = np.arange(disk.n, dtype=np.int64)
        store.gather_index(0, pool)
        assert store.stats()["index_cache_misses"] == before
