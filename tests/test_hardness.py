"""Tests for the Max-Clique reduction (Sec. IV-B, Lemma 1, Theorem 1)."""

from __future__ import annotations

import itertools
import math

import networkx as nx
import pytest

from repro.core.hardness import CliqueReduction, maximum_clique
from repro.core.plan import AssignmentPlan
from repro.exceptions import SolverError


def random_graphs():
    """Small named test graphs: (n, edges)."""
    triangle_plus = (5, [(0, 1), (1, 2), (0, 2), (2, 3)])
    square = (4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    k4 = (4, list(itertools.combinations(range(4), 2)))
    path = (4, [(0, 1), (1, 2), (2, 3)])
    return [triangle_plus, square, k4, path]


class TestMaximumClique:
    @pytest.mark.parametrize("n,edges", random_graphs())
    def test_matches_networkx(self, n, edges):
        ours = maximum_clique(n, edges)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        best_nx = max(nx.find_cliques(g), key=len)
        assert len(ours) == len(best_nx)

    def test_clique_is_actually_a_clique(self):
        n, edges = 6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5)]
        clique = maximum_clique(n, edges)
        edge_set = {frozenset(e) for e in edges}
        for u, v in itertools.combinations(clique, 2):
            assert frozenset((u, v)) in edge_set

    def test_empty_graph(self):
        assert len(maximum_clique(3, [])) == 1


class TestConstruction:
    def test_sizes(self):
        red = CliqueReduction(4, [(0, 1), (1, 2)])
        assert red.graph.n == 12  # 3n vertices
        problem = red.problem()
        assert problem.k == 4
        assert problem.num_pieces == 4
        assert problem.pool_size == 8  # x's and y's only

    def test_adoption_parameters(self):
        n = 5
        red = CliqueReduction(n, [(0, 1)])
        log2n = math.log(2 * n)
        assert red.adoption.alpha == pytest.approx(2 * n * log2n)
        assert red.adoption.beta == pytest.approx(2 * log2n)
        # Step 5's calibration: all n pieces -> 1/2; below -> <= 1/(1+(2n)^2)
        assert red.adoption.probability(n) == pytest.approx(0.5)
        assert red.adoption.probability(n - 1) <= 1 / (1 + (2 * n) ** 2) + 1e-12

    def test_x_edges_follow_neighbourhoods(self):
        red = CliqueReduction(3, [(0, 1)])
        # x_0 connects to r_0 and r_1 (v_1 is 0's neighbour), not r_2.
        assert red.graph.has_edge(red.x(0), red.r(0))
        assert red.graph.has_edge(red.x(0), red.r(1))
        assert not red.graph.has_edge(red.x(0), red.r(2))

    def test_y_edges_miss_own_vertex(self):
        red = CliqueReduction(3, [(0, 1)])
        assert not red.graph.has_edge(red.y(0), red.r(0))
        assert red.graph.has_edge(red.y(0), red.r(1))
        assert red.graph.has_edge(red.y(0), red.r(2))

    def test_pieces_are_single_topic(self):
        red = CliqueReduction(3, [(0, 1)])
        for i, piece in enumerate(red.campaign):
            assert piece.support().tolist() == [i]

    def test_too_small_rejected(self):
        with pytest.raises(SolverError):
            CliqueReduction(1, [])

    def test_bad_edge_rejected(self):
        with pytest.raises(SolverError):
            CliqueReduction(3, [(0, 9)])


class TestLemma1:
    @pytest.mark.parametrize("n,edges", random_graphs())
    def test_sandwich_inequalities(self, n, edges):
        """2*OPT(Pi_b) - 1/n <= OPT(Pi_a) <= 2*OPT(Pi_b).

        OPT(Pi_b) is evaluated over all promoter-per-piece plans (the
        form the paper proves optimal plans take).
        """
        red = CliqueReduction(n, edges)
        opt_a = len(maximum_clique(n, edges))
        # Enumerate all 2^n plans of the canonical form {x_i or y_i}.
        best_b = 0.0
        for mask in range(2**n):
            clique_vertices = [i for i in range(n) if (mask >> i) & 1]
            plan = red.plan_from_clique(clique_vertices)
            best_b = max(best_b, red.utility(plan))
        assert opt_a <= 2 * best_b + 1e-9
        assert 2 * best_b - 1.0 / n <= opt_a + 1e-9

    @pytest.mark.parametrize("n,edges", random_graphs())
    def test_clique_plan_utility_at_least_half_clique(self, n, edges):
        """Forward direction: the clique-derived plan scores >= |C|/2."""
        red = CliqueReduction(n, edges)
        clique = maximum_clique(n, edges)
        plan = red.plan_from_clique(clique)
        assert red.utility(plan) >= len(clique) / 2 - 1e-9

    @pytest.mark.parametrize("n,edges", random_graphs())
    def test_reverse_mapping_gives_clique(self, n, edges):
        """C(S-bar) always induces a clique in Pi_a."""
        red = CliqueReduction(n, edges)
        edge_set = {frozenset(e) for e in edges}
        # Try a handful of canonical plans.
        for mask in range(min(2**n, 32)):
            chosen = [i for i in range(n) if (mask >> i) & 1]
            plan = red.plan_from_clique(chosen)
            candidate = red.clique_from_plan(plan)
            for u, v in itertools.combinations(sorted(candidate), 2):
                assert frozenset((u, v)) in edge_set

    def test_plan_from_clique_validation(self):
        red = CliqueReduction(3, [(0, 1)])
        with pytest.raises(SolverError):
            red.plan_from_clique([7])

    def test_clique_from_plan_shape_validation(self):
        red = CliqueReduction(3, [(0, 1)])
        with pytest.raises(SolverError):
            red.clique_from_plan(AssignmentPlan([{0}]))
