"""Unit tests for synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GraphError, ParameterError
from repro.graph.generators import (
    build_topic_graph,
    directed_configuration_model,
    power_law_degree_sequence,
    preferential_attachment_digraph,
    random_edge_topic_profiles,
)


class TestPowerLawDegrees:
    def test_bounds_respected(self):
        deg = power_law_degree_sequence(
            500, 2.5, min_degree=2, max_degree=40, seed=1
        )
        assert deg.min() >= 2 and deg.max() <= 40
        assert deg.shape == (500,)

    def test_heavier_tail_for_smaller_exponent(self):
        light = power_law_degree_sequence(4000, 3.5, seed=2).mean()
        heavy = power_law_degree_sequence(4000, 2.1, seed=2).mean()
        assert heavy > light

    def test_deterministic_given_seed(self):
        a = power_law_degree_sequence(100, 2.5, seed=3)
        b = power_law_degree_sequence(100, 2.5, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_bad_bounds_rejected(self):
        with pytest.raises(ParameterError):
            power_law_degree_sequence(10, 2.5, min_degree=5, max_degree=2)

    def test_bad_exponent_rejected(self):
        with pytest.raises(ParameterError):
            power_law_degree_sequence(10, -1.0)


class TestConfigurationModel:
    def test_simple_graph_no_self_loops_or_duplicates(self):
        out_deg = power_law_degree_sequence(200, 2.3, seed=4)
        in_deg = power_law_degree_sequence(200, 2.3, seed=5)
        src, dst = directed_configuration_model(out_deg, in_deg, seed=6)
        assert np.all(src != dst)
        keys = set(zip(src.tolist(), dst.tolist()))
        assert len(keys) == src.size

    def test_degree_mass_approximately_preserved(self):
        out_deg = np.full(300, 3)
        in_deg = np.full(300, 3)
        src, dst = directed_configuration_model(out_deg, in_deg, seed=7)
        # The erased model loses only self-loops and duplicates.
        assert src.size >= 0.8 * 900

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(GraphError):
            directed_configuration_model(np.ones(3), np.ones(4))

    def test_negative_degree_rejected(self):
        with pytest.raises(GraphError):
            directed_configuration_model(np.array([-1]), np.array([1]))

    def test_empty_sequences(self):
        src, dst = directed_configuration_model(
            np.zeros(5, dtype=int), np.zeros(5, dtype=int), seed=8
        )
        assert src.size == 0


class TestPreferentialAttachment:
    def test_edge_count_bidirectional(self):
        src, dst = preferential_attachment_digraph(50, 3, seed=9)
        assert src.size == dst.size
        # Bidirectional doubles the underlying attachment edges.
        assert src.size % 2 == 0

    def test_unidirectional(self):
        src, dst = preferential_attachment_digraph(
            50, 2, seed=10, bidirectional=False
        )
        keys = set(zip(src.tolist(), dst.tolist()))
        assert len(keys) == src.size

    def test_hubs_emerge(self):
        src, dst = preferential_attachment_digraph(400, 3, seed=11)
        degree = np.bincount(np.concatenate([src, dst]), minlength=400)
        # Preferential attachment: the max degree dwarfs the median.
        assert degree.max() > 5 * np.median(degree)

    def test_no_self_loops(self):
        src, dst = preferential_attachment_digraph(80, 4, seed=12)
        assert np.all(src != dst)

    def test_small_n(self):
        src, dst = preferential_attachment_digraph(2, 3, seed=13)
        assert src.size >= 1


class TestTopicProfiles:
    def test_csr_shape(self):
        ptr, topics, probs = random_edge_topic_profiles(
            100, 8, topics_per_edge=2.0, seed=14
        )
        assert ptr.shape == (101,)
        assert ptr[-1] == topics.size == probs.size

    def test_every_edge_has_a_topic(self):
        ptr, _, _ = random_edge_topic_profiles(50, 5, seed=15)
        assert np.all(np.diff(ptr) >= 1)

    def test_topics_unique_per_edge(self):
        ptr, topics, _ = random_edge_topic_profiles(
            60, 4, topics_per_edge=3.0, seed=16
        )
        for e in range(60):
            seg = topics[ptr[e] : ptr[e + 1]]
            assert len(set(seg.tolist())) == seg.size

    def test_probs_in_unit_interval(self):
        _, _, probs = random_edge_topic_profiles(80, 6, seed=17)
        assert np.all((probs > 0) & (probs < 1))

    def test_mean_controls_level(self):
        _, _, low = random_edge_topic_profiles(
            2000, 4, prob_mean=0.05, seed=18
        )
        _, _, high = random_edge_topic_profiles(
            2000, 4, prob_mean=0.4, seed=18
        )
        assert high.mean() > low.mean()

    def test_sparsity_parameter_rejected_below_one(self):
        with pytest.raises(ParameterError):
            random_edge_topic_profiles(10, 4, topics_per_edge=0.5)

    def test_zero_edges(self):
        ptr, topics, probs = random_edge_topic_profiles(0, 4, seed=19)
        assert ptr.tolist() == [0]
        assert topics.size == probs.size == 0


class TestBuildTopicGraph:
    def test_end_to_end(self):
        src, dst = preferential_attachment_digraph(30, 2, seed=20)
        g = build_topic_graph(30, src, dst, 5, seed=21)
        assert g.n == 30
        assert g.num_edges == src.size
        assert g.num_topics == 5
