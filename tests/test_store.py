"""The pluggable sample-store layer (``repro.sampling.store``).

Contracts under test:

* bit-identity — a :class:`ShardStore` collection (arrays, inverted
  indexes, estimates, greedy seed sets, full BAB solves) is equal to
  the :class:`MemoryStore` one for the same seed and decomposition;
* out-of-core — a theta whose sample payload exceeds
  ``max_resident_bytes`` runs generate → coverage → BAB/RIS end-to-end
  with the store's resident cache held at the ceiling;
* durability — shard directories reload without resampling, resume
  from partial shards, and fail loudly on mismatched, corrupted, or
  missing shards;
* knobs — ``store=``/``REPRO_STORE`` parsing raises
  :class:`~repro.exceptions.ConfigError` at entry (as do the
  ``REPRO_WORKERS``/``REPRO_BACKEND`` parsers this PR moved onto the
  shared env helper).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

import repro.sampling.store as store_mod
from repro.core.bab import solve_bab
from repro.core.bitset import CowCounts
from repro.core.coverage import CoverageState, coverage_gains
from repro.core.plan import AssignmentPlan
from repro.core.problem import OIPAProblem
from repro.core.tangent import MajorantTable
from repro.core.upper_bound import TauState
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import ConfigError, ParameterError, StoreError
from repro.graph.generators import (
    build_topic_graph,
    preferential_attachment_digraph,
)
from repro.im.ris import max_coverage_seeds
from repro.sampling.mrr import MRRCollection
from repro.sampling.store import (
    MemoryStore,
    ShardStore,
    check_store,
    resolve_store,
)
from repro.topics.distributions import Campaign
from repro.runtime import parse_env_choice, parse_env_workers

THETA = 800


@pytest.fixture(scope="module")
def world():
    src, dst = preferential_attachment_digraph(80, 3, seed=11)
    graph = build_topic_graph(
        80, src, dst, 4, topics_per_edge=2.0, prob_mean=0.2, seed=12
    )
    campaign = Campaign.sample_unit(3, 4, seed=13)
    return graph, campaign


@pytest.fixture(scope="module")
def mem_mrr(world):
    graph, campaign = world
    # workers=1 pins the block decomposition the disk store always uses.
    return MRRCollection.generate(
        graph, campaign, THETA, seed=21, workers=1, store="memory"
    )


def _assert_collections_equal(a: MRRCollection, b: MRRCollection) -> None:
    assert (a.n, a.theta, a.num_pieces) == (b.n, b.theta, b.num_pieces)
    np.testing.assert_array_equal(a.roots, b.roots)
    for j in range(a.num_pieces):
        np.testing.assert_array_equal(a._rr_ptr[j], b._rr_ptr[j])
        np.testing.assert_array_equal(a._rr_nodes[j], b._rr_nodes[j])
        pa, sa = a.index_arrays(j)
        pb, sb = b.index_arrays(j)
        np.testing.assert_array_equal(pa, pb)
        np.testing.assert_array_equal(sa, sb)


# ----------------------------------------------------------------------
# knobs
# ----------------------------------------------------------------------


class TestKnobs:
    def test_check_store_values(self, monkeypatch):
        monkeypatch.setattr(store_mod, "DEFAULT_STORE", "memory")
        assert check_store(None) == "memory"
        assert check_store("disk") == "disk"
        monkeypatch.setattr(store_mod, "DEFAULT_STORE", "disk")
        assert check_store(None) == "disk"
        with pytest.raises(ConfigError):
            check_store("s3")

    def test_resolve_store_kinds(self, tmp_path):
        assert isinstance(resolve_store("memory"), MemoryStore)
        disk = resolve_store("disk", shard_dir=str(tmp_path / "s"))
        assert isinstance(disk, ShardStore)
        ready = MemoryStore()
        assert resolve_store(ready) is ready

    def test_disk_knobs_rejected_for_memory(self, world):
        graph, campaign = world
        with pytest.raises(ConfigError):
            resolve_store("memory", shard_dir="/tmp/nope")
        with pytest.raises(ConfigError):
            MRRCollection.generate(
                graph, campaign, 50, seed=1, store="memory", shard_dir="x"
            )
        with pytest.raises(ConfigError):
            ShardStore(max_resident_bytes=0)

    def test_env_parsers_raise_config_error(self):
        assert issubclass(ConfigError, ParameterError)
        with pytest.raises(ConfigError):
            parse_env_choice("REPRO_STORE", "s3", ("memory", "disk"))
        assert parse_env_choice("REPRO_STORE", "", ("memory", "disk")) is None
        with pytest.raises(ConfigError):
            parse_env_workers("many")
        with pytest.raises(ConfigError):
            parse_env_workers("-3")
        assert parse_env_workers("serial") is None
        assert parse_env_workers("6") == 6

    @pytest.mark.parametrize(
        "var, code",
        [
            ("REPRO_STORE", "import repro.sampling.store"),
            ("REPRO_WORKERS", "import repro.sampling.parallel"),
            ("REPRO_BACKEND", "import repro.sampling.batch"),
        ],
    )
    def test_env_rejected_at_entry(self, var, code):
        """Invalid env knobs fail at import with the variable named."""
        env = dict(os.environ, **{var: "bogus"})
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
        )
        assert proc.returncode != 0
        assert var.encode() in proc.stderr
        assert b"ConfigError" in proc.stderr

    def test_repro_store_env_sets_default(self):
        code = (
            "import repro.sampling.store as s; "
            "assert s.DEFAULT_STORE == 'disk', s.DEFAULT_STORE"
        )
        env = dict(os.environ, REPRO_STORE="disk")
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
        )
        assert proc.returncode == 0, proc.stderr.decode()


# ----------------------------------------------------------------------
# bit-identity across stores
# ----------------------------------------------------------------------


class TestStoreEquivalence:
    def test_gather_budget_tiers(self, world, mem_mrr, tmp_path, monkeypatch):
        """The coalescing gather respects the resident budget.

        Gap read-through must never blow the merged-run buffer past
        ``gather_chunk_bytes``; when even the gapless merge is over
        budget the gather falls back to per-vertex direct reads.
        Results are byte-identical in every tier.
        """
        graph, campaign = world
        disk = MRRCollection.generate(
            graph, campaign, THETA, seed=21,
            store="disk", shard_dir=str(tmp_path / "shards"),
        )
        # This test counts *file* reads across budget tiers; the segment
        # LRU would serve the repeat gathers from RAM, so pin it off.
        disk.store._seg_budget = 0
        rng = np.random.default_rng(3)
        sparse = np.sort(rng.choice(graph.n, size=10, replace=False))
        want, want_deg = mem_mrr.store.gather_index(0, sparse)

        reads = []
        original = ShardStore._read_slab

        def counting(self, fh, view, lo, hi):
            reads.append(hi - lo)
            return original(self, fh, view, lo, hi)

        monkeypatch.setattr(ShardStore, "_read_slab", counting)
        # Default budget: coalesced (few reads, possibly read-through).
        got, got_deg = disk.store.gather_index(0, sparse)
        np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(got_deg, want_deg)
        assert len(reads) < sparse.size
        # Starved budget: every tier's buffer is over, so the gather
        # must drop to per-vertex reads — one per populated vertex,
        # none larger than its own slab (no read-through allocation).
        monkeypatch.setattr(
            ShardStore, "gather_chunk_bytes", property(lambda self: 8)
        )
        reads.clear()
        got, got_deg = disk.store.gather_index(0, sparse)
        np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(got_deg, want_deg)
        populated = int((want_deg > 0).sum())
        assert len(reads) == populated
        assert sum(reads) == int(want_deg.sum())

    def test_disk_matches_memory_arrays(self, world, mem_mrr, tmp_path):
        graph, campaign = world
        disk = MRRCollection.generate(
            graph,
            campaign,
            THETA,
            seed=21,
            store="disk",
            shard_dir=str(tmp_path / "shards"),
        )
        _assert_collections_equal(mem_mrr, disk)

    def test_disk_matches_memory_with_pool(self, world, mem_mrr, tmp_path):
        graph, campaign = world
        disk = MRRCollection.generate(
            graph,
            campaign,
            THETA,
            seed=21,
            workers=2,
            store="disk",
            shard_dir=str(tmp_path / "shards"),
        )
        _assert_collections_equal(mem_mrr, disk)

    def test_memory_store_streaming_path_matches(self, world, mem_mrr):
        """A MemoryStore instance takes the streaming put_block path and
        must land on the identical collection."""
        graph, campaign = world
        streamed = MRRCollection.generate(
            graph, campaign, THETA, seed=21, store=MemoryStore()
        )
        _assert_collections_equal(mem_mrr, streamed)

    def test_estimates_and_queries_identical(self, world, mem_mrr, tmp_path):
        graph, campaign = world
        disk = MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk",
            shard_dir=str(tmp_path / "shards"),
        )
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        plan = [[1, 5], [2], [9, 11]]
        assert mem_mrr.estimate(plan, adoption) == disk.estimate(plan, adoption)
        np.testing.assert_array_equal(
            mem_mrr.coverage_counts(plan), disk.coverage_counts(plan)
        )
        for j in range(3):
            np.testing.assert_array_equal(
                mem_mrr.rr_set_sizes(j), disk.rr_set_sizes(j)
            )
            np.testing.assert_array_equal(
                mem_mrr.vertex_frequencies(j), disk.vertex_frequencies(j)
            )
            for sample in (0, THETA // 2, THETA - 1):
                np.testing.assert_array_equal(
                    mem_mrr.rr_set(j, sample), disk.rr_set(j, sample)
                )
            for v in (0, 7, 79):
                np.testing.assert_array_equal(
                    mem_mrr.samples_containing(j, v),
                    disk.samples_containing(j, v),
                )

    def test_theta_beyond_ceiling_end_to_end(self, world, mem_mrr, tmp_path):
        """The acceptance bar: a sample payload far above the resident
        ceiling runs generate → coverage → RIS → BAB with the cache held
        at the ceiling and results bit-identical to the in-RAM store."""
        graph, campaign = world
        ceiling = 16 * 1024
        disk = MRRCollection.generate(
            graph,
            campaign,
            THETA,
            seed=21,
            store="disk",
            shard_dir=str(tmp_path / "shards"),
            max_resident_bytes=ceiling,
        )
        store = disk.store
        payload = sum(
            int(mem_mrr.rr_set_sizes(j).sum()) * 8 for j in range(3)
        )
        assert payload > ceiling  # theta really is beyond the ceiling
        pool = np.arange(0, graph.n, 2, dtype=np.int64)
        assert max_coverage_seeds(disk, 0, pool, 5) == max_coverage_seeds(
            mem_mrr, 0, pool, 5
        )
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        problem = OIPAProblem(graph, campaign, adoption, k=3, pool=pool)
        got = solve_bab(problem, disk, max_nodes=60)
        want = solve_bab(problem, mem_mrr, max_nodes=60)
        assert got.plan == want.plan
        assert got.utility == want.utility
        assert got.upper_bound == want.upper_bound
        # Touch every RR set; the block LRU must stay at the ceiling
        # (a single cached block may exceed it on its own).
        for sample in range(0, THETA, 17):
            disk.rr_set(1, sample)
        assert (
            store.resident_bytes <= store.max_resident_bytes
            or len(store._cache) == 1
        )

    def test_chunked_gathers_match_single_dispatch(
        self, world, mem_mrr, tmp_path
    ):
        """A 4 KB budget forces multi-chunk slab gathers; gains must be
        identical to the in-RAM single-dispatch kernel."""
        graph, campaign = world
        disk = MRRCollection.generate(
            graph,
            campaign,
            THETA,
            seed=21,
            store="disk",
            shard_dir=str(tmp_path / "shards"),
            max_resident_bytes=1,
        )
        pool = np.arange(graph.n, dtype=np.int64)
        chunks = list(disk.iter_index_slabs(0, pool))
        assert len(chunks) > 1  # the budget actually splits the scan
        covered = np.zeros(THETA, dtype=bool)
        covered[mem_mrr.samples_containing(0, 3)] = True
        np.testing.assert_array_equal(
            coverage_gains(mem_mrr, 0, pool, covered),
            coverage_gains(disk, 0, pool, covered),
        )
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        table = MajorantTable(adoption, 3)
        base_mem = CoverageState(mem_mrr)
        base_disk = CoverageState(disk)
        for state in (base_mem, base_disk):
            state.add_many(np.asarray([1, 5, 9], dtype=np.int64), 2)
        tau_mem = TauState(mem_mrr, table, base_mem, adoption)
        tau_disk = TauState(disk, table, base_disk, adoption)
        assert tau_mem.value == tau_disk.value
        np.testing.assert_array_equal(
            tau_mem.marginal_gains(pool, 1), tau_disk.marginal_gains(pool, 1)
        )


# ----------------------------------------------------------------------
# round-trip, resume, corruption
# ----------------------------------------------------------------------


class TestShardRoundTrip:
    def test_write_then_reopen(self, world, mem_mrr, tmp_path):
        graph, campaign = world
        shard_dir = str(tmp_path / "shards")
        MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk", shard_dir=shard_dir
        )
        reloaded = MRRCollection.from_store(ShardStore.open(shard_dir))
        _assert_collections_equal(mem_mrr, reloaded)

    def test_regenerate_skips_sampling(self, world, tmp_path, monkeypatch):
        graph, campaign = world
        shard_dir = str(tmp_path / "shards")
        first = MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk", shard_dir=shard_dir
        )

        def bomb(*args, **kwargs):
            raise AssertionError("finalized store must not resample")

        import repro.sampling.parallel as parallel

        monkeypatch.setattr(parallel, "stream_piece_blocks", bomb)
        again = MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk", shard_dir=shard_dir
        )
        _assert_collections_equal(first, again)

    def test_mismatched_graph_rejected_on_reload(self, world, tmp_path):
        """A shard dir from a *different graph of the same size* must not
        resume.  The root draw depends only on (seed, n), so before the
        graph content fingerprint joined the manifest identity this
        reloaded cleanly and silently served the wrong samples."""
        graph, campaign = world
        shard_dir = str(tmp_path / "shards")
        MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk", shard_dir=shard_dir
        )
        src, dst = preferential_attachment_digraph(80, 3, seed=77)
        other_graph = build_topic_graph(
            80, src, dst, 4, topics_per_edge=2.0, prob_mean=0.2, seed=78
        )
        with pytest.raises(StoreError) as err:
            MRRCollection.generate(
                other_graph, campaign, THETA, seed=21,
                store="disk", shard_dir=shard_dir,
            )
        # the error names both identities: the resident and the expected
        message = str(err.value)
        assert f"graph={graph.fingerprint()[:16]}" in message
        assert f"graph={other_graph.fingerprint()[:16]}" in message

    def test_mismatched_campaign_rejected_on_reload(self, world, tmp_path):
        """Same graph, different campaign: the projected piece graphs
        differ, so the pieces fingerprint must reject the resume."""
        graph, campaign = world
        shard_dir = str(tmp_path / "shards")
        MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk", shard_dir=shard_dir
        )
        other_campaign = Campaign.sample_unit(3, 4, seed=99)
        with pytest.raises(StoreError, match="different collection"):
            MRRCollection.generate(
                graph, other_campaign, THETA, seed=21,
                store="disk", shard_dir=shard_dir,
            )

    def test_open_requires_manifest_and_index(self, tmp_path, world):
        graph, campaign = world
        with pytest.raises(StoreError):
            ShardStore.open(str(tmp_path / "empty"))
        shard_dir = str(tmp_path / "shards")
        MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk", shard_dir=shard_dir
        )
        os.remove(os.path.join(shard_dir, "piece001.idx.bin"))
        with pytest.raises(StoreError):
            ShardStore.open(shard_dir)

    def test_fingerprint_resolves_backend_default(self, world, tmp_path):
        """A shard dir written under one REPRO_BACKEND default must not
        be silently reloaded under another: backend=None is recorded
        resolved, so the fingerprints clash."""
        import repro.sampling.batch as batch

        graph, campaign = world
        shard_dir = str(tmp_path / "shards")
        MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk",
            shard_dir=shard_dir, backend="python",
        )
        with pytest.raises(StoreError, match="different collection"):
            MRRCollection.generate(
                graph, campaign, THETA, seed=21, store="disk",
                shard_dir=shard_dir, backend="batch",
            )
        assert (
            f"backend={batch.canonical_backend(None)}"
            in store_mod.store_fingerprint(graph.n, np.arange(4), ("ic",), None)
        )

    def test_mismatched_directory_rejected(self, world, tmp_path):
        graph, campaign = world
        shard_dir = str(tmp_path / "shards")
        MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk", shard_dir=shard_dir
        )
        with pytest.raises(StoreError, match="different collection"):
            MRRCollection.generate(
                graph,
                campaign,
                THETA,
                seed=99,  # different roots -> different fingerprint
                store="disk",
                shard_dir=shard_dir,
            )
        with pytest.raises(StoreError, match="different collection"):
            MRRCollection.generate(
                graph,
                campaign,
                THETA // 2,
                seed=21,
                store="disk",
                shard_dir=shard_dir,
            )


def _deface_manifest(shard_dir: str, drop: list[tuple[int, int]]) -> None:
    """Rewind a shard dir to a mid-generation crash state."""
    path = os.path.join(shard_dir, "manifest.json")
    with open(path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    manifest["finalized"] = False
    manifest["blocks"] = [
        pair for pair in manifest["blocks"] if tuple(pair) not in set(drop)
    ]
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh)
    for name in os.listdir(shard_dir):
        if ".idx" in name or ".sizes" in name:
            os.remove(os.path.join(shard_dir, name))


class TestResume:
    def test_partial_shard_resume(self, world, mem_mrr, tmp_path):
        graph, campaign = world
        shard_dir = str(tmp_path / "shards")
        first = MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk", shard_dir=shard_dir
        )
        num_blocks = first.store.num_blocks
        dropped = [(0, num_blocks - 1), (2, 0)]
        _deface_manifest(shard_dir, dropped)
        for piece, block in dropped:
            os.remove(
                os.path.join(
                    shard_dir, f"piece{piece:03d}_block{block:05d}.npz"
                )
            )
        resumed = MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk", shard_dir=shard_dir
        )
        _assert_collections_equal(mem_mrr, resumed)

    def test_resume_heals_missing_file_still_in_manifest(
        self, world, mem_mrr, tmp_path
    ):
        """A block the manifest claims complete but whose file vanished
        is simply resampled, not trusted."""
        graph, campaign = world
        shard_dir = str(tmp_path / "shards")
        MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk", shard_dir=shard_dir
        )
        _deface_manifest(shard_dir, drop=[])  # keep all blocks listed
        os.remove(os.path.join(shard_dir, "piece001_block00000.npz"))
        resumed = MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk", shard_dir=shard_dir
        )
        _assert_collections_equal(mem_mrr, resumed)


class TestCorruption:
    def test_corrupted_shard_fails_loudly_on_resume(self, world, tmp_path):
        graph, campaign = world
        shard_dir = str(tmp_path / "shards")
        MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk", shard_dir=shard_dir
        )
        _deface_manifest(shard_dir, drop=[])
        victim = os.path.join(shard_dir, "piece000_block00000.npz")
        with open(victim, "wb") as fh:
            fh.write(b"not a shard")
        with pytest.raises(StoreError, match="piece000_block00000"):
            MRRCollection.generate(
                graph,
                campaign,
                THETA,
                seed=21,
                store="disk",
                shard_dir=shard_dir,
            )

    def test_corrupted_shard_fails_on_read(self, world, tmp_path):
        graph, campaign = world
        shard_dir = str(tmp_path / "shards")
        MRRCollection.generate(
            graph, campaign, THETA, seed=21, store="disk", shard_dir=shard_dir
        )
        store = ShardStore.open(shard_dir)
        mrr = MRRCollection.from_store(store)
        victim = os.path.join(shard_dir, "piece002_block00000.npz")
        with open(victim, "wb") as fh:
            fh.write(b"garbage")
        with pytest.raises(StoreError, match="missing or corrupted"):
            mrr.rr_set(2, 0)

    def test_unfinalized_store_rejected(self, world):
        graph, _ = world
        store = MemoryStore()
        with pytest.raises(StoreError, match="finalized"):
            MRRCollection(graph.n, np.arange(4), store=store)


# ----------------------------------------------------------------------
# copy-on-write counts + O(l) anchors (perf satellite)
# ----------------------------------------------------------------------


class TestCowCounts:
    def test_clone_isolation_both_directions(self):
        counts = CowCounts(8)
        counts.own()[2] = 3
        clone = counts.clone()
        assert clone.array is counts.array  # shared until a write
        clone.own()[2] = 7
        assert counts.array[2] == 3
        counts.own()[4] = 1
        assert clone.array[4] == 0

    def test_count_hist_tracks_bincount(self, mem_mrr):
        state = CoverageState(mem_mrr)
        rng = np.random.default_rng(5)
        for _ in range(6):
            state.add(int(rng.integers(0, mem_mrr.n)), int(rng.integers(0, 3)))
        state.add_many(np.asarray([3, 4, 5], dtype=np.int64), 1)
        clone = state.copy()
        clone.add(9, 2)
        for s in (state, clone):
            np.testing.assert_array_equal(
                s.count_hist,
                np.bincount(
                    s.counts.astype(np.int64), minlength=s.mrr.num_pieces + 1
                ),
            )

    def test_tau_construction_is_copy_free_until_add(self, mem_mrr):
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        table = MajorantTable(adoption, mem_mrr.num_pieces)
        base = CoverageState.from_plan(
            mem_mrr, AssignmentPlan([{1}, {4}, set()])
        )
        tau = TauState(mem_mrr, table, base, adoption)
        assert tau.counts is base.counts  # shared, no O(theta) copy yet
        anchors = table.values[base.counts, base.counts]
        assert tau.value == pytest.approx(
            mem_mrr.n / mem_mrr.theta * anchors.sum()
        )
        snapshot = base.counts.copy()
        tau.add(7, 0)
        assert tau.counts is not base.counts  # first write paid the copy
        np.testing.assert_array_equal(base.counts, snapshot)
