"""Exact reproduction of the paper's worked examples (Fig. 1, Ex. 1-3).

These tests pin the implementation to hand-computable numbers from the
paper itself:

* Example 1: ``sigma({{a}, {e}}) = 0.12 + 3*0.27 + 0.12 = 1.05``;
* Example 2: non-submodularity, ``0.57 > 0.48``;
* Example 3 / Table II: the MRR estimate of the same plan from four
  specific samples is ``5/4 * (0.27 + 0.12 + 0.27 + 0.27) = 1.16``;
* Figure 1's optimal plan ``t1 -> a, t2 -> e``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bab import solve_bab
from repro.core.brute_force import (
    brute_force_oipa,
    deterministic_adoption_utility,
    deterministic_reach,
)
from repro.core.plan import AssignmentPlan
from repro.datasets.running_example import (
    A,
    B,
    C,
    D,
    E,
    running_example_adoption,
    running_example_campaign,
    running_example_graph,
    running_example_problem,
)
from repro.diffusion.projection import project_campaign
from repro.sampling.mrr import MRRCollection


@pytest.fixture(scope="module")
def world():
    graph = running_example_graph()
    campaign = running_example_campaign()
    adoption = running_example_adoption()
    return graph, campaign, adoption


class TestFigure1Structure:
    def test_piece_reachability(self, world):
        """t1 from a reaches {a,b,c,d}; t2 from e reaches {b,c,d,e}."""
        graph, campaign, _ = world
        pg1, pg2 = project_campaign(graph, campaign)
        reach1 = deterministic_reach(pg1, [A])
        assert reach1.tolist() == [True, True, True, True, False]
        reach2 = deterministic_reach(pg2, [E])
        assert reach2.tolist() == [False, True, True, True, True]

    def test_six_edges_two_topics(self, world):
        graph, _, _ = world
        assert graph.num_edges == 6
        assert graph.num_topics == 2


class TestExample1:
    def test_per_user_probabilities(self, world):
        _, _, adoption = world
        assert adoption.probability(1) == pytest.approx(0.1192, abs=1e-3)
        assert adoption.probability(2) == pytest.approx(0.2689, abs=1e-3)

    def test_total_utility(self, world):
        graph, campaign, adoption = world
        utility = deterministic_adoption_utility(
            graph, campaign, AssignmentPlan([{A}, {E}]), adoption
        )
        # 0.12 + 0.27 * 3 + 0.12 = 1.05 (paper rounds to two decimals)
        assert utility == pytest.approx(1.05, abs=0.01)


class TestExample2NonSubmodularity:
    def test_marginal_gains_violate_submodularity(self, world):
        graph, campaign, adoption = world

        def sigma(plan):
            return deterministic_adoption_utility(
                graph, campaign, plan, adoption
            )

        s_x = AssignmentPlan([set(), set()])
        s_y = AssignmentPlan([{A}, set()])
        s = AssignmentPlan([set(), {E}])
        delta_y = sigma(s_y.union(s)) - sigma(s_y)
        delta_x = sigma(s_x.union(s)) - sigma(s_x)
        assert sigma(s_x) == 0.0
        assert sigma(s_y) == pytest.approx(0.48, abs=0.01)
        assert delta_y == pytest.approx(0.57, abs=0.01)
        assert delta_x == pytest.approx(0.48, abs=0.01)
        assert delta_y > delta_x  # sigma is NOT submodular


class TestExample3TableII:
    def test_mrr_estimate_from_the_papers_samples(self, world):
        """Table II: four MRR samples rooted at c, a, b, c give 1.16."""
        _, _, adoption = world
        roots = np.array([C, A, B, C])
        # RR sets exactly as printed in Table II.
        rr_t1 = [[C, A], [A], [B, A], [C, A]]
        rr_t2 = [[C, D, E], [A], [B, E], [C, D, E]]

        def flatten(sets):
            ptr = np.zeros(5, dtype=np.int64)
            nodes = []
            for i, s in enumerate(sets):
                nodes.extend(s)
                ptr[i + 1] = len(nodes)
            return ptr, np.array(nodes, dtype=np.int64)

        ptr1, nodes1 = flatten(rr_t1)
        ptr2, nodes2 = flatten(rr_t2)
        mrr = MRRCollection(5, roots, [ptr1, ptr2], [nodes1, nodes2])
        estimate = mrr.estimate([[A], [E]], adoption)
        # 5/4 * (0.27 + 0.12 + 0.27 + 0.27) = 1.16
        assert estimate == pytest.approx(1.16, abs=0.01)

    def test_per_sample_probabilities(self, world):
        _, _, adoption = world
        assert adoption.probability(2) == pytest.approx(0.27, abs=0.005)
        assert adoption.probability(1) == pytest.approx(0.12, abs=0.005)


class TestOptimalAssignment:
    def test_brute_force_confirms_figure1_plan(self):
        problem = running_example_problem(k=2)
        mrr = MRRCollection.generate(
            problem.graph, problem.campaign, theta=3000, seed=19
        )
        plan, _ = brute_force_oipa(problem, mrr)
        assert plan == AssignmentPlan([{A}, {E}])

    def test_bab_recovers_it(self):
        problem = running_example_problem(k=2)
        mrr = MRRCollection.generate(
            problem.graph, problem.campaign, theta=3000, seed=20
        )
        result = solve_bab(problem, mrr, gap_tolerance=0.0)
        assert result.plan == AssignmentPlan([{A}, {E}])
