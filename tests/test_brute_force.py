"""Tests for the brute-force oracle and deterministic utility."""

from __future__ import annotations

import pytest

from repro.core.brute_force import (
    brute_force_oipa,
    deterministic_adoption_utility,
    deterministic_reach,
)
from repro.core.plan import AssignmentPlan
from repro.datasets.running_example import (
    running_example_adoption,
    running_example_campaign,
    running_example_graph,
    running_example_problem,
)
from repro.diffusion.projection import PieceGraph
from repro.exceptions import SolverError
from repro.graph.digraph import TopicGraph
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import unit_piece


class TestDeterministicReach:
    def test_chain(self):
        g = TopicGraph.from_edges(
            3, 1, [(0, 1, {0: 1.0}), (1, 2, {0: 1.0})]
        )
        pg = PieceGraph.project(g, unit_piece(0, 1))
        assert deterministic_reach(pg, [0]).tolist() == [True, True, True]
        assert deterministic_reach(pg, [1]).tolist() == [False, True, True]

    def test_fractional_probability_rejected(self):
        g = TopicGraph.from_edges(2, 1, [(0, 1, {0: 0.5})])
        pg = PieceGraph.project(g, unit_piece(0, 1))
        with pytest.raises(SolverError):
            deterministic_reach(pg, [0])

    def test_zero_edges_stop_reach(self):
        g = TopicGraph.from_edges(2, 2, [(0, 1, {1: 1.0})])
        pg = PieceGraph.project(g, unit_piece(0, 2))
        assert deterministic_reach(pg, [0]).tolist() == [True, False]


class TestDeterministicUtility:
    def test_example1(self):
        utility = deterministic_adoption_utility(
            running_example_graph(),
            running_example_campaign(),
            AssignmentPlan([{0}, {4}]),
            running_example_adoption(),
        )
        assert utility == pytest.approx(1.0452, abs=1e-3)

    def test_piece_count_validated(self):
        with pytest.raises(SolverError):
            deterministic_adoption_utility(
                running_example_graph(),
                running_example_campaign(),
                AssignmentPlan([{0}]),
                running_example_adoption(),
            )


class TestBruteForce:
    def test_running_example_optimum(self):
        problem = running_example_problem(k=2)
        mrr = MRRCollection.generate(
            problem.graph, problem.campaign, theta=2000, seed=16
        )
        plan, utility = brute_force_oipa(problem, mrr)
        assert plan == AssignmentPlan([{0}, {4}])
        assert utility == pytest.approx(1.05, abs=0.05)

    def test_optimum_dominates_every_enumerated_plan(self):
        problem = running_example_problem(k=1)
        mrr = MRRCollection.generate(
            problem.graph, problem.campaign, theta=800, seed=17
        )
        _, best = brute_force_oipa(problem, mrr)
        for v in range(5):
            for j in range(2):
                plan = [[], []]
                plan[j] = [v]
                assert best >= mrr.estimate(plan, problem.adoption) - 1e-9

    def test_plan_size_guard(self):
        problem = running_example_problem(k=2)
        mrr = MRRCollection.generate(
            problem.graph, problem.campaign, theta=100, seed=18
        )
        with pytest.raises(SolverError, match="enumerate"):
            brute_force_oipa(problem, mrr, max_plans=3)
