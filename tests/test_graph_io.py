"""Round-trip and malformed-input tests for graph serialisation."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphFormatError
from repro.graph.digraph import TopicGraph
from repro.graph.generators import build_topic_graph, preferential_attachment_digraph
from repro.graph.io import load_topic_graph, save_topic_graph


@pytest.fixture()
def sample_graph() -> TopicGraph:
    return TopicGraph.from_edges(
        4,
        3,
        [
            (0, 1, {0: 0.5, 2: 0.125}),
            (1, 2, {1: 0.25}),
            (3, 0, {0: 1.0}),
        ],
    )


class TestRoundTrip:
    def test_small_graph(self, sample_graph, tmp_path):
        path = tmp_path / "g.tsv"
        save_topic_graph(sample_graph, path)
        loaded = load_topic_graph(path)
        assert loaded == sample_graph

    def test_random_graph(self, tmp_path):
        src, dst = preferential_attachment_digraph(40, 3, seed=1)
        g = build_topic_graph(40, src, dst, 6, seed=2)
        path = tmp_path / "g.tsv"
        save_topic_graph(g, path)
        assert load_topic_graph(path) == g

    def test_empty_graph(self, tmp_path):
        g = TopicGraph.from_edges(5, 2, [])
        path = tmp_path / "empty.tsv"
        save_topic_graph(g, path)
        loaded = load_topic_graph(path)
        assert loaded.n == 5 and loaded.num_edges == 0

    def test_probabilities_preserved_precisely(self, tmp_path):
        g = TopicGraph.from_edges(2, 1, [(0, 1, {0: 0.123456789012})])
        path = tmp_path / "p.tsv"
        save_topic_graph(g, path)
        loaded = load_topic_graph(path)
        assert abs(loaded.tp_probs[0] - 0.123456789012) < 1e-10


class TestMalformedInputs:
    def _write(self, tmp_path, text):
        path = tmp_path / "bad.tsv"
        path.write_text(text)
        return path

    def test_bad_magic(self, tmp_path):
        path = self._write(tmp_path, "not a graph\n# n=1 m=0 topics=1\n")
        with pytest.raises(GraphFormatError, match="magic"):
            load_topic_graph(path)

    def test_missing_metadata_key(self, tmp_path):
        path = self._write(
            tmp_path, "# repro-topic-graph v1\n# n=2 m=1\n0\t1\t0:0.5\n"
        )
        with pytest.raises(GraphFormatError, match="topics"):
            load_topic_graph(path)

    def test_non_integer_metadata(self, tmp_path):
        path = self._write(
            tmp_path, "# repro-topic-graph v1\n# n=x m=0 topics=1\n"
        )
        with pytest.raises(GraphFormatError, match="integer"):
            load_topic_graph(path)

    def test_wrong_field_count(self, tmp_path):
        path = self._write(
            tmp_path,
            "# repro-topic-graph v1\n# n=2 m=1 topics=1\n0 1 0:0.5\n",
        )
        with pytest.raises(GraphFormatError, match="fields"):
            load_topic_graph(path)

    def test_bad_topic_entry(self, tmp_path):
        path = self._write(
            tmp_path,
            "# repro-topic-graph v1\n# n=2 m=1 topics=1\n0\t1\tzero:half\n",
        )
        with pytest.raises(GraphFormatError, match="topic entry"):
            load_topic_graph(path)

    def test_too_few_edges(self, tmp_path):
        path = self._write(
            tmp_path, "# repro-topic-graph v1\n# n=2 m=2 topics=1\n0\t1\t0:0.5\n"
        )
        with pytest.raises(GraphFormatError, match="declared"):
            load_topic_graph(path)

    def test_too_many_edges(self, tmp_path):
        path = self._write(
            tmp_path,
            "# repro-topic-graph v1\n# n=2 m=0 topics=1\n0\t1\t0:0.5\n",
        )
        with pytest.raises(GraphFormatError, match="more than"):
            load_topic_graph(path)

    def test_error_reports_line_number(self, tmp_path):
        path = self._write(
            tmp_path,
            "# repro-topic-graph v1\n# n=3 m=2 topics=1\n"
            "0\t1\t0:0.5\n1\t2\tbroken\n",
        )
        with pytest.raises(GraphFormatError, match="line 4"):
            load_topic_graph(path)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = self._write(
            tmp_path,
            "# repro-topic-graph v1\n# n=2 m=1 topics=1\n\n# comment\n0\t1\t0:0.5\n",
        )
        g = load_topic_graph(path)
        assert g.num_edges == 1
