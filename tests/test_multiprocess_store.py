"""N processes hammering one disk artifact store: the service scale-out.

The influence service scales out as several processes sharing one
``REPRO_ARTIFACTS`` directory, so the store must survive concurrent
writers with no lost stats counts, no torn objects, and results
bit-identical to a serial run.  These tests drive real child processes
(``ProcessPoolExecutor``) against one store — both raw get/put traffic
on identical *and* distinct keys, and full end-to-end ``Session.run``
campaigns racing through the cold-start stampede.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro import DiskArtifactStore, Runtime, Session
from repro.artifacts import ArtifactKey

WORKERS = 4
ROUNDS = 5


def _key(name: str) -> ArtifactKey:
    return ArtifactKey(
        graph="g" * 64, campaign="c" * 64, runtime="rt", stage="sample",
        extra=(f"name={name}",),
    )


# -- module-level worker bodies (must pickle) ------------------------------


def _hammer_worker(root: str, worker: int) -> int:
    """ROUNDS x (miss, put, hit) on own keys + (put, hit) on shared keys."""
    store = DiskArtifactStore(root)
    for r in range(ROUNDS):
        own = _key(f"w{worker}-r{r}")
        assert store.get(own) is None, "someone else wrote my key"
        store.put(own, {"r": r}, {"x": np.arange(r + 3, dtype=np.int64)})
        mine = store.get(own)
        assert mine is not None
        # identical key from every worker: the commit stampede
        shared = _key(f"shared-r{r}")
        store.put(
            shared, {"r": r}, {"x": np.full(8, r, dtype=np.int64)}
        )
        assert store.get(shared) is not None
    return worker


def _campaign_worker(root: str, theta: int) -> dict:
    """One full Session.run against the shared artifact store."""
    session = Session.from_dataset(
        "lastfm",
        scale=0.08,
        pieces=3,
        k=3,
        seed=1,
        runtime=Runtime(artifacts=root),
    )
    result = session.run("bab-p", theta=theta, max_nodes=20)
    return {
        "theta": theta,
        "seed_sets": [sorted(map(int, s)) for s in result.seed_sets],
        "estimate": float(result.estimate),
        "evaluation": float(result.evaluation),
        "mrr_digest": _collection_digest(session.mrr),
    }


def _collection_digest(collection) -> str:
    """sha256 over every sampled array: roots and all per-piece RR sets."""
    h = hashlib.sha256()
    h.update(collection.roots.tobytes())
    for piece in range(collection.num_pieces):
        h.update(collection.rr_set_sizes(piece).tobytes())
        for sample in range(collection.theta):
            h.update(np.sort(collection.rr_set(piece, sample)).tobytes())
    return h.hexdigest()


# -- tests -----------------------------------------------------------------


@pytest.fixture()
def shared_root(tmp_path) -> str:
    return str(tmp_path / "artifacts")


def test_hammer_no_lost_stats_and_no_torn_objects(shared_root):
    with ProcessPoolExecutor(max_workers=WORKERS) as pool:
        done = list(
            pool.map(_hammer_worker, [shared_root] * WORKERS, range(WORKERS))
        )
    assert sorted(done) == list(range(WORKERS))

    # Exact totals: every worker's counts survived the concurrency.
    # Per worker per round: own-key miss + own-key hit + shared-key hit
    # and two puts (shared puts count even when the commit was a benign
    # duplicate — the process did the work).
    stats = DiskArtifactStore(shared_root).stats()
    assert stats == {
        "misses": WORKERS * ROUNDS,
        "hits": WORKERS * ROUNDS * 2,
        "puts": WORKERS * ROUNDS * 2,
    }

    # No torn objects: everything visible under objects/ is complete,
    # and the shared keys carry exactly one winner's (identical) bytes.
    store = DiskArtifactStore(shared_root)
    objects_root = os.path.join(shared_root, "objects")
    seen = 0
    for shard in sorted(os.listdir(objects_root)):
        for digest in sorted(os.listdir(os.path.join(objects_root, shard))):
            obj_dir = os.path.join(objects_root, shard, digest)
            assert os.path.exists(os.path.join(obj_dir, "meta.json"))
            assert os.path.exists(os.path.join(obj_dir, "arrays.npz"))
            seen += 1
    assert seen == WORKERS * ROUNDS + ROUNDS  # own keys + shared keys
    for r in range(ROUNDS):
        hit = store.get(_key(f"shared-r{r}"))
        assert hit is not None
        np.testing.assert_array_equal(
            hit.arrays["x"], np.full(8, r, dtype=np.int64)
        )

    # Losers' staging directories were cleaned up after benign commits.
    assert os.listdir(os.path.join(shared_root, "tmp")) == []


def test_concurrent_campaigns_bit_identical_to_serial(shared_root, tmp_path):
    # Serial references, computed against a *separate* store so the
    # shared one stays cold for the race below.
    serial = {
        theta: _campaign_worker(str(tmp_path / "serial"), theta)
        for theta in (300, 320)
    }

    # Four processes race the cold shared store: two identical
    # campaigns per spec — same-key stampede and distinct keys at once.
    thetas = [300, 320, 300, 320]
    with ProcessPoolExecutor(max_workers=WORKERS) as pool:
        results = list(
            pool.map(_campaign_worker, [shared_root] * WORKERS, thetas)
        )

    for got in results:
        want = serial[got["theta"]]
        assert got["seed_sets"] == want["seed_sets"]
        assert got["estimate"] == want["estimate"]
        assert got["evaluation"] == want["evaluation"]
        # the sampled collections are bit-identical, not just same-score
        assert got["mrr_digest"] == want["mrr_digest"]

    # The racers warmed the store coherently: a fresh run is all hits.
    session = Session.from_dataset(
        "lastfm", scale=0.08, pieces=3, k=3, seed=1,
        runtime=Runtime(artifacts=shared_root),
    )
    result = session.run("bab-p", theta=300, max_nodes=20)
    assert not session.stage_trace.sampled()
    assert [sorted(map(int, s)) for s in result.seed_sets] == (
        serial[300]["seed_sets"]
    )

    # ... and nothing half-written is visible under objects/.
    objects_root = os.path.join(shared_root, "objects")
    for shard in sorted(os.listdir(objects_root)):
        for digest in sorted(os.listdir(os.path.join(objects_root, shard))):
            obj_dir = os.path.join(objects_root, shard, digest)
            assert os.path.exists(os.path.join(obj_dir, "meta.json"))
