"""Tests for the Linear Threshold substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.diffusion.projection import PieceGraph
from repro.diffusion.threshold import (
    LinearThresholdSampler,
    normalize_lt_weights,
    simulate_lt_cascade,
)
from repro.exceptions import ParameterError, SamplingError
from repro.graph.digraph import TopicGraph
from repro.topics.distributions import unit_piece
from repro.utils.rng import as_generator


def project(edges, n, topics=1):
    g = TopicGraph.from_edges(n, topics, edges)
    return PieceGraph.project(g, unit_piece(0, topics))


class TestNormalizeWeights:
    def test_oversubscribed_vertex_rescaled(self):
        # Vertex 2 receives 0.8 + 0.8 = 1.6 > 1.
        pg = project([(0, 2, {0: 0.8}), (1, 2, {0: 0.8})], 3)
        norm = normalize_lt_weights(pg)
        lo, hi = norm.in_ptr[2], norm.in_ptr[3]
        assert norm.in_prob[lo:hi].sum() == pytest.approx(1.0)
        # Forward view stays consistent with the reverse view.
        assert sorted(norm.out_prob.tolist()) == sorted(
            norm.in_prob.tolist()
        )

    def test_feasible_vertex_untouched(self):
        pg = project([(0, 1, {0: 0.3}), (2, 1, {0: 0.4})], 3)
        norm = normalize_lt_weights(pg)
        np.testing.assert_allclose(sorted(norm.in_prob), [0.3, 0.4])

    def test_original_not_mutated(self):
        pg = project([(0, 2, {0: 0.9}), (1, 2, {0: 0.9})], 3)
        before = pg.in_prob.copy()
        normalize_lt_weights(pg)
        np.testing.assert_array_equal(pg.in_prob, before)

    def test_negative_weight_rejected_not_normalized(self):
        """Negative mass fails loudly instead of being silently rescaled."""
        pg = project([(0, 2, {0: 0.9}), (1, 2, {0: 0.9})], 3)
        pg.in_prob[1] = -0.5
        with pytest.raises(ParameterError, match="negative"):
            normalize_lt_weights(pg)


class TestSimulateLT:
    def test_certain_chain_activates(self):
        pg = project([(0, 1, {0: 1.0}), (1, 2, {0: 1.0})], 3)
        active = simulate_lt_cascade(pg, [0], as_generator(0))
        assert active.tolist() == [True, True, True]

    def test_zero_weights_stop(self):
        pg = project([(0, 1, {0: 0.0})], 2)
        active = simulate_lt_cascade(pg, [0], as_generator(0))
        assert active.tolist() == [True, False]

    def test_infeasible_weights_rejected(self):
        pg = project([(0, 2, {0: 0.9}), (1, 2, {0: 0.9})], 3)
        with pytest.raises(ParameterError, match="normalise"):
            simulate_lt_cascade(pg, [0], as_generator(0))

    def test_threshold_statistics_single_edge(self):
        """P(activate) equals the edge weight for a single in-edge."""
        pg = project([(0, 1, {0: 0.4})], 2)
        rng = as_generator(1)
        hits = sum(
            simulate_lt_cascade(pg, [0], rng)[1] for _ in range(4000)
        )
        assert hits / 4000 == pytest.approx(0.4, abs=0.03)

    def test_pressure_accumulates(self):
        """Two active in-neighbours jointly exceed most thresholds."""
        pg = project([(0, 2, {0: 0.5}), (1, 2, {0: 0.5})], 3)
        rng = as_generator(2)
        both = sum(
            simulate_lt_cascade(pg, [0, 1], rng)[2] for _ in range(3000)
        )
        one = sum(
            simulate_lt_cascade(pg, [0], rng)[2] for _ in range(3000)
        )
        assert both / 3000 == pytest.approx(1.0, abs=0.02)
        assert one / 3000 == pytest.approx(0.5, abs=0.04)

    def test_bad_seed_rejected(self):
        pg = project([(0, 1, {0: 0.4})], 2)
        with pytest.raises(ParameterError):
            simulate_lt_cascade(pg, [9], as_generator(0))


class TestLTSampler:
    def test_membership_matches_forward_activation(self):
        """The LT RR equivalence on a two-hop path."""
        pg = project([(0, 1, {0: 0.6}), (1, 2, {0: 0.5})], 3)
        sampler = LinearThresholdSampler(pg)
        rng = as_generator(3)
        trials = 6000
        rr_hits = sum(0 in sampler.sample(2, rng) for _ in range(trials))
        fwd = sum(
            simulate_lt_cascade(pg, [0], rng)[2] for _ in range(trials)
        )
        # Exact probability 0.6 * 0.5 = 0.3 under LT live-edge semantics.
        assert rr_hits / trials == pytest.approx(0.3, abs=0.03)
        assert fwd / trials == pytest.approx(0.3, abs=0.03)

    def test_walk_is_a_path(self):
        pg = project(
            [(0, 1, {0: 0.9}), (1, 2, {0: 0.9}), (2, 0, {0: 0.9})], 3
        )
        sampler = LinearThresholdSampler(pg)
        rr = sampler.sample(0, as_generator(4))
        # Cycle is cut: no vertex repeats.
        assert len(set(rr.tolist())) == rr.size

    def test_root_always_first(self):
        pg = project([(0, 1, {0: 0.5})], 2)
        sampler = LinearThresholdSampler(pg)
        for _ in range(10):
            rr = sampler.sample(1, as_generator(5))
            assert rr[0] == 1

    def test_root_validated(self):
        pg = project([], 2)
        with pytest.raises(SamplingError):
            LinearThresholdSampler(pg).sample(7, as_generator(0))

    def test_sample_many_layout(self):
        pg = project([(0, 1, {0: 1.0})], 2)
        sampler = LinearThresholdSampler(pg)
        ptr, nodes = sampler.sample_many(
            np.array([0, 1]), as_generator(6)
        )
        assert ptr.tolist()[0] == 0
        assert ptr[-1] == nodes.size

    def test_mrr_pipeline_compatibility(self):
        """LT RR sets slot into MRRCollection and the estimator."""
        from repro.diffusion.adoption import AdoptionModel
        from repro.sampling.mrr import MRRCollection

        pg = project([(0, 1, {0: 1.0}), (1, 2, {0: 1.0})], 3)
        sampler = LinearThresholdSampler(pg)
        rng = as_generator(7)
        roots = rng.integers(0, 3, size=600)
        ptr, nodes = sampler.sample_many(roots, rng)
        mrr = MRRCollection(3, roots, [ptr], [nodes])
        adoption = AdoptionModel(alpha=1.0, beta=1.0)
        est = mrr.estimate([[0]], adoption)
        # Seeding 0 reaches everyone (certain chain): utility = 3 * f(1).
        assert est == pytest.approx(3 * adoption.probability(1), rel=0.1)
