"""The compiled kernel tier: fallback, bit-identity, and transport.

``backend="native"`` is a *perf* tier, never a semantics tier: with
Numba absent it resolves to ``"batch"`` (one warning per process), and
with the kernels active every output — RR/LT CSR pairs, MRR index
digests, cache keys, shard fingerprints — is bit-identical to the
NumPy engine.  The kernels are importable without Numba (the ``njit``
shim runs them as plain Python loops), which is how this suite
exercises both sides of every dispatch on a machine with no compiler:
``repro.native.COMPILED`` is monkeypatched, exactly as the module
documents.

Also covered here: the shared-memory slab transport for process-pool
sample blocks (roundtrip, overflow fallback, kill-switch), the
Session's warm worker pool (reuse, replacement, exception-safe
shutdown, context manager), and the block-geometry extras the sample
stage reports into the pipeline trace.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import Session, native
from repro.core.bitset import SampleBitset
from repro.core.coverage import coverage_gains
from repro.diffusion.projection import project_campaign
from repro.diffusion.threshold import (
    LinearThresholdSampler,
    normalize_lt_weights,
)
from repro.exceptions import ConfigError
from repro.graph.generators import (
    build_topic_graph,
    preferential_attachment_digraph,
)
from repro.native import kernels as nk
from repro.runtime import Runtime, resolve_runtime
from repro.sampling import shm
from repro.sampling.batch import (
    BatchLTSampler,
    BatchRRSampler,
    NativeLTSampler,
    NativeRRSampler,
    canonical_backend,
    check_backend,
)
from repro.sampling.mrr import MRRCollection
from repro.sampling.rr import ReverseReachableSampler
from repro.sampling.store import store_fingerprint
from repro.topics.distributions import Campaign
from repro.utils.frontier import segment_sums
from repro.utils.rng import as_generator


@pytest.fixture
def world():
    src, dst = preferential_attachment_digraph(120, 4, seed=21)
    graph = build_topic_graph(
        120, src, dst, 4, topics_per_edge=1.5, prob_mean=0.25, seed=22
    )
    campaign = Campaign.sample_unit(2, 4, seed=23)
    return graph, campaign


@pytest.fixture
def piece(world):
    graph, campaign = world
    return project_campaign(graph, campaign)[0]


@pytest.fixture
def force_compiled(monkeypatch):
    """Pretend the compiled tier is active (kernels run via the shim)."""
    monkeypatch.setattr(native, "COMPILED", True)


@pytest.fixture
def force_uncompiled(monkeypatch):
    monkeypatch.setattr(native, "COMPILED", False)
    native.reset_fallback_warning()
    yield
    native.reset_fallback_warning()


# ----------------------------------------------------------------------
# resolution and graceful fallback
# ----------------------------------------------------------------------


class TestBackendResolution:
    def test_native_is_a_valid_backend_name(self, force_compiled):
        assert check_backend("native") == "native"

    def test_unknown_backend_still_rejected(self):
        with pytest.raises(ConfigError):
            check_backend("numba")

    def test_fallback_resolves_to_batch(self, force_uncompiled):
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert check_backend("native") == "batch"

    def test_fallback_warns_exactly_once_per_process(self, force_uncompiled):
        with pytest.warns(RuntimeWarning):
            check_backend("native")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert check_backend("native") == "batch"
        native.reset_fallback_warning()
        with pytest.warns(RuntimeWarning):
            check_backend("native")

    def test_canonical_backend_folds_native_into_batch(self, force_compiled):
        assert canonical_backend("native") == "batch"
        assert canonical_backend("batch") == "batch"
        assert canonical_backend("python") == "python"

    def test_cache_key_identical_native_vs_batch(self, force_compiled):
        native_key = resolve_runtime(Runtime(backend="native")).cache_key()
        batch_key = resolve_runtime(Runtime(backend="batch")).cache_key()
        python_key = resolve_runtime(Runtime(backend="python")).cache_key()
        assert native_key == batch_key
        assert python_key != batch_key

    def test_cache_key_identical_even_without_numba(self, force_uncompiled):
        with pytest.warns(RuntimeWarning):
            native_key = resolve_runtime(
                Runtime(backend="native")
            ).cache_key()
        assert native_key == resolve_runtime(
            Runtime(backend="batch")
        ).cache_key()

    def test_store_fingerprint_identical_native_vs_batch(
        self, force_compiled
    ):
        roots = np.arange(10, dtype=np.int64)
        fp_native = store_fingerprint(50, roots, ("ic",), "native")
        fp_batch = store_fingerprint(50, roots, ("ic",), "batch")
        fp_python = store_fingerprint(50, roots, ("ic",), "python")
        assert fp_native == fp_batch
        assert fp_python != fp_batch

    def test_sampler_falls_back_without_numba(self, piece, force_uncompiled):
        with pytest.warns(RuntimeWarning):
            sampler = ReverseReachableSampler(piece, backend="native")
        assert sampler.backend == "batch"
        roots = as_generator(5).integers(0, piece.n, size=60)
        ptr, nodes = sampler.sample_many(roots, as_generator(9))
        ref = BatchRRSampler(piece)
        ref_ptr, ref_nodes = ref.sample_many(roots, as_generator(9))
        assert np.array_equal(ptr, ref_ptr)
        assert np.array_equal(nodes, ref_nodes)


# ----------------------------------------------------------------------
# engine bit-identity: native == batch, RR and LT
# ----------------------------------------------------------------------


class TestEngineBitIdentity:
    @pytest.mark.parametrize("block_size", [None, 1, 7, 64])
    def test_rr_native_equals_batch(self, piece, force_compiled, block_size):
        roots = as_generator(11).integers(0, piece.n, size=150)
        b_ptr, b_nodes = BatchRRSampler(
            piece, block_size=block_size
        ).sample_many(roots, as_generator(13))
        n_ptr, n_nodes = NativeRRSampler(
            piece, block_size=block_size
        ).sample_many(roots, as_generator(13))
        assert np.array_equal(b_ptr, n_ptr)
        assert np.array_equal(b_nodes, n_nodes)

    @pytest.mark.parametrize("block_size", [None, 1, 7, 64])
    def test_lt_native_equals_batch(self, piece, force_compiled, block_size):
        lt_pg = normalize_lt_weights(piece)
        roots = as_generator(11).integers(0, lt_pg.n, size=150)
        b_ptr, b_nodes = BatchLTSampler(
            lt_pg, block_size=block_size
        ).sample_many(roots, as_generator(13))
        n_ptr, n_nodes = NativeLTSampler(
            lt_pg, block_size=block_size
        ).sample_many(roots, as_generator(13))
        assert np.array_equal(b_ptr, n_ptr)
        assert np.array_equal(b_nodes, n_nodes)

    def test_sampler_facades_route_to_native_engine(
        self, piece, force_compiled
    ):
        rr = ReverseReachableSampler(piece, backend="native")
        roots = as_generator(5).integers(0, piece.n, size=80)
        rr.sample_many(roots, as_generator(7))
        assert NativeRRSampler in rr._batch
        lt = LinearThresholdSampler(
            normalize_lt_weights(piece), backend="native"
        )
        lt.sample_many(roots, as_generator(7))
        assert any(cls.__name__ == "NativeLTSampler" for cls in lt._batch)

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("store", ["memory", "disk"])
    def test_mrr_digests_identical(
        self, world, force_compiled, workers, store, tmp_path
    ):
        graph, campaign = world

        def digest(backend, subdir):
            kwargs = {}
            if store == "disk":
                kwargs["shard_dir"] = str(tmp_path / subdir)
            mrr = MRRCollection.generate(
                graph,
                campaign,
                400,
                seed=31,
                runtime=Runtime(
                    backend=backend,
                    workers=workers,
                    executor="thread",
                    store=store,
                    **kwargs,
                ),
            )
            return [
                tuple(a.tobytes() for a in mrr.index_arrays(j))
                + (mrr.rr_set_sizes(j).tobytes(),)
                for j in range(mrr.num_pieces)
            ]

        assert digest("native", "nat") == digest("batch", "bat")


# ----------------------------------------------------------------------
# kernel unit tests against their NumPy references
# ----------------------------------------------------------------------


class TestKernelsMatchNumpy:
    def test_popcount_words(self):
        rng = np.random.default_rng(3)
        words = rng.integers(0, 2**63, size=257, dtype=np.int64).view(
            np.uint64
        )
        assert int(nk.popcount_words(words)) == int(
            np.bitwise_count(words).sum()
        )

    def test_scatter_by_root_matches_stable_sort(self):
        rng = np.random.default_rng(4)
        b, total = 9, 400
        found_r = rng.integers(0, b, size=total).astype(np.int64)
        found_v = rng.integers(0, 1000, size=total).astype(np.int64)
        sizes = np.zeros(b, dtype=np.int64)
        out = np.empty(total, dtype=np.int64)
        nk.scatter_by_root(found_v, found_r, b, sizes, out)
        order = np.argsort(found_r, kind="stable")
        assert np.array_equal(out, found_v[order])
        assert np.array_equal(sizes, np.bincount(found_r, minlength=b))

    def test_invert_index_matches_argsort_construction(self):
        rng = np.random.default_rng(5)
        theta, n = 60, 25
        deg = rng.integers(0, 6, size=theta)
        ptr = np.zeros(theta + 1, dtype=np.int64)
        np.cumsum(deg, out=ptr[1:])
        nodes = rng.integers(0, n, size=int(ptr[-1])).astype(np.int64)
        idx_ptr = np.zeros(n + 1, dtype=np.int64)
        idx_samples = np.empty(nodes.size, dtype=np.int64)
        nk.invert_index(ptr, nodes, idx_ptr, idx_samples)
        sample_of = np.repeat(
            np.arange(theta, dtype=np.int64), np.diff(ptr)
        )
        order = np.argsort(nodes, kind="stable")
        assert np.array_equal(idx_samples, sample_of[order])
        assert np.array_equal(
            np.diff(idx_ptr), np.bincount(nodes, minlength=n)
        )

    def test_sort_pairs_by_vertex_is_stable(self):
        rng = np.random.default_rng(6)
        n, count = 30, 200
        v = rng.integers(0, n, size=count).astype(np.int64)
        s = rng.integers(0, 10_000, size=count).astype(np.int64)
        out_v = np.empty(count, dtype=np.int64)
        out_s = np.empty(count, dtype=np.int64)
        nk.sort_pairs_by_vertex(v, s, n, out_v, out_s)
        order = np.argsort(v, kind="stable")
        assert np.array_equal(out_v, v[order])
        assert np.array_equal(out_s, s[order])

    def test_uncovered_segment_counts_matches_mask_path(self):
        rng = np.random.default_rng(7)
        theta = 500
        covered = SampleBitset.from_bool(rng.random(theta) < 0.3)
        deg = rng.integers(0, 8, size=40)
        samples = rng.integers(0, theta, size=int(deg.sum())).astype(
            np.int64
        )
        gains = np.zeros(deg.size, dtype=np.int64)
        nk.uncovered_segment_counts(
            covered.words, samples, deg.astype(np.int64), gains
        )
        expected = segment_sums(~covered.test(samples), deg)
        assert np.array_equal(gains, expected)

    def test_coverage_gains_dispatch_identical(self, world, force_compiled):
        graph, campaign = world
        mrr = MRRCollection.generate(graph, campaign, 300, seed=41)
        pool = np.arange(graph.n, dtype=np.int64)
        covered = SampleBitset(mrr.theta)
        covered.set_many(mrr.samples_containing(0, 7))
        with_native = coverage_gains(mrr, 0, pool, covered)
        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(native, "COMPILED", False)
            without = coverage_gains(mrr, 0, pool, covered)
        assert np.array_equal(with_native, without)


# ----------------------------------------------------------------------
# shared-memory slab transport
# ----------------------------------------------------------------------


class TestSharedSlabPool:
    def test_roundtrip(self):
        pool = shm.SharedSlabPool.create(4, 1 << 16)
        if pool is None:
            pytest.skip("shared memory unusable on this platform")
        try:
            ptr = np.array([0, 3, 5], dtype=np.int64)
            nodes = np.array([7, 8, 9, 1, 2], dtype=np.int64)
            token = shm.write_block(pool.slot_spec(2), ptr, nodes)
            assert token is not None and token[0] == "shm"
            got_ptr, got_nodes = pool.read(token)
            assert np.array_equal(got_ptr, ptr)
            assert np.array_equal(got_nodes, nodes)
        finally:
            pool.close()

    def test_slot_assignment_is_round_robin(self):
        pool = shm.SharedSlabPool.create(3, 1 << 12)
        if pool is None:
            pytest.skip("shared memory unusable on this platform")
        try:
            names = [pool.slot_spec(i)[0] for i in range(6)]
            assert names[:3] == names[3:]
            assert len(set(names[:3])) == 3
        finally:
            pool.close()

    def test_oversized_block_falls_back(self):
        pool = shm.SharedSlabPool.create(2, 1 << 10)
        if pool is None:
            pytest.skip("shared memory unusable on this platform")
        try:
            big = np.arange(1 << 10, dtype=np.int64)
            assert (
                shm.write_block(
                    pool.slot_spec(0), big[:2], big
                )
                is None
            )
        finally:
            pool.close()

    def test_kill_switch_disables_creation(self, monkeypatch):
        monkeypatch.setattr(shm, "SHM_ENABLED", False)
        assert shm.SharedSlabPool.create(4, 1 << 16) is None

    def test_close_is_idempotent(self):
        pool = shm.SharedSlabPool.create(2, 1 << 12)
        if pool is None:
            pytest.skip("shared memory unusable on this platform")
        pool.close()
        pool.close()

    def test_process_pool_stream_matches_serial(self, world):
        """Process workers + shm transport reproduce the serial block
        stream bit-for-bit (the transport moves bytes, never draws)."""
        from repro.sampling.parallel import stream_piece_blocks

        graph, campaign = world
        piece_graphs = project_campaign(graph, campaign)
        models = ("ic",) * len(piece_graphs)
        roots = as_generator(3).integers(0, graph.n, size=300)

        def collect(workers, executor):
            return [
                (j, b, ptr.tobytes(), nodes.tobytes())
                for j, b, ptr, nodes in stream_piece_blocks(
                    piece_graphs,
                    models,
                    roots,
                    as_generator(17),
                    backend="batch",
                    workers=workers,
                    executor=executor,
                )
            ]

        serial = collect(1, "thread")
        process = collect(2, "process")
        assert serial == process


# ----------------------------------------------------------------------
# Session warm pool + trace extras
# ----------------------------------------------------------------------


@pytest.fixture
def session_runtime():
    return Runtime(workers=2, executor="thread")


class TestSessionWarmPool:
    def test_pool_reused_across_collections(self, world, session_runtime):
        graph, campaign = world
        with Session(
            graph, campaign, k=3, seed=7, runtime=session_runtime
        ) as session:
            session.sample(200)
            first = session._pool
            assert first is not None
            session.sample_evaluation(200)
            assert session._pool is first
        assert session._pool is None

    def test_serial_runtime_builds_no_pool(self, world):
        graph, campaign = world
        session = Session(
            graph, campaign, k=3, seed=7, runtime=Runtime(workers=0)
        )
        session.sample(200)
        assert session._pool is None

    def test_close_is_idempotent_and_session_survives(
        self, world, session_runtime
    ):
        graph, campaign = world
        session = Session(
            graph, campaign, k=3, seed=7, runtime=session_runtime
        )
        session.sample(200)
        session.close()
        assert session._pool is None
        session.close()
        session.sample(200)  # a fresh pool is built transparently
        assert session._pool is not None
        session.close()

    def test_failed_generation_releases_the_pool(
        self, world, session_runtime, monkeypatch
    ):
        graph, campaign = world
        session = Session(
            graph, campaign, k=3, seed=7, runtime=session_runtime
        )
        session.sample(200)
        assert session._pool is not None

        def boom(*args, **kwargs):
            raise RuntimeError("sampling exploded")

        monkeypatch.setattr(MRRCollection, "generate_traced", boom)
        with pytest.raises(RuntimeError, match="exploded"):
            session.sample(200)
        assert session._pool is None

    def test_sample_stage_records_block_geometry(self, world):
        graph, campaign = world
        session = Session(graph, campaign, k=3, seed=7)
        session.sample(200)
        runs = [
            e
            for e in session.stage_trace
            if e.stage == "sample" and e.action == "run"
        ]
        assert runs
        extra = runs[0].extra
        assert extra["backend"] in ("python", "batch", "native")
        assert extra["stream"] in ("serial", "blocked")
        assert extra["task_block"] >= 1
        assert 1 <= extra["block_roots"] <= extra["task_block"]
        assert extra["block_n"] == graph.n

    def test_warm_run_hits_record_no_geometry(self, world, tmp_path):
        graph, campaign = world
        rt = Runtime(artifacts=str(tmp_path))
        first = Session(graph, campaign, k=3, seed=7, runtime=rt)
        first.sample(150)
        warm = Session(graph, campaign, k=3, seed=7, runtime=rt)
        warm.sample(150)
        hits = [
            e
            for e in warm.stage_trace
            if e.stage == "sample" and e.action == "hit"
        ]
        assert hits and hits[0].extra == {}
