"""Tests for MRR collections and the AU estimator (Sec. V-A, Lemma 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.running_example import (
    running_example_adoption,
    running_example_campaign,
    running_example_graph,
)
from repro.diffusion.adoption import AdoptionModel
from repro.diffusion.projection import project_campaign
from repro.diffusion.simulate import simulate_adoption_utility
from repro.exceptions import SamplingError
from repro.graph.generators import build_topic_graph, preferential_attachment_digraph
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import Campaign, unit_piece


@pytest.fixture()
def example_mrr() -> MRRCollection:
    return MRRCollection.generate(
        running_example_graph(), running_example_campaign(), theta=3000, seed=1
    )


class TestGeneration:
    def test_shapes(self, example_mrr):
        assert example_mrr.theta == 3000
        assert example_mrr.num_pieces == 2
        assert example_mrr.n == 5
        assert example_mrr.roots.shape == (3000,)

    def test_rr_sets_contain_their_root(self, example_mrr):
        for i in range(0, 3000, 500):
            root = int(example_mrr.roots[i])
            for j in range(2):
                assert root in example_mrr.rr_set(j, i)

    def test_running_example_rr_semantics(self, example_mrr):
        """Deterministic graph: RR sets are exact reverse-reachability.

        Under t1 the predecessors are fixed: RR(c) = {c, a}, RR(b) =
        {b, a}, RR(a) = {a}; under t2: RR(c) = {c, d, e} (Table II).
        """
        expected_t1 = {0: {0}, 1: {1, 0}, 2: {2, 0}, 3: {3, 2, 0}, 4: {4}}
        expected_t2 = {0: {0}, 1: {1, 4}, 2: {2, 3, 4}, 3: {3, 4}, 4: {4}}
        for i in range(0, 3000, 100):
            root = int(example_mrr.roots[i])
            assert set(example_mrr.rr_set(0, i).tolist()) == expected_t1[root]
            assert set(example_mrr.rr_set(1, i).tolist()) == expected_t2[root]

    def test_invalid_piece_and_sample(self, example_mrr):
        with pytest.raises(SamplingError):
            example_mrr.rr_set(5, 0)
        with pytest.raises(SamplingError):
            example_mrr.rr_set(0, 10**6)
        with pytest.raises(SamplingError):
            example_mrr.samples_containing(0, 99)

    def test_piece_graph_count_validated(self):
        graph = running_example_graph()
        campaign = running_example_campaign()
        pgs = project_campaign(graph, campaign)
        with pytest.raises(SamplingError):
            MRRCollection.generate(
                graph, campaign, theta=10, piece_graphs=pgs[:1]
            )


class TestInvertedIndex:
    def test_index_consistent_with_rr_sets(self, example_mrr):
        for j in range(2):
            for v in range(5):
                via_index = set(example_mrr.samples_containing(j, v).tolist())
                brute = {
                    i
                    for i in range(example_mrr.theta)
                    if v in example_mrr.rr_set(j, i)
                }
                assert via_index == brute

    def test_vertex_frequencies(self, example_mrr):
        freq = example_mrr.vertex_frequencies(0)
        manual = np.array(
            [
                example_mrr.samples_containing(0, v).size
                for v in range(5)
            ]
        )
        np.testing.assert_array_equal(freq, manual)

    def test_rr_set_sizes(self, example_mrr):
        sizes = example_mrr.rr_set_sizes(1)
        assert sizes.shape == (3000,)
        assert sizes.min() >= 1


class TestEstimator:
    def test_running_example_utility(self, example_mrr):
        """sigma({{a},{e}}) = 1.05 exactly (deterministic graph)."""
        adoption = running_example_adoption()
        estimate = example_mrr.estimate([[0], [4]], adoption)
        assert estimate == pytest.approx(1.05, abs=0.03)

    def test_empty_plan_is_zero(self, example_mrr):
        adoption = running_example_adoption()
        assert example_mrr.estimate([[], []], adoption) == 0.0

    def test_coverage_counts_match_manual(self, example_mrr):
        counts = example_mrr.coverage_counts([[0], [4]])
        # root a: t1 covered only; roots b, c, d: both; root e: t2 only.
        roots = example_mrr.roots
        expected = np.where(np.isin(roots, [1, 2, 3]), 2, 1)
        np.testing.assert_array_equal(counts, expected)

    def test_plan_length_validated(self, example_mrr):
        with pytest.raises(SamplingError):
            example_mrr.coverage_counts([[0]])

    def test_counts_shape_validated(self, example_mrr):
        adoption = running_example_adoption()
        with pytest.raises(SamplingError):
            example_mrr.estimate_from_counts(np.zeros(5), adoption)

    def test_unbiasedness_vs_forward_simulation(self):
        """Lemma 2 on a random graph: MRR and forward MC must agree."""
        src, dst = preferential_attachment_digraph(120, 3, seed=3)
        graph = build_topic_graph(
            120, src, dst, 4, topics_per_edge=2.0, prob_mean=0.25, seed=4
        )
        campaign = Campaign([unit_piece(z, 4) for z in range(3)])
        adoption = AdoptionModel(alpha=2.0, beta=1.0)
        plan = [[0, 5], [3], [7, 11]]
        mrr = MRRCollection.generate(graph, campaign, theta=60_000, seed=5)
        estimate = mrr.estimate(plan, adoption)
        pgs = project_campaign(graph, campaign)
        simulated, std = simulate_adoption_utility(
            pgs, plan, adoption, rounds=1500, seed=6, return_std=True
        )
        # Combine both standard errors; the MRR side dominates.
        mrr_se = graph.n * 0.5 / np.sqrt(mrr.theta)
        assert abs(estimate - simulated) < 4 * (std + mrr_se)

    def test_literal_eq6_mode_differs(self, example_mrr):
        strict = running_example_adoption()
        literal = AdoptionModel(alpha=3.0, beta=1.0, zero_if_unreached=False)
        # The empty plan separates the two conventions maximally.
        assert example_mrr.estimate([[], []], strict) == 0.0
        assert example_mrr.estimate([[], []], literal) == pytest.approx(
            5 / (1 + np.exp(3)), rel=1e-6
        )
