"""Tests for pieces and campaigns."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TopicError
from repro.topics.distributions import Campaign, Piece, uniform_piece, unit_piece


class TestPiece:
    def test_normalisation(self):
        p = Piece("t", np.array([2.0, 2.0]))
        np.testing.assert_allclose(p.vector, [0.5, 0.5])

    def test_vector_read_only(self):
        p = Piece("t", np.array([1.0]))
        with pytest.raises(ValueError):
            p.vector[0] = 0.5

    def test_support(self):
        p = Piece("t", np.array([0.0, 3.0, 0.0, 1.0]))
        assert p.support().tolist() == [1, 3]

    def test_negative_rejected(self):
        with pytest.raises(TopicError):
            Piece("t", np.array([0.5, -0.5]))

    def test_zero_mass_rejected(self):
        with pytest.raises(TopicError):
            Piece("t", np.array([0.0, 0.0]))

    def test_nan_rejected(self):
        with pytest.raises(TopicError):
            Piece("t", np.array([np.nan]))

    def test_2d_rejected(self):
        with pytest.raises(TopicError):
            Piece("t", np.ones((2, 2)))

    def test_equality_and_hash(self):
        a = Piece("t", np.array([1.0, 1.0]))
        b = Piece("t", np.array([0.5, 0.5]))
        assert a == b
        assert hash(a) == hash(b)

    def test_unit_piece(self):
        p = unit_piece(2, 4)
        np.testing.assert_allclose(p.vector, [0, 0, 1, 0])
        with pytest.raises(TopicError):
            unit_piece(4, 4)

    def test_uniform_piece(self):
        p = uniform_piece(4)
        np.testing.assert_allclose(p.vector, [0.25] * 4)
        with pytest.raises(TopicError):
            uniform_piece(0)


class TestCampaign:
    def test_basic(self):
        c = Campaign([unit_piece(0, 3), unit_piece(1, 3)])
        assert c.num_pieces == len(c) == 2
        assert c.num_topics == 3
        assert c[0].support().tolist() == [0]

    def test_empty_rejected(self):
        with pytest.raises(TopicError):
            Campaign([])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(TopicError, match="dimensionality"):
            Campaign([unit_piece(0, 2), unit_piece(0, 3)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(TopicError, match="duplicate"):
            Campaign([unit_piece(0, 2, name="t"), unit_piece(1, 2, name="t")])

    def test_from_vectors(self):
        c = Campaign.from_vectors([np.array([1.0, 0]), np.array([0, 1.0])])
        assert c.num_pieces == 2
        assert c[1].name == "t1"

    def test_from_vectors_name_mismatch(self):
        with pytest.raises(TopicError):
            Campaign.from_vectors([np.array([1.0])], names=["a", "b"])

    def test_vectors_view(self):
        c = Campaign([unit_piece(0, 2), unit_piece(1, 2)])
        vecs = c.vectors()
        assert len(vecs) == 2
        np.testing.assert_allclose(vecs[1], [0, 1])

    def test_iteration(self):
        c = Campaign([unit_piece(z, 3) for z in range(3)])
        assert [p.support()[0] for p in c] == [0, 1, 2]


class TestSampleUnit:
    def test_each_piece_is_unit(self):
        c = Campaign.sample_unit(3, 10, seed=1)
        for p in c:
            assert p.support().size == 1
            assert p.vector.sum() == pytest.approx(1.0)

    def test_distinct_topics_without_replacement(self):
        c = Campaign.sample_unit(5, 5, seed=2)
        topics = {int(p.support()[0]) for p in c}
        assert len(topics) == 5

    def test_replacement_when_pieces_exceed_topics(self):
        c = Campaign.sample_unit(6, 3, seed=3)
        assert c.num_pieces == 6

    def test_deterministic(self):
        a = Campaign.sample_unit(3, 8, seed=4)
        b = Campaign.sample_unit(3, 8, seed=4)
        assert [p.support()[0] for p in a] == [p.support()[0] for p in b]

    def test_zero_pieces_rejected(self):
        with pytest.raises(TopicError):
            Campaign.sample_unit(0, 4, seed=5)


@settings(max_examples=30, deadline=None)
@given(
    weights=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=8).filter(
        lambda w: sum(w) > 0
    )
)
def test_piece_always_normalised(weights):
    p = Piece("t", np.array(weights))
    assert p.vector.sum() == pytest.approx(1.0)
    assert np.all(p.vector >= 0)
