"""Unit tests for the TopicGraph CSR structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError, TopicError
from repro.graph.digraph import TopicGraph


def triangle() -> TopicGraph:
    return TopicGraph.from_edges(
        3,
        2,
        [
            (0, 1, {0: 0.5}),
            (1, 2, {1: 0.25}),
            (2, 0, {0: 0.1, 1: 0.9}),
        ],
    )


class TestConstruction:
    def test_counts(self):
        g = triangle()
        assert g.n == 3
        assert g.num_edges == 3
        assert g.num_topics == 2

    def test_empty_graph(self):
        g = TopicGraph.from_edges(4, 3, [])
        assert g.num_edges == 0
        assert g.out_degrees().tolist() == [0, 0, 0, 0]
        assert g.piece_probabilities(np.array([1.0, 0, 0])).size == 0

    def test_dense_vector_input(self):
        g = TopicGraph.from_edges(2, 3, [(0, 1, [0.1, 0.0, 0.3])])
        np.testing.assert_allclose(g.edge_topic_vector(0), [0.1, 0.0, 0.3])

    def test_pair_list_input(self):
        g = TopicGraph.from_edges(2, 3, [(0, 1, [(2, 0.3), (0, 0.1)])])
        np.testing.assert_allclose(g.edge_topic_vector(0), [0.1, 0.0, 0.3])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self-loop"):
            TopicGraph.from_edges(2, 1, [(1, 1, {0: 0.5})])

    def test_parallel_edge_rejected(self):
        with pytest.raises(GraphError, match="parallel"):
            TopicGraph.from_edges(
                2, 1, [(0, 1, {0: 0.5}), (0, 1, {0: 0.3})]
            )

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(GraphError, match="outside"):
            TopicGraph.from_edges(2, 1, [(0, 5, {0: 0.5})])

    def test_bad_probability_rejected(self):
        with pytest.raises(TopicError):
            TopicGraph.from_edges(2, 1, [(0, 1, {0: 1.5})])

    def test_bad_topic_rejected(self):
        with pytest.raises(TopicError):
            TopicGraph.from_edges(2, 1, [(0, 1, {3: 0.5})])

    def test_duplicate_topic_rejected(self):
        with pytest.raises(TopicError, match="duplicate"):
            TopicGraph.from_edges(2, 2, [(0, 1, [(0, 0.5), (0, 0.2)])])

    def test_zero_probability_entries_dropped(self):
        g = TopicGraph.from_edges(2, 2, [(0, 1, {0: 0.0, 1: 0.4})])
        assert g.tp_topics.tolist() == [1]

    def test_from_arrays_matches_from_edges(self):
        g1 = triangle()
        src = np.array([2, 0, 1])
        dst = np.array([0, 1, 2])
        tp_ptr = np.array([0, 2, 3, 4])
        tp_topics = np.array([0, 1, 0, 1])
        tp_probs = np.array([0.1, 0.9, 0.5, 0.25])
        g2 = TopicGraph.from_arrays(3, 2, src, dst, tp_ptr, tp_topics, tp_probs)
        assert g1 == g2

    def test_from_arrays_shape_validation(self):
        with pytest.raises(GraphError):
            TopicGraph.from_arrays(
                2,
                1,
                np.array([0]),
                np.array([1, 0]),
                np.array([0, 0]),
                np.array([], dtype=np.int64),
                np.array([]),
            )


class TestAccessors:
    def test_successors_predecessors(self):
        g = triangle()
        assert g.successors(0).tolist() == [1]
        assert g.predecessors(0).tolist() == [2]

    def test_degrees_sum_to_m(self):
        g = triangle()
        assert g.out_degrees().sum() == g.num_edges
        assert g.in_degrees().sum() == g.num_edges

    def test_edge_id_roundtrip(self):
        g = triangle()
        src = g.edge_sources()
        for e in range(g.num_edges):
            assert g.edge_id(int(src[e]), int(g.out_dst[e])) == e

    def test_edge_id_missing_raises(self):
        with pytest.raises(GraphError, match="does not exist"):
            triangle().edge_id(0, 2)

    def test_has_edge(self):
        g = triangle()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_vertex_range_checked(self):
        with pytest.raises(GraphError):
            triangle().successors(10)

    def test_edge_topic_vector_range_checked(self):
        with pytest.raises(GraphError):
            triangle().edge_topic_vector(99)

    def test_reverse_csr_consistency(self):
        g = triangle()
        # Every reverse slot's in_edge must point at an edge whose
        # destination is the indexed vertex.
        src = g.edge_sources()
        for v in range(g.n):
            lo, hi = g.in_ptr[v], g.in_ptr[v + 1]
            for slot in range(lo, hi):
                e = g.in_edge[slot]
                assert g.out_dst[e] == v
                assert src[e] == g.in_src[slot]


class TestPieceProjection:
    def test_unit_piece_selects_topic_column(self):
        g = triangle()
        p0 = g.piece_probabilities(np.array([1.0, 0.0]))
        np.testing.assert_allclose(p0, [0.5, 0.0, 0.1])
        p1 = g.piece_probabilities(np.array([0.0, 1.0]))
        np.testing.assert_allclose(p1, [0.0, 0.25, 0.9])

    def test_mixture_is_linear(self):
        g = triangle()
        mix = g.piece_probabilities(np.array([0.5, 0.5]))
        p0 = g.piece_probabilities(np.array([1.0, 0.0]))
        p1 = g.piece_probabilities(np.array([0.0, 1.0]))
        np.testing.assert_allclose(mix, 0.5 * p0 + 0.5 * p1)

    def test_wrong_shape_rejected(self):
        with pytest.raises(TopicError):
            triangle().piece_probabilities(np.array([1.0, 0.0, 0.0]))

    def test_negative_vector_rejected(self):
        with pytest.raises(TopicError):
            triangle().piece_probabilities(np.array([1.0, -0.1]))

    def test_clipping_overweight_vector(self):
        g = TopicGraph.from_edges(2, 1, [(0, 1, {0: 0.9})])
        p = g.piece_probabilities(np.array([2.0]))
        assert p[0] == 1.0

    def test_mean_edge_probabilities(self):
        g = triangle()
        mean = g.mean_edge_probabilities(
            [np.array([1.0, 0.0]), np.array([0.0, 1.0])]
        )
        np.testing.assert_allclose(mean, [0.25, 0.125, 0.5])

    def test_mean_requires_pieces(self):
        with pytest.raises(TopicError):
            triangle().mean_edge_probabilities([])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 12),
    num_topics=st.integers(1, 4),
    data=st.data(),
)
def test_random_graph_csr_invariants(n, num_topics, data):
    """CSR structure stays self-consistent for arbitrary simple graphs."""
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = data.draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=20)
    )
    triples = []
    for u, v in edges:
        probs = data.draw(
            st.dictionaries(
                st.integers(0, num_topics - 1),
                st.floats(0.01, 1.0),
                min_size=1,
                max_size=num_topics,
            )
        )
        triples.append((u, v, probs))
    g = TopicGraph.from_edges(n, num_topics, triples)
    assert g.num_edges == len(edges)
    assert g.out_ptr[-1] == g.num_edges
    assert g.in_ptr[-1] == g.num_edges
    assert g.out_degrees().sum() == g.in_degrees().sum() == g.num_edges
    # piece probabilities within [0, 1] for the uniform mixture
    uniform = np.full(num_topics, 1.0 / num_topics)
    p = g.piece_probabilities(uniform)
    assert np.all((0.0 <= p) & (p <= 1.0))
    # adjacency round-trip
    for u, v in edges:
        assert g.has_edge(u, v)
