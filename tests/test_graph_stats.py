"""Tests for graph statistics and the power-law MLE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.graph.digraph import TopicGraph
from repro.graph.generators import build_topic_graph, preferential_attachment_digraph
from repro.graph.stats import fit_power_law_mle, summarize_graph


class TestPowerLawMLE:
    def test_recovers_known_exponent(self):
        # Discrete power-law samples (the estimator's target regime):
        # P(d) ∝ d^-2.5 on a wide support; the CSN approximation is
        # accurate for x_min >= 6.
        from repro.graph.generators import power_law_degree_sequence

        alpha_true = 2.5
        samples = power_law_degree_sequence(
            200_000, alpha_true, min_degree=1, max_degree=100_000, seed=0
        )
        est = fit_power_law_mle(samples, x_min=6)
        assert abs(est - alpha_true) < 0.1

    def test_x_min_filters_head(self):
        values = np.concatenate([np.ones(1000), np.full(10, 50.0)])
        full = fit_power_law_mle(values, x_min=1)
        tail = fit_power_law_mle(values, x_min=10)
        assert tail != full

    def test_empty_tail_rejected(self):
        with pytest.raises(ParameterError):
            fit_power_law_mle(np.array([1.0, 2.0]), x_min=10)

    def test_bad_x_min_rejected(self):
        with pytest.raises(ParameterError):
            fit_power_law_mle(np.array([1.0]), x_min=0)

    def test_pa_graph_in_power_law_regime(self):
        src, dst = preferential_attachment_digraph(3000, 3, seed=1)
        degree = np.bincount(np.concatenate([src, dst]), minlength=3000)
        alpha = fit_power_law_mle(degree[degree > 0], x_min=6)
        # Preferential attachment targets alpha ~ 3; accept a wide band.
        assert 1.5 < alpha < 4.5


class TestSummarizeGraph:
    def test_fields(self):
        g = TopicGraph.from_edges(
            3, 2, [(0, 1, {0: 0.5}), (1, 2, {0: 0.5, 1: 0.5})]
        )
        s = summarize_graph(g)
        assert s.num_vertices == 3
        assert s.num_edges == 2
        assert s.average_degree == pytest.approx(2 / 3)
        assert s.num_topics == 2
        assert s.mean_topics_per_edge == pytest.approx(1.5)
        assert s.max_out_degree == 1
        assert s.max_in_degree == 1

    def test_as_row_length(self):
        g = TopicGraph.from_edges(2, 1, [(0, 1, {0: 0.1})])
        assert len(summarize_graph(g).as_row()) == 6

    def test_random_graph_summary_ranges(self):
        src, dst = preferential_attachment_digraph(100, 3, seed=2)
        g = build_topic_graph(100, src, dst, 4, seed=3)
        s = summarize_graph(g)
        assert s.num_edges == src.size
        assert s.mean_topics_per_edge >= 1.0
        assert s.average_degree == pytest.approx(src.size / 100)
