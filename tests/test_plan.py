"""Tests for assignment-plan algebra (Defs. 2-4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import AssignmentPlan
from repro.exceptions import SolverError


def plans(num_pieces=3, max_vertex=8):
    """Hypothesis strategy for random plans."""
    seed_set = st.frozensets(st.integers(0, max_vertex), max_size=4)
    return st.builds(
        AssignmentPlan,
        st.lists(seed_set, min_size=num_pieces, max_size=num_pieces),
    )


class TestBasics:
    def test_empty(self):
        p = AssignmentPlan.empty(3)
        assert p.num_pieces == 3
        assert p.size == 0
        assert p.is_empty()

    def test_empty_needs_pieces(self):
        with pytest.raises(SolverError):
            AssignmentPlan.empty(0)

    def test_no_slots_rejected(self):
        with pytest.raises(SolverError):
            AssignmentPlan([])

    def test_size_counts_assignments(self):
        p = AssignmentPlan([{1, 2}, {2}, set()])
        assert p.size == 3  # vertex 2 counts once per piece

    def test_assignments_sorted(self):
        p = AssignmentPlan([{3, 1}, {2}])
        assert p.assignments() == [(1, 0), (2, 1), (3, 0)]

    def test_seed_lists(self):
        p = AssignmentPlan([{3, 1}, set()])
        assert p.seed_lists() == [[1, 3], []]

    def test_contains_membership(self):
        p = AssignmentPlan([{1}, {2}])
        assert (1, 0) in p
        assert (1, 1) not in p
        assert (1, 5) not in p

    def test_equality_and_hash(self):
        a = AssignmentPlan([{1, 2}, set()])
        b = AssignmentPlan([[2, 1], []])
        assert a == b and hash(a) == hash(b)

    def test_repr_stable(self):
        assert repr(AssignmentPlan([{2, 1}])) == "AssignmentPlan([{1, 2}])"


class TestAlgebra:
    def test_union(self):
        a = AssignmentPlan([{1}, set()])
        b = AssignmentPlan([{2}, {3}])
        u = a.union(b)
        assert u == AssignmentPlan([{1, 2}, {3}])

    def test_i_union(self):
        p = AssignmentPlan([{1}, set()]).i_union(1, [5, 6])
        assert p == AssignmentPlan([{1}, {5, 6}])

    def test_with_assignment_idempotent(self):
        p = AssignmentPlan([{1}]).with_assignment(1, 0)
        assert p.size == 1

    def test_difference(self):
        a = AssignmentPlan([{1, 2}, {3}])
        b = AssignmentPlan([{2}, set()])
        assert a.difference(b) == AssignmentPlan([{1}, {3}])

    def test_containment(self):
        small = AssignmentPlan([{1}, set()])
        big = AssignmentPlan([{1, 2}, {3}])
        assert big.contains(small)
        assert not small.contains(big)

    def test_piece_count_mismatch_rejected(self):
        with pytest.raises(SolverError):
            AssignmentPlan([{1}]).union(AssignmentPlan([{1}, {2}]))

    def test_bad_piece_index_rejected(self):
        with pytest.raises(SolverError):
            AssignmentPlan([{1}]).i_union(5, [1])

    def test_wrong_type_rejected(self):
        with pytest.raises(SolverError):
            AssignmentPlan([{1}]).union("not a plan")

    def test_immutability(self):
        a = AssignmentPlan([{1}, set()])
        _ = a.with_assignment(9, 1)
        assert a == AssignmentPlan([{1}, set()])


@settings(max_examples=60, deadline=None)
@given(a=plans(), b=plans())
def test_union_is_commutative_and_contains_operands(a, b):
    u = a.union(b)
    assert u == b.union(a)
    assert u.contains(a) and u.contains(b)
    assert u.size <= a.size + b.size


@settings(max_examples=60, deadline=None)
@given(a=plans(), b=plans(), c=plans())
def test_union_associative(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))


@settings(max_examples=60, deadline=None)
@given(a=plans(), b=plans())
def test_containment_is_a_partial_order(a, b):
    assert a.contains(a)
    if a.contains(b) and b.contains(a):
        assert a == b


@settings(max_examples=60, deadline=None)
@given(a=plans(), b=plans())
def test_difference_disjoint_from_subtrahend(a, b):
    d = a.difference(b)
    for v, j in d.assignments():
        assert (v, j) not in b
    assert a.contains(d)
