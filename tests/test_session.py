"""The Session facade: legacy bit-identity, registry, evaluation flow.

The redesign's acceptance contract: a ``Session`` pipeline produces
seed sets and estimates **bit-identical** to the hand-wired legacy
calls it replaces, for every registered solver, because it invokes the
same primitives with the same seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    Session,
    SessionResult,
    available_solvers,
    register_solver,
)
from repro.api import _SOLVERS
from repro.core.bab import solve_bab, solve_bab_progressive
from repro.core.brute_force import brute_force_oipa
from repro.core.local_search import local_search
from repro.core.problem import OIPAProblem
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import ConfigError, SolverError
from repro.im.baselines import im_baseline, tim_baseline
from repro.runtime import Runtime
from repro.sampling.mrr import MRRCollection


@pytest.fixture()
def adoption():
    return AdoptionModel.from_ratio(0.5)


@pytest.fixture()
def legacy_pipeline(small_random_graph, small_campaign, adoption):
    """The hand-wired calls a Session must reproduce exactly."""
    problem = OIPAProblem.with_random_pool(
        small_random_graph, small_campaign, adoption, 4, seed=13
    )
    mrr = MRRCollection.generate(
        small_random_graph, small_campaign, 300, seed=13
    )
    return problem, mrr


@pytest.fixture()
def session(small_random_graph, small_campaign, adoption):
    return Session(
        small_random_graph, small_campaign, adoption, k=4, seed=13
    )


class TestLegacyBitIdentity:
    def test_problem_and_samples_match(self, session, legacy_pipeline):
        problem, mrr = legacy_pipeline
        assert np.array_equal(session.problem.pool, problem.pool)
        session.sample(300)
        assert np.array_equal(session.mrr.roots, mrr.roots)
        for a, b in zip(session.mrr._rr_nodes, mrr._rr_nodes):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("method", ["bab", "bab-p"])
    def test_bab_matches_legacy(self, session, legacy_pipeline, method):
        problem, mrr = legacy_pipeline
        solve = solve_bab if method == "bab" else solve_bab_progressive
        legacy = solve(problem, mrr, max_nodes=50)
        result = session.solve(method, theta=300, max_nodes=50)
        assert result.plan.seed_sets == legacy.plan.seed_sets
        assert result.estimate == legacy.utility
        assert result.diagnostics["termination"] == (
            legacy.diagnostics.termination
        )

    def test_baselines_match_legacy(self, session, legacy_pipeline):
        problem, mrr = legacy_pipeline
        session.sample(300)
        legacy_im = im_baseline(problem, mrr, seed=13)
        got = session.solve("ris")
        assert got.plan.seed_sets == legacy_im.plan.seed_sets
        assert got.estimate == legacy_im.utility
        assert session.solve("im").plan.seed_sets == got.plan.seed_sets
        legacy_tim = tim_baseline(problem, mrr)
        got = session.solve("tim")
        assert got.plan.seed_sets == legacy_tim.plan.seed_sets
        assert got.estimate == legacy_tim.utility
        # Regression: solve()'s seed reaches solvers that declare one —
        # solve("ris", seed=3) must match im_baseline(..., seed=3), not
        # silently fall back to the session seed.
        legacy_seeded = im_baseline(problem, mrr, seed=3)
        got = session.solve("ris", seed=3)
        assert got.plan.seed_sets == legacy_seeded.plan.seed_sets
        assert got.estimate == legacy_seeded.utility

    def test_local_search_and_brute_force_match_legacy(
        self, session, legacy_pipeline
    ):
        problem, mrr = legacy_pipeline
        session.sample(300)
        legacy = local_search(
            problem, mrr, problem.empty_plan(), max_rounds=2
        )
        got = session.solve("local-search", max_rounds=2)
        assert got.plan.seed_sets == legacy.plan.seed_sets
        assert got.estimate == legacy.utility
        small = Session(
            session.graph, session.campaign, session.adoption,
            k=2, pool=np.arange(3), seed=13,
        )
        small_problem = OIPAProblem(
            session.graph, session.campaign, session.adoption, 2,
            np.arange(3),
        )
        small.sample(100)
        plan, utility = brute_force_oipa(small_problem, small.mrr)
        got = small.solve("brute-force")
        assert got.plan.seed_sets == plan.seed_sets
        assert got.estimate == utility

    def test_estimates_shared_across_methods(self, session):
        # One collection serves every solver (fixed-theta protocol).
        session.solve("bab-p", theta=300)
        first = session.mrr
        session.solve("tim")
        assert session.mrr is first


class TestSessionFlow:
    def test_solve_requires_theta_once(self, session):
        with pytest.raises(SolverError, match="theta"):
            session.solve("bab")
        with pytest.raises(SolverError, match="no MRR collection"):
            session.mrr

    def test_unknown_method(self, session):
        with pytest.raises(SolverError, match="unknown solver"):
            session.solve("simulated-annealing", theta=50)

    def test_method_name_normalisation(self, session):
        session.sample(100)
        res = session.solve("BAB_P", max_nodes=10)
        assert res.method == "bab-p"

    def test_evaluate_and_simulate(self, session):
        result = session.solve("bab-p", theta=200, max_nodes=20)
        score = session.evaluate(result)
        assert session.mrr_eval is not None
        assert session.mrr_eval.theta == 4 * 200
        assert score == session.mrr_eval.estimate(
            result.plan.seed_lists(), session.adoption
        )
        # evaluation collection is independent of the optimisation draw
        assert not np.array_equal(
            session.mrr.roots[:50], session.mrr_eval.roots[:50]
        )
        sim = session.simulate(result, rounds=4)
        assert sim >= 0.0
        res2 = session.solve("tim", evaluate=True)
        assert res2.evaluation == session.evaluate(res2.plan)

    def test_session_result_surface(self, session):
        result = session.solve("bab-p", theta=100, max_nodes=10)
        assert isinstance(result, SessionResult)
        assert result.seed_sets == result.plan.seed_sets
        with pytest.raises(TypeError):
            result.diagnostics["nodes_expanded"] = 0  # read-only view

    def test_from_dataset_quickstart(self):
        session = Session.from_dataset(
            "lastfm", scale=0.08, dataset_seed=99, pieces=2, k=3, seed=1
        )
        result = session.solve("bab-p", theta=200, max_nodes=20)
        assert result.plan.size <= 3
        assert session.bundle is not None
        assert "Session(" in repr(session)

    def test_runtime_threads_through(
        self, small_random_graph, small_campaign, adoption, tmp_path
    ):
        rt = Runtime(store="disk", shard_dir=str(tmp_path), seed=13)
        session = Session(
            small_random_graph, small_campaign, adoption, k=3, runtime=rt
        )
        assert session.seed == 13  # Runtime seeding policy adopted
        session.sample(120)
        assert session.mrr.store.kind == "disk"
        session.sample_evaluation(120)
        # opt and eval collections get per-collection shard subdirs
        assert (tmp_path / "opt-theta120-seed13").is_dir()
        assert (tmp_path / "eval-theta120-seed14").is_dir()
        # Regression: re-sampling at a new theta (advertised by
        # solve(theta=...)) must not collide with the earlier shards.
        session.solve("bab-p", theta=240, max_nodes=10)
        assert session.mrr.theta == 240
        # ...and repeating the identical call reloads the finished dir.
        assert session.sample(120).theta == 120

    def test_unseeded_disk_session_resamples_without_collision(
        self, small_random_graph, small_campaign, adoption, tmp_path
    ):
        # Regression: with a None seed the roots draw is random, so the
        # shard key must change per generation instead of colliding on
        # the (role, theta) pair.
        session = Session(
            small_random_graph, small_campaign, adoption, k=3,
            runtime=Runtime(store="disk", shard_dir=str(tmp_path)),
        )
        session.sample(80)
        session.sample(80)  # used to raise StoreError on the manifest
        assert session.mrr.theta == 80

    def test_evaluate_seed_regenerates(self, session):
        session.solve("bab-p", theta=100, max_nodes=10)
        plan = session.solve("tim").plan
        first = session.evaluate(plan)
        roots_first = session.mrr_eval.roots.copy()
        # Regression: an explicit seed must produce a fresh draw, not
        # silently score on the cached collection.
        second = session.evaluate(plan, seed=123)
        assert not np.array_equal(roots_first, session.mrr_eval.roots)
        assert session.mrr_eval.theta == 4 * 100
        assert isinstance(first, float) and isinstance(second, float)

    def test_flat_baselines_are_model_blind(
        self, small_random_graph, small_campaign, adoption
    ):
        # Scalar and per-piece spellings of an all-LT campaign must
        # treat the (never-normalised) flat baseline graph identically:
        # both run it under the default model, like legacy im_baseline.
        pieces = small_campaign.num_pieces
        scalar = Session(
            small_random_graph, small_campaign, adoption, k=2, seed=7,
            runtime=Runtime(model="lt"),
        )
        perpiece = Session(
            small_random_graph, small_campaign, adoption, k=2, seed=7,
            runtime=Runtime(model=("lt",) * pieces),
        )
        scalar.sample(100)
        perpiece.sample(100)
        a = scalar.solve("celf", rounds=3)
        b = perpiece.solve("celf", rounds=3)
        assert a.diagnostics["seeds"] == b.diagnostics["seeds"]
        assert a.plan.seed_sets == b.plan.seed_sets

    def test_memory_store_instance_not_silently_reused(
        self, small_random_graph, small_campaign, adoption
    ):
        # Regression: one store *instance* carried on a shared Runtime
        # must not serve a second generation's collection — the first
        # generation's arrays would be re-served under new dimensions.
        from repro.exceptions import StoreError
        from repro.sampling.store import MemoryStore

        session = Session(
            small_random_graph, small_campaign, adoption, k=3, seed=13,
            runtime=Runtime(store=MemoryStore()),
        )
        session.sample(100)
        with pytest.raises(StoreError, match="fresh store"):
            session.sample_evaluation(200)

    def test_mixed_models_normalise_lt_pieces(
        self, small_random_graph, small_campaign, adoption
    ):
        models = tuple(
            "lt" if j % 2 else "ic"
            for j in range(small_campaign.num_pieces)
        )
        session = Session(
            small_random_graph, small_campaign, adoption, k=2, seed=7,
            runtime=Runtime(model=models),
        )
        session.sample(100)
        result = session.solve("bab-p", max_nodes=10)
        assert result.plan.size <= 2
        # flat-graph baselines still run (per-piece models stripped)
        assert session.solve("ris").plan.size <= 2


class TestRegistry:
    def test_register_and_overwrite(self, session):
        def fixed_plan(s, **options):
            plan = s.problem.empty_plan().with_assignment(
                int(s.problem.pool[0]), 0
            )
            return plan, s.estimate(plan), {"custom": True}

        register_solver("fixed", fixed_plan)
        try:
            assert "fixed" in available_solvers()
            result = session.solve("fixed", theta=100)
            assert result.diagnostics["custom"] is True
            assert result.estimate == session.estimate(result.plan)
            with pytest.raises(ConfigError, match="already registered"):
                register_solver("fixed", fixed_plan)
            register_solver("fixed", fixed_plan, overwrite=True)
        finally:
            _SOLVERS.pop("fixed", None)

    def test_decorator_form(self):
        @register_solver("decorated-solver")
        def my_solver(session, **options):  # pragma: no cover
            raise NotImplementedError

        try:
            assert "decorated-solver" in available_solvers()
        finally:
            _SOLVERS.pop("decorated-solver", None)
