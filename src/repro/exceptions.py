"""Exception hierarchy for the ``repro`` library.

Every error deliberately raised by this package derives from
:class:`ReproError`, so callers can catch library failures without
masking genuine programming errors (``TypeError``, ``KeyError``, ...).

The hierarchy mirrors the package layout: graph construction problems,
model/parameter validation problems, sampling problems, and solver
problems each get their own subclass so tests and downstream users can
assert on precise failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DeltaError",
    "GraphError",
    "GraphFormatError",
    "TopicError",
    "ParameterError",
    "ConfigError",
    "SamplingError",
    "StoreError",
    "StoreBusyError",
    "SolverError",
    "BudgetExhaustedError",
    "DatasetError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """A graph is structurally invalid for the requested operation."""


class GraphFormatError(GraphError):
    """Raised when parsing or serialising a graph fails.

    Carries the offending ``line`` number when raised by a parser so
    error messages can point at the exact input record.
    """

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class DeltaError(GraphError):
    """A graph delta is malformed or inconsistent with its base graph.

    Raised by :mod:`repro.incremental` when an edge operation targets a
    vertex outside the graph, adds an edge that already exists, or
    removes/reweights one that does not.
    """


class TopicError(ReproError):
    """A topic vector or topic model input is invalid."""


class ParameterError(ReproError):
    """A model or algorithm parameter is outside its legal domain."""


class ConfigError(ParameterError):
    """An environment/configuration knob holds an illegal value.

    Raised when ``REPRO_BACKEND`` / ``REPRO_WORKERS`` / ``REPRO_STORE``
    (or their per-call counterparts) cannot be parsed — at the entry
    point that resolves the knob, with a message naming the variable and
    its legal values, instead of surfacing later as an obscure failure
    inside pool or kernel setup.  Subclasses :class:`ParameterError` so
    existing ``except ParameterError`` handling keeps working.
    """


class SamplingError(ReproError):
    """RR/MRR sampling was asked to do something impossible."""


class StoreError(SamplingError):
    """A sample store is missing, inconsistent, or corrupted.

    Raised by the pluggable sample-store layer
    (:mod:`repro.sampling.store`) when a shard directory's manifest does
    not match the requested collection, a shard file is missing or
    unreadable, or a store is used before it is finalized.
    """


class StoreBusyError(StoreError):
    """A store is incomplete but *retryable* — not corrupted.

    Raised when a shard directory carries a matching manifest but no
    finalize marker yet: another worker is (or was) still writing it.
    Unlike its parent :class:`StoreError` — which signals a mismatched
    or genuinely corrupted store that must be removed — a busy store
    can be retried, resumed, or simply regenerated elsewhere; the
    artifact-cache hit path treats it as a miss instead of failing the
    request.
    """


class SolverError(ReproError):
    """An OIPA solver received an infeasible or inconsistent instance."""


class BudgetExhaustedError(SolverError):
    """A solver ran out of its node/evaluation budget before converging.

    The partially optimised result is attached so callers can decide
    whether the incumbent plan is still usable.
    """

    def __init__(self, message: str, incumbent: object | None = None) -> None:
        super().__init__(message)
        self.incumbent = incumbent


class DatasetError(ReproError):
    """A dataset pipeline was misconfigured."""


class ExperimentError(ReproError):
    """An experiment sweep was misconfigured."""
