"""Plain-text table rendering for experiment reports.

The experiment harness prints the same rows/series the paper's tables and
figures report.  Output is deliberately dependency-free ASCII so it reads
cleanly in CI logs and ``tee``'d benchmark output files.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series"]


def _render_cell(value: object, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    floatfmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    >>> print(format_table(["k", "utility"], [[10, 15.5], [20, 18.25]]))
    k  | utility
    ---+--------
    10 | 15.5
    20 | 18.25
    """
    str_rows = [[_render_cell(cell, floatfmt) for cell in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    separator = "-+-".join("-" * w for w in widths)
    body = [
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        for row in str_rows
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(header_line)
    lines.append(separator)
    lines.extend(body)
    return "\n".join(lines)


def format_series(
    x_name: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    floatfmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render one figure panel: an x-axis column plus one column per line.

    This matches how the paper's figures are read — e.g. Figure 4's
    ``lastfm`` utility panel becomes columns ``k, IM, TIM, BAB, BAB-P``.
    """
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points but the x-axis "
                f"has {len(x_values)}"
            )
    rows = [
        [x, *(series[name][i] for name in names)] for i, x in enumerate(x_values)
    ]
    return format_table([x_name, *names], rows, floatfmt=floatfmt, title=title)
