"""Advisory cross-process lock files over a shared filesystem.

One primitive serves two coordination layers that PR-sized systems keep
reinventing separately:

- the **work-lease** layer of distributed sampling
  (:mod:`repro.sampling.dist`): each (piece, root-block) task is guarded
  by a lease file so N independent worker processes — possibly on
  different machines sharing a filesystem — claim disjoint tasks;
- the **producer flight** of the artifact cache
  (:mod:`repro.artifacts`): the first process to miss a key claims the
  production, the rest poll for the committed object instead of
  stampeding.

The design is deliberately *advisory*: correctness never depends on the
lock being exclusive.  Both consumers commit their results through
rename-atomic writes whose duplicate commit is a benign no-op, so the
worst consequence of a stolen-but-alive lease is duplicate work — never
corruption.  That is what makes the expiry protocol safe to keep simple:

- **acquire** is ``os.open(path, O_CREAT | O_EXCL)`` — atomic on every
  filesystem that matters (for NFS, on v3+ servers);
- **expiry** is judged by the lock file's mtime (a *shared* clock — the
  fileserver's — so machines with skewed local clocks still agree on
  who is stale); a holder doing long work keeps the lease fresh with
  :meth:`FileLease.refresh` or the background :meth:`keepalive` thread;
- **steal** replaces an expired lease with ``os.replace`` (atomic); two
  racing stealers may both believe they hold it — benign, see above;
- **release** unlinks the file only when it still carries this holder's
  token, so releasing after being stolen never drops someone else's
  lease.

All waits are plain ``time.sleep`` in caller loops, so Ctrl-C
interrupts them (``KeyboardInterrupt`` propagates immediately).
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid

__all__ = ["FileLease"]

#: Default lease time-to-live.  Holders doing longer work must refresh
#: (see :meth:`FileLease.keepalive`); consumers with short tasks can
#: simply keep the ttl comfortably above the worst task duration.
DEFAULT_TTL = 30.0


class FileLease:
    """One advisory lease, embodied as a JSON lock file.

    Parameters
    ----------
    path:
        Lock-file path (its directory must exist).
    ttl:
        Seconds of mtime-staleness after which other processes may
        steal the lease.
    payload:
        Extra JSON-able fields recorded in the lock file (diagnostics
        only — ``token``/``pid``/``host``/``ttl`` are always written).
    """

    def __init__(
        self, path: str, *, ttl: float = DEFAULT_TTL, payload: dict | None = None
    ) -> None:
        self.path = str(path)
        self.ttl = float(ttl)
        self.token = f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:12]}"
        self._payload = dict(payload or {})
        self.held = False
        self._keepalive_stop: threading.Event | None = None
        self._keepalive_thread: threading.Thread | None = None

    # -- lock-file bytes -------------------------------------------------

    def _body(self) -> bytes:
        record = dict(self._payload)
        record.update(
            token=self.token,
            pid=os.getpid(),
            host=socket.gethostname(),
            ttl=self.ttl,
        )
        return json.dumps(record).encode()

    def _read(self) -> dict | None:
        """The current lock record, or ``None`` (gone/torn/unreadable)."""
        try:
            with open(self.path, "rb") as fh:
                return json.loads(fh.read().decode())
        except (OSError, ValueError):
            return None

    # -- acquire / steal / refresh / release -----------------------------

    def try_acquire(self) -> bool:
        """Claim the lease if free or expired; never blocks.

        Returns ``True`` when this process now holds the lease (either
        by creating the file or by stealing an expired one), ``False``
        when a live holder exists.  Re-acquiring a held lease is a
        no-op ``True``.
        """
        if self.held:
            return True
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        except OSError:
            return False
        else:
            with os.fdopen(fd, "wb") as fh:
                fh.write(self._body())
            self.held = True
            return True
        # Occupied: steal only when the holder's heartbeat went stale.
        # A torn/empty record (a non-atomic create-then-write caught
        # mid-write, or a file corrupted by a crash) is judged by age
        # like any occupant — fresh means a write in progress, stale
        # means debris to reclaim — using our own ttl since the
        # holder's is unreadable.
        record = self._read()
        if record is None:
            # The file may have vanished between the create attempt
            # and the read (a release): retry the exclusive create.
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                record = {}
            except OSError:
                return False
            else:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(self._body())
                self.held = True
                return True
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return False
        ttl = float(record.get("ttl", self.ttl))
        if age <= ttl:
            return False
        # Expired: replace atomically.  Two stealers may both succeed in
        # sequence and both believe they hold the lease — the consumers'
        # rename-atomic commits make the duplicate work benign.
        tmp = f"{self.path}.{uuid.uuid4().hex[:8]}.tmp"
        try:
            with open(tmp, "wb") as fh:
                fh.write(self._body())
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.held = True
        return True

    def refresh(self) -> None:
        """Re-stamp the lease mtime (holder heartbeat); no-op if not held."""
        if not self.held:
            return
        tmp = f"{self.path}.{uuid.uuid4().hex[:8]}.tmp"
        try:
            with open(tmp, "wb") as fh:
                fh.write(self._body())
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def release(self) -> None:
        """Drop the lease: stop the keepalive, unlink if still ours.

        A lease stolen while we worked is *not* unlinked (the token no
        longer matches), so the thief keeps its claim undisturbed.
        Idempotent and exception-safe — callers put this in ``finally``.
        """
        self._stop_keepalive()
        if not self.held:
            return
        self.held = False
        record = self._read()
        if record is not None and record.get("token") == self.token:
            try:
                os.unlink(self.path)
            except OSError:
                pass

    # -- keepalive -------------------------------------------------------

    def keepalive(self, interval: float | None = None) -> "FileLease":
        """Start a daemon heartbeat refreshing the lease until release.

        ``interval`` defaults to ``ttl / 3``.  Returns ``self`` so the
        lease can be used as a context manager::

            lease = FileLease(path, ttl=30)
            if lease.try_acquire():
                with lease.keepalive():
                    long_running_work()
                # released (and heartbeat stopped) on exit
        """
        if not self.held or self._keepalive_thread is not None:
            return self
        if interval is None:
            interval = max(self.ttl / 3.0, 0.05)
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(interval):
                self.refresh()

        thread = threading.Thread(
            target=beat, name="repro-lease-keepalive", daemon=True
        )
        self._keepalive_stop = stop
        self._keepalive_thread = thread
        thread.start()
        return self

    def _stop_keepalive(self) -> None:
        stop, thread = self._keepalive_stop, self._keepalive_thread
        self._keepalive_stop = self._keepalive_thread = None
        if stop is not None:
            stop.set()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "FileLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "held" if self.held else "free"
        return f"FileLease({self.path!r}, ttl={self.ttl}, {state})"
