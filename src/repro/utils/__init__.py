"""Shared utilities: RNG handling, timers, validation, ASCII tables."""

from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timer import Timer
from repro.utils.tables import format_table, format_series
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "Timer",
    "format_table",
    "format_series",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability",
]
