"""Environment-knob parsing shared by every ``REPRO_*`` override.

Three environment variables flip suite-wide defaults so CI matrices can
exercise every runtime without touching call sites: ``REPRO_BACKEND``
(sampling engine), ``REPRO_WORKERS`` (parallel runtime), and
``REPRO_STORE`` (sample-store layer).  Each knob is parsed here, once,
with the same contract:

* an unset or empty variable means "library default" (the empty string
  supports the ``REPRO_X= cmd`` unset-for-one-command shell idiom);
* an invalid value raises :class:`repro.exceptions.ConfigError` — a
  clear, variable-named message at the entry point that resolves the
  knob, never a late failure deep inside pool or kernel setup.
"""

from __future__ import annotations

from repro.exceptions import ConfigError

__all__ = ["parse_env_choice", "parse_env_workers"]


def parse_env_choice(
    name: str, text: str | None, choices: tuple[str, ...]
) -> str | None:
    """Parse a choice-valued env knob; ``None``/empty means unset.

    Returns the validated choice, or ``None`` when the variable is
    unset (caller applies its library default).  Anything else raises
    :class:`ConfigError` naming the variable and its legal values.
    """
    if not text:
        return None
    if text not in choices:
        raise ConfigError(
            f"{name} must be one of {choices}, got {text!r}"
        )
    return text


def parse_env_workers(text: str | None):
    """Parse ``REPRO_WORKERS``: serial / auto / a positive pool size.

    Returns ``None`` (serial default), ``"auto"``, or a positive int.
    ``"serial"`` and ``"0"`` are explicit serial requests; anything
    unparsable raises :class:`ConfigError` up front, so a typo in the
    CI matrix fails at entry instead of inside pool construction.
    """
    if not text:
        return None
    if text in ("serial", "0"):
        return None
    if text == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        value = 0
    if value < 1:
        raise ConfigError(
            "REPRO_WORKERS must be 'auto', 'serial', or a positive "
            f"integer, got {text!r}"
        )
    return value
