"""Shared primitives for frontier-at-a-time graph kernels.

Both the batched RR sampler and the vectorized forward-cascade kernel
expand a whole frontier of vertices per step: gather every adjacency
slab of the frontier into one flat edge-slot array, coin-flip the slab
with a single ``rng.random`` call, then deduplicate the surviving
endpoints.  The helpers here implement those pieces once, in a form
careful about two contracts:

* slab order is *frontier order* (entry ``i``'s edges occupy one
  contiguous run, runs concatenated in frontier order), so a frontier
  held in discovery order consumes the rng stream in exactly the same
  order as the per-vertex reference loops;
* deduplication preserves first-occurrence order, so discovery order —
  and with it rng-stream equality against the reference kernels — is
  maintained across levels.

:class:`Int64Buffer` is the amortized-doubling append buffer used to
accumulate CSR node arrays without materialising a Python list of
per-root chunks: one backing array (at most 2x the result) replaces
len(roots) small ndarray objects plus the final ``np.concatenate``
copy — ``to_array`` right-sizes the backing array in place instead of
copying, so the backing array *is* the peak.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Int64Buffer",
    "frontier_edge_slots",
    "segment_sums",
    "stable_unique",
]


class Int64Buffer:
    """Append-only int64 array with amortized-doubling growth."""

    __slots__ = ("_data", "_size")

    def __init__(self, capacity: int = 16) -> None:
        self._data = np.empty(max(int(capacity), 1), dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def extend(self, values: np.ndarray) -> None:
        """Append ``values``, growing the backing array geometrically."""
        needed = self._size + values.size
        if needed > self._data.size:
            capacity = self._data.size
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=np.int64)
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        self._data[self._size : needed] = values
        self._size = needed

    def to_array(self) -> np.ndarray:
        """The accumulated values, right-sized in place (no copy).

        Ownership of the backing array transfers to the caller: the
        shrink is a C-level ``realloc``, so peak memory stays at the
        backing array itself.  The buffer resets to empty and may be
        reused afterwards.
        """
        data = self._data
        data.resize(self._size, refcheck=False)
        self._data = np.empty(1, dtype=np.int64)
        self._size = 0
        return data


def frontier_edge_slots(
    ptr: np.ndarray, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Edge-slot indices of every frontier adjacency slab, concatenated.

    Returns ``(edge_idx, deg)`` where ``deg[i]`` is frontier entry
    ``i``'s degree and ``edge_idx`` lists the CSR slots of all slabs in
    frontier order — equivalent to concatenating
    ``arange(ptr[v], ptr[v + 1])`` for each ``v`` without a Python loop.
    """
    deg = ptr[frontier + 1] - ptr[frontier]
    total = int(deg.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), deg
    cum = np.cumsum(deg)
    edge_idx = np.repeat(ptr[frontier] + deg - cum, deg) + np.arange(
        total, dtype=np.int64
    )
    return edge_idx, deg


def segment_sums(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``values`` split into runs of ``lengths``.

    ``values`` holds the segments back to back (the layout
    :func:`frontier_edge_slots` produces); segment ``i`` spans
    ``values[sum(lengths[:i]) : sum(lengths[:i+1])]``.  Zero-length
    segments sum to zero.  Summation within a segment is sequential
    (``np.add.reduceat``), matching left-to-right scalar accumulation.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    values = np.asarray(values)
    if values.dtype == bool:
        values = values.astype(np.int64)
    out = np.zeros(lengths.size, dtype=values.dtype)
    nonempty = lengths > 0
    if values.size == 0 or not nonempty.any():
        return out
    starts = np.cumsum(lengths) - lengths
    out[nonempty] = np.add.reduceat(values, starts[nonempty])
    return out


def stable_unique(values: np.ndarray) -> np.ndarray:
    """Unique values in first-occurrence order (not sorted order)."""
    uniq, first = np.unique(values, return_index=True)
    return uniq[np.argsort(first, kind="stable")]
