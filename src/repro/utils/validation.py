"""Small argument-validation helpers.

These keep parameter checking uniform across the package: every check
raises :class:`repro.exceptions.ParameterError` with the argument name in
the message, so failures surface at the API boundary instead of deep in a
numeric kernel.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_positive_int",
    "check_probability",
    "check_fraction",
    "check_index_array",
    "check_piece_graphs_aligned",
]


def check_index_array(
    name: str,
    values: np.ndarray,
    n: int,
    *,
    exc: type[Exception] = ParameterError,
) -> None:
    """Require every value to lie in ``[0, n)``, failing on the first.

    The shared bounds check of the batch kernels: one vectorized mask
    pass over roots / candidate vertices / seed arrays, raising ``exc``
    (each layer keeps its own exception subclass) naming the first
    offender.
    """
    if values.size == 0:
        return
    bad = (values < 0) | (values >= n)
    if bad.any():
        raise exc(f"{name} {values[bad][0]} outside [0, {n})")


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0`` (finite); return it as ``float``."""
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ParameterError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0`` (finite); return it as ``float``."""
    value = float(value)
    if not math.isfinite(value) or value < 0:
        raise ParameterError(f"{name} must be non-negative and finite, got {value!r}")
    return value


def check_positive_int(name: str, value: int) -> int:
    """Require an integral ``value >= 1``; return it as ``int``."""
    if isinstance(value, bool) or int(value) != value:
        raise ParameterError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 1:
        raise ParameterError(f"{name} must be >= 1, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it as ``float``."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ParameterError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 < value < 1`` (an open-interval fraction)."""
    value = float(value)
    if not (0.0 < value < 1.0):
        raise ParameterError(f"{name} must lie in (0, 1), got {value!r}")
    return value


def check_piece_graphs_aligned(
    piece_graphs,
    n: int,
    *,
    reference: str = "piece graph 0",
    exc: type[Exception] = ParameterError,
) -> None:
    """Require every piece graph to have exactly ``n`` vertices.

    A mismatched graph would otherwise surface as a raw NumPy broadcast
    error — or, worse, silently corrupt per-vertex counts when its ``n``
    is larger than the reference.  ``exc`` lets the sampling layer keep
    its own exception subclass.
    """
    for j, pg in enumerate(piece_graphs):
        if pg.n != n:
            raise exc(
                f"piece graph {j} has {pg.n} vertices but {reference} has "
                f"{n}; all pieces must share one vertex set"
            )
