"""Random-number-generator plumbing.

Every stochastic routine in the library accepts a ``seed`` argument that
may be ``None`` (fresh OS entropy), an ``int`` (deterministic run), or an
existing :class:`numpy.random.Generator` (caller-controlled stream).
:func:`as_generator` normalises all three into a ``Generator`` so the rest
of the code never branches on the type of its randomness source.

Reproducibility is a first-class requirement for the experiment harness:
each figure is regenerated from a fixed seed recorded in
``repro.experiments.config``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_generators"]

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an integer for a deterministic stream,
        a ``SeedSequence``, or an existing ``Generator`` (returned as-is
        so callers can share one stream across components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    return np.random.default_rng(seed)


def spawn_generators(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Uses ``SeedSequence.spawn`` so the children do not overlap even when
    the parent seed is small.  When ``seed`` is already a ``Generator`` we
    draw one integer from it to key the sequence, keeping the caller's
    stream as the single source of truth.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(s)) for s in root.spawn(count)]
