"""Wall-clock timing helper used by solvers and the experiment harness."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context manager / stopwatch measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True

    The stopwatch form supports repeated ``split()`` reads while running:

    >>> t = Timer().start()
    >>> first = t.split()
    >>> second = t.split()
    >>> second >= first
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float = 0.0

    def start(self) -> "Timer":
        """Start (or restart) the stopwatch and return ``self``."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self._elapsed = time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    def split(self) -> float:
        """Return elapsed seconds without stopping."""
        if self._start is None:
            return self._elapsed
        return time.perf_counter() - self._start

    @property
    def elapsed(self) -> float:
        """Seconds measured by the most recent run (live if running)."""
        return self.split()

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "running" if self._start is not None else "stopped"
        return f"Timer({self.split():.6f}s, {state})"
