"""The staged execution pipeline behind :class:`repro.api.Session`.

The paper's RIS/MRR machinery is naturally staged::

    plan ──► sample ──► index ──► solve ──► evaluate

``plan`` fixes the problem instance (graph + campaign + adoption +
candidate pool), ``sample`` draws the theta root sets and their MRR/RR
sets per piece (Alg. 2), ``index`` builds the per-piece inverted
indexes the coverage oracles query, ``solve`` runs a registered solver
to a seed-set plan, and ``evaluate`` scores the plan on an independent
draw.  Each stage consumes and produces an :class:`~repro.artifacts.Artifact`
addressed by a deterministic fingerprint of everything upstream of it,
so identical inputs reuse the cached product instead of recomputing —
see :mod:`repro.artifacts` for the key scheme and the stores.

This module owns the stage vocabulary and the execution trace a
``Session`` records: every stage execution appends a
:class:`StageEvent` saying whether the stage *ran* or was served as a
cache *hit*, which is how tests (and the warm-cache benchmark) assert
"a warm run performed zero sampling" without poking at sampler
internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "STAGES",
    "PipelineTrace",
    "Stage",
    "StageEvent",
    "TraceEvent",
    "stage",
]

#: Canonical stage order of one Session.run.
STAGES = ("plan", "sample", "index", "solve", "evaluate")


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: its name and artifact dataflow."""

    name: str
    consumes: tuple[str, ...]
    produces: str
    description: str


_STAGES = {
    "plan": Stage(
        name="plan",
        consumes=(),
        produces="problem",
        description=(
            "fix the problem instance: graph, campaign, adoption "
            "model, budget k, candidate pool"
        ),
    ),
    "sample": Stage(
        name="sample",
        consumes=("problem",),
        produces="rr-sets",
        description=(
            "draw theta shared roots and one RR set per (root, piece)"
        ),
    ),
    "index": Stage(
        name="index",
        consumes=("rr-sets",),
        produces="inverted-index",
        description=(
            "build the per-piece vertex -> sample-ids inverted indexes"
        ),
    ),
    "solve": Stage(
        name="solve",
        consumes=("problem", "inverted-index"),
        produces="seed-sets",
        description="run a registered solver to an assignment plan",
    ),
    "evaluate": Stage(
        name="evaluate",
        consumes=("seed-sets",),
        produces="utility",
        description=(
            "score the plan on an independent evaluation draw"
        ),
    ),
}


def stage(name: str) -> Stage:
    """Look up a pipeline stage by name."""
    try:
        return _STAGES[name]
    except KeyError:
        raise KeyError(
            f"unknown stage {name!r}; stages are {STAGES}"
        ) from None


class TraceEvent(tuple):
    """A ``(stage, action)`` pair carrying optional structured extras.

    Generation internals report their stage events as plain 2-tuples —
    an API pinned by callers doing ``("sample", "run") in events`` and
    ``for stage, action in events``.  This subclass keeps both working
    while letting a producer attach machine-readable measurements that
    the Session forwards into :attr:`StageEvent.extra`; consumers read
    it with ``getattr(event, "extra", {})`` so plain tuples remain
    valid events.  The sample stage reports its effective block
    geometry *and* its execution topology (``executor``/``workers`` —
    including the distributed ``"spawned"`` fan-out), so a trace
    records not just what ran but how it was spread out.
    """

    def __new__(cls, stage: str, action: str, extra=None) -> "TraceEvent":
        self = tuple.__new__(cls, (stage, action))
        self.extra = dict(extra) if extra else {}
        return self


@dataclass(frozen=True)
class StageEvent:
    """One stage execution: did it run, or was it served from cache?

    ``seconds`` is the measured wall-clock of the execution when the
    recorder timed it (``0.0`` when untimed) — the influence service
    surfaces these per-job so clients can see where a job's time went.
    ``extra`` holds stage-specific measurements (e.g. the sample
    stage's ``task_block`` / ``block_roots`` geometry) and is empty for
    stages that report none.
    """

    stage: str
    action: str  # "run" | "hit"
    detail: str = ""
    seconds: float = 0.0
    extra: dict = field(default_factory=dict)


@dataclass
class PipelineTrace:
    """Ordered record of stage executions for one Session lifetime."""

    events: list[StageEvent] = field(default_factory=list)

    def record(
        self,
        stage_name: str,
        action: str,
        detail: str = "",
        *,
        seconds: float = 0.0,
        extra: dict | None = None,
    ) -> None:
        if stage_name not in STAGES:
            raise KeyError(f"unknown stage {stage_name!r}; stages are {STAGES}")
        if action not in ("run", "hit"):
            raise ValueError(f"action must be 'run' or 'hit', got {action!r}")
        self.events.append(
            StageEvent(
                stage_name, action, detail, float(seconds), dict(extra or {})
            )
        )

    def actions(self, stage_name: str) -> list[str]:
        """Actions recorded for one stage, in execution order."""
        return [e.action for e in self.events if e.stage == stage_name]

    def ran(self, stage_name: str) -> bool:
        """Did this stage actually execute (vs. only cache hits)?"""
        return "run" in self.actions(stage_name)

    def sampled(self) -> bool:
        """Did any sampling work happen (the warm-run zero check)?"""
        return self.ran("sample")

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
