"""repro — a reproduction of "Maximizing Multifaceted Network Influence".

(Y. Li, J. Fan, G. V. Ovchinnikov, P. Karras; ICDE 2019.)

The package implements the Optimal Influential Pieces Assignment (OIPA)
problem end-to-end: topic-aware influence graphs, the logistic adoption
model, Multi-Reverse-Reachable (MRR) sampling, the branch-and-bound
solvers ``BAB`` and ``BAB-P`` with submodular tangent-line upper bounds,
the ``IM``/``TIM`` baselines, the Max-Clique hardness reduction, three
synthetic dataset pipelines matching the paper's evaluation, and an
experiment harness regenerating every table and figure.

Quickstart
----------
>>> from repro import Session
>>> session = Session.from_dataset("lastfm", scale=0.1, pieces=3, k=5, seed=1)
>>> result = session.solve("bab-p", theta=2000)
>>> result.plan.size <= 5
True

Execution policy (sampling backend, diffusion models, worker pool,
sample store) lives on one frozen :class:`repro.runtime.Runtime`:

>>> from repro import Runtime
>>> rt = Runtime(workers="auto", store="memory")
>>> session = Session.from_dataset("lastfm", scale=0.1, seed=1, runtime=rt)

The primitives remain available for hand-wired pipelines; their
per-call execution kwargs are deprecated in favour of ``runtime=`` and
produce bit-identical results either way.
"""

from repro.exceptions import (
    BudgetExhaustedError,
    ConfigError,
    DatasetError,
    DeltaError,
    ExperimentError,
    GraphError,
    GraphFormatError,
    ParameterError,
    ReproError,
    SamplingError,
    SolverError,
    StoreBusyError,
    StoreError,
    TopicError,
)
from repro.graph import TopicGraph, load_topic_graph, save_topic_graph
from repro.topics import Campaign, Piece, uniform_piece, unit_piece
from repro.diffusion import (
    AdoptionModel,
    PieceGraph,
    project_campaign,
    simulate_adoption_utility,
)
from repro.sampling import (
    BatchRRSampler,
    MemoryStore,
    MRRCollection,
    ReverseReachableSampler,
    ShardStore,
)
from repro.core import (
    AssignmentPlan,
    BranchAndBoundSolver,
    CliqueReduction,
    OIPAProblem,
    SolverResult,
    brute_force_oipa,
    solve_bab,
    solve_bab_progressive,
)
from repro.im import BaselineResult, im_baseline, tim_baseline
from repro.datasets import load_dataset
from repro.runtime import Runtime, resolve_runtime
from repro.artifacts import (
    ArtifactStore,
    DiskArtifactStore,
    MemoryArtifactStore,
    resolve_artifact_store,
)
from repro.pipeline import STAGES, PipelineTrace, Stage, StageEvent, stage
from repro.api import (
    Session,
    SessionResult,
    available_solvers,
    register_solver,
)
from repro.incremental import (
    EdgeOp,
    GraphDelta,
    IncrementalTrace,
    UpdateResult,
    apply_delta,
)
from repro.service import (
    InfluenceServer,
    JobQueue,
    JobRecord,
    JobSpec,
    JobStore,
    create_server,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "GraphError",
    "GraphFormatError",
    "TopicError",
    "ParameterError",
    "ConfigError",
    "SamplingError",
    "DeltaError",
    "StoreError",
    "StoreBusyError",
    "SolverError",
    "BudgetExhaustedError",
    "DatasetError",
    "ExperimentError",
    # graph
    "TopicGraph",
    "load_topic_graph",
    "save_topic_graph",
    # topics
    "Piece",
    "Campaign",
    "unit_piece",
    "uniform_piece",
    # diffusion
    "AdoptionModel",
    "PieceGraph",
    "project_campaign",
    "simulate_adoption_utility",
    # sampling
    "BatchRRSampler",
    "MRRCollection",
    "MemoryStore",
    "ReverseReachableSampler",
    "ShardStore",
    # core
    "AssignmentPlan",
    "OIPAProblem",
    "BranchAndBoundSolver",
    "SolverResult",
    "solve_bab",
    "solve_bab_progressive",
    "brute_force_oipa",
    "CliqueReduction",
    # baselines
    "BaselineResult",
    "im_baseline",
    "tim_baseline",
    # datasets
    "load_dataset",
    # runtime + session facade
    "Runtime",
    "resolve_runtime",
    "Session",
    "SessionResult",
    "available_solvers",
    "register_solver",
    # artifacts + pipeline
    "ArtifactStore",
    "MemoryArtifactStore",
    "DiskArtifactStore",
    "resolve_artifact_store",
    "STAGES",
    "Stage",
    "stage",
    "StageEvent",
    "PipelineTrace",
    # incremental campaigns
    "EdgeOp",
    "GraphDelta",
    "IncrementalTrace",
    "UpdateResult",
    "apply_delta",
    # influence service
    "InfluenceServer",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "create_server",
]
