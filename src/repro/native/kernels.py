"""Typed hot-loop kernels for the ``backend="native"`` tier.

Every function here is written in Numba's nopython subset and wrapped
with the package's :data:`~repro.native.njit` shim: with Numba
installed they compile (``cache=True``, so CI and repeat runs skip the
JIT warmup); without it they run as plain Python loops — slow, but
*identical*, which is how the bit-identity suites cover the kernel
logic on machines with no compiler.

The contract shared by all of them: replicate the arithmetic of the
NumPy ``batch`` kernels exactly.  Draw streams are consumed by the
caller (``rng.random`` happens *outside* the kernel, in the same order
and the same counts as the batch engine), float accumulations are
sequential left-to-right like ``np.cumsum``, and the scatters are
integer-exact counting sorts matching ``np.argsort(kind="stable")`` —
so ``native`` output is bit-for-bit the ``batch`` output, never merely
close.
"""

from __future__ import annotations

import numpy as np

from repro.native import njit

__all__ = [
    "gather_scatter_runs",
    "invert_index",
    "lt_walk_step",
    "popcount_words",
    "rr_expand_level",
    "scatter_by_root",
    "sort_pairs_by_vertex",
    "uncovered_segment_counts",
]

# SWAR popcount constants (uint64-typed so uint64/int promotion can
# never kick an operand to float, in Numba or plain NumPy scalars).
_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_M127 = np.uint64(0x7F)
_U0 = np.uint64(0)
_U1 = np.uint64(1)
_S1 = np.uint64(1)
_S2 = np.uint64(2)
_S4 = np.uint64(4)
_S8 = np.uint64(8)
_S16 = np.uint64(16)
_S32 = np.uint64(32)
_BIT63 = np.int64(63)


@njit
def rr_expand_level(
    in_ptr, in_src, in_prob, level_v, level_r, draws, mark, stamp, n,
    next_v, next_r,
):
    """One fused RR frontier expansion: mask + gather + dedupe.

    Walks the frontier's reverse slabs in the exact order the batch
    engine gathers them (frontier order, then slab slot order),
    consuming one pre-drawn uniform per edge, and appends each (vertex,
    root slot) pair the first time its stamp cell is fresh — the
    sequential equivalent of ``hit``/``fresh``/``stable_unique``.
    ``next_v``/``next_r`` must hold at least ``draws.size`` entries;
    returns how many were written.
    """
    pos = 0
    k = 0
    for i in range(level_v.size):
        v = level_v[i]
        r = level_r[i]
        base = r * n
        for e in range(in_ptr[v], in_ptr[v + 1]):
            if draws[pos] < in_prob[e]:
                u = in_src[e]
                key = base + u
                if mark[key] != stamp:
                    mark[key] = stamp
                    next_v[k] = u
                    next_r[k] = r
                    k += 1
            pos += 1
    return k


@njit
def lt_walk_step(
    in_ptr, in_src, in_prob, cur_v, cur_r, draws, mark, stamp, n,
    next_v, next_r,
):
    """One fused LT walk step: inverse-CDF choice + cycle cut.

    ``cur_v``/``cur_r`` are the live walks (in-degree > 0), one
    pre-drawn uniform each.  The running accumulator ``c`` crosses all
    segments exactly like the batch engine's single global
    ``np.cumsum`` over the gathered slab, and each comparison is the
    same ``(c - segment base) > draw`` — so even the float rounding of
    the chosen-predecessor boundary is identical.  Returns how many
    walks advanced (their successors written to ``next_v``/``next_r``).
    """
    c = 0.0
    k = 0
    for i in range(cur_v.size):
        v = cur_v[i]
        lo = in_ptr[v]
        hi = in_ptr[v + 1]
        base = c
        count = 0
        for e in range(lo, hi):
            c = c + in_prob[e]
            if c - base > draws[i]:
                count += 1
        if count == 0:
            continue  # the "no live incoming edge" mass
        chosen = hi - count
        u = in_src[chosen]
        key = cur_r[i] * n + u
        if mark[key] != stamp:
            mark[key] = stamp
            next_v[k] = u
            next_r[k] = cur_r[i]
            k += 1
    return k


@njit
def scatter_by_root(found_v, found_r, b, sizes, out):
    """Stable counting scatter of a block's finds, grouped by root slot.

    Equivalent to ``np.argsort(found_r, kind="stable")`` +
    ``np.bincount`` on the batch path, in one O(finds) pass: ``sizes``
    (zeroed, length ``b``) receives the per-root counts and ``out``
    (length ``found_v.size``) the vertices in per-root discovery order.
    """
    for i in range(found_r.size):
        sizes[found_r[i]] += 1
    cursor = np.empty(b, np.int64)
    acc = 0
    for r in range(b):
        cursor[r] = acc
        acc += sizes[r]
    for i in range(found_r.size):
        r = found_r[i]
        out[cursor[r]] = found_v[i]
        cursor[r] += 1


@njit
def popcount_words(words):
    """Total set bits across uint64 ``words`` (SWAR, no intermediates)."""
    total = np.int64(0)
    for i in range(words.size):
        x = words[i]
        x = x - ((x >> _S1) & _M1)
        x = (x & _M2) + ((x >> _S2) & _M2)
        x = (x + (x >> _S4)) & _M4
        x = x + (x >> _S8)
        x = x + (x >> _S16)
        x = x + (x >> _S32)
        total += np.int64(x & _M127)
    return total


@njit
def uncovered_segment_counts(words, samples, deg, gains):
    """Marginal-gain scan: per segment, count samples not yet covered.

    ``samples`` is the flat concatenation of each candidate's index
    slab (segment lengths in ``deg``); ``words`` the packed covered
    bitset.  Writes ``gains[i] = #{uncovered samples in segment i}`` —
    the fused form of ``segment_sums(~covered.test(samples), deg)``
    with no intermediate mask or gather arrays.
    """
    pos = 0
    for i in range(deg.size):
        cnt = 0
        for _ in range(deg[i]):
            s = samples[pos]
            w = words[s >> 6]
            if ((w >> np.uint64(s & _BIT63)) & _U1) == _U0:
                cnt += 1
            pos += 1
        gains[i] = cnt
    return gains


@njit
def invert_index(ptr, nodes, idx_ptr, idx_samples):
    """CSR transpose: RR-set arrays to the vertex→samples index.

    A stable counting scatter producing exactly what the memory store's
    ``np.argsort(nodes, kind="stable")`` construction yields: for each
    vertex, its containing sample ids in increasing order.  ``idx_ptr``
    must be zeroed (length ``n + 1``); ``idx_samples`` sized
    ``nodes.size``.
    """
    for i in range(nodes.size):
        idx_ptr[nodes[i] + 1] += 1
    for v in range(1, idx_ptr.size):
        idx_ptr[v] += idx_ptr[v - 1]
    cursor = idx_ptr[:-1].copy()
    for sample in range(ptr.size - 1):
        for slot in range(ptr[sample], ptr[sample + 1]):
            v = nodes[slot]
            idx_samples[cursor[v]] = sample
            cursor[v] += 1


@njit
def sort_pairs_by_vertex(nodes, samples, n, out_v, out_s):
    """Stable counting sort of (vertex, sample) pairs by vertex.

    The shard store's external-sort bucket scatter: byte-identical to
    ``order = np.argsort(nodes, kind="stable")`` followed by
    ``nodes[order], samples[order]``, in O(pairs + n) with no argsort.
    """
    counts = np.zeros(n + 1, np.int64)
    for i in range(nodes.size):
        counts[nodes[i] + 1] += 1
    for v in range(1, n + 1):
        counts[v] += counts[v - 1]
    for i in range(nodes.size):
        v = nodes[i]
        p = counts[v]
        out_v[p] = v
        out_s[p] = samples[i]
        counts[v] = p + 1


@njit
def gather_scatter_runs(buf, slab_lo, deg, run_lo, buf_base, out):
    """Scatter merged-run reads back into request order.

    ``buf`` holds the shard index file's merged runs back to back
    (run ``r`` spans file offsets ``run_lo[r]..`` at buffer offset
    ``buf_base[r]``); each requested vertex's slab starts at file
    offset ``slab_lo[i]`` with ``deg[i]`` entries.  Finds the owning
    run by binary search (== ``np.searchsorted(..., side="right") - 1``)
    and copies the slab — the fused form of the NumPy
    ``frontier_edge_slots`` + ``np.repeat`` shift-gather.
    """
    pos = 0
    for i in range(slab_lo.size):
        d = deg[i]
        if d == 0:
            continue
        lo = slab_lo[i]
        a = 0
        z = run_lo.size
        while a < z:
            m = (a + z) >> 1
            if run_lo[m] <= lo:
                a = m + 1
            else:
                z = m
        r = a - 1
        src = lo + (buf_base[r] - run_lo[r])
        for t in range(d):
            out[pos] = buf[src + t]
            pos += 1
