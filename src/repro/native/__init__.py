"""The compiled kernel tier: Numba detection and the ``njit`` shim.

``backend="native"`` promises the hot loops of the reproduction — RR/LT
frontier expansion, bitset popcount / marginal-gain scans, and the
sample-store index scatters — as compiled typed loops instead of
NumPy dispatch chains.  This package owns the policy around that
promise:

* **Detection.**  Numba is an *optional* dependency
  (``pip install repro-oipa[native]``).  :func:`compiled` reports
  whether the compiled tier is actually available; it is the single
  flag every dispatch site consults, and tests monkeypatch
  ``repro.native.COMPILED`` to exercise both sides without installing
  or uninstalling anything.
* **Graceful fallback.**  When Numba is not importable,
  ``check_backend("native")`` resolves to ``"batch"`` and
  :func:`warn_fallback_once` emits one :class:`RuntimeWarning` per
  process — the run proceeds on the NumPy kernels, bit-identical by
  the tier contract, just slower.
* **The shim.**  :data:`njit` is Numba's decorator when available and
  the identity function otherwise, so the kernels in
  :mod:`repro.native.kernels` are importable — and unit-testable, as
  plain Python loops — on machines without a compiler.  Every kernel
  is written in the nopython subset *and* replicates its NumPy
  counterpart's arithmetic exactly (same draw order, same sequential
  float accumulation, integer-exact scatters), which is what makes
  ``native`` bit-identical to ``batch`` whether or not it actually
  compiled.
"""

from __future__ import annotations

import warnings

__all__ = [
    "COMPILED",
    "NUMBA_AVAILABLE",
    "compiled",
    "njit",
    "reset_fallback_warning",
    "warn_fallback_once",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _numba_njit

    def njit(*args, **kwargs):
        """``numba.njit`` with on-disk caching on by default."""
        kwargs.setdefault("cache", True)
        return _numba_njit(*args, **kwargs)

    NUMBA_AVAILABLE = True
except ImportError:  # the shim: kernels run as plain Python loops

    def njit(*args, **kwargs):
        """Identity decorator standing in for ``numba.njit``."""
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def wrap(fn):
            return fn

        return wrap

    NUMBA_AVAILABLE = False

#: Is the compiled tier live?  Initialised from the import probe;
#: monkeypatched by tests to force either side of every dispatch
#: (the kernels themselves behave identically either way — compiling
#: only changes their speed, never their output).
COMPILED = NUMBA_AVAILABLE


def compiled() -> bool:
    """Whether ``backend="native"`` has a compiler behind it.

    Read at call time (never cached by consumers) so monkeypatching
    :data:`COMPILED` flips every dispatch site at once.
    """
    return COMPILED


_warned_fallback = False


def warn_fallback_once() -> None:
    """One :class:`RuntimeWarning` per process for the native→batch fall."""
    global _warned_fallback
    if _warned_fallback:
        return
    _warned_fallback = True
    warnings.warn(
        'backend="native" requested but numba is not importable; '
        'falling back to the "batch" NumPy kernels (bit-identical, '
        "slower).  Install the compiled tier with "
        "`pip install repro-oipa[native]`.",
        RuntimeWarning,
        stacklevel=3,
    )


def reset_fallback_warning() -> None:
    """Re-arm :func:`warn_fallback_once` (tests only)."""
    global _warned_fallback
    _warned_fallback = False
