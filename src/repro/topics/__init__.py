"""Topic machinery: campaign pieces, topic models, influence learning."""

from repro.topics.distributions import Campaign, Piece, uniform_piece, unit_piece
from repro.topics.action_log import (
    Action,
    ActionLog,
    generate_action_log,
)
from repro.topics.tic import learn_tic_probabilities
from repro.topics.lda import LdaModel, fit_lda
from repro.topics.fields import assign_field_topics, venue_topic_profiles

__all__ = [
    "Piece",
    "Campaign",
    "unit_piece",
    "uniform_piece",
    "Action",
    "ActionLog",
    "generate_action_log",
    "learn_tic_probabilities",
    "LdaModel",
    "fit_lda",
    "assign_field_topics",
    "venue_topic_profiles",
]
