"""Latent Dirichlet Allocation via collapsed Gibbs sampling.

The paper's ``tweet`` pipeline "consider[s] all hashtags of an individual
user as a document and appl[ies] LDA [5] on all the documents to obtain
the topic distribution of each user" (Sec. VI-A).  This module supplies
that substrate: a self-contained collapsed Gibbs sampler (Griffiths &
Steyvers 2004) suitable for the short hashtag documents involved.

The implementation keeps the three canonical count matrices
(``doc_topic``, ``topic_word``, ``topic_totals``) and resamples each
token's topic from the standard collapsed conditional

    P(z_i = k | rest) ∝ (n_dk + alpha) * (n_kw + beta) / (n_k + V*beta)

No external ML dependency is used; ``numpy`` only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ParameterError, TopicError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["LdaModel", "fit_lda", "infer_document_topics"]


@dataclass
class LdaModel:
    """A fitted LDA model.

    Attributes
    ----------
    doc_topic:
        ``(num_docs, num_topics)`` posterior-mean document-topic
        distributions (rows sum to 1).
    topic_word:
        ``(num_topics, vocab_size)`` posterior-mean topic-word
        distributions (rows sum to 1).
    log_likelihood_trace:
        Per-sweep joint log-likelihood (up to a constant), useful for
        convergence checks in tests.
    """

    num_topics: int
    vocab_size: int
    alpha: float
    beta: float
    doc_topic: np.ndarray
    topic_word: np.ndarray
    log_likelihood_trace: list[float] = field(default_factory=list)

    def document_topics(self, doc: int) -> np.ndarray:
        """Topic distribution of one document."""
        return self.doc_topic[doc]

    def top_words(self, topic: int, count: int = 10) -> np.ndarray:
        """Vocabulary ids of the most probable words in ``topic``."""
        if not (0 <= topic < self.num_topics):
            raise TopicError(f"topic {topic} outside [0, {self.num_topics})")
        return np.argsort(self.topic_word[topic])[::-1][:count]


def fit_lda(
    documents: list[list[int]],
    num_topics: int,
    vocab_size: int,
    *,
    alpha: float = 0.1,
    beta: float = 0.01,
    sweeps: int = 100,
    burn_in: int = 50,
    seed=None,
) -> LdaModel:
    """Fit LDA on integer-token documents with collapsed Gibbs sampling.

    Parameters
    ----------
    documents:
        Each document is a list of vocabulary ids (hashtag ids for the
        tweet pipeline).  Empty documents are allowed and receive a
        uniform topic distribution.
    num_topics, vocab_size:
        Model dimensions.
    alpha, beta:
        Symmetric Dirichlet hyper-parameters (document-topic and
        topic-word respectively).
    sweeps, burn_in:
        Total Gibbs sweeps and how many initial sweeps to discard before
        averaging posterior estimates.
    """
    num_topics = check_positive_int("num_topics", num_topics)
    vocab_size = check_positive_int("vocab_size", vocab_size)
    check_positive("alpha", alpha)
    check_positive("beta", beta)
    sweeps = check_positive_int("sweeps", sweeps)
    if burn_in < 0 or burn_in >= sweeps:
        raise ParameterError(
            f"burn_in must lie in [0, sweeps), got {burn_in} with sweeps={sweeps}"
        )
    rng = as_generator(seed)
    num_docs = len(documents)

    # Flatten the corpus into parallel token arrays.
    doc_ids: list[int] = []
    words: list[int] = []
    for d, doc in enumerate(documents):
        for w in doc:
            if not (0 <= w < vocab_size):
                raise TopicError(f"word id {w} outside [0, {vocab_size})")
            doc_ids.append(d)
            words.append(int(w))
    doc_ids_arr = np.asarray(doc_ids, dtype=np.int64)
    words_arr = np.asarray(words, dtype=np.int64)
    num_tokens = words_arr.size

    assignments = rng.integers(0, num_topics, size=num_tokens)
    doc_topic = np.zeros((num_docs, num_topics), dtype=np.int64)
    topic_word = np.zeros((num_topics, vocab_size), dtype=np.int64)
    topic_totals = np.zeros(num_topics, dtype=np.int64)
    np.add.at(doc_topic, (doc_ids_arr, assignments), 1)
    np.add.at(topic_word, (assignments, words_arr), 1)
    np.add.at(topic_totals, assignments, 1)

    doc_topic_acc = np.zeros((num_docs, num_topics), dtype=np.float64)
    topic_word_acc = np.zeros((num_topics, vocab_size), dtype=np.float64)
    samples_kept = 0
    trace: list[float] = []
    v_beta = vocab_size * beta

    for sweep in range(sweeps):
        for i in range(num_tokens):
            d, w, k = doc_ids_arr[i], words_arr[i], assignments[i]
            doc_topic[d, k] -= 1
            topic_word[k, w] -= 1
            topic_totals[k] -= 1
            weights = (
                (doc_topic[d] + alpha)
                * (topic_word[:, w] + beta)
                / (topic_totals + v_beta)
            )
            weights_sum = weights.sum()
            k_new = int(np.searchsorted(np.cumsum(weights), rng.random() * weights_sum))
            k_new = min(k_new, num_topics - 1)
            assignments[i] = k_new
            doc_topic[d, k_new] += 1
            topic_word[k_new, w] += 1
            topic_totals[k_new] += 1
        trace.append(_joint_log_likelihood(doc_topic, topic_word, alpha, beta))
        if sweep >= burn_in:
            doc_topic_acc += doc_topic
            topic_word_acc += topic_word
            samples_kept += 1

    if samples_kept == 0:  # pragma: no cover - guarded by burn_in check
        raise ParameterError("no post-burn-in samples retained")
    dt = (doc_topic_acc / samples_kept) + alpha
    tw = (topic_word_acc / samples_kept) + beta
    dt /= dt.sum(axis=1, keepdims=True)
    tw /= tw.sum(axis=1, keepdims=True)
    return LdaModel(
        num_topics=num_topics,
        vocab_size=vocab_size,
        alpha=alpha,
        beta=beta,
        doc_topic=dt,
        topic_word=tw,
        log_likelihood_trace=trace,
    )


def infer_document_topics(
    model: LdaModel,
    document: list[int],
    *,
    iterations: int = 20,
) -> np.ndarray:
    """Fold a held-out document into a fitted model (no resampling).

    Uses iterated conditional expectations: token responsibilities
    ``q_w ∝ theta * phi[:, w]`` and ``theta ∝ alpha + sum_w q_w``,
    alternated to a fixed point.  This is how the large ``tweet``-like
    corpus assigns per-user topics after LDA is fitted on a manageable
    sample — the standard fit-on-sample / fold-in-the-rest practice.
    """
    if iterations < 1:
        raise ParameterError(f"iterations must be >= 1, got {iterations}")
    for w in document:
        if not (0 <= w < model.vocab_size):
            raise TopicError(f"word id {w} outside [0, {model.vocab_size})")
    theta = np.full(model.num_topics, 1.0 / model.num_topics)
    if not document:
        return theta
    word_probs = model.topic_word[:, document]  # (topics, tokens)
    for _ in range(iterations):
        q = word_probs * theta[:, None]
        q_sum = q.sum(axis=0, keepdims=True)
        q_sum[q_sum == 0.0] = 1.0
        q /= q_sum
        theta = model.alpha + q.sum(axis=1)
        theta /= theta.sum()
    return theta


def _joint_log_likelihood(
    doc_topic: np.ndarray, topic_word: np.ndarray, alpha: float, beta: float
) -> float:
    """Joint log-likelihood up to constants, for convergence monitoring."""
    from scipy.special import gammaln

    ll = 0.0
    ll += float(np.sum(gammaln(doc_topic + alpha)))
    ll -= float(np.sum(gammaln(doc_topic.sum(axis=1) + alpha * doc_topic.shape[1])))
    ll += float(np.sum(gammaln(topic_word + beta)))
    ll -= float(np.sum(gammaln(topic_word.sum(axis=1) + beta * topic_word.shape[1])))
    return ll
