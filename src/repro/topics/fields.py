"""Research-field topic assignment (the ``dblp`` pipeline).

The paper's dblp dataset has no action log, so the authors "follow the
settings in [9] to use research fields as topics and compute ``p(e|z)`` of
two authors by categorizing their related conferences using the topics".
We reproduce the same recipe for the synthetic co-author graph:

1. every author gets a *venue profile* — a distribution over research
   fields, concentrated on a primary field (authors mostly publish in one
   community);
2. the influence of edge ``(u, v)`` on field ``z`` combines how much both
   endpoints publish in ``z`` and the inverse popularity of ``v`` (a
   standard weighted-cascade style normalisation, so prolific authors are
   not trivially activated by every neighbour).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError, TopicError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["venue_topic_profiles", "assign_field_topics"]


def venue_topic_profiles(
    num_authors: int,
    num_fields: int,
    *,
    concentration: float = 0.3,
    seed=None,
) -> np.ndarray:
    """Sample per-author research-field distributions.

    Each author draws a primary field uniformly and a Dirichlet profile
    sharply peaked there (smaller ``concentration`` = sharper peak),
    reflecting that most authors publish predominantly in one community.

    Returns an array of shape ``(num_authors, num_fields)`` whose rows sum
    to 1.
    """
    num_authors = check_positive_int("num_authors", num_authors)
    num_fields = check_positive_int("num_fields", num_fields)
    check_positive("concentration", concentration)
    rng = as_generator(seed)
    primary = rng.integers(0, num_fields, size=num_authors)
    alphas = np.full((num_authors, num_fields), concentration)
    alphas[np.arange(num_authors), primary] += 3.0
    profiles = np.empty((num_authors, num_fields), dtype=np.float64)
    for i in range(num_authors):
        profiles[i] = rng.dirichlet(alphas[i])
    return profiles


def assign_field_topics(
    src: np.ndarray,
    dst: np.ndarray,
    author_profiles: np.ndarray,
    in_degrees: np.ndarray,
    *,
    scale: float = 1.0,
    sparsity_floor: float = 0.01,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Derive sparse per-edge ``p(e|z)`` from author venue profiles.

    For edge ``u -> v`` and field ``z``::

        p(e|z) = scale * sqrt(profile[u, z] * profile[v, z]) / in_degree(v)

    The geometric mean rewards *shared* fields (a tax-policy author rarely
    influences a systems author), and dividing by ``v``'s in-degree is the
    weighted-cascade normalisation that keeps total incoming influence
    bounded.  Entries below ``sparsity_floor`` (pre-normalisation) are
    dropped, keeping the per-edge vectors sparse.

    Returns the ``(tp_ptr, tp_topics, tp_probs)`` CSR triple for
    :meth:`repro.graph.digraph.TopicGraph.from_arrays`.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ParameterError("src and dst must be parallel")
    author_profiles = np.asarray(author_profiles, dtype=np.float64)
    if author_profiles.ndim != 2:
        raise TopicError("author_profiles must be 2-D")
    check_positive("scale", scale)
    if not (0.0 <= sparsity_floor < 1.0):
        raise ParameterError(
            f"sparsity_floor must lie in [0, 1), got {sparsity_floor}"
        )
    in_degrees = np.asarray(in_degrees, dtype=np.float64)
    m = src.size
    tp_ptr = np.zeros(m + 1, dtype=np.int64)
    topics: list[np.ndarray] = []
    probs: list[np.ndarray] = []
    for e in range(m):
        u, v = src[e], dst[e]
        affinity = np.sqrt(author_profiles[u] * author_profiles[v])
        keep = affinity >= sparsity_floor
        if not np.any(keep):
            keep = affinity == affinity.max()
        z = np.flatnonzero(keep)
        denom = max(in_degrees[v], 1.0)
        p = np.clip(scale * affinity[z] / denom, 0.0, 1.0)
        topics.append(z.astype(np.int64))
        probs.append(p)
        tp_ptr[e + 1] = tp_ptr[e] + z.size
    tp_topics = (
        np.concatenate(topics) if topics else np.zeros(0, dtype=np.int64)
    )
    tp_probs = (
        np.concatenate(probs) if probs else np.zeros(0, dtype=np.float64)
    )
    return tp_ptr, tp_topics, tp_probs
