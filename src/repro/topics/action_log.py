"""Action logs: the raw material for influence learning.

The paper's ``lastfm`` dataset couples a social graph with "an action log
which records users' activities of voting items" — i.e. a sequence of
``(user, item, time)`` records — from which topic-aware influence
probabilities are learned with the TIC model [3].  We reproduce that
pipeline end-to-end: :func:`generate_action_log` simulates cascades from a
hidden ground-truth :class:`~repro.graph.digraph.TopicGraph`, and
:mod:`repro.topics.tic` re-learns edge probabilities from the log alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError, TopicError
from repro.graph.digraph import TopicGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["Action", "ActionLog", "generate_action_log"]


@dataclass(frozen=True, order=True)
class Action:
    """One log record: ``user`` acted on ``item`` at ``time``."""

    time: float
    user: int
    item: int


class ActionLog:
    """An immutable, time-sorted collection of actions.

    Stored column-wise (numpy arrays) so learners can scan it without
    object overhead; the :meth:`__iter__` view yields :class:`Action`
    records for readability in tests and examples.
    """

    __slots__ = ("users", "items", "times", "num_users", "num_items")

    def __init__(
        self,
        users: np.ndarray,
        items: np.ndarray,
        times: np.ndarray,
        *,
        num_users: int,
        num_items: int,
    ) -> None:
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        if not (users.shape == items.shape == times.shape):
            raise ParameterError("users/items/times arrays must be parallel")
        if users.size:
            if users.min() < 0 or users.max() >= num_users:
                raise ParameterError("action user id outside range")
            if items.min() < 0 or items.max() >= num_items:
                raise ParameterError("action item id outside range")
        order = np.argsort(times, kind="stable")
        self.users = users[order]
        self.items = items[order]
        self.times = times[order]
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        for arr in (self.users, self.items, self.times):
            arr.setflags(write=False)

    def __len__(self) -> int:
        return int(self.users.size)

    def __iter__(self):
        for t, u, i in zip(self.times, self.users, self.items):
            yield Action(time=float(t), user=int(u), item=int(i))

    def item_actions(self, item: int) -> tuple[np.ndarray, np.ndarray]:
        """``(users, times)`` of the actions on one item, time-sorted."""
        mask = self.items == item
        return self.users[mask], self.times[mask]

    def actions_per_item(self) -> np.ndarray:
        """Number of actions recorded for each item."""
        counts = np.zeros(self.num_items, dtype=np.int64)
        np.add.at(counts, self.items, 1)
        return counts

    def __repr__(self) -> str:
        return (
            f"ActionLog({len(self)} actions, {self.num_users} users, "
            f"{self.num_items} items)"
        )


def generate_action_log(
    graph: TopicGraph,
    item_topics: np.ndarray,
    *,
    seeds_per_item: int = 3,
    time_jitter: float = 0.1,
    seed=None,
) -> ActionLog:
    """Simulate TIC cascades to produce a synthetic action log.

    For each item ``i`` with topic distribution ``item_topics[i]``, a few
    uniformly-random users act spontaneously at time 0; the item then
    propagates along each edge ``e`` independently with probability
    ``p(t_i, e)`` (Sec. III-A).  An activated user's action time is its
    BFS depth plus uniform jitter, giving the strictly-increasing
    timestamps the TIC learner's "v acted after u" test needs.

    The returned log, together with the *structure* of ``graph`` (but not
    its probabilities), is what :func:`repro.topics.tic.
    learn_tic_probabilities` consumes — mirroring how the paper learns
    ``p(e|z)`` for ``lastfm`` from its real log.
    """
    item_topics = np.asarray(item_topics, dtype=np.float64)
    if item_topics.ndim != 2 or item_topics.shape[1] != graph.num_topics:
        raise TopicError(
            f"item_topics must have shape (num_items, {graph.num_topics})"
        )
    check_positive_int("seeds_per_item", seeds_per_item)
    if time_jitter < 0 or time_jitter >= 0.5:
        raise ParameterError(
            f"time_jitter must lie in [0, 0.5) to preserve depth order, "
            f"got {time_jitter}"
        )
    rng = as_generator(seed)
    num_items = item_topics.shape[0]
    users: list[int] = []
    items: list[int] = []
    times: list[float] = []
    for item in range(num_items):
        probs = graph.piece_probabilities(item_topics[item])
        seeds = rng.choice(graph.n, size=min(seeds_per_item, graph.n), replace=False)
        activated = {int(s): 0 for s in seeds}
        frontier = list(activated)
        depth = 0
        while frontier:
            depth += 1
            next_frontier: list[int] = []
            for u in frontier:
                lo, hi = graph.out_ptr[u], graph.out_ptr[u + 1]
                targets = graph.out_dst[lo:hi]
                if targets.size == 0:
                    continue
                draws = rng.random(targets.size)
                for v, draw, e in zip(targets, draws, range(lo, hi)):
                    v = int(v)
                    if v in activated or draw >= probs[e]:
                        continue
                    activated[v] = depth
                    next_frontier.append(v)
            frontier = next_frontier
        for user, d in activated.items():
            users.append(user)
            items.append(item)
            jitter = float(rng.uniform(0, time_jitter)) if time_jitter else 0.0
            times.append(d + jitter)
    return ActionLog(
        np.asarray(users, dtype=np.int64),
        np.asarray(items, dtype=np.int64),
        np.asarray(times, dtype=np.float64),
        num_users=graph.n,
        num_items=num_items,
    )
