"""Campaign pieces and their topic distributions.

A *piece* (Sec. III-B) is one facet of a multifaceted campaign,
``t = (t_1, ..., t_|Z|)`` with ``t_z`` the probability that the piece is
about topic ``z``.  A *campaign* ``T = {t_1, ..., t_l}`` bundles ``l``
pieces.  The experiments (Sec. VI-A) generate each piece's topic vector
"by uniformly sampling a non-zero topic dimension" — i.e. unit pieces —
which :meth:`Campaign.sample_unit` reproduces.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import TopicError
from repro.utils.rng import as_generator

__all__ = ["Piece", "Campaign", "unit_piece", "uniform_piece"]


class Piece:
    """One viral piece: a name plus a normalised topic distribution."""

    __slots__ = ("name", "vector")

    def __init__(self, name: str, vector: np.ndarray) -> None:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1:
            raise TopicError(f"piece vector must be 1-D, got shape {vector.shape}")
        if np.any(vector < 0) or np.any(~np.isfinite(vector)):
            raise TopicError("piece vector entries must be finite and >= 0")
        total = float(vector.sum())
        if total <= 0:
            raise TopicError("piece vector must have positive mass")
        self.name = str(name)
        self.vector = vector / total
        self.vector.setflags(write=False)

    @property
    def num_topics(self) -> int:
        """Dimensionality ``|Z|`` of the topic space."""
        return int(self.vector.size)

    def support(self) -> np.ndarray:
        """Indices of topics with non-zero probability."""
        return np.flatnonzero(self.vector)

    def __repr__(self) -> str:
        nz = self.support()
        body = ", ".join(f"z{int(z)}:{self.vector[z]:.3g}" for z in nz[:4])
        if nz.size > 4:
            body += ", ..."
        return f"Piece({self.name!r}, {body})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Piece):
            return NotImplemented
        return self.name == other.name and np.allclose(self.vector, other.vector)

    def __hash__(self) -> int:
        return hash((self.name, self.vector.tobytes()))


def unit_piece(topic: int, num_topics: int, *, name: str | None = None) -> Piece:
    """A piece entirely about one topic (the experiments' piece shape)."""
    if not (0 <= topic < num_topics):
        raise TopicError(f"topic {topic} outside [0, {num_topics})")
    vec = np.zeros(num_topics, dtype=np.float64)
    vec[topic] = 1.0
    return Piece(name if name is not None else f"t[z{topic}]", vec)


def uniform_piece(num_topics: int, *, name: str = "t[uniform]") -> Piece:
    """A piece spread evenly over every topic."""
    if num_topics < 1:
        raise TopicError(f"need at least one topic, got {num_topics}")
    return Piece(name, np.full(num_topics, 1.0 / num_topics))


class Campaign:
    """A multifaceted campaign ``T``: an ordered collection of pieces.

    Pieces are indexed ``0 .. l-1``; assignment plans address seed sets by
    these indices.  The campaign is immutable.
    """

    __slots__ = ("pieces", "num_topics")

    def __init__(self, pieces: Sequence[Piece]) -> None:
        pieces = list(pieces)
        if not pieces:
            raise TopicError("a campaign needs at least one piece")
        dims = {p.num_topics for p in pieces}
        if len(dims) != 1:
            raise TopicError(f"pieces disagree on topic dimensionality: {sorted(dims)}")
        names = [p.name for p in pieces]
        if len(set(names)) != len(names):
            raise TopicError(f"duplicate piece names: {names}")
        self.pieces: tuple[Piece, ...] = tuple(pieces)
        self.num_topics = pieces[0].num_topics

    @classmethod
    def from_vectors(
        cls, vectors: Iterable[np.ndarray], *, names: Sequence[str] | None = None
    ) -> "Campaign":
        """Build a campaign from raw topic vectors."""
        vectors = list(vectors)
        if names is None:
            names = [f"t{j}" for j in range(len(vectors))]
        if len(names) != len(vectors):
            raise TopicError("names and vectors must align")
        return cls([Piece(nm, v) for nm, v in zip(names, vectors)])

    @classmethod
    def sample_unit(
        cls, num_pieces: int, num_topics: int, *, seed=None
    ) -> "Campaign":
        """Sample ``num_pieces`` unit pieces on distinct uniform topics.

        Reproduces the paper's workload generator: "for each viral piece,
        we generate the topic vector by uniformly sampling a non-zero
        topic dimension" (Sec. VI-A).  Topics are drawn without
        replacement when possible so pieces stay distinct.
        """
        if num_pieces < 1:
            raise TopicError(f"need at least one piece, got {num_pieces}")
        rng = as_generator(seed)
        replace = num_pieces > num_topics
        topics = rng.choice(num_topics, size=num_pieces, replace=replace)
        return cls(
            [
                unit_piece(int(z), num_topics, name=f"t{j}[z{int(z)}]")
                for j, z in enumerate(topics)
            ]
        )

    @property
    def num_pieces(self) -> int:
        """Number of pieces ``l``."""
        return len(self.pieces)

    def vectors(self) -> list[np.ndarray]:
        """Topic vectors of every piece, in piece order."""
        return [p.vector for p in self.pieces]

    def fingerprint(self) -> str:
        """Stable content fingerprint of this campaign (sha256 hex).

        Hashes the piece count, topic dimensionality, and every piece's
        normalised topic vector, in piece order.  Piece *names* are
        deliberately excluded — they are labels, not inputs to sampling
        or solving — so renaming a piece does not invalidate cached
        artifacts (see CACHING.md).
        """
        h = hashlib.sha256()
        h.update(
            f"campaign:v1:l={self.num_pieces}:topics={self.num_topics}:".encode()
        )
        for piece in self.pieces:
            h.update(piece.vector.tobytes())
        return h.hexdigest()

    def __len__(self) -> int:
        return len(self.pieces)

    def __getitem__(self, index: int) -> Piece:
        return self.pieces[index]

    def __iter__(self):
        return iter(self.pieces)

    def __repr__(self) -> str:
        return f"Campaign(l={self.num_pieces}, topics={self.num_topics})"
