"""Topic-aware Influence-Cascade (TIC) probability learning.

The paper assumes topic-aware influence probabilities ``p(e|z)`` "can be
learned from logs of past propagation activities [31], [12], [3]" and uses
the TIC model of Barbieri et al. [3] for the ``lastfm`` dataset.  This
module implements that learning stage:

* a **frequentist estimator** in the style of Goyal et al. [12]: for every
  edge ``(u, v)`` the success/trial ratio of propagation events, weighted
  per topic by the item's topic distribution;
* an **EM refinement** (the TIC fitting loop) for the case where item
  topic distributions are *unknown*: the E-step computes each item's topic
  responsibility from the likelihood of its observed cascade under the
  current ``p(e|z)``, and the M-step re-estimates ``p(e|z)`` with those
  responsibilities as soft item-topic weights.

A propagation *trial* of ``(u, v)`` on item ``i`` exists when ``u`` acted
on ``i`` and ``v`` had the opportunity to see it (the edge exists); it is
a *success* when ``v`` acted strictly later within ``window`` time units —
the standard credit rule for cascade data.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ParameterError, TopicError
from repro.graph.digraph import TopicGraph
from repro.topics.action_log import ActionLog
from repro.utils.rng import as_generator

__all__ = ["learn_tic_probabilities", "extract_propagation_events"]


def extract_propagation_events(
    edges: set[tuple[int, int]],
    log: ActionLog,
    *,
    window: float = math.inf,
) -> tuple[dict[tuple[int, int], list[int]], dict[tuple[int, int], list[int]]]:
    """Scan the log once and bucket per-edge successes and trials by item.

    Returns ``(successes, trials)`` where each maps an edge ``(u, v)`` to
    the list of item ids on which the event occurred.  ``trials`` counts
    every item ``u`` acted on while the edge ``(u, v)`` exists; the subset
    where ``v`` also acted later (within ``window``) are the successes.
    """
    if window <= 0:
        raise ParameterError(f"window must be positive, got {window}")
    successes: dict[tuple[int, int], list[int]] = {}
    trials: dict[tuple[int, int], list[int]] = {}
    out_neighbors: dict[int, list[int]] = {}
    for u, v in edges:
        out_neighbors.setdefault(u, []).append(v)
    for item in range(log.num_items):
        users, times = log.item_actions(item)
        if users.size == 0:
            continue
        acted_at = {int(u): float(t) for u, t in zip(users, times)}
        for u, t_u in acted_at.items():
            for v in out_neighbors.get(u, ()):
                key = (u, v)
                trials.setdefault(key, []).append(item)
                t_v = acted_at.get(v)
                if t_v is not None and t_u < t_v <= t_u + window:
                    successes.setdefault(key, []).append(item)
    return successes, trials


def learn_tic_probabilities(
    n: int,
    edges: list[tuple[int, int]],
    log: ActionLog,
    num_topics: int,
    *,
    item_topics: np.ndarray | None = None,
    em_iterations: int = 15,
    window: float = math.inf,
    smoothing: float = 0.5,
    min_probability: float = 1e-4,
    seed=None,
) -> TopicGraph:
    """Learn a :class:`TopicGraph` with ``p(e|z)`` estimated from a log.

    Parameters
    ----------
    n, edges:
        The social graph *structure* (who can influence whom).  Edge
        probabilities are what we learn; they are not inputs.
    log:
        The observed actions.
    num_topics:
        Topic-space dimensionality ``|Z|``.
    item_topics:
        Optional known per-item topic distributions of shape
        ``(num_items, num_topics)``.  When given, learning is a single
        weighted-frequency pass (supervised TIC).  When ``None``, the item
        topics are latent and fitted by EM.
    em_iterations:
        EM rounds when ``item_topics`` is ``None``.
    window:
        Max delay for crediting a propagation.
    smoothing:
        Laplace pseudo-counts added to success/trial totals so edges with
        few observations do not collapse to 0/0.
    min_probability:
        Edges whose every learned entry falls below the sparsity floor
        keep one entry at this value (their argmax topic, or a stable
        pseudo-random topic when no success was ever observed) so the
        graph remains structurally connected for downstream samplers.

    Returns
    -------
    TopicGraph
        The input structure annotated with learned sparse ``p(e|z)``.
    """
    if num_topics < 1:
        raise TopicError(f"need at least one topic, got {num_topics}")
    if smoothing < 0:
        raise ParameterError(f"smoothing must be >= 0, got {smoothing}")
    if not (0 < min_probability < 1):
        raise ParameterError(
            f"min_probability must lie in (0, 1), got {min_probability}"
        )
    edge_set = set((int(u), int(v)) for u, v in edges)
    if len(edge_set) != len(edges):
        raise ParameterError("duplicate edges in structure list")
    successes, trials = extract_propagation_events(edge_set, log, window=window)

    if item_topics is not None:
        gamma = np.asarray(item_topics, dtype=np.float64)
        if gamma.shape != (log.num_items, num_topics):
            raise TopicError(
                f"item_topics must have shape ({log.num_items}, {num_topics})"
            )
        row_sums = gamma.sum(axis=1, keepdims=True)
        if np.any(row_sums <= 0):
            raise TopicError("every item needs positive topic mass")
        gamma = gamma / row_sums
        probs = _m_step(
            edge_set, successes, trials, gamma, num_topics, smoothing, min_probability
        )
        return _build_graph(
            n, edge_set, probs, num_topics, min_probability=min_probability
        )

    # Latent item topics: EM.
    rng = as_generator(seed)
    gamma = rng.dirichlet(np.ones(num_topics), size=log.num_items)
    probs = _m_step(
        edge_set, successes, trials, gamma, num_topics, smoothing, min_probability
    )
    for _ in range(em_iterations):
        gamma = _e_step(successes, trials, probs, log.num_items, num_topics, gamma)
        probs = _m_step(
            edge_set, successes, trials, gamma, num_topics, smoothing, min_probability
        )
    return _build_graph(
        n, edge_set, probs, num_topics, min_probability=min_probability
    )


def _m_step(
    edge_set: set[tuple[int, int]],
    successes: dict[tuple[int, int], list[int]],
    trials: dict[tuple[int, int], list[int]],
    gamma: np.ndarray,
    num_topics: int,
    smoothing: float,
    min_probability: float,
) -> dict[tuple[int, int], np.ndarray]:
    """Per-edge, per-topic weighted success/trial ratios."""
    probs: dict[tuple[int, int], np.ndarray] = {}
    for edge in edge_set:
        trial_items = trials.get(edge)
        if not trial_items:
            # No evidence at all: a sparse floor on one (stable) topic —
            # a dense uniform floor would make every no-data edge look
            # active on every topic, destroying the learned sparsity.
            fallback = np.zeros(num_topics)
            fallback[(edge[0] + edge[1]) % num_topics] = min_probability
            probs[edge] = fallback
            continue
        succ_items = successes.get(edge, [])
        trial_mass = gamma[trial_items].sum(axis=0)
        succ_mass = gamma[succ_items].sum(axis=0) if succ_items else 0.0
        # Smoothing only stabilises the denominator; adding mass to the
        # numerator would paint low-evidence probability onto *every*
        # topic and destroy the learned sparsity.
        p = succ_mass / (trial_mass + smoothing)
        probs[edge] = np.clip(p, 0.0, 1.0)
    return probs


def _e_step(
    successes: dict[tuple[int, int], list[int]],
    trials: dict[tuple[int, int], list[int]],
    probs: dict[tuple[int, int], np.ndarray],
    num_items: int,
    num_topics: int,
    prev_gamma: np.ndarray,
) -> np.ndarray:
    """Item-topic responsibilities from per-edge cascade likelihoods.

    For item ``i`` and topic ``z`` the log-likelihood accumulates
    ``log p(e|z)`` over successful propagations of ``i`` and
    ``log (1 - p(e|z))`` over failed trials, plus the log-prior (current
    mean responsibility).  Softmax over topics yields the new ``gamma``.
    """
    log_like = np.zeros((num_items, num_topics), dtype=np.float64)
    for edge, items in trials.items():
        p = probs[edge]
        log_fail = np.log1p(-np.minimum(p, 1.0 - 1e-12))
        for item in items:
            log_like[item] += log_fail
    for edge, items in successes.items():
        p = probs[edge]
        log_succ = np.log(np.maximum(p, 1e-12))
        log_fail = np.log1p(-np.minimum(p, 1.0 - 1e-12))
        for item in items:
            # Replace the failure term added above with the success term.
            log_like[item] += log_succ - log_fail
    prior = prev_gamma.mean(axis=0)
    prior = np.maximum(prior, 1e-12)
    log_like += np.log(prior)
    log_like -= log_like.max(axis=1, keepdims=True)
    gamma = np.exp(log_like)
    gamma /= gamma.sum(axis=1, keepdims=True)
    return gamma


def _build_graph(
    n: int,
    edge_set: set[tuple[int, int]],
    probs: dict[tuple[int, int], np.ndarray],
    num_topics: int,
    *,
    sparsity_floor: float = 1e-3,
    min_probability: float = 1e-4,
) -> TopicGraph:
    """Assemble the learned probabilities into a sparse TopicGraph.

    Entries below ``sparsity_floor`` are dropped; an edge whose every
    entry was dropped keeps one floored entry (its argmax topic, or a
    stable pseudo-random topic when all mass is zero) so the graph stays
    sparse like its real-world counterparts while every edge remains
    structurally alive.
    """
    triples = []
    for u, v in sorted(edge_set):
        p = probs[(u, v)]
        keep = np.flatnonzero(p >= sparsity_floor)
        if keep.size:
            entries = {int(z): float(p[z]) for z in keep}
        elif p.max() > 0:
            z = int(np.argmax(p))
            entries = {z: float(max(p[z], min_probability))}
        else:
            entries = {(u + v) % num_topics: min_probability}
        triples.append((u, v, entries))
    return TopicGraph.from_edges(n, num_topics, triples)
