"""RIS-style influence maximisation (the [32]/[33] substrate).

State-of-the-art IM algorithms (TIM+/IMM, the paper's baselines' engine)
reduce seed selection to *maximum coverage over RR sets*: after drawing
``theta`` random RR sets, the seed set maximising the number of covered
sets maximises (up to sampling error) the expected spread, and greedy max
coverage carries the (1 − 1/e) guarantee.  This module implements that
selection step — both against a single piece of an
:class:`~repro.sampling.mrr.MRRCollection` and as a standalone pipeline
(sample + select) for homogeneous influence graphs.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.bitset import SampleBitset
from repro.core.coverage import coverage_gains
from repro.diffusion.projection import PieceGraph
from repro.exceptions import SolverError
from repro.sampling.mrr import MRRCollection
from repro.sampling.rr import ReverseReachableSampler
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["max_coverage_seeds", "ris_influence_maximization"]


def max_coverage_seeds(
    mrr: MRRCollection,
    piece: int,
    pool: np.ndarray,
    k: int,
    *,
    lazy: bool = True,
) -> tuple[list[int], float]:
    """Greedy max coverage of one piece's RR sets, seeds from ``pool``.

    Both variants drive their marginal gains through the batched
    inverted-index kernel (:func:`repro.core.coverage.coverage_gains`):
    the lazy (CELF) path batches the initial full scan — its dominant
    cost — and re-evaluates stale entries on demand; ``lazy=False``
    rescans the whole pool per iteration with one kernel call each.
    The working covered set is a word-packed
    :class:`~repro.core.bitset.SampleBitset` (theta/8 bytes instead of
    theta bools; the final spread is one popcount).  Gains are integer
    counts, so both variants (and the historical per-candidate loop)
    break ties identically — on the first pool position — and select
    the same seed set.

    Returns ``(seeds, spread_estimate)`` where the spread estimate is the
    standard ``n/theta * |covered sets|``.
    """
    check_positive_int("k", k)
    pool = np.asarray(pool, dtype=np.int64)
    if pool.size == 0:
        raise SolverError("empty candidate pool")
    covered = SampleBitset(mrr.theta)

    def commit(v: int) -> None:
        covered.set_many(mrr.samples_containing(piece, int(v)))

    seeds: list[int] = []
    if lazy:
        initial = coverage_gains(mrr, piece, pool, covered)
        heap: list[tuple[int, int, int, int]] = [
            (-int(gain), idx, int(v), 0)
            for idx, (v, gain) in enumerate(zip(pool, initial))
            if gain > 0
        ]
        heapq.heapify(heap)
        while heap and len(seeds) < k:
            neg_gain, idx, v, evaluated_at = heapq.heappop(heap)
            if evaluated_at == len(seeds):
                commit(v)
                seeds.append(v)
                continue
            samples = mrr.samples_containing(piece, v)
            gain = int((~covered.test(samples)).sum()) if samples.size else 0
            if gain > 0:
                heapq.heappush(heap, (-gain, idx, v, len(seeds)))
    else:
        chosen = np.zeros(pool.size, dtype=bool)
        for _ in range(k):
            gains = coverage_gains(mrr, piece, pool, covered)
            gains[chosen] = 0
            best = int(np.argmax(gains))  # ties: first pool position
            if gains[best] <= 0:
                break
            commit(int(pool[best]))
            chosen[best] = True
            seeds.append(int(pool[best]))
    spread = mrr.n / mrr.theta * float(covered.count())
    return seeds, spread


def ris_influence_maximization(
    piece_graph: PieceGraph,
    k: int,
    theta: int,
    *,
    pool: np.ndarray | None = None,
    seed=None,
    runtime=None,
    backend: str | None = None,
    model: str | None = None,
    workers=None,
    executor: str | None = None,
    store=None,
    shard_dir: str | None = None,
    max_resident_bytes: int | None = None,
) -> tuple[list[int], float]:
    """End-to-end RIS IM on a homogeneous influence graph.

    Draws ``theta`` RR sets with uniform roots, then selects ``k`` seeds
    by greedy max coverage.  This is the engine behind the paper's ``IM``
    baseline (run on the flattened graph) and a reference implementation
    for the classical problem.

    Execution policy (sampling backend, diffusion model, parallel
    runtime, sample store) lives on one :class:`repro.runtime.Runtime`
    passed as ``runtime=`` and resolved with the centralized order
    (explicit kwarg > Runtime field > ``REPRO_*`` env > default); the
    per-call execution kwargs are deprecated equivalents kept for
    backward compatibility with bit-identical seed sets.  Under LT the
    graph should be weight-normalised first
    (:func:`repro.diffusion.threshold.normalize_lt_weights`); seed sets
    are identical for every worker count, and disk-store runs match the
    in-RAM store at ``workers >= 1``.

    Returns ``(seeds, spread_estimate)``.
    """
    from repro.diffusion.threshold import LinearThresholdSampler
    from repro.runtime import resolve_runtime
    from repro.sampling.parallel import sample_piece_blocks

    rt = resolve_runtime(
        runtime,
        backend=backend,
        model=model,
        workers=workers,
        executor=executor,
        store=store,
        shard_dir=shard_dir,
        max_resident_bytes=max_resident_bytes,
        seed=seed,
        caller="ris_influence_maximization",
    )
    check_positive_int("k", k)
    check_positive_int("theta", theta)
    rng = as_generator(rt.seed)
    if pool is None:
        pool = np.arange(piece_graph.n, dtype=np.int64)
    model = rt.single_model()
    store_obj = rt.store_for_generate()
    roots = rng.integers(0, piece_graph.n, size=theta)
    pool_width = rt.pool_width
    if store_obj is not None:
        collection = MRRCollection._generate_into_store(
            piece_graph.n,
            [piece_graph],
            (model,),
            roots,
            rng,
            backend=rt.backend,
            workers=pool_width or 1,
            executor=rt.executor,
            store=store_obj,
        )
        return max_coverage_seeds(collection, 0, pool, k)
    if pool_width is not None:
        ((ptr, nodes),) = sample_piece_blocks(
            [piece_graph],
            (model,),
            roots,
            rng,
            backend=rt.backend,
            workers=pool_width,
            executor=rt.executor,
        )
    else:
        if model == "lt":
            sampler = LinearThresholdSampler(piece_graph, backend=rt.backend)
        else:
            sampler = ReverseReachableSampler(piece_graph, backend=rt.backend)
        ptr, nodes = sampler.sample_many(roots, rng)
    collection = MRRCollection(piece_graph.n, roots, [ptr], [nodes])
    return max_coverage_seeds(collection, 0, pool, k)
