"""RIS-style influence maximisation (the [32]/[33] substrate).

State-of-the-art IM algorithms (TIM+/IMM, the paper's baselines' engine)
reduce seed selection to *maximum coverage over RR sets*: after drawing
``theta`` random RR sets, the seed set maximising the number of covered
sets maximises (up to sampling error) the expected spread, and greedy max
coverage carries the (1 − 1/e) guarantee.  This module implements that
selection step — both against a single piece of an
:class:`~repro.sampling.mrr.MRRCollection` and as a standalone pipeline
(sample + select) for homogeneous influence graphs.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.diffusion.projection import PieceGraph
from repro.exceptions import SolverError
from repro.sampling.mrr import MRRCollection
from repro.sampling.rr import ReverseReachableSampler
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["max_coverage_seeds", "ris_influence_maximization"]


def max_coverage_seeds(
    mrr: MRRCollection,
    piece: int,
    pool: np.ndarray,
    k: int,
    *,
    lazy: bool = True,
) -> tuple[list[int], float]:
    """Greedy max coverage of one piece's RR sets, seeds from ``pool``.

    Returns ``(seeds, spread_estimate)`` where the spread estimate is the
    standard ``n/theta * |covered sets|``.
    """
    check_positive_int("k", k)
    pool = np.asarray(pool, dtype=np.int64)
    if pool.size == 0:
        raise SolverError("empty candidate pool")
    covered = np.zeros(mrr.theta, dtype=bool)

    def marginal(v: int) -> int:
        samples = mrr.samples_containing(piece, int(v))
        if samples.size == 0:
            return 0
        return int((~covered[samples]).sum())

    def commit(v: int) -> None:
        samples = mrr.samples_containing(piece, int(v))
        covered[samples] = True

    seeds: list[int] = []
    if lazy:
        heap: list[tuple[int, int, int, int]] = []
        for idx, v in enumerate(pool):
            gain = marginal(int(v))
            if gain > 0:
                heap.append((-gain, idx, int(v), 0))
        heapq.heapify(heap)
        while heap and len(seeds) < k:
            neg_gain, idx, v, evaluated_at = heapq.heappop(heap)
            if evaluated_at == len(seeds):
                commit(v)
                seeds.append(v)
                continue
            gain = marginal(v)
            if gain > 0:
                heapq.heappush(heap, (-gain, idx, v, len(seeds)))
    else:
        chosen: set[int] = set()
        for _ in range(k):
            best_gain, best_v = 0, None
            for v in pool:
                v = int(v)
                if v in chosen:
                    continue
                gain = marginal(v)
                if gain > best_gain:
                    best_gain, best_v = gain, v
            if best_v is None:
                break
            commit(best_v)
            chosen.add(best_v)
            seeds.append(best_v)
    spread = mrr.n / mrr.theta * float(covered.sum())
    return seeds, spread


def ris_influence_maximization(
    piece_graph: PieceGraph,
    k: int,
    theta: int,
    *,
    pool: np.ndarray | None = None,
    seed=None,
    backend: str | None = None,
) -> tuple[list[int], float]:
    """End-to-end RIS IM on a homogeneous influence graph.

    Draws ``theta`` RR sets with uniform roots, then selects ``k`` seeds
    by greedy max coverage.  This is the engine behind the paper's ``IM``
    baseline (run on the flattened graph) and a reference implementation
    for the classical problem.  ``backend`` selects the RR sampling
    engine (``"batch"``/``"python"``, default batch).

    Returns ``(seeds, spread_estimate)``.
    """
    check_positive_int("k", k)
    check_positive_int("theta", theta)
    rng = as_generator(seed)
    if pool is None:
        pool = np.arange(piece_graph.n, dtype=np.int64)
    sampler = ReverseReachableSampler(piece_graph, backend=backend)
    roots = rng.integers(0, piece_graph.n, size=theta)
    ptr, nodes = sampler.sample_many(roots, rng)
    collection = MRRCollection(piece_graph.n, roots, [ptr], [nodes])
    return max_coverage_seeds(collection, 0, pool, k)
