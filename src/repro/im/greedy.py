"""Classical Monte-Carlo greedy IM (Kempe et al. [16]) with CELF [19].

The original greedy influence maximisation evaluates marginal spread by
forward cascade simulation.  It is far slower than RIS selection and
exists here as (a) the historically faithful baseline substrate and
(b) a cross-validation oracle: on small graphs the RIS pipeline and this
simulation-based greedy must pick seed sets of near-identical quality,
which the integration tests assert.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.diffusion.projection import PieceGraph
from repro.diffusion.simulate import simulate_model_cascade
from repro.exceptions import SolverError
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["celf_greedy_im"]


def celf_greedy_im(
    piece_graph: PieceGraph,
    k: int,
    *,
    pool: np.ndarray | None = None,
    rounds: int = 200,
    seed=None,
    runtime=None,
    backend: str | None = None,
    model: str | None = None,
    workers=None,
    executor: str | None = None,
) -> tuple[list[int], float]:
    """Select ``k`` seeds by CELF lazy greedy over simulated spread.

    ``rounds`` cascades are averaged per marginal-spread evaluation; the
    same common-random-numbers generator is reused across evaluations to
    reduce comparison noise.  Execution policy (cascade kernel backend,
    diffusion model, the parallel Monte-Carlo runtime) lives on one
    :class:`repro.runtime.Runtime` passed as ``runtime=`` and resolved
    with the centralized order (explicit kwarg > Runtime field >
    ``REPRO_*`` env > default); the per-call execution kwargs are
    deprecated equivalents kept for backward compatibility.  Under IC
    the backend choice never changes the selected seeds (identical rng
    streams); under LT the masks can differ at last-ulp rounding (see
    :func:`repro.diffusion.threshold.simulate_lt_cascade`), and LT
    graphs must be weight-normalised first.  Selections are identical
    for every worker count; serial is the default.

    Returns ``(seeds, spread_estimate)``.

    Note: CELF's laziness is exact only for submodular objectives; the
    *estimated* spread is submodular up to Monte-Carlo noise, so (as in
    the original CELF paper) results can differ from plain greedy by a
    noise-sized margin.
    """
    from repro.diffusion.simulate import simulate_piece_spread
    from repro.runtime import resolve_runtime
    from repro.sampling.batch import check_lt_feasible
    from repro.sampling.parallel import make_pool

    # Entry validation: every execution knob must fail here (ConfigError)
    # instead of being silently ignored on whichever path is taken.
    rt = resolve_runtime(
        runtime,
        backend=backend,
        model=model,
        workers=workers,
        executor=executor,
        seed=seed,
        caller="celf_greedy_im",
    )
    check_positive_int("k", k)
    check_positive_int("rounds", rounds)
    model = rt.single_model()
    if model == "lt":
        check_lt_feasible(piece_graph)  # once, not once per trial
    rng = as_generator(rt.seed)
    if pool is None:
        pool = np.arange(piece_graph.n, dtype=np.int64)
    pool = np.asarray(pool, dtype=np.int64)
    if pool.size == 0:
        raise SolverError("empty candidate pool")
    pool_width = rt.pool_width
    # One pool for the whole CELF run: spread() is called O(|pool| + k)
    # times, so per-evaluation pool construction would dwarf the gain.
    eval_pool = (
        make_pool(pool_width, executor=rt.executor)
        if pool_width is not None
        else None
    )

    def spread(seeds: list[int]) -> float:
        if not seeds:
            return 0.0
        entropy = int(rng.integers(0, 2**63 - 1))
        if pool_width is not None:
            return simulate_piece_spread(
                piece_graph,
                seeds,
                rounds=rounds,
                seed=entropy,
                runtime=rt,
                pool=eval_pool,
            )
        total = 0
        eval_rng = as_generator(entropy)
        for _ in range(rounds):
            total += int(
                simulate_model_cascade(
                    piece_graph,
                    seeds,
                    eval_rng,
                    model=model,
                    backend=rt.backend,
                    check_weights=False,
                ).sum()
            )
        return total / rounds

    try:
        seeds: list[int] = []
        current = 0.0
        heap: list[tuple[float, int, int, int]] = []
        for idx, v in enumerate(pool):
            gain = spread([int(v)])
            heap.append((-gain, idx, int(v), 0))
        heapq.heapify(heap)
        while heap and len(seeds) < k:
            neg_gain, idx, v, evaluated_at = heapq.heappop(heap)
            if evaluated_at == len(seeds):
                seeds.append(v)
                current = current + (-neg_gain)
                continue
            gain = spread(seeds + [v]) - current
            heapq.heappush(heap, (-gain, idx, v, len(seeds)))
        return seeds, current
    finally:
        if eval_pool is not None:
            eval_pool.shutdown(wait=True, cancel_futures=True)
