"""The paper's two intuitive baselines, ``IM`` and ``TIM`` (Sec. VI-A).

``IM``
    Runs a state-of-the-art single-message IM algorithm on ``G`` under
    the IC model — requiring a scalar probability per edge, obtained by
    flattening the topic vectors (we average ``p(t_j, e)`` over the
    campaign's pieces; see DESIGN.md) — to pick ``k`` seeds ``S``.  Then
    every piece is tried with ``S`` as its (sole) seed set and the piece
    with the highest adoption utility wins.  The baseline is blind to
    topic-dependent spread, which is why the paper finds it weakest.

``TIM``
    Builds each piece's projected influence graph, runs the IM algorithm
    per piece to get ``S_i``, and keeps the single assignment
    ``(S_i -> t_i)`` with the best adoption utility.  Topic-aware but
    still spends the whole budget on one piece — so users rarely receive
    the multiple pieces the logistic model needs for meaningful adoption.

Both baselines reuse the same MRR collection as the solvers for seed
selection (``TIM`` selects on its piece's RR sets directly; ``IM``
samples its own RR sets on the flattened graph) and are scored with the
same AU estimator, so comparisons in the experiment harness are
apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import AssignmentPlan
from repro.core.problem import OIPAProblem
from repro.diffusion.projection import PieceGraph
from repro.im.ris import max_coverage_seeds
from repro.sampling.mrr import MRRCollection
from repro.sampling.rr import ReverseReachableSampler
from repro.utils.rng import as_generator
from repro.utils.timer import Timer

__all__ = ["BaselineResult", "im_baseline", "tim_baseline"]


@dataclass(frozen=True)
class BaselineResult:
    """A baseline's plan plus bookkeeping.

    ``elapsed_seconds`` excludes RR sampling (``sample_seconds``), per
    the paper's protocol: "we exclude the sampling time ... since the
    time is the same for all compared approaches".
    """

    name: str
    plan: AssignmentPlan
    utility: float
    chosen_piece: int
    seeds: tuple[int, ...]
    elapsed_seconds: float
    sample_seconds: float = 0.0


def _best_single_piece_plan(
    problem: OIPAProblem,
    mrr: MRRCollection,
    per_piece_seeds: list[list[int]],
) -> tuple[AssignmentPlan, float, int]:
    """Try assigning each piece its seed set; keep the best-utility one."""
    best_plan = problem.empty_plan()
    best_utility = -1.0
    best_piece = 0
    for j, seeds in enumerate(per_piece_seeds):
        plan = problem.empty_plan().i_union(j, seeds)
        utility = mrr.estimate(plan.seed_lists(), problem.adoption)
        if utility > best_utility:
            best_plan, best_utility, best_piece = plan, utility, j
    return best_plan, best_utility, best_piece


def im_baseline(
    problem: OIPAProblem,
    mrr: MRRCollection,
    *,
    theta: int | None = None,
    seed=None,
    runtime=None,
    backend: str | None = None,
) -> BaselineResult:
    """The ``IM`` baseline: topic-blind seed set, best single piece.

    ``theta`` controls the flattened-graph RR sample count for seed
    selection (defaults to the evaluation collection's theta);
    ``runtime`` (a :class:`repro.runtime.Runtime`) selects the RR
    sampling engine — the per-call ``backend`` kwarg is the deprecated
    equivalent.
    """
    from repro.runtime import resolve_runtime

    rt = resolve_runtime(
        runtime, backend=backend, seed=seed, caller="im_baseline"
    )
    theta = mrr.theta if theta is None else theta
    # Flat-graph RR sampling is timed separately (the paper excludes
    # sampling time from every method's reported run time).
    with Timer() as sample_timer:
        flat_probs = problem.graph.mean_edge_probabilities(
            problem.campaign.vectors()
        )
        flat_graph = PieceGraph.from_edge_probabilities(
            problem.graph, flat_probs
        )
        rng = as_generator(rt.seed)
        sampler = ReverseReachableSampler(flat_graph, backend=rt.backend)
        roots = rng.integers(0, flat_graph.n, size=theta)
        ptr, nodes = sampler.sample_many(roots, rng)
        flat_mrr = MRRCollection(flat_graph.n, roots, [ptr], [nodes])
    timer = Timer().start()
    seeds, _ = max_coverage_seeds(flat_mrr, 0, problem.pool, problem.k)
    # The same seed set S is tried on every piece; best one wins.
    plan, utility, piece = _best_single_piece_plan(
        problem, mrr, [list(seeds)] * problem.num_pieces
    )
    return BaselineResult(
        name="IM",
        plan=plan,
        utility=utility,
        chosen_piece=piece,
        seeds=tuple(seeds),
        elapsed_seconds=timer.stop(),
        sample_seconds=sample_timer.elapsed,
    )


def tim_baseline(
    problem: OIPAProblem,
    mrr: MRRCollection,
) -> BaselineResult:
    """The ``TIM`` baseline: per-piece topic-aware seeds, best single piece.

    Seed selection runs directly on each piece's RR sets inside ``mrr``
    (they *are* the piece's influence-graph samples), exactly matching
    "we run the IM algorithm on G_ti to obtain k seed nodes".
    """
    timer = Timer().start()
    per_piece_seeds: list[list[int]] = []
    for j in range(problem.num_pieces):
        seeds, _ = max_coverage_seeds(mrr, j, problem.pool, problem.k)
        per_piece_seeds.append(seeds)
    plan, utility, piece = _best_single_piece_plan(problem, mrr, per_piece_seeds)
    return BaselineResult(
        name="TIM",
        plan=plan,
        utility=utility,
        chosen_piece=piece,
        seeds=tuple(per_piece_seeds[piece]),
        elapsed_seconds=timer.stop(),
    )
