"""Classical influence maximisation substrate and the OIPA baselines."""

from repro.im.ris import max_coverage_seeds, ris_influence_maximization
from repro.im.greedy import celf_greedy_im
from repro.im.baselines import BaselineResult, im_baseline, tim_baseline
from repro.im.heuristics import max_degree_baseline, random_baseline

__all__ = [
    "max_coverage_seeds",
    "ris_influence_maximization",
    "celf_greedy_im",
    "BaselineResult",
    "im_baseline",
    "tim_baseline",
    "max_degree_baseline",
    "random_baseline",
]
