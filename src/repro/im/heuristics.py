"""Heuristic OIPA baselines beyond the paper's IM / TIM.

The IM literature's standard sanity baselines, adapted to the
assignment setting so ablation studies can locate IM/TIM/BAB on a wider
quality spectrum:

* ``MaxDegree`` — the k highest out-degree promoters, best single piece
  (degree centrality is the classic IM strawman);
* ``Random`` — k uniform promoters spread round-robin over all pieces
  (the weakest meaningful multifaceted strategy: budget *is* split
  across pieces, but blindly).
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import AssignmentPlan
from repro.core.problem import OIPAProblem
from repro.im.baselines import BaselineResult, _best_single_piece_plan
from repro.sampling.mrr import MRRCollection
from repro.utils.rng import as_generator
from repro.utils.timer import Timer

__all__ = ["max_degree_baseline", "random_baseline"]


def max_degree_baseline(
    problem: OIPAProblem, mrr: MRRCollection
) -> BaselineResult:
    """Top-out-degree promoters from the pool; best single piece wins."""
    timer = Timer().start()
    degrees = problem.graph.out_degrees()[problem.pool]
    order = np.argsort(degrees)[::-1]
    seeds = [int(v) for v in problem.pool[order[: problem.k]]]
    plan, utility, piece = _best_single_piece_plan(
        problem, mrr, [seeds] * problem.num_pieces
    )
    return BaselineResult(
        name="MaxDegree",
        plan=plan,
        utility=utility,
        chosen_piece=piece,
        seeds=tuple(seeds),
        elapsed_seconds=timer.stop(),
    )


def random_baseline(
    problem: OIPAProblem,
    mrr: MRRCollection,
    *,
    seed=None,
) -> BaselineResult:
    """Uniform promoters, budget split round-robin across pieces."""
    timer = Timer().start()
    rng = as_generator(seed)
    count = min(problem.k, problem.pool_size * problem.num_pieces)
    picks = rng.choice(
        problem.pool, size=min(count, problem.pool_size), replace=False
    )
    seed_sets: list[set[int]] = [set() for _ in range(problem.num_pieces)]
    for i, v in enumerate(picks):
        seed_sets[i % problem.num_pieces].add(int(v))
    plan = AssignmentPlan(seed_sets)
    utility = mrr.estimate(plan.seed_lists(), problem.adoption)
    return BaselineResult(
        name="Random",
        plan=plan,
        utility=utility,
        chosen_piece=-1,
        seeds=tuple(int(v) for v in picks),
        elapsed_seconds=timer.stop(),
    )
