"""Graph statistics, including the power-law tail fit.

Lemma 4's complexity bound for the progressive estimator rests on the
power-law principle of social influence (``P(x) ~ x^-alpha`` with
``2 < alpha < 3``).  :func:`fit_power_law_mle` implements the standard
discrete maximum-likelihood estimator (Clauset, Shalizi & Newman 2009,
Eq. 3.7 approximation) so tests and Table III reporting can verify that
the synthetic datasets actually live in that regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.digraph import TopicGraph

__all__ = ["GraphSummary", "fit_power_law_mle", "summarize_graph"]


@dataclass(frozen=True)
class GraphSummary:
    """The per-dataset statistics reported in the paper's Table III."""

    num_vertices: int
    num_edges: int
    average_degree: float
    max_out_degree: int
    max_in_degree: int
    num_topics: int
    mean_topics_per_edge: float
    power_law_alpha: float

    def as_row(self) -> list:
        """Row form for :func:`repro.utils.tables.format_table`."""
        return [
            self.num_vertices,
            self.num_edges,
            round(self.average_degree, 2),
            self.num_topics,
            round(self.mean_topics_per_edge, 2),
            round(self.power_law_alpha, 2),
        ]


def fit_power_law_mle(values: np.ndarray, *, x_min: int = 1) -> float:
    """Discrete power-law exponent MLE ``alpha`` for ``values >= x_min``.

    Uses the continuous approximation
    ``alpha = 1 + n / sum(ln(x_i / (x_min - 1/2)))`` which is accurate for
    ``x_min >= 1`` and is the estimator of record for degree sequences.
    Values below ``x_min`` are excluded (they are not part of the tail).
    """
    if x_min < 1:
        raise ParameterError(f"x_min must be >= 1, got {x_min}")
    values = np.asarray(values, dtype=np.float64)
    tail = values[values >= x_min]
    if tail.size == 0:
        raise ParameterError("no values at or above x_min; cannot fit tail")
    logs = np.log(tail / (x_min - 0.5))
    total = logs.sum()
    if total <= 0:
        return float("inf")
    return float(1.0 + tail.size / total)


def summarize_graph(graph: TopicGraph) -> GraphSummary:
    """Compute the Table III statistics for ``graph``."""
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    m = graph.num_edges
    degrees = out_deg + in_deg
    positive = degrees[degrees > 0]
    alpha = fit_power_law_mle(positive) if positive.size else float("nan")
    return GraphSummary(
        num_vertices=graph.n,
        num_edges=m,
        average_degree=float(m / graph.n) if graph.n else 0.0,
        max_out_degree=int(out_deg.max()) if graph.n else 0,
        max_in_degree=int(in_deg.max()) if graph.n else 0,
        num_topics=graph.num_topics,
        mean_topics_per_edge=float(graph.tp_topics.size / m) if m else 0.0,
        power_law_alpha=alpha,
    )
