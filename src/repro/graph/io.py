"""Serialisation of :class:`~repro.graph.digraph.TopicGraph`.

The on-disk format is a plain text edge list, one record per line::

    # repro-topic-graph v1
    # n=<vertices> m=<edges> topics=<num_topics>
    <u>\t<v>\t<z1>:<p1>,<z2>:<p2>,...

Human-readable, diff-able, and loadable with nothing but the standard
library — matching the public release format of most IM codebases.
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import GraphFormatError
from repro.graph.digraph import TopicGraph

__all__ = ["save_topic_graph", "load_topic_graph"]

_MAGIC = "# repro-topic-graph v1"


def save_topic_graph(graph: TopicGraph, path: str | os.PathLike) -> None:
    """Write ``graph`` to ``path`` in the v1 text format."""
    src = graph.edge_sources()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_MAGIC + "\n")
        fh.write(
            f"# n={graph.n} m={graph.num_edges} topics={graph.num_topics}\n"
        )
        for e in range(graph.num_edges):
            lo, hi = graph.tp_ptr[e], graph.tp_ptr[e + 1]
            pairs = ",".join(
                f"{int(z)}:{p:.10g}"
                for z, p in zip(graph.tp_topics[lo:hi], graph.tp_probs[lo:hi])
            )
            fh.write(f"{int(src[e])}\t{int(graph.out_dst[e])}\t{pairs}\n")


def load_topic_graph(path: str | os.PathLike) -> TopicGraph:
    """Load a graph previously written by :func:`save_topic_graph`."""
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline().rstrip("\n")
        if header != _MAGIC:
            raise GraphFormatError(
                f"bad magic line {header!r}, expected {_MAGIC!r}", line=1
            )
        meta_line = fh.readline().rstrip("\n")
        meta = _parse_meta(meta_line)
        n, m, num_topics = meta["n"], meta["m"], meta["topics"]
        src = np.empty(m, dtype=np.int64)
        dst = np.empty(m, dtype=np.int64)
        tp_ptr = np.zeros(m + 1, dtype=np.int64)
        topics: list[int] = []
        probs: list[float] = []
        count = 0
        for lineno, line in enumerate(fh, start=3):
            # Strip only the newline: a trailing tab is significant (an
            # edge with an empty topic vector ends in one).
            line = line.rstrip("\n")
            if not line.strip() or line.startswith("#"):
                continue
            if count >= m:
                raise GraphFormatError(
                    f"more than the declared m={m} edges", line=lineno
                )
            parts = line.split("\t")
            if len(parts) != 3:
                raise GraphFormatError(
                    f"expected 3 tab-separated fields, got {len(parts)}",
                    line=lineno,
                )
            try:
                src[count] = int(parts[0])
                dst[count] = int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(str(exc), line=lineno) from exc
            entries = parts[2].strip()
            added = 0
            if entries:
                for token in entries.split(","):
                    try:
                        z_str, p_str = token.split(":")
                        topics.append(int(z_str))
                        probs.append(float(p_str))
                    except ValueError as exc:
                        raise GraphFormatError(
                            f"bad topic entry {token!r}", line=lineno
                        ) from exc
                    added += 1
            tp_ptr[count + 1] = tp_ptr[count] + added
            count += 1
        if count != m:
            raise GraphFormatError(f"declared m={m} edges but found {count}")
    return TopicGraph.from_arrays(
        n,
        num_topics,
        src,
        dst,
        tp_ptr,
        np.asarray(topics, dtype=np.int64),
        np.asarray(probs, dtype=np.float64),
    )


def _parse_meta(line: str) -> dict[str, int]:
    if not line.startswith("#"):
        raise GraphFormatError(f"missing metadata line, got {line!r}", line=2)
    meta: dict[str, int] = {}
    for token in line.lstrip("#").split():
        if "=" not in token:
            raise GraphFormatError(f"bad metadata token {token!r}", line=2)
        key, value = token.split("=", 1)
        try:
            meta[key] = int(value)
        except ValueError as exc:
            raise GraphFormatError(
                f"metadata {key}={value!r} is not an integer", line=2
            ) from exc
    for key in ("n", "m", "topics"):
        if key not in meta:
            raise GraphFormatError(f"metadata key {key!r} missing", line=2)
    return meta
