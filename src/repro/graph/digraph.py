"""The core social-graph data structure.

The paper (Sec. III-A) models a social network as a directed graph
``G(V, E)`` where each edge ``e = (u, v)`` carries a *topic-wise influence
vector* ``p(e)``: ``p(e|z)`` is the probability that ``u`` activates ``v``
via ``e`` when the propagating message is entirely about topic ``z``.  A
message piece with topic distribution ``t`` crosses ``e`` with probability
``p(t, e) = t · p(e)``.

Real topic-influence vectors are sparse (the paper notes the ``tweet``
dataset averages only 1.5 non-zero entries per edge), so we store them in
a CSR-within-CSR layout:

* ``out_ptr / out_dst`` — CSR adjacency over edges sorted by source;
* ``tp_ptr / tp_topics / tp_probs`` — per-edge sparse topic vectors,
  aligned with the canonical (source-sorted) edge order;
* ``in_ptr / in_src / in_edge`` — CSR *reverse* adjacency used by the
  reverse-reachable samplers, where ``in_edge`` maps each reverse slot
  back to its canonical edge id so probability arrays need computing only
  once per piece.

All arrays are plain ``numpy`` so piece-projection (``t · p(e)`` for every
edge) is a single vectorised pass — this is the hot path feeding the
Monte-Carlo samplers.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import GraphError, TopicError

__all__ = ["TopicGraph"]


def _as_sparse_topic_entries(
    topic_probs, num_topics: int
) -> tuple[list[int], list[float]]:
    """Normalise one edge's topic probabilities into (topics, probs) lists.

    Accepts a mapping ``{topic: prob}``, a dense sequence of length
    ``num_topics`` (zeros dropped), or an iterable of ``(topic, prob)``
    pairs.
    """
    if isinstance(topic_probs, Mapping):
        items = sorted(topic_probs.items())
    elif isinstance(topic_probs, np.ndarray) or (
        isinstance(topic_probs, Sequence) and not _looks_like_pairs(topic_probs)
    ):
        dense = np.asarray(topic_probs, dtype=np.float64)
        if dense.shape != (num_topics,):
            raise TopicError(
                f"dense topic vector has shape {dense.shape}, expected ({num_topics},)"
            )
        items = [(int(z), float(p)) for z, p in enumerate(dense) if p != 0.0]
    else:
        items = sorted((int(z), float(p)) for z, p in topic_probs)
    topics: list[int] = []
    probs: list[float] = []
    seen: set[int] = set()
    for z, p in items:
        if z in seen:
            raise TopicError(f"duplicate topic {z} on one edge")
        if not (0 <= z < num_topics):
            raise TopicError(f"topic index {z} outside [0, {num_topics})")
        if not (0.0 <= p <= 1.0):
            raise TopicError(f"influence probability p(e|z={z}) = {p} outside [0, 1]")
        seen.add(z)
        if p == 0.0:
            continue
        topics.append(z)
        probs.append(p)
    return topics, probs


def _looks_like_pairs(value: Sequence) -> bool:
    """Heuristic: a sequence of 2-tuples is (topic, prob) pairs."""
    return bool(value) and isinstance(value[0], tuple)


class TopicGraph:
    """Directed graph with sparse per-edge topic influence vectors.

    Instances are immutable after construction; all mutating experiments
    build new graphs.  Construct via :meth:`from_edges` (convenient) or
    :meth:`from_arrays` (fast path for generators).
    """

    __slots__ = (
        "n",
        "num_topics",
        "out_ptr",
        "out_dst",
        "tp_ptr",
        "tp_topics",
        "tp_probs",
        "in_ptr",
        "in_src",
        "in_edge",
        "_fingerprint",
    )

    def __init__(
        self,
        n: int,
        num_topics: int,
        out_ptr: np.ndarray,
        out_dst: np.ndarray,
        tp_ptr: np.ndarray,
        tp_topics: np.ndarray,
        tp_probs: np.ndarray,
    ) -> None:
        self.n = int(n)
        self.num_topics = int(num_topics)
        self.out_ptr = np.ascontiguousarray(out_ptr, dtype=np.int64)
        self.out_dst = np.ascontiguousarray(out_dst, dtype=np.int64)
        self.tp_ptr = np.ascontiguousarray(tp_ptr, dtype=np.int64)
        self.tp_topics = np.ascontiguousarray(tp_topics, dtype=np.int64)
        self.tp_probs = np.ascontiguousarray(tp_probs, dtype=np.float64)
        self._validate()
        self.in_ptr, self.in_src, self.in_edge = self._build_reverse_csr()
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        n: int,
        num_topics: int,
        edges: Iterable[tuple],
    ) -> "TopicGraph":
        """Build a graph from ``(u, v, topic_probs)`` triples.

        ``topic_probs`` may be a ``{topic: prob}`` mapping, a dense vector
        of length ``num_topics``, or an iterable of ``(topic, prob)``
        pairs.  Edges are re-sorted into canonical (source-major) order;
        parallel edges are rejected.
        """
        if n < 0:
            raise GraphError(f"vertex count must be >= 0, got {n}")
        if num_topics < 1:
            raise TopicError(f"need at least one topic, got {num_topics}")
        records: list[tuple[int, int, list[int], list[float]]] = []
        seen: set[tuple[int, int]] = set()
        for u, v, topic_probs in edges:
            u, v = int(u), int(v)
            if not (0 <= u < n and 0 <= v < n):
                raise GraphError(f"edge ({u}, {v}) outside vertex range [0, {n})")
            if u == v:
                raise GraphError(f"self-loop at vertex {u} is not allowed")
            if (u, v) in seen:
                raise GraphError(f"parallel edge ({u}, {v})")
            seen.add((u, v))
            topics, probs = _as_sparse_topic_entries(topic_probs, num_topics)
            records.append((u, v, topics, probs))
        records.sort(key=lambda r: (r[0], r[1]))
        m = len(records)
        out_ptr = np.zeros(n + 1, dtype=np.int64)
        out_dst = np.empty(m, dtype=np.int64)
        tp_ptr = np.zeros(m + 1, dtype=np.int64)
        all_topics: list[int] = []
        all_probs: list[float] = []
        for i, (u, v, topics, probs) in enumerate(records):
            out_ptr[u + 1] += 1
            out_dst[i] = v
            tp_ptr[i + 1] = tp_ptr[i] + len(topics)
            all_topics.extend(topics)
            all_probs.extend(probs)
        np.cumsum(out_ptr, out=out_ptr)
        return cls(
            n,
            num_topics,
            out_ptr,
            out_dst,
            tp_ptr,
            np.asarray(all_topics, dtype=np.int64),
            np.asarray(all_probs, dtype=np.float64),
        )

    @classmethod
    def from_arrays(
        cls,
        n: int,
        num_topics: int,
        src: np.ndarray,
        dst: np.ndarray,
        tp_ptr: np.ndarray,
        tp_topics: np.ndarray,
        tp_probs: np.ndarray,
    ) -> "TopicGraph":
        """Fast constructor from parallel edge arrays.

        ``src``/``dst`` need not be pre-sorted; the per-edge topic CSR
        (``tp_*``) must be aligned with the order of ``src``/``dst`` and
        is permuted together with the edges.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        tp_ptr = np.asarray(tp_ptr, dtype=np.int64)
        if src.shape != dst.shape:
            raise GraphError("src and dst must have the same length")
        m = src.size
        if tp_ptr.shape != (m + 1,):
            raise GraphError(f"tp_ptr must have length m+1 = {m + 1}")
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        counts = np.diff(tp_ptr)[order]
        new_tp_ptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=new_tp_ptr[1:])
        # Gather the topic entries edge-by-edge in the new order: slot
        # k of the output belongs to some edge i (new order) at offset
        # k - new_tp_ptr[i], which lives at starts[i] + that offset in
        # the input — one repeat + one arange instead of an m-long loop.
        starts = tp_ptr[:-1][order]
        gather = np.repeat(starts - new_tp_ptr[:-1], counts) + np.arange(
            int(new_tp_ptr[-1]), dtype=np.int64
        )
        out_ptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(out_ptr, src + 1, 1)
        np.cumsum(out_ptr, out=out_ptr)
        return cls(
            n,
            num_topics,
            out_ptr,
            dst,
            new_tp_ptr,
            np.asarray(tp_topics, dtype=np.int64)[gather],
            np.asarray(tp_probs, dtype=np.float64)[gather],
        )

    # ------------------------------------------------------------------
    # validation and reverse adjacency
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        n, m = self.n, self.num_edges
        if self.out_ptr.shape != (n + 1,):
            raise GraphError("out_ptr must have length n+1")
        if self.out_ptr[0] != 0 or self.out_ptr[-1] != m:
            raise GraphError("out_ptr must start at 0 and end at m")
        if np.any(np.diff(self.out_ptr) < 0):
            raise GraphError("out_ptr must be non-decreasing")
        if m and (self.out_dst.min() < 0 or self.out_dst.max() >= n):
            raise GraphError("edge destination outside vertex range")
        if self.tp_ptr.shape != (m + 1,):
            raise GraphError("tp_ptr must have length m+1")
        if self.tp_ptr[0] != 0 or self.tp_ptr[-1] != self.tp_topics.size:
            raise GraphError("tp_ptr inconsistent with topic entry count")
        if self.tp_topics.size != self.tp_probs.size:
            raise GraphError("tp_topics and tp_probs must be parallel")
        if self.tp_topics.size:
            if self.tp_topics.min() < 0 or self.tp_topics.max() >= self.num_topics:
                raise TopicError("topic index outside range")
            if self.tp_probs.min() < 0.0 or self.tp_probs.max() > 1.0:
                raise TopicError("edge topic probability outside [0, 1]")

    def _build_reverse_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        m = self.num_edges
        src = self.edge_sources()
        in_ptr = np.zeros(self.n + 1, dtype=np.int64)
        np.add.at(in_ptr, self.out_dst + 1, 1)
        np.cumsum(in_ptr, out=in_ptr)
        order = np.argsort(self.out_dst, kind="stable")
        in_src = src[order]
        in_edge = order.astype(np.int64)
        return in_ptr, in_src, in_edge

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return int(self.out_dst.size)

    def edge_sources(self) -> np.ndarray:
        """Per-edge source vertex, in canonical edge order."""
        return np.repeat(
            np.arange(self.n, dtype=np.int64), np.diff(self.out_ptr)
        )

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.out_ptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex."""
        return np.diff(self.in_ptr)

    def successors(self, u: int) -> np.ndarray:
        """Vertices ``v`` with an edge ``u -> v``."""
        self._check_vertex(u)
        return self.out_dst[self.out_ptr[u] : self.out_ptr[u + 1]]

    def predecessors(self, v: int) -> np.ndarray:
        """Vertices ``u`` with an edge ``u -> v``."""
        self._check_vertex(v)
        return self.in_src[self.in_ptr[v] : self.in_ptr[v + 1]]

    def edge_id(self, u: int, v: int) -> int:
        """Canonical edge id of ``u -> v`` (raises if absent)."""
        self._check_vertex(u)
        lo, hi = self.out_ptr[u], self.out_ptr[u + 1]
        block = self.out_dst[lo:hi]
        pos = int(np.searchsorted(block, v))
        if pos >= block.size or block[pos] != v:
            raise GraphError(f"edge ({u}, {v}) does not exist")
        return int(lo + pos)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` exists."""
        try:
            self.edge_id(u, v)
        except GraphError:
            return False
        return True

    def edge_topic_vector(self, edge: int) -> np.ndarray:
        """Dense topic influence vector ``p(e)`` of one edge."""
        if not (0 <= edge < self.num_edges):
            raise GraphError(f"edge id {edge} outside [0, {self.num_edges})")
        dense = np.zeros(self.num_topics, dtype=np.float64)
        lo, hi = self.tp_ptr[edge], self.tp_ptr[edge + 1]
        dense[self.tp_topics[lo:hi]] = self.tp_probs[lo:hi]
        return dense

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self.n):
            raise GraphError(f"vertex {v} outside [0, {self.n})")

    def apply_delta(self, delta) -> "TopicGraph":
        """A new graph with ``delta`` (a :class:`repro.incremental.GraphDelta`)
        applied — this graph is immutable and unchanged.

        The result goes through the canonical constructor, so its
        :meth:`fingerprint` matches a from-scratch build of the same
        edge set and all cache identities stay content-addressed.
        """
        from repro.incremental.delta import apply_delta

        return apply_delta(self, delta)

    # ------------------------------------------------------------------
    # content identity
    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content fingerprint of this graph (sha256 hex).

        Hashes the canonical CSR arrays — vertex/topic counts, the
        source-major adjacency, and the per-edge sparse topic vectors.
        Both constructors sort edges into the canonical order first, so
        two graphs built from the same edges in *any* input order have
        the same fingerprint, while changing a single edge, endpoint, or
        topic probability changes it.  This is the graph component of
        every artifact-cache key and shard-store fingerprint.
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            h.update(
                f"topicgraph:v1:n={self.n}:topics={self.num_topics}:".encode()
            )
            for arr in (
                self.out_ptr,
                self.out_dst,
                self.tp_ptr,
                self.tp_topics,
                self.tp_probs,
            ):
                h.update(arr.tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # piece projection
    # ------------------------------------------------------------------

    def piece_probabilities(self, piece_vector: np.ndarray) -> np.ndarray:
        """Per-edge crossing probabilities ``p(t, e) = t · p(e)`` (Sec. III-A).

        Returns an array aligned with the canonical edge order, clipped
        into ``[0, 1]`` (the dot product can marginally exceed 1 only when
        a caller supplies an unnormalised topic vector; clipping keeps the
        samplers safe).
        """
        t = np.asarray(piece_vector, dtype=np.float64)
        if t.shape != (self.num_topics,):
            raise TopicError(
                f"piece vector has shape {t.shape}, expected ({self.num_topics},)"
            )
        if np.any(t < 0):
            raise TopicError("piece topic vector must be non-negative")
        m = self.num_edges
        if m == 0:
            return np.zeros(0, dtype=np.float64)
        weighted = self.tp_probs * t[self.tp_topics]
        sums = np.zeros(m, dtype=np.float64)
        nonempty = np.flatnonzero(np.diff(self.tp_ptr) > 0)
        if nonempty.size:
            seg = np.add.reduceat(weighted, self.tp_ptr[nonempty])
            sums[nonempty] = seg
        return np.clip(sums, 0.0, 1.0)

    def mean_edge_probabilities(self, piece_vectors: Sequence[np.ndarray]) -> np.ndarray:
        """Average ``p(t_j, e)`` over a collection of pieces.

        This flattening feeds the ``IM`` baseline (Sec. VI-A), which runs a
        classical single-message IC influence maximisation on ``G``.
        """
        if not len(piece_vectors):
            raise TopicError("need at least one piece vector to flatten")
        acc = np.zeros(self.num_edges, dtype=np.float64)
        for t in piece_vectors:
            acc += self.piece_probabilities(t)
        return acc / float(len(piece_vectors))

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"TopicGraph(n={self.n}, m={self.num_edges}, "
            f"topics={self.num_topics})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TopicGraph):
            return NotImplemented
        return (
            self.n == other.n
            and self.num_topics == other.num_topics
            and np.array_equal(self.out_ptr, other.out_ptr)
            and np.array_equal(self.out_dst, other.out_dst)
            and np.array_equal(self.tp_ptr, other.tp_ptr)
            and np.array_equal(self.tp_topics, other.tp_topics)
            and np.allclose(self.tp_probs, other.tp_probs)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)
