"""Synthetic social-graph generators.

The paper evaluates on three real networks whose defining structural
property — heavy-tailed (power-law) degree distributions — is what the
progressive bound's complexity argument (Lemma 4) relies on.  These
generators produce directed graphs with controllable power-law tails so
the synthetic stand-ins preserve that property:

* :func:`power_law_degree_sequence` — discrete power-law degrees;
* :func:`directed_configuration_model` — random graph with prescribed
  in/out degree sequences (simple graph: duplicates/self-loops dropped);
* :func:`preferential_attachment_digraph` — growing network, hubs emerge
  organically (used for the dblp-like co-author network);
* :func:`random_edge_topic_profiles` — sparse per-edge topic probability
  vectors, with controllable sparsity to mimic the paper's observation
  that the tweet network averages ~1.5 non-zero topic entries per edge.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError, ParameterError
from repro.graph.digraph import TopicGraph
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive, check_positive_int

__all__ = [
    "power_law_degree_sequence",
    "directed_configuration_model",
    "preferential_attachment_digraph",
    "random_edge_topic_profiles",
    "build_topic_graph",
]


def power_law_degree_sequence(
    n: int,
    exponent: float,
    *,
    min_degree: int = 1,
    max_degree: int | None = None,
    seed=None,
) -> np.ndarray:
    """Sample ``n`` degrees from a discrete power law ``P(d) ∝ d^-exponent``.

    Parameters
    ----------
    n:
        Number of vertices.
    exponent:
        Tail exponent; social networks typically have ``2 < exponent < 3``
        (the regime Lemma 4 assumes).
    min_degree, max_degree:
        Support bounds.  ``max_degree`` defaults to ``sqrt(n) * 10`` capped
        at ``n - 1`` — large enough for genuine hubs, small enough that a
        simple configuration graph can realise the sequence.
    """
    n = check_positive_int("n", n)
    check_positive("exponent", exponent)
    min_degree = check_positive_int("min_degree", min_degree)
    if max_degree is None:
        max_degree = min(n - 1, max(min_degree, int(10 * np.sqrt(n))))
    if max_degree < min_degree:
        raise ParameterError(
            f"max_degree ({max_degree}) must be >= min_degree ({min_degree})"
        )
    rng = as_generator(seed)
    support = np.arange(min_degree, max_degree + 1, dtype=np.float64)
    weights = support**-exponent
    weights /= weights.sum()
    return rng.choice(support.astype(np.int64), size=n, p=weights)


def directed_configuration_model(
    out_degrees: np.ndarray,
    in_degrees: np.ndarray,
    *,
    seed=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Wire a simple directed graph realising the given degree sequences.

    Returns ``(src, dst)`` edge arrays.  Stub totals are balanced by
    trimming the longer side uniformly at random; self-loops and parallel
    edges produced by the random matching are dropped, so realised degrees
    are close to (but not exactly) the request — the standard "erased"
    configuration model, which preserves the degree *distribution* shape.
    """
    out_degrees = np.asarray(out_degrees, dtype=np.int64)
    in_degrees = np.asarray(in_degrees, dtype=np.int64)
    if out_degrees.size != in_degrees.size:
        raise GraphError("out/in degree sequences must have equal length")
    if np.any(out_degrees < 0) or np.any(in_degrees < 0):
        raise GraphError("degrees must be non-negative")
    rng = as_generator(seed)
    out_stubs = np.repeat(np.arange(out_degrees.size), out_degrees)
    in_stubs = np.repeat(np.arange(in_degrees.size), in_degrees)
    k = min(out_stubs.size, in_stubs.size)
    if out_stubs.size > k:
        out_stubs = rng.choice(out_stubs, size=k, replace=False)
    if in_stubs.size > k:
        in_stubs = rng.choice(in_stubs, size=k, replace=False)
    rng.shuffle(out_stubs)
    rng.shuffle(in_stubs)
    keep = out_stubs != in_stubs
    src, dst = out_stubs[keep], in_stubs[keep]
    # Deduplicate parallel edges.
    if src.size:
        key = src * np.int64(in_degrees.size) + dst
        _, unique_idx = np.unique(key, return_index=True)
        src, dst = src[unique_idx], dst[unique_idx]
    return src, dst


def preferential_attachment_digraph(
    n: int,
    edges_per_node: int,
    *,
    seed=None,
    bidirectional: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Grow a directed graph by preferential attachment.

    Each arriving vertex links to ``edges_per_node`` distinct existing
    vertices chosen proportionally to their current degree (plus one, so
    isolated early vertices remain reachable).  With ``bidirectional``
    both edge directions are added — matching friendship/co-authorship
    graphs, which the paper treats as bidirectional relationships.
    """
    n = check_positive_int("n", n)
    edges_per_node = check_positive_int("edges_per_node", edges_per_node)
    rng = as_generator(seed)
    src_list: list[int] = []
    dst_list: list[int] = []
    degree = np.ones(n, dtype=np.float64)
    start = min(edges_per_node + 1, n)
    for v in range(1, start):
        for u in range(v):
            src_list.append(v)
            dst_list.append(u)
            degree[u] += 1
            degree[v] += 1
    for v in range(start, n):
        weights = degree[:v] / degree[:v].sum()
        count = min(edges_per_node, v)
        targets = rng.choice(v, size=count, replace=False, p=weights)
        for u in targets:
            src_list.append(v)
            dst_list.append(int(u))
            degree[u] += 1
            degree[v] += 1
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    if bidirectional:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return src, dst


def random_edge_topic_profiles(
    num_edges: int,
    num_topics: int,
    *,
    topics_per_edge: float = 2.0,
    prob_mean: float = 0.1,
    prob_concentration: float = 4.0,
    seed=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Draw sparse topic influence vectors for ``num_edges`` edges.

    The number of non-zero topics per edge is ``1 + Poisson(topics_per_edge
    - 1)`` truncated to ``num_topics`` (every edge influences at least one
    topic), and each probability is Beta-distributed with the given mean —
    matching the small per-edge probabilities that influence-learning
    pipelines produce in practice.

    Returns the ``(tp_ptr, tp_topics, tp_probs)`` CSR triple expected by
    :meth:`TopicGraph.from_arrays`.
    """
    if num_edges < 0:
        raise ParameterError(f"num_edges must be >= 0, got {num_edges}")
    num_topics = check_positive_int("num_topics", num_topics)
    if topics_per_edge < 1.0:
        raise ParameterError(
            f"topics_per_edge must be >= 1, got {topics_per_edge}"
        )
    check_positive("prob_mean", prob_mean)
    check_positive("prob_concentration", prob_concentration)
    rng = as_generator(seed)
    counts = 1 + rng.poisson(lam=topics_per_edge - 1.0, size=num_edges)
    counts = np.minimum(counts, num_topics).astype(np.int64)
    tp_ptr = np.zeros(num_edges + 1, dtype=np.int64)
    np.cumsum(counts, out=tp_ptr[1:])
    total = int(tp_ptr[-1])
    tp_topics = np.empty(total, dtype=np.int64)
    for i in range(num_edges):
        lo, hi = tp_ptr[i], tp_ptr[i + 1]
        tp_topics[lo:hi] = rng.choice(num_topics, size=hi - lo, replace=False)
    a = prob_mean * prob_concentration
    b = (1.0 - prob_mean) * prob_concentration
    if b <= 0:
        raise ParameterError("prob_mean must be < 1")
    tp_probs = rng.beta(a, b, size=total)
    return tp_ptr, tp_topics, tp_probs


def build_topic_graph(
    n: int,
    src: np.ndarray,
    dst: np.ndarray,
    num_topics: int,
    *,
    topics_per_edge: float = 2.0,
    prob_mean: float = 0.1,
    seed=None,
) -> TopicGraph:
    """Convenience: attach random topic profiles to an edge list."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    tp_ptr, tp_topics, tp_probs = random_edge_topic_profiles(
        src.size,
        num_topics,
        topics_per_edge=topics_per_edge,
        prob_mean=prob_mean,
        seed=seed,
    )
    return TopicGraph.from_arrays(n, num_topics, src, dst, tp_ptr, tp_topics, tp_probs)
