"""Directed social graphs with topic-aware edge influence probabilities."""

from repro.graph.digraph import TopicGraph
from repro.graph.generators import (
    build_topic_graph,
    directed_configuration_model,
    power_law_degree_sequence,
    preferential_attachment_digraph,
    random_edge_topic_profiles,
)
from repro.graph.io import load_topic_graph, save_topic_graph
from repro.graph.stats import GraphSummary, fit_power_law_mle, summarize_graph

__all__ = [
    "TopicGraph",
    "build_topic_graph",
    "power_law_degree_sequence",
    "directed_configuration_model",
    "preferential_attachment_digraph",
    "random_edge_topic_profiles",
    "load_topic_graph",
    "save_topic_graph",
    "GraphSummary",
    "fit_power_law_mle",
    "summarize_graph",
]
