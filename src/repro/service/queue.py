"""The influence-service job queue: thread workers over one Session.

:class:`JobQueue` turns validated :class:`~repro.service.jobs.JobSpec`
submissions into background :meth:`repro.api.Session.run` executions on
a ``ThreadPoolExecutor``, keeping the submit path (and therefore the
HTTP request path) free of sampling work.  All workers share one
resolved artifact store, so a campaign that any worker — or any *other
service process* pointed at the same ``REPRO_ARTIFACTS`` directory —
has already computed is served from cache with zero sampling.

Two queue-level behaviours matter for a shared cache:

- **Single-flight**: identical specs submitted concurrently coalesce on
  a per-fingerprint lock, so a cold-cache stampede runs the pipeline
  once and the rest replay it as cache hits instead of racing duplicate
  sampling work.  (Cross-*process* stampedes are handled one layer
  down, by the artifact store's rename-atomic commits.)
- **Crash safety**: every record transition is persisted through the
  :class:`~repro.service.jobs.JobStore` spool, so terminal jobs survive
  a restart and interrupted ones come back marked failed.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import wait as futures_wait

from repro.api import Session, _normalize_method, available_solvers
from repro.exceptions import ConfigError
from repro.runtime import (
    DEFAULT_SERVICE_WORKERS,
    DEFAULT_SPOOL_DIR,
    as_runtime,
    resolve_runtime,
)
from repro.service.jobs import JobRecord, JobSpec, JobStore, new_job_id

__all__ = [
    "JobQueue",
    "execute_spec",
]

#: "parameter not passed" marker — distinct from an explicit ``None``.
_UNSET = object()


def _jsonable(value):
    """Best-effort JSON projection of solver diagnostics."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [_jsonable(v) for v in items]
    try:
        return float(value)  # numpy scalars
    except (TypeError, ValueError):
        return repr(value)


def execute_spec(spec: JobSpec, *, runtime=None) -> tuple[dict, list]:
    """Run one job spec through a fresh :class:`~repro.api.Session`.

    Returns ``(result_payload, trace_payload)`` — both plain JSON-able,
    the shapes stored on a :class:`~repro.service.jobs.JobRecord`.
    This is the whole execution path of a queue worker; it is exposed
    so tests and batch drivers can run a spec inline.
    """
    session = Session.from_dataset(
        spec.dataset,
        pieces=spec.pieces,
        scale=spec.scale,
        k=spec.k,
        pool_fraction=spec.pool_fraction,
        seed=spec.seed,
        runtime=runtime,
    )
    # the context manager releases the session's warm sampling pool
    # even when the solver raises (the failure is recorded on the job)
    with session:
        if spec.delta is not None:
            return _execute_update(session, spec)
        if spec.evaluate:
            result = session.run(
                spec.method,
                theta=spec.theta,
                eval_theta=spec.eval_theta,
                **spec.options,
            )
        else:
            session.stage_trace.record("plan", "run", "problem")
            result = session.solve(
                spec.method,
                theta=spec.theta,
                evaluate=False,
                **spec.options,
            )
    payload = {
        "method": result.method,
        "seed_sets": [sorted(int(v) for v in s) for s in result.seed_sets],
        "estimate": float(result.estimate),
        "evaluation": (
            None if result.evaluation is None else float(result.evaluation)
        ),
        "diagnostics": _jsonable(result.diagnostics),
    }
    trace = [
        {
            "stage": e.stage,
            "action": e.action,
            "detail": e.detail,
            "seconds": e.seconds,
            "extra": _jsonable(e.extra),
        }
        for e in session.stage_trace
    ]
    return payload, trace


def _execute_update(session: Session, spec: JobSpec) -> tuple[dict, list]:
    """The incremental execution path of a ``delta``-carrying spec.

    Self-contained rather than stateful: the worker replays the base
    campaign on the incremental tier (every completed stage a cache hit
    when an artifact store is shared), then absorbs the composed delta
    through :meth:`~repro.api.Session.update` — regenerating only the
    delta-touched shards and re-solving warm.  The result payload gains
    an ``"incremental"`` block with the update's reuse accounting.
    """
    from repro.incremental.delta import GraphDelta

    session.sample_incremental(spec.theta)
    session.solve(spec.method, evaluate=False, **spec.options)
    update = session.update(
        GraphDelta.from_payload(spec.delta),
        method=spec.method,
        evaluate=spec.evaluate,
        eval_theta=spec.eval_theta,
        **spec.options,
    )
    result = update.result
    payload = {
        "method": result.method,
        "seed_sets": [sorted(int(v) for v in s) for s in result.seed_sets],
        "estimate": float(result.estimate),
        "evaluation": (
            None if result.evaluation is None else float(result.evaluation)
        ),
        "diagnostics": _jsonable(result.diagnostics),
        "incremental": {
            "theta_old": update.trace.theta_old,
            "theta_new": update.trace.theta_new,
            "shards_total": update.trace.shards_total,
            "shards_kept": update.trace.shards_kept,
            "shards_invalidated": update.trace.shards_invalidated,
            "shards_appended": update.trace.shards_appended,
            "shards_resampled": update.trace.shards_resampled,
            "dirty_vertices": update.trace.dirty_vertices,
            "staleness": update.trace.staleness,
        },
    }
    trace = [
        {
            "stage": e.stage,
            "action": e.action,
            "detail": e.detail,
            "seconds": e.seconds,
            "extra": _jsonable(e.extra),
        }
        for e in session.stage_trace
    ]
    return payload, trace


class JobQueue:
    """Submit/poll/cancel campaign jobs executed by background threads.

    Parameters
    ----------
    workers:
        Worker-thread count; defaults to ``REPRO_SERVICE_WORKERS``
        (else 2).  Threads suffice because the heavy lifting releases
        the GIL in the array kernels and scale-*out* is several service
        processes sharing one artifact directory — which the store's
        atomic commit path makes safe.
    runtime:
        Base :class:`~repro.runtime.Runtime` for every job (artifact
        cache location, backend, model...).  The queue resolves the
        artifact store once and pins the instance, so all workers share
        one coherent store.
    spool_dir:
        Job-record spool directory; defaults to ``REPRO_SPOOL``.  Pass
        ``None`` explicitly for a memory-only (non-persistent) queue.
    job_ttl:
        Terminal-record retention in seconds.  ``None`` (default) keeps
        records forever; with a TTL, a periodic sweep drops terminal
        records whose ``finished_at`` is older than the TTL from both
        memory and the spool, bounding an always-on service's footprint.
        Queued/running jobs are never evicted.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        runtime=None,
        spool_dir=_UNSET,
        job_ttl: float | None = None,
    ) -> None:
        if workers is None:
            workers = DEFAULT_SERVICE_WORKERS
        if (
            isinstance(workers, bool)
            or not isinstance(workers, int)
            or workers < 1
        ):
            raise ConfigError(
                f"workers must be a positive integer, got {workers!r}"
            )
        self.workers = workers
        if job_ttl is not None and (
            isinstance(job_ttl, bool)
            or not isinstance(job_ttl, (int, float))
            or job_ttl <= 0
        ):
            raise ConfigError(
                f"job_ttl must be a positive number of seconds or None, "
                f"got {job_ttl!r}"
            )
        self.job_ttl = None if job_ttl is None else float(job_ttl)
        base = as_runtime(runtime)
        self.artifact_store = resolve_runtime(
            base, caller="JobQueue"
        ).artifact_store()
        if self.artifact_store is not None:
            # dataclasses.replace works on Runtime and ResolvedRuntime
            # alike (Runtime.replace exists only on the former)
            base = dataclasses.replace(base, artifacts=self.artifact_store)
        self.runtime = base
        if spool_dir is _UNSET:
            spool_dir = DEFAULT_SPOOL_DIR
        self.store = JobStore(spool_dir)
        self._records: dict[str, JobRecord] = self.store.recover()
        self._futures: dict[str, object] = {}
        self._lock = threading.Lock()
        self._flights: dict[str, tuple[threading.Lock, int]] = {}
        self._coalesced = 0
        self._evicted = 0
        self._last_sweep = time.monotonic()
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-job"
        )
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self, *, wait: bool = True) -> None:
        """Stop accepting jobs and (optionally) drain the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=wait, cancel_futures=True)
        with self._lock:
            for job_id, future in self._futures.items():
                record = self._records[job_id]
                if future.cancelled() and not record.terminal:
                    record.state = "cancelled"
                    record.finished_at = time.time()
                    record.error = "service shut down before the job ran"
                    self.store.save(record)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- spool eviction ----------------------------------------------------

    def sweep(self, *, now: float | None = None) -> int:
        """Evict terminal records older than the TTL; returns the count.

        Called opportunistically from the submit/metrics paths (at most
        once per quarter-TTL) and directly by tests.  Only terminal
        records age out — their ``finished_at`` is the clock —  so a
        stuck-running job is never silently forgotten.
        """
        if self.job_ttl is None:
            return 0
        cutoff = (now if now is not None else time.time()) - self.job_ttl
        evicted: list[str] = []
        with self._lock:
            for job_id, record in list(self._records.items()):
                if not record.terminal:
                    continue
                finished = record.finished_at or record.submitted_at
                if finished < cutoff:
                    del self._records[job_id]
                    self._futures.pop(job_id, None)
                    evicted.append(job_id)
            self._evicted += len(evicted)
            self._last_sweep = time.monotonic()
        for job_id in evicted:
            self.store.delete(job_id)
        return len(evicted)

    def _maybe_sweep(self) -> None:
        if self.job_ttl is None:
            return
        interval = min(self.job_ttl / 4.0, 60.0)
        if time.monotonic() - self._last_sweep >= interval:
            self.sweep()

    # -- submission and polling --------------------------------------------

    def submit(self, spec) -> JobRecord:
        """Validate and enqueue one job; returns its (live) record."""
        self._maybe_sweep()
        if isinstance(spec, dict):
            spec = JobSpec.from_payload(spec)
        if not isinstance(spec, JobSpec):
            raise ConfigError(
                f"submit takes a JobSpec or payload dict, got "
                f"{type(spec).__name__}"
            )
        # Validated here, against the *live* registry, not in JobSpec:
        # register_solver may legitimately add methods after import.
        if _normalize_method(spec.method) not in available_solvers():
            raise ConfigError(
                f"unknown solver {spec.method!r}; available: "
                f"{list(available_solvers())}"
            )
        record = JobRecord(id=new_job_id(), spec=spec)
        with self._lock:
            if self._closed:
                raise ConfigError("the job queue is shut down")
            self._records[record.id] = record
            self.store.save(record)
            self._futures[record.id] = self._executor.submit(
                self._run_job, record.id
            )
        return record

    def submit_update(self, base_id: str, payload) -> JobRecord:
        """Enqueue an incremental update of job ``base_id``.

        ``payload`` is ``{"delta": {...}, "method"?: "..."}`` — the
        delta in :meth:`GraphDelta.to_payload` shape.  The new job's
        spec is the base spec plus the delta (composed with the base's
        own delta when updating an update), so it stays self-contained:
        any worker — or a restarted service — can execute it from the
        dataset alone, with the shared artifact cache absorbing the
        replayed stages.  Raises ``KeyError`` for an unknown base job.
        """
        base = self.get(base_id)  # KeyError → 404 at the HTTP layer
        if not isinstance(payload, dict):
            raise ConfigError(
                f"update payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        unknown = sorted(set(payload) - {"delta", "method"})
        if unknown:
            raise ConfigError(
                f"unknown update field(s) {unknown}; legal fields: "
                f"['delta', 'method']"
            )
        if "delta" not in payload:
            raise ConfigError("update payload is missing 'delta'")
        from repro.exceptions import DeltaError
        from repro.incremental.delta import GraphDelta

        try:
            delta = GraphDelta.from_payload(payload["delta"])
            if base.spec.delta is not None:
                delta = GraphDelta.from_payload(base.spec.delta).compose(
                    delta
                )
        except DeltaError as err:
            raise ConfigError(f"invalid delta payload: {err}") from err
        spec = dataclasses.replace(
            base.spec,
            update_of=base_id,
            delta=delta.to_payload(),
            method=payload.get("method", base.spec.method),
        )
        return self.submit(spec)

    def get(self, job_id: str) -> JobRecord:
        """The live record for ``job_id`` (KeyError when unknown)."""
        with self._lock:
            return self._records[job_id]

    def payload(self, job_id: str, *, with_result: bool = True) -> dict:
        """A consistent JSON snapshot of one record (taken under lock)."""
        with self._lock:
            return self._records[job_id].to_payload(with_result=with_result)

    def jobs(self) -> list[JobRecord]:
        """All known records, oldest submission first."""
        with self._lock:
            records = list(self._records.values())
        return sorted(records, key=lambda r: (r.submitted_at, r.id))

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel ``job_id`` if it has not started; returns the record.

        A job already running is not interrupted (solvers have no safe
        preemption point); the returned record's state says which way
        it went.
        """
        with self._lock:
            record = self._records[job_id]
            future = self._futures.get(job_id)
            if record.terminal or future is None:
                return record
            if future.cancel():
                record.state = "cancelled"
                record.finished_at = time.time()
                self.store.save(record)
        return record

    def wait(self, job_id: str, timeout: float | None = None) -> JobRecord:
        """Block until ``job_id`` is terminal (or ``timeout`` elapses)."""
        with self._lock:
            record = self._records[job_id]
            future = self._futures.get(job_id)
        if future is not None and not record.terminal:
            futures_wait([future], timeout=timeout)
        return self.get(job_id)

    def metrics(self) -> dict:
        """Queue and cache counters for the ``/metrics`` endpoint."""
        self._maybe_sweep()
        with self._lock:
            states = [r.state for r in self._records.values()]
            coalesced = self._coalesced
            evicted = self._evicted
        cache = (
            self.artifact_store.stats()
            if self.artifact_store is not None
            else None
        )
        return {
            "jobs": {
                "submitted": len(states),
                "queued": states.count("queued"),
                "running": states.count("running"),
                "done": states.count("done"),
                "failed": states.count("failed"),
                "cancelled": states.count("cancelled"),
            },
            "queue_depth": states.count("queued"),
            "workers": self.workers,
            "single_flight_coalesced": coalesced,
            "job_ttl": self.job_ttl,
            "jobs_evicted": evicted,
            "cache": cache,
        }

    # -- execution ---------------------------------------------------------

    @contextlib.contextmanager
    def _single_flight(self, fingerprint: str):
        """Hold the per-spec-fingerprint lock; refcounted for cleanup."""
        with self._lock:
            lock, refs = self._flights.get(fingerprint, (None, 0))
            if lock is None:
                lock = threading.Lock()
            self._flights[fingerprint] = (lock, refs + 1)
        contended = not lock.acquire(blocking=False)
        if contended:
            with self._lock:
                self._coalesced += 1
            lock.acquire()
        try:
            yield
        finally:
            lock.release()
            with self._lock:
                lock, refs = self._flights[fingerprint]
                if refs <= 1:
                    del self._flights[fingerprint]
                else:
                    self._flights[fingerprint] = (lock, refs - 1)

    def _run_job(self, job_id: str) -> None:
        with self._lock:
            record = self._records[job_id]
            if record.terminal:  # cancelled in the submit/run race
                return
            record.state = "running"
            record.started_at = time.time()
            self.store.save(record)
        try:
            with self._single_flight(record.spec.fingerprint()):
                result, trace = execute_spec(
                    record.spec, runtime=self.runtime
                )
        except Exception as err:  # job failure is a *result*, not a crash
            with self._lock:
                record.state = "failed"
                record.error = f"{type(err).__name__}: {err}"
                record.finished_at = time.time()
                self.store.save(record)
            return
        with self._lock:
            record.result = result
            record.trace = trace
            record.state = "done"
            record.finished_at = time.time()
            self.store.save(record)
