"""``python -m repro.service`` — run the influence service.

Example::

    python -m repro.service --port 8080 --workers 4 \
        --artifact-dir /var/cache/repro --spool /var/spool/repro

Unset flags fall back to the ``REPRO_SERVICE_WORKERS`` /
``REPRO_ARTIFACTS`` / ``REPRO_SPOOL`` environment knobs (parsed in
:mod:`repro.runtime`, like every other ``REPRO_*`` variable).
"""

from __future__ import annotations

import argparse
import sys

from repro.runtime import EXECUTORS, Runtime
from repro.service.http import create_server
from repro.service.queue import JobQueue


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Influence-maximisation job service (stdlib HTTP).",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    parser.add_argument(
        "--port", type=int, default=8008,
        help="bind port, 0 for ephemeral (default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="job worker threads (default: REPRO_SERVICE_WORKERS or 2)",
    )
    parser.add_argument(
        "--artifact-dir", default=None, metavar="DIR",
        help="shared artifact cache directory (default: REPRO_ARTIFACTS)",
    )
    parser.add_argument(
        "--spool", default=None, metavar="DIR",
        help="job-record spool directory (default: REPRO_SPOOL)",
    )
    parser.add_argument(
        "--job-ttl", type=float, default=None, metavar="SECONDS",
        help="evict terminal job records older than this many seconds "
        "(default: keep forever)",
    )
    parser.add_argument(
        "--executor", default=None, choices=list(EXECUTORS),
        help="sampling executor for jobs — 'spawned' runs disk-store "
        "generation as cooperating worker processes "
        "(default: REPRO_EXECUTOR or thread)",
    )
    parser.add_argument(
        "--sampling-workers", type=int, default=None, metavar="N",
        help="sampling pool / distributed-worker width per job "
        "(default: REPRO_WORKERS)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    runtime_fields = {}
    if args.artifact_dir is not None:
        runtime_fields["artifacts"] = args.artifact_dir
    if args.executor is not None:
        runtime_fields["executor"] = args.executor
    if args.sampling_workers is not None:
        runtime_fields["workers"] = args.sampling_workers
    runtime = Runtime(**runtime_fields) if runtime_fields else None
    kwargs = {"workers": args.workers, "runtime": runtime}
    if args.spool is not None:
        kwargs["spool_dir"] = args.spool
    if args.job_ttl is not None:
        kwargs["job_ttl"] = args.job_ttl
    queue = JobQueue(**kwargs)
    server = create_server(queue, host=args.host, port=args.port)
    cache = (
        getattr(queue.artifact_store, "root", "memory")
        if queue.artifact_store is not None
        else "off"
    )
    print(
        f"repro.service listening on {server.url} "
        f"(workers={queue.workers}, cache={cache}, "
        f"spool={queue.store.spool_dir or 'off'})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        queue.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
