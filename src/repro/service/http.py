"""Thin JSON-over-HTTP front for a :class:`~repro.service.queue.JobQueue`.

Stdlib only (:mod:`http.server`); the handler does no pipeline work —
every request is a queue call, so the slowest endpoint is bounded by a
lock acquisition, never by sampling.

Routes::

    POST /v1/jobs             submit a campaign job        → 201 record
    GET  /v1/jobs/{id}        poll status + stage trace    → 200 record
    GET  /v1/jobs/{id}/result fetch the result             → 200 when done,
                              202 while pending, 409 failed/cancelled
    POST /v1/jobs/{id}/cancel cancel a not-yet-running job → 200 record
    POST /v1/jobs/{id}/update submit an incremental update → 201 record
                              (body: {"delta": {...}, "method"?: "..."})
    GET  /healthz             liveness                     → 200
    GET  /metrics             queue + cache counters       → 200

Errors are JSON too: ``{"error": "..."}`` with 400 (bad spec), 404
(unknown job), 405 (bad verb) or 413 (oversized body).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import ConfigError
from repro.service.jobs import JobSpec
from repro.service.queue import JobQueue

__all__ = [
    "InfluenceServer",
    "create_server",
]

#: Submission bodies above this are rejected (spec payloads are tiny).
MAX_BODY_BYTES = 1 << 20


class InfluenceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`JobQueue`."""

    daemon_threads = True

    def __init__(self, address, queue: JobQueue) -> None:
        super().__init__(address, _Handler)
        self.queue = queue

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving and drain the job queue."""
        self.shutdown()
        self.server_close()
        self.queue.close()


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002
        pass  # quiet by default: a poll loop would spam stderr

    @property
    def queue(self) -> JobQueue:
        return self.server.queue

    # -- plumbing ----------------------------------------------------------

    def _send_json(self, status: int, payload) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self):
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._error(400, "bad Content-Length")
            return None
        if length > MAX_BODY_BYTES:
            self._error(413, "request body too large")
            return None
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode() or "null")
        except (UnicodeDecodeError, ValueError):
            self._error(400, "request body is not valid JSON")
            return None

    def _job_id(self, parts: list[str]) -> str | None:
        """``["v1", "jobs", "<id>", ...]`` → the id, or 404."""
        job_id = parts[2]
        try:
            self.queue.get(job_id)
        except KeyError:
            self._error(404, f"unknown job {job_id!r}")
            return None
        return job_id

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/healthz":
            self._send_json(
                200, {"status": "ok", "workers": self.queue.workers}
            )
            return
        if path == "/metrics":
            self._send_json(200, self.queue.metrics())
            return
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
            job_id = self._job_id(parts)
            if job_id is None:
                return
            if len(parts) == 3:
                self._send_json(
                    200, self.queue.payload(job_id, with_result=False)
                )
                return
            if len(parts) == 4 and parts[3] == "result":
                self._get_result(job_id)
                return
        self._error(404, f"no route for GET {path!r}")

    def _get_result(self, job_id: str) -> None:
        payload = self.queue.payload(job_id)
        state = payload["state"]
        if state == "done":
            self._send_json(200, payload)
        elif state in ("queued", "running"):
            self._send_json(202, {"id": job_id, "state": state})
        else:  # failed | cancelled
            self._send_json(
                409,
                {"id": job_id, "state": state, "error": payload["error"]},
            )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/")
        parts = [p for p in path.split("/") if p]
        if parts == ["v1", "jobs"]:
            payload = self._read_body()
            if payload is None:
                return
            try:
                record = self.queue.submit(JobSpec.from_payload(payload))
            except ConfigError as err:
                self._error(400, str(err))
                return
            self._send_json(
                201, self.queue.payload(record.id, with_result=False)
            )
            return
        if (
            len(parts) == 4
            and parts[:2] == ["v1", "jobs"]
            and parts[3] == "cancel"
        ):
            job_id = self._job_id(parts)
            if job_id is None:
                return
            self.queue.cancel(job_id)
            self._send_json(
                200, self.queue.payload(job_id, with_result=False)
            )
            return
        if (
            len(parts) == 4
            and parts[:2] == ["v1", "jobs"]
            and parts[3] == "update"
        ):
            job_id = self._job_id(parts)
            if job_id is None:
                return
            payload = self._read_body()
            if payload is None:
                return
            try:
                record = self.queue.submit_update(job_id, payload)
            except ConfigError as err:
                self._error(400, str(err))
                return
            self._send_json(
                201, self.queue.payload(record.id, with_result=False)
            )
            return
        self._error(405 if parts[:1] == ["healthz"] else 404,
                    f"no route for POST {path!r}")


def create_server(
    queue: JobQueue, *, host: str = "127.0.0.1", port: int = 0
) -> InfluenceServer:
    """Bind an :class:`InfluenceServer` (``port=0`` picks a free port).

    The server is bound but not serving; call ``serve_forever()`` (or
    run it on a thread) and ``close()`` when done.
    """
    return InfluenceServer((host, port), queue)
