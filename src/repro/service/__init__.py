"""Influence-as-a-service: a job API over the :class:`repro.api.Session`.

The pipeline behind one :meth:`Session.run` call — plan, sample, index,
solve, evaluate — takes seconds to minutes; a synchronous API would
hold an HTTP connection (and a client) hostage for all of it.  This
package wraps the pipeline in a small, stdlib-only service instead:

- :class:`JobSpec` / :class:`JobRecord` — one campaign request and its
  lifecycle, as plain JSON.
- :class:`JobStore` — the crash-safe on-disk job spool.
- :class:`JobQueue` — thread workers executing specs off the request
  path, with single-flight coalescing of identical concurrent specs.
- :func:`create_server` / :class:`InfluenceServer` — the HTTP front
  (``python -m repro.service`` runs one).

All workers — and all *processes* pointed at the same artifact
directory — share one content-addressed cache, so a campaign computed
once is served warm everywhere with zero sampling; see ``SERVICE.md``.
"""

from repro.service.http import InfluenceServer, create_server
from repro.service.jobs import JobRecord, JobSpec, JobStore
from repro.service.queue import JobQueue, execute_spec

__all__ = [
    "InfluenceServer",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "create_server",
    "execute_spec",
]
