"""Job vocabulary of the influence service: specs, records, the spool.

A *job* is one campaign optimisation request — "on this dataset, with
this campaign shape, run this solver at this theta" — expressed as a
plain-JSON :class:`JobSpec` so it can travel over HTTP, be persisted,
and be fingerprinted for the single-flight/cache machinery.  A
:class:`JobRecord` is the service's view of one submitted job: its
state machine (``queued → running → done|failed|cancelled``), wall
clock timestamps, the per-stage pipeline trace, and the result payload.

:class:`JobStore` is the crash-safe spool: every record mutation is
persisted as one atomically-replaced JSON file under
``spool_dir/jobs/``, so terminal states survive a service restart.
Jobs that were queued or running when the process died are marked
``failed`` on recovery with an explanatory error — resubmitting them is
cheap because every completed pipeline stage is served from the shared
artifact cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
import uuid
from dataclasses import dataclass, field, replace

from repro.datasets.registry import DATASET_SPECS
from repro.exceptions import ConfigError
from repro.runtime import MODELS

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "new_job_id",
]

#: The job state machine, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job can never leave (and the ones that survive restarts).
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Spec fields a client may not smuggle in through ``options``.
_RESERVED_OPTIONS = (
    "method", "theta", "seed", "evaluate", "eval_theta", "runtime",
)


def new_job_id() -> str:
    """A fresh, URL-safe job identifier."""
    return f"job-{uuid.uuid4().hex[:12]}"


def _check_positive_int(name: str, value, *, optional: bool = False):
    if value is None and optional:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ConfigError(f"{name} must be a positive integer, got {value!r}")
    return value


def _check_model(model):
    if model is None or model in MODELS:
        return model
    if isinstance(model, str):
        raise ConfigError(f"model must be one of {MODELS}, got {model!r}")
    try:
        models = tuple(model)
    except TypeError:
        raise ConfigError(
            f"model must be one of {MODELS} or a list of them, got {model!r}"
        ) from None
    for m in models:
        if m not in MODELS:
            raise ConfigError(f"model must be one of {MODELS}, got {m!r}")
    return list(models)


@dataclass(frozen=True)
class JobSpec:
    """One campaign optimisation request, as plain JSON-able data.

    ``dataset``/``scale``/``pieces``/``seed`` describe the problem the
    same way :meth:`repro.api.Session.from_dataset` does; ``method`` /
    ``theta`` / ``options`` describe the solver invocation; ``seed``
    defaults to ``0`` so jobs are reproducible — and therefore served
    from the shared artifact cache — unless a client explicitly asks
    for an unseeded draw with ``"seed": null``.
    """

    dataset: str
    theta: int
    method: str = "bab-p"
    pieces: int = 3
    k: int = 10
    seed: int | None = 0
    scale: float | None = None
    pool_fraction: float = 0.1
    model: object = None
    evaluate: bool = True
    eval_theta: int | None = None
    options: dict = field(default_factory=dict)
    #: Id of the job this spec is an incremental update of (set by
    #: ``POST /v1/jobs/{id}/update``; always together with ``delta``).
    update_of: str | None = None
    #: Graph-delta payload (``GraphDelta.to_payload`` shape) applied by
    #: the incremental execution path.  The spec stays self-contained:
    #: chained updates compose their deltas against the base dataset.
    delta: dict | None = None

    def __post_init__(self) -> None:
        if self.dataset not in DATASET_SPECS:
            raise ConfigError(
                f"unknown dataset {self.dataset!r}; available: "
                f"{sorted(DATASET_SPECS)}"
            )
        # method existence is checked against the live solver registry
        # at submit time (register_solver may add names after import)
        if not isinstance(self.method, str) or not self.method.strip():
            raise ConfigError(f"method must be a solver name, got "
                              f"{self.method!r}")
        _check_positive_int("theta", self.theta)
        _check_positive_int("pieces", self.pieces)
        _check_positive_int("k", self.k)
        _check_positive_int("eval_theta", self.eval_theta, optional=True)
        if self.seed is not None and (
            isinstance(self.seed, bool) or not isinstance(self.seed, int)
        ):
            raise ConfigError(
                f"seed must be an integer or null, got {self.seed!r}"
            )
        if self.scale is not None:
            if not isinstance(self.scale, (int, float)) or self.scale <= 0:
                raise ConfigError(
                    f"scale must be a positive number, got {self.scale!r}"
                )
        if not isinstance(self.pool_fraction, (int, float)) or not (
            0 < self.pool_fraction <= 1
        ):
            raise ConfigError(
                f"pool_fraction must be in (0, 1], got {self.pool_fraction!r}"
            )
        object.__setattr__(self, "model", _check_model(self.model))
        if not isinstance(self.evaluate, bool):
            raise ConfigError(
                f"evaluate must be true or false, got {self.evaluate!r}"
            )
        if not isinstance(self.options, dict):
            raise ConfigError(
                f"options must be a JSON object, got {self.options!r}"
            )
        for name in self.options:
            if not isinstance(name, str):
                raise ConfigError(f"option names must be strings, got {name!r}")
            if name in _RESERVED_OPTIONS:
                raise ConfigError(
                    f"option {name!r} is a top-level job field, not a "
                    "solver option"
                )
        try:
            json.dumps(self.options)
        except (TypeError, ValueError) as err:
            raise ConfigError(
                f"options must be JSON-serialisable: {err}"
            ) from err
        if (self.update_of is None) != (self.delta is None):
            raise ConfigError(
                "update_of and delta must be provided together"
            )
        if self.update_of is not None and not isinstance(self.update_of, str):
            raise ConfigError(
                f"update_of must be a job id string, got {self.update_of!r}"
            )
        if self.delta is not None:
            from repro.exceptions import DeltaError
            from repro.incremental.delta import GraphDelta

            try:
                GraphDelta.from_payload(self.delta)
            except DeltaError as err:
                raise ConfigError(f"invalid delta payload: {err}") from err

    _FIELDS = (
        "dataset", "theta", "method", "pieces", "k", "seed", "scale",
        "pool_fraction", "model", "evaluate", "eval_theta", "options",
        "update_of", "delta",
    )

    @classmethod
    def from_payload(cls, payload) -> "JobSpec":
        """Validate a client JSON payload into a spec.

        Unknown keys are rejected loudly — a typo'd knob silently doing
        nothing is how a "cached" job quietly runs the wrong campaign.
        """
        if not isinstance(payload, dict):
            raise ConfigError(
                f"job payload must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        unknown = sorted(set(payload) - set(cls._FIELDS))
        if unknown:
            raise ConfigError(
                f"unknown job field(s) {unknown}; legal fields: "
                f"{list(cls._FIELDS)}"
            )
        missing = [f for f in ("dataset", "theta") if f not in payload]
        if missing:
            raise ConfigError(f"job payload is missing {missing}")
        return cls(**payload)

    def to_payload(self) -> dict:
        """The spec as a plain JSON-able dict (inverse of from_payload)."""
        return {name: getattr(self, name) for name in self._FIELDS}

    def fingerprint(self) -> str:
        """Content identity of this spec (single-flight / dedup token)."""
        token = json.dumps(self.to_payload(), sort_keys=True)
        return hashlib.sha256(token.encode()).hexdigest()


@dataclass
class JobRecord:
    """The service's view of one submitted job."""

    id: str
    spec: JobSpec
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    #: JSON-able result payload (seed sets, estimates, diagnostics).
    result: dict | None = None
    #: JSON-able stage trace: [{stage, action, detail, seconds}, ...].
    trace: list = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_payload(self, *, with_result: bool = True) -> dict:
        payload = {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_payload(),
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "trace": list(self.trace),
        }
        if with_result:
            payload["result"] = self.result
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "JobRecord":
        spec = JobSpec.from_payload(payload["spec"])
        state = payload.get("state", "queued")
        if state not in JOB_STATES:
            raise ConfigError(f"unknown job state {state!r}")
        return cls(
            id=str(payload["id"]),
            spec=spec,
            state=state,
            submitted_at=float(payload.get("submitted_at") or 0.0),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            error=payload.get("error"),
            result=payload.get("result"),
            trace=list(payload.get("trace") or []),
        )


class JobStore:
    """Crash-safe job spool: one atomically-written JSON file per job.

    ``spool_dir=None`` keeps records in memory only (tests, ephemeral
    services); with a directory, every :meth:`save` is a write-temp +
    ``os.replace`` so a record file is never observed torn, and
    :meth:`recover` reloads the spool after a restart — terminal
    records verbatim, interrupted ones marked failed.
    """

    def __init__(self, spool_dir: str | os.PathLike | None = None) -> None:
        self.spool_dir = None if spool_dir is None else os.fspath(spool_dir)
        if self.spool_dir is not None:
            os.makedirs(self._jobs_dir, exist_ok=True)

    @property
    def _jobs_dir(self) -> str:
        return os.path.join(self.spool_dir, "jobs")

    def _path(self, job_id: str) -> str:
        return os.path.join(self._jobs_dir, f"{job_id}.json")

    def save(self, record: JobRecord) -> None:
        if self.spool_dir is None:
            return
        fd, tmp = tempfile.mkstemp(dir=self._jobs_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record.to_payload(), fh)
            os.replace(tmp, self._path(record.id))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def delete(self, job_id: str) -> None:
        """Remove one record file from the spool (missing is a no-op)."""
        if self.spool_dir is None:
            return
        try:
            os.remove(self._path(job_id))
        except OSError:
            pass

    def recover(self) -> dict[str, JobRecord]:
        """Reload the spool; mark interrupted jobs failed.

        Unreadable record files (torn by a crash mid-rename on a
        non-atomic filesystem, or hand-edited) are skipped rather than
        taking the whole service down.
        """
        records: dict[str, JobRecord] = {}
        if self.spool_dir is None:
            return records
        try:
            names = sorted(os.listdir(self._jobs_dir))
        except OSError:
            return records
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self._jobs_dir, name)
            try:
                with open(path) as fh:
                    record = JobRecord.from_payload(json.load(fh))
            except (OSError, ValueError, KeyError, ConfigError):
                continue
            if not record.terminal:
                record = replace(
                    record,
                    state="failed",
                    finished_at=record.finished_at or time.time(),
                    error=(
                        "interrupted by a service restart — resubmit; "
                        "completed stages are served from the artifact "
                        "cache"
                    ),
                )
                self.save(record)
            records[record.id] = record
        return records
