"""Exchange-based local search over assignment plans (an extension).

The paper's solvers stop at the branch-and-bound incumbent.  A natural
post-processing step — standard in the IM toolbox, and useful here
because BAB-P's progressive bound can leave budget unused — is
first-improvement *exchange* search over the plan space:

* **fill moves**: while the budget has slack, add the best
  (vertex, piece) assignment;
* **swap moves**: replace one existing assignment with a currently
  unused one (possibly for a different piece) whenever the estimated AU
  strictly improves.

The search only ever *increases* the MRR-estimated utility and
terminates at a plan that is 1-exchange-optimal.  The ablation
benchmark measures how much it recovers on top of BAB-P.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import AssignmentPlan
from repro.core.problem import OIPAProblem
from repro.sampling.mrr import MRRCollection
from repro.utils.timer import Timer

__all__ = ["LocalSearchResult", "local_search"]


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of a local-search pass."""

    plan: AssignmentPlan
    utility: float
    initial_utility: float
    fills: int
    swaps: int
    rounds: int
    elapsed_seconds: float

    @property
    def improvement(self) -> float:
        """Absolute AU gained over the starting plan."""
        return self.utility - self.initial_utility


def _estimate(mrr: MRRCollection, problem: OIPAProblem, plan: AssignmentPlan) -> float:
    return mrr.estimate(plan.seed_lists(), problem.adoption)


def local_search(
    problem: OIPAProblem,
    mrr: MRRCollection,
    plan: AssignmentPlan,
    *,
    max_rounds: int = 10,
) -> LocalSearchResult:
    """Improve ``plan`` by greedy fill and first-improvement swaps.

    Parameters
    ----------
    problem, mrr:
        The instance and the sample collection scoring moves.
    plan:
        Starting plan (typically a solver incumbent).  Must be feasible.
    max_rounds:
        Upper bound on full passes; each pass is O(k * |V^p| * l)
        estimate evaluations, so keep this small on large pools.
    """
    problem.validate_plan(plan)
    timer = Timer().start()
    initial = _estimate(mrr, problem, plan)
    current_plan = plan
    current = initial
    fills = swaps = rounds = 0
    pool = [int(v) for v in problem.pool]

    for _ in range(max_rounds):
        rounds += 1
        improved = False

        # Fill any remaining budget with the best single addition.
        while current_plan.size < problem.k:
            best_gain, best_move = 0.0, None
            for j in range(problem.num_pieces):
                taken = current_plan.seed_sets[j]
                for v in pool:
                    if v in taken:
                        continue
                    candidate = current_plan.with_assignment(v, j)
                    gain = _estimate(mrr, problem, candidate) - current
                    if gain > best_gain:
                        best_gain, best_move = gain, (v, j)
            if best_move is None:
                break
            current_plan = current_plan.with_assignment(*best_move)
            current += best_gain
            fills += 1
            improved = True

        # First-improvement swap scan.
        swap_done = False
        for v_out, j_out in current_plan.assignments():
            reduced_sets = [set(s) for s in current_plan.seed_sets]
            reduced_sets[j_out].discard(v_out)
            reduced = AssignmentPlan(reduced_sets)
            for j_in in range(problem.num_pieces):
                taken = reduced.seed_sets[j_in]
                for v_in in pool:
                    if v_in in taken or (v_in, j_in) == (v_out, j_out):
                        continue
                    candidate = reduced.with_assignment(v_in, j_in)
                    score = _estimate(mrr, problem, candidate)
                    if score > current + 1e-12:
                        current_plan, current = candidate, score
                        swaps += 1
                        improved = swap_done = True
                        break
                if swap_done:
                    break
            if swap_done:
                break

        if not improved:
            break

    return LocalSearchResult(
        plan=current_plan,
        utility=current,
        initial_utility=initial,
        fills=fills,
        swaps=swaps,
        rounds=rounds,
        elapsed_seconds=timer.stop(),
    )
