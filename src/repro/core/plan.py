"""Assignment plans and their algebra (Sec. IV-A, Defs. 2-4).

An assignment plan ``S-bar = {S_1, ..., S_l}`` assigns a seed set of
promoters to every campaign piece.  The paper defines a containment
partial order over plans (Def. 2), plan unions and marginal gains
(Def. 3), and piece-indexed ``i``-unions (Def. 4); the monotonicity /
submodularity notions of Def. 5 are phrased over this order, so the plan
algebra here is what the property-based tests quantify over.

Plans are immutable: every operation returns a new plan.  Seed sets are
``frozenset``s, and the plan's *size* is the total number of assignments
``|S-bar| = sum_j |S_j|`` (the budget the OIPA constraint caps).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.exceptions import SolverError

__all__ = ["AssignmentPlan"]


class AssignmentPlan:
    """Immutable plan: one frozen seed set per campaign piece."""

    __slots__ = ("seed_sets",)

    def __init__(self, seed_sets: Sequence[Iterable[int]]) -> None:
        sets = tuple(frozenset(int(v) for v in s) for s in seed_sets)
        if not sets:
            raise SolverError("a plan needs at least one piece slot")
        self.seed_sets: tuple[frozenset[int], ...] = sets

    @classmethod
    def empty(cls, num_pieces: int) -> "AssignmentPlan":
        """The empty plan ``{∅, ..., ∅}`` over ``num_pieces`` pieces."""
        if num_pieces < 1:
            raise SolverError(f"need at least one piece, got {num_pieces}")
        return cls([frozenset()] * num_pieces)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------

    @property
    def num_pieces(self) -> int:
        """Number of piece slots ``l``."""
        return len(self.seed_sets)

    @property
    def size(self) -> int:
        """Total assignments ``|S-bar| = sum_j |S_j|`` (budget usage)."""
        return sum(len(s) for s in self.seed_sets)

    def is_empty(self) -> bool:
        """True when every seed set is empty."""
        return all(not s for s in self.seed_sets)

    def assignments(self) -> list[tuple[int, int]]:
        """All ``(vertex, piece)`` pairs, sorted for determinism."""
        return sorted(
            (v, j) for j, s in enumerate(self.seed_sets) for v in s
        )

    def seed_lists(self) -> list[list[int]]:
        """Sorted-list view per piece (the sampling API's plan format)."""
        return [sorted(s) for s in self.seed_sets]

    def contains(self, other: "AssignmentPlan") -> bool:
        """Containment per Def. 2: ``other ⊆ self`` piecewise."""
        self._check_compatible(other)
        return all(
            o <= s for o, s in zip(other.seed_sets, self.seed_sets)
        )

    def __contains__(self, assignment: tuple[int, int]) -> bool:
        v, j = assignment
        return 0 <= j < self.num_pieces and v in self.seed_sets[j]

    # ------------------------------------------------------------------
    # algebra (Defs. 3-4)
    # ------------------------------------------------------------------

    def union(self, other: "AssignmentPlan") -> "AssignmentPlan":
        """Plan union per Def. 3: piecewise seed-set union."""
        self._check_compatible(other)
        return AssignmentPlan(
            [a | b for a, b in zip(self.seed_sets, other.seed_sets)]
        )

    def i_union(self, piece: int, seeds: Iterable[int]) -> "AssignmentPlan":
        """``i``-union per Def. 4: union ``seeds`` into piece ``piece``."""
        self._check_piece(piece)
        new_sets = list(self.seed_sets)
        new_sets[piece] = new_sets[piece] | frozenset(int(v) for v in seeds)
        return AssignmentPlan(new_sets)

    def with_assignment(self, vertex: int, piece: int) -> "AssignmentPlan":
        """Add one ``(vertex, piece)`` assignment (no-op if present)."""
        return self.i_union(piece, (vertex,))

    def difference(self, other: "AssignmentPlan") -> "AssignmentPlan":
        """Piecewise set difference ``self \\ other`` (paper's notation)."""
        self._check_compatible(other)
        return AssignmentPlan(
            [a - b for a, b in zip(self.seed_sets, other.seed_sets)]
        )

    # ------------------------------------------------------------------
    # internals / dunders
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "AssignmentPlan") -> None:
        if not isinstance(other, AssignmentPlan):
            raise SolverError(f"expected AssignmentPlan, got {type(other).__name__}")
        if other.num_pieces != self.num_pieces:
            raise SolverError(
                f"plans disagree on piece count: {self.num_pieces} vs "
                f"{other.num_pieces}"
            )

    def _check_piece(self, piece: int) -> None:
        if not (0 <= piece < self.num_pieces):
            raise SolverError(
                f"piece index {piece} outside [0, {self.num_pieces})"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AssignmentPlan):
            return NotImplemented
        return self.seed_sets == other.seed_sets

    def __hash__(self) -> int:
        return hash(self.seed_sets)

    def __repr__(self) -> str:
        body = ", ".join(
            "{" + ", ".join(map(str, sorted(s))) + "}" for s in self.seed_sets
        )
        return f"AssignmentPlan([{body}])"
