"""``ComputeBoundPro`` — progressive upper-bound estimation (Algorithm 3).

The plain greedy of Algorithm 2 rescans every candidate per selection,
``O(k n)`` tau evaluations per bound.  Algorithm 3 instead:

1. sorts candidates once by their *individual* gain ``delta_∅(v)``;
2. runs a decreasing-threshold sweep: at threshold ``h``, any candidate
   whose current marginal gain reaches ``h`` is taken immediately;
3. breaks a sweep early as soon as a candidate's individual gain falls
   below ``h`` — by submodularity everything after it in the sorted order
   is also below ``h`` (line 11-12 of the paper's pseudocode);
4. lowers ``h`` geometrically by ``(1 + eps)`` (line 13) and stops the
   whole procedure once ``h <= tau(S-bar|S-bar^a)/(k - |S-bar^a|) *
   e^{-1}/(1 - e^{-1})`` (line 14) — at that point even taking every
   remaining candidate cannot lift the optimum above
   ``tau / (1 - 1/e)``, which is what Theorem 3's ``d < k'`` case needs.

The result carries a (1 − 1/e − eps) guarantee (Lemma 3 / Theorem 3) at a
fraction of the evaluations (Theorem 4): the early break means only
candidates whose individual gain lies within the current threshold window
are ever touched, and the power-law influence distribution keeps that
window sparse.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.compute_bound import (
    BoundResult,
    CandidateSpace,
    evaluate_pair_gains,
)
from repro.core.coverage import CoverageState
from repro.core.plan import AssignmentPlan
from repro.core.tangent import MajorantTable
from repro.core.upper_bound import TauState
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import SolverError
from repro.sampling.mrr import MRRCollection
from repro.utils.validation import check_positive

__all__ = ["compute_bound_progressive"]

_E_FACTOR = math.exp(-1) / (1.0 - math.exp(-1))  # e^{-1} / (1 - e^{-1})


def compute_bound_progressive(
    mrr: MRRCollection,
    table: MajorantTable,
    adoption: AdoptionModel,
    partial_plan: AssignmentPlan,
    candidates: CandidateSpace,
    k: int,
    *,
    epsilon: float = 0.5,
    base: CoverageState | None = None,
) -> BoundResult:
    """Run Algorithm 3 for one search node.

    ``epsilon`` is the threshold-decay knob the experiments sweep in
    Fig. 3: larger values take bigger threshold steps (faster, coarser),
    degrading the guarantee to (1 − 1/e − eps).  ``base`` optionally
    supplies a pre-built coverage of ``partial_plan`` (see
    :func:`repro.core.compute_bound.compute_bound`); bounds are
    identical either way.
    """
    check_positive("epsilon", epsilon)
    if partial_plan.size > k:
        raise SolverError(
            f"partial plan already uses {partial_plan.size} > k = {k}"
        )
    if base is None:
        base = CoverageState.from_plan(mrr, partial_plan)
    tau = TauState(mrr, table, base, adoption)
    budget = k - partial_plan.size

    # Line 2: order candidates by individual gain delta_∅(v) — one
    # batched kernel scan instead of a per-candidate loop.
    pairs = candidates.pairs(partial_plan)
    initial = evaluate_pair_gains(tau, pairs)
    individual: list[tuple[float, tuple[int, int]]] = [
        (float(gain), pair)
        for gain, pair in zip(initial, pairs)
        if gain > 0.0
    ]
    individual.sort(key=lambda item: -item[0])

    picks: list[tuple[int, int]] = []
    if individual and budget > 0:
        # Lines 3-4: threshold starts at the largest individual gain.
        max_inf = individual[0][0]
        h = max_inf
        chosen: set[tuple[int, int]] = set()
        # Lines 6-15: progressive threshold sweep.
        while len(picks) < budget:
            advanced = False
            for delta_0, pair in individual:
                if delta_0 < h:
                    # Lines 11-12: sorted order => everything further is
                    # below h too (submodularity: marginal <= individual).
                    break
                if pair in chosen:
                    continue
                # Same kernel as the initial scan, so cached individual
                # gains and fresh re-evaluations round identically.
                gain = float(
                    tau.marginal_gains(
                        np.asarray([pair[0]], dtype=np.int64), pair[1]
                    )[0]
                )
                if gain >= h:
                    tau.add(pair[0], pair[1])
                    chosen.add(pair)
                    picks.append(pair)
                    advanced = True
                    if len(picks) >= budget:
                        break
            if len(picks) >= budget:
                break
            # Line 13: lower the threshold geometrically.
            h = h / (1.0 + epsilon)
            # Line 14: early termination once h is provably negligible.
            if h <= tau.value / budget * _E_FACTOR:
                break
            # Safety: once the threshold sinks below every remaining
            # individual gain and a full sweep added nothing, no further
            # sweep can add anything either.
            if not advanced and h < min(g for g, _ in individual):
                break

    plan = partial_plan
    for v, j in picks:
        plan = plan.with_assignment(v, j)
    return BoundResult(
        plan=plan,
        lower=tau.utility(),
        upper=tau.value,
        first_pick=picks[0] if picks else None,
        evaluations=tau.evaluations,
        selected=len(picks),
    )
