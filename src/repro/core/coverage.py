"""Incremental per-sample coverage bookkeeping over an MRR collection.

Every solver needs the same two quantities, updated as assignments are
added: which (sample, piece) cells are already covered, and how many
distinct pieces cover each sample (``counts``).  :class:`CoverageState`
maintains both with O(index lookup) updates; the cell set lives in a
word-packed :class:`~repro.core.bitset.PieceBitMatrix` with per-piece
copy-on-write rows, and ``counts`` in a matching
:class:`~repro.core.bitset.CowCounts`, so :meth:`CoverageState.copy` —
the branch-and-bound branching operation — is O(piece rows) instead of
the historical O(theta * l) dense bool copy, and a branch only ever
pays for the rows (or the counts array) it actually dirties.  A small
``count_hist`` histogram (how many samples sit at each coverage count)
rides along, maintained incrementally, so the tau bound can anchor its
majorants in O(l) instead of an O(theta) per-sample gather.

The module also hosts the *batch* coverage kernels: instead of looping
candidate vertices in Python and slicing the inverted index once per
candidate, :func:`coverage_gains` gathers every candidate's index slab
into one flat array and reduces the uncovered flags with a single
segmented sum — one NumPy dispatch for the whole candidate pool.  The
gathers run through :meth:`MRRCollection.iter_index_slabs`, which
chunks them to the sample store's resident budget: on the in-RAM store
that is one dispatch exactly as before, while on a disk-sharded store a
whole-pool scan builds its bit rows shard-by-shard without ever
materialising the dense slab concatenation.  The RIS greedy, the
baselines, and the tau bound all drive their marginal-gain scans
through these kernels; ``covered`` may be either a dense bool vector or
a packed :class:`~repro.core.bitset.SampleBitset`.
"""

from __future__ import annotations

import numpy as np

from repro import native as _native
from repro.core.bitset import (
    COUNT_DTYPE,
    CowCounts,
    PieceBitMatrix,
    SampleBitset,
)
from repro.core.plan import AssignmentPlan
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import SolverError
from repro.native import kernels as _nk
from repro.sampling.mrr import MRRCollection
from repro.utils.frontier import segment_sums

__all__ = ["CoverageState", "coverage_gains"]


def coverage_gains(
    mrr: MRRCollection,
    piece: int,
    vertices: np.ndarray,
    covered,
) -> np.ndarray:
    """Newly-covered sample counts for every candidate vertex at once.

    ``gains[i]`` is the number of ``piece`` RR sets containing
    ``vertices[i]`` that ``covered`` does not cover yet — exactly
    ``(~covered[mrr.samples_containing(piece, v)]).sum()`` for each
    candidate, computed with index gathers and segmented sums instead
    of a Python loop over candidates.  Gathers are chunked to the
    sample store's resident budget (one chunk — one dispatch — on the
    in-RAM store); each candidate's sum sees exactly its own slab, so
    gains are identical for every chunking.  ``covered`` is either a
    boolean array over the ``theta`` samples or a packed
    :class:`~repro.core.bitset.SampleBitset` (the RIS greedy's working
    set) — membership tests cost the same single dispatch either way.
    """
    packed = isinstance(covered, SampleBitset)
    if packed:
        if covered.size != mrr.theta:
            raise SolverError(
                f"covered bitset sized {covered.size}, expected {mrr.theta}"
            )
    elif covered.shape != (mrr.theta,):
        raise SolverError(
            f"covered must have shape ({mrr.theta},), got {covered.shape}"
        )
    vertices = np.asarray(vertices, dtype=np.int64)
    gains = np.zeros(vertices.size, dtype=np.int64)
    for samples, deg, lo, hi in mrr.iter_index_slabs(
        piece, vertices, exc=SolverError
    ):
        if samples.size == 0:
            continue
        if packed and _native.compiled():
            # Fused bit-test + segmented count: no intermediate mask or
            # gather arrays; the counts are integer-exact either way.
            _nk.uncovered_segment_counts(
                covered.words, samples, deg, gains[lo:hi]
            )
            continue
        hit = covered.test(samples) if packed else covered[samples]
        gains[lo:hi] = segment_sums(~hit, deg)
    return gains


class CoverageState:
    """Mutable (sample x piece) coverage induced by a growing plan."""

    __slots__ = ("mrr", "bits", "_counts", "count_hist")

    def __init__(self, mrr: MRRCollection) -> None:
        self.mrr = mrr
        self.bits = PieceBitMatrix(mrr.num_pieces, mrr.theta)
        self._counts = CowCounts(mrr.theta, dtype=COUNT_DTYPE)
        self.count_hist = np.zeros(mrr.num_pieces + 1, dtype=np.int64)
        self.count_hist[0] = mrr.theta

    @classmethod
    def from_plan(cls, mrr: MRRCollection, plan: AssignmentPlan) -> "CoverageState":
        """Build the state induced by an existing plan.

        Each piece's seed set commits in one :meth:`add_many` kernel
        call — this runs once per branch-and-bound node, so plan
        reconstruction stays off the per-candidate Python path.
        """
        state = cls(mrr)
        for j, seeds in enumerate(plan.seed_lists()):
            if seeds:
                state.add_many(np.asarray(seeds, dtype=np.int64), j)
        return state

    @property
    def counts(self) -> np.ndarray:
        """Per-sample distinct-piece coverage counts (read-only view).

        Mutating the returned array corrupts copy-on-write sharing —
        use :meth:`add` / :meth:`add_many`.
        """
        return self._counts.array

    @property
    def covered(self) -> np.ndarray:
        """Dense ``(theta, l)`` bool view of the packed cell set.

        Materialised on demand for inspection and the historical API;
        mutating the returned array does not affect the state — use
        :meth:`add` / :meth:`add_many`.
        """
        return self.bits.to_bool()

    def copy(self) -> "CoverageState":
        """Independent copy (used when branching).

        Both the packed rows and the counts array are shared
        copy-on-write — O(l) now, one row (or counts) duplication per
        side that later dirties it — so no mutation of either state can
        ever reach the other through a shared slab.
        """
        clone = CoverageState.__new__(CoverageState)
        clone.mrr = self.mrr
        clone.bits = self.bits.copy()
        clone._counts = self._counts.clone()
        clone.count_hist = self.count_hist.copy()
        return clone

    # ------------------------------------------------------------------

    def _bump(self, fresh: np.ndarray) -> None:
        """Increment ``counts[fresh]``, keeping the histogram in step."""
        counts = self._counts.own()
        old = counts[fresh].astype(np.int64)
        counts[fresh] += 1
        width = self.count_hist.size
        self.count_hist -= np.bincount(old, minlength=width)
        self.count_hist += np.bincount(old + 1, minlength=width)

    def add(self, vertex: int, piece: int) -> np.ndarray:
        """Cover ``(vertex, piece)``; return sample ids newly covered.

        Idempotent per (sample, piece) cell: a sample already covered for
        ``piece`` is unaffected, matching the indicator semantics
        ``I[R_i^j ∩ S_j ≠ ∅]``.
        """
        self._check_cell(vertex, piece)
        samples = self.mrr.samples_containing(piece, vertex)
        if samples.size == 0:
            return samples
        fresh = samples[~self.bits.test(piece, samples)]
        if fresh.size:
            self.bits.set_many(piece, fresh)
            self._bump(fresh)
        return fresh

    def newly_covered(self, vertex: int, piece: int) -> np.ndarray:
        """Samples that *would* be newly covered, without mutating."""
        self._check_cell(vertex, piece)
        samples = self.mrr.samples_containing(piece, vertex)
        if samples.size == 0:
            return samples
        return samples[~self.bits.test(piece, samples)]

    def add_many(self, vertices, piece: int) -> np.ndarray:
        """Cover ``(v, piece)`` for every ``v``; return fresh sample ids.

        Vectorized commit: index gathers over all vertices replace
        per-vertex :meth:`add` calls, chunked to the store's resident
        budget so a disk-backed commit sets its bit rows shard-by-shard.
        Returns the sample ids newly covered for ``piece``, sorted
        ascending (each reported once, even when several of the
        vertices share it).
        """
        fresh_chunks: list[np.ndarray] = []
        for samples, _deg, _lo, _hi in self.mrr.iter_index_slabs(
            piece, vertices, exc=SolverError
        ):
            if samples.size == 0:
                continue
            samples = np.unique(samples)
            fresh = samples[~self.bits.test(piece, samples)]
            if fresh.size:
                self.bits.set_many(piece, fresh)
                self._bump(fresh)
                fresh_chunks.append(fresh)
        if not fresh_chunks:
            return np.zeros(0, dtype=np.int64)
        if len(fresh_chunks) == 1:
            return fresh_chunks[0]
        # Chunks are disjoint (bits were set between them); sort so the
        # result matches the single-gather path's np.unique order.
        return np.sort(np.concatenate(fresh_chunks))

    def _check_cell(self, vertex: int, piece: int) -> None:
        """Both coordinates range-checked up front, failing loudly."""
        if not (0 <= piece < self.mrr.num_pieces):
            raise SolverError(
                f"piece {piece} outside [0, {self.mrr.num_pieces})"
            )
        if not (0 <= vertex < self.mrr.n):
            raise SolverError(f"vertex {vertex} outside [0, {self.mrr.n})")

    # ------------------------------------------------------------------

    def utility(self, adoption: AdoptionModel) -> float:
        """Current AU estimate (Eq. 6 over the tracked counts)."""
        return self.mrr.estimate_from_counts(self.counts, adoption)

    def __repr__(self) -> str:
        return (
            f"CoverageState(covered={self.bits.count_cells()} cells, "
            f"theta={self.mrr.theta}, pieces={self.mrr.num_pieces})"
        )
