"""Incremental per-sample coverage bookkeeping over an MRR collection.

Every solver needs the same two quantities, updated as assignments are
added: which (sample, piece) cells are already covered, and how many
distinct pieces cover each sample (``counts``).  :class:`CoverageState`
maintains both with O(index lookup) updates and O(theta * l) copies, and
is shared by the AU estimator, the tau upper-bound state, and the
baselines' coverage greedy.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import AssignmentPlan
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import SolverError
from repro.sampling.mrr import MRRCollection

__all__ = ["CoverageState"]


class CoverageState:
    """Mutable (sample x piece) coverage induced by a growing plan."""

    __slots__ = ("mrr", "covered", "counts")

    def __init__(self, mrr: MRRCollection) -> None:
        self.mrr = mrr
        self.covered = np.zeros((mrr.theta, mrr.num_pieces), dtype=bool)
        self.counts = np.zeros(mrr.theta, dtype=np.int64)

    @classmethod
    def from_plan(cls, mrr: MRRCollection, plan: AssignmentPlan) -> "CoverageState":
        """Build the state induced by an existing plan."""
        state = cls(mrr)
        for v, j in plan.assignments():
            state.add(v, j)
        return state

    def copy(self) -> "CoverageState":
        """Independent copy (used when branching)."""
        clone = CoverageState.__new__(CoverageState)
        clone.mrr = self.mrr
        clone.covered = self.covered.copy()
        clone.counts = self.counts.copy()
        return clone

    # ------------------------------------------------------------------

    def add(self, vertex: int, piece: int) -> np.ndarray:
        """Cover ``(vertex, piece)``; return sample ids newly covered.

        Idempotent per (sample, piece) cell: a sample already covered for
        ``piece`` is unaffected, matching the indicator semantics
        ``I[R_i^j ∩ S_j ≠ ∅]``.
        """
        self._check_cell(vertex, piece)
        samples = self.mrr.samples_containing(piece, vertex)
        if samples.size == 0:
            return samples
        fresh = samples[~self.covered[samples, piece]]
        if fresh.size:
            self.covered[fresh, piece] = True
            self.counts[fresh] += 1
        return fresh

    def newly_covered(self, vertex: int, piece: int) -> np.ndarray:
        """Samples that *would* be newly covered, without mutating."""
        self._check_cell(vertex, piece)
        samples = self.mrr.samples_containing(piece, vertex)
        if samples.size == 0:
            return samples
        return samples[~self.covered[samples, piece]]

    def _check_cell(self, vertex: int, piece: int) -> None:
        """Both coordinates range-checked up front, failing loudly."""
        if not (0 <= piece < self.mrr.num_pieces):
            raise SolverError(
                f"piece {piece} outside [0, {self.mrr.num_pieces})"
            )
        if not (0 <= vertex < self.mrr.n):
            raise SolverError(f"vertex {vertex} outside [0, {self.mrr.n})")

    # ------------------------------------------------------------------

    def utility(self, adoption: AdoptionModel) -> float:
        """Current AU estimate (Eq. 6 over the tracked counts)."""
        return self.mrr.estimate_from_counts(self.counts, adoption)

    def __repr__(self) -> str:
        return (
            f"CoverageState(covered={int(self.covered.sum())} cells, "
            f"theta={self.mrr.theta}, pieces={self.mrr.num_pieces})"
        )
