"""Incremental per-sample coverage bookkeeping over an MRR collection.

Every solver needs the same two quantities, updated as assignments are
added: which (sample, piece) cells are already covered, and how many
distinct pieces cover each sample (``counts``).  :class:`CoverageState`
maintains both with O(index lookup) updates; the cell set lives in a
word-packed :class:`~repro.core.bitset.PieceBitMatrix` with per-piece
copy-on-write rows, so :meth:`CoverageState.copy` — the
branch-and-bound branching operation — is O(piece rows) instead of the
historical O(theta * l) dense bool copy, and a branch only ever pays
for the rows it actually dirties.

The module also hosts the *batch* coverage kernels: instead of looping
candidate vertices in Python and slicing the inverted index once per
candidate, :func:`coverage_gains` gathers every candidate's index slab
into one flat array (:func:`~repro.utils.frontier.frontier_edge_slots`
over the CSR ``idx_ptr``) and reduces the uncovered flags with a single
segmented sum — one NumPy dispatch for the whole candidate pool.  The
RIS greedy, the baselines, and the tau bound all drive their
marginal-gain scans through these kernels; ``covered`` may be either a
dense bool vector or a packed :class:`~repro.core.bitset.SampleBitset`.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitset import COUNT_DTYPE, PieceBitMatrix, SampleBitset
from repro.core.plan import AssignmentPlan
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import SolverError
from repro.sampling.mrr import MRRCollection
from repro.utils.frontier import segment_sums

__all__ = ["CoverageState", "coverage_gains"]


def coverage_gains(
    mrr: MRRCollection,
    piece: int,
    vertices: np.ndarray,
    covered,
) -> np.ndarray:
    """Newly-covered sample counts for every candidate vertex at once.

    ``gains[i]`` is the number of ``piece`` RR sets containing
    ``vertices[i]`` that ``covered`` does not cover yet — exactly
    ``(~covered[mrr.samples_containing(piece, v)]).sum()`` for each
    candidate, computed with one index gather and one segmented sum
    instead of a Python loop over candidates.  ``covered`` is either a
    boolean array over the ``theta`` samples or a packed
    :class:`~repro.core.bitset.SampleBitset` (the RIS greedy's working
    set) — membership tests cost the same single dispatch either way.
    """
    packed = isinstance(covered, SampleBitset)
    if packed:
        if covered.size != mrr.theta:
            raise SolverError(
                f"covered bitset sized {covered.size}, expected {mrr.theta}"
            )
    elif covered.shape != (mrr.theta,):
        raise SolverError(
            f"covered must have shape ({mrr.theta},), got {covered.shape}"
        )
    samples, deg = mrr.gather_index_slabs(piece, vertices, exc=SolverError)
    if samples.size == 0:
        return np.zeros(deg.size, dtype=np.int64)
    hit = covered.test(samples) if packed else covered[samples]
    return segment_sums(~hit, deg)


class CoverageState:
    """Mutable (sample x piece) coverage induced by a growing plan."""

    __slots__ = ("mrr", "bits", "counts")

    def __init__(self, mrr: MRRCollection) -> None:
        self.mrr = mrr
        self.bits = PieceBitMatrix(mrr.num_pieces, mrr.theta)
        self.counts = np.zeros(mrr.theta, dtype=COUNT_DTYPE)

    @classmethod
    def from_plan(cls, mrr: MRRCollection, plan: AssignmentPlan) -> "CoverageState":
        """Build the state induced by an existing plan.

        Each piece's seed set commits in one :meth:`add_many` kernel
        call — this runs once per branch-and-bound node, so plan
        reconstruction stays off the per-candidate Python path.
        """
        state = cls(mrr)
        for j, seeds in enumerate(plan.seed_lists()):
            if seeds:
                state.add_many(np.asarray(seeds, dtype=np.int64), j)
        return state

    @property
    def covered(self) -> np.ndarray:
        """Dense ``(theta, l)`` bool view of the packed cell set.

        Materialised on demand for inspection and the historical API;
        mutating the returned array does not affect the state — use
        :meth:`add` / :meth:`add_many`.
        """
        return self.bits.to_bool()

    def copy(self) -> "CoverageState":
        """Independent copy (used when branching).

        The packed rows are shared copy-on-write — O(l) now, one
        ``theta/8``-byte row duplication per piece a side later
        dirties — and ``counts`` is duplicated eagerly, so no
        mutation of either state can ever reach the other through a
        shared slab.
        """
        clone = CoverageState.__new__(CoverageState)
        clone.mrr = self.mrr
        clone.bits = self.bits.copy()
        clone.counts = self.counts.copy()
        return clone

    # ------------------------------------------------------------------

    def add(self, vertex: int, piece: int) -> np.ndarray:
        """Cover ``(vertex, piece)``; return sample ids newly covered.

        Idempotent per (sample, piece) cell: a sample already covered for
        ``piece`` is unaffected, matching the indicator semantics
        ``I[R_i^j ∩ S_j ≠ ∅]``.
        """
        self._check_cell(vertex, piece)
        samples = self.mrr.samples_containing(piece, vertex)
        if samples.size == 0:
            return samples
        fresh = samples[~self.bits.test(piece, samples)]
        if fresh.size:
            self.bits.set_many(piece, fresh)
            self.counts[fresh] += 1
        return fresh

    def newly_covered(self, vertex: int, piece: int) -> np.ndarray:
        """Samples that *would* be newly covered, without mutating."""
        self._check_cell(vertex, piece)
        samples = self.mrr.samples_containing(piece, vertex)
        if samples.size == 0:
            return samples
        return samples[~self.bits.test(piece, samples)]

    def add_many(self, vertices, piece: int) -> np.ndarray:
        """Cover ``(v, piece)`` for every ``v``; return fresh sample ids.

        Vectorized commit: one index gather over all vertices replaces
        per-vertex :meth:`add` calls.  Returns the sample ids newly
        covered for ``piece`` (each reported once, even when several of
        the vertices share it).
        """
        samples, _ = self.mrr.gather_index_slabs(
            piece, vertices, exc=SolverError
        )
        if samples.size == 0:
            return samples
        samples = np.unique(samples)
        fresh = samples[~self.bits.test(piece, samples)]
        if fresh.size:
            self.bits.set_many(piece, fresh)
            self.counts[fresh] += 1
        return fresh

    def _check_cell(self, vertex: int, piece: int) -> None:
        """Both coordinates range-checked up front, failing loudly."""
        if not (0 <= piece < self.mrr.num_pieces):
            raise SolverError(
                f"piece {piece} outside [0, {self.mrr.num_pieces})"
            )
        if not (0 <= vertex < self.mrr.n):
            raise SolverError(f"vertex {vertex} outside [0, {self.mrr.n})")

    # ------------------------------------------------------------------

    def utility(self, adoption: AdoptionModel) -> float:
        """Current AU estimate (Eq. 6 over the tracked counts)."""
        return self.mrr.estimate_from_counts(self.counts, adoption)

    def __repr__(self) -> str:
        return (
            f"CoverageState(covered={self.bits.count_cells()} cells, "
            f"theta={self.mrr.theta}, pieces={self.mrr.num_pieces})"
        )
