"""``ComputeBound`` — greedy upper-bound estimation (Algorithm 2).

Given a partial plan ``S-bar^a`` and the remaining candidate space, the
routine (1) anchors the majorants at the partial plan's coverage ("refine
tau", Fig. 2), (2) greedily selects up to ``k - |S-bar^a|`` further
(vertex, piece) assignments maximising the marginal gain of the
submodular ``tau``, and (3) returns the completed candidate plan, its
actual AU estimate (a global lower bound), and the ``tau`` value (the
subspace's upper bound).  Submodularity gives the greedy the classic
(1 − 1/e) guarantee, which Theorem 2 lifts to the whole framework.

Both the literal rescanning greedy of Algorithm 2 and a lazy (CELF-style)
variant are provided.  They select identical sets — laziness is sound for
any submodular function — but the lazy variant performs far fewer ``tau``
evaluations; the ablation benchmark measures the difference.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.coverage import CoverageState
from repro.core.plan import AssignmentPlan
from repro.core.tangent import MajorantTable
from repro.core.upper_bound import TauState
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import SolverError
from repro.sampling.mrr import MRRCollection

__all__ = [
    "BoundResult",
    "CandidateSpace",
    "compute_bound",
    "evaluate_pair_gains",
]


class CandidateSpace:
    """The per-piece availability sets ``Vp = {V_1, ..., V_l}`` of Alg. 1.

    Starts as the full promoter pool for every piece; branching removes
    individual (vertex, piece) pairs.  Immutable — children are created
    with :meth:`without`, sharing the pool array.
    """

    __slots__ = ("pool", "num_pieces", "excluded")

    def __init__(
        self,
        pool,
        num_pieces: int,
        excluded: frozenset[tuple[int, int]] = frozenset(),
    ) -> None:
        self.pool = pool
        self.num_pieces = int(num_pieces)
        self.excluded = excluded

    def without(self, vertex: int, piece: int) -> "CandidateSpace":
        """A child space with ``(vertex, piece)`` removed."""
        return CandidateSpace(
            self.pool, self.num_pieces, self.excluded | {(int(vertex), int(piece))}
        )

    def pairs(self, plan: AssignmentPlan) -> list[tuple[int, int]]:
        """All selectable (vertex, piece) pairs given the current plan."""
        out: list[tuple[int, int]] = []
        for j in range(self.num_pieces):
            taken = plan.seed_sets[j]
            for v in self.pool:
                v = int(v)
                if v in taken or (v, j) in self.excluded:
                    continue
                out.append((v, j))
        return out

    def __len__(self) -> int:
        return self.num_pieces * len(self.pool) - len(self.excluded)


@dataclass(frozen=True)
class BoundResult:
    """Output of one bound computation (Alg. 2 line 7 / Alg. 3 line 16).

    Attributes
    ----------
    plan:
        The completed candidate plan ``S-bar ∪ S-bar^a``.
    lower:
        Its actual AU estimate ``sigma(S-bar ∪ S-bar^a)`` — a valid
        global lower bound.
    upper:
        ``tau(S-bar | S-bar^a)`` — the subspace's upper bound used for
        pruning.
    first_pick:
        The first greedy-selected (vertex, piece), i.e. the next branch
        variable; ``None`` when nothing with positive gain remained.
    evaluations:
        Number of ``tau`` marginal-gain evaluations performed (the cost
        unit of Theorem 4).
    selected:
        How many assignments the greedy added on top of the partial plan.
    """

    plan: AssignmentPlan
    lower: float
    upper: float
    first_pick: tuple[int, int] | None
    evaluations: int
    selected: int


def compute_bound(
    mrr: MRRCollection,
    table: MajorantTable,
    adoption: AdoptionModel,
    partial_plan: AssignmentPlan,
    candidates: CandidateSpace,
    k: int,
    *,
    lazy: bool = True,
    base: CoverageState | None = None,
) -> BoundResult:
    """Run Algorithm 2 for one search node.

    Parameters
    ----------
    mrr, table, adoption:
        The shared sampling collection, majorant table and adoption model.
    partial_plan:
        ``S-bar^a`` — the node's committed assignments.
    candidates:
        The remaining availability sets.
    k:
        The *total* budget; the greedy selects ``k - |partial_plan|``.
    lazy:
        Use CELF-style lazy evaluation (identical output, fewer
        evaluations).  ``False`` reproduces the literal rescanning loop.
    base:
        Optional pre-built coverage of ``partial_plan``.  The BAB driver
        derives each child's base from the parent node's via a
        copy-on-write clone plus one :meth:`CoverageState.add` — the
        final covered cells and counts are set-identical to a fresh
        ``from_plan`` rebuild, so bounds are unchanged; only the
        reconstruction cost disappears.  The state is consumed (anchored
        by the tau evaluation) and must not be reused by the caller.
    """
    if partial_plan.size > k:
        raise SolverError(
            f"partial plan already uses {partial_plan.size} > k = {k}"
        )
    if base is None:
        base = CoverageState.from_plan(mrr, partial_plan)
    tau = TauState(mrr, table, base, adoption)
    budget = k - partial_plan.size
    pairs = candidates.pairs(partial_plan)
    if lazy:
        picks = _greedy_lazy(tau, pairs, budget)
    else:
        picks = _greedy_plain(tau, pairs, budget)
    plan = partial_plan
    for v, j in picks:
        plan = plan.with_assignment(v, j)
    return BoundResult(
        plan=plan,
        lower=tau.utility(),
        upper=tau.value,
        first_pick=picks[0] if picks else None,
        evaluations=tau.evaluations,
        selected=len(picks),
    )


def evaluate_pair_gains(
    tau: TauState, pairs: list[tuple[int, int]]
) -> np.ndarray:
    """Marginal tau gains of every (vertex, piece) pair, kernel-batched.

    Pairs are grouped by piece so each group costs one vectorized
    :meth:`TauState.marginal_gains` call; the result aligns with
    ``pairs``.  Evaluation accounting matches the scalar loop exactly
    (one tau evaluation per pair).
    """
    gains = np.zeros(len(pairs), dtype=np.float64)
    by_piece: dict[int, tuple[list[int], list[int]]] = {}
    for pos, (v, j) in enumerate(pairs):
        positions, vertices = by_piece.setdefault(j, ([], []))
        positions.append(pos)
        vertices.append(v)
    for j, (positions, vertices) in by_piece.items():
        gains[positions] = tau.marginal_gains(
            np.asarray(vertices, dtype=np.int64), j
        )
    return gains


def _greedy_plain(
    tau: TauState, pairs: list[tuple[int, int]], budget: int
) -> list[tuple[int, int]]:
    """Algorithm 2's literal loop: rescan every candidate per iteration.

    The rescan itself runs through the batched coverage kernel — same
    gains, same first-maximum tie-breaking, same evaluation count as the
    per-candidate reference loop, one NumPy dispatch per piece instead
    of one Python call per candidate.
    """
    picks: list[tuple[int, int]] = []
    chosen: set[tuple[int, int]] = set()
    for _ in range(budget):
        remaining = [pair for pair in pairs if pair not in chosen]
        if not remaining:
            break
        gains = evaluate_pair_gains(tau, remaining)
        best = int(np.argmax(gains))  # first maximum, like the scan loop
        if gains[best] <= 0.0:
            break
        best_pair = remaining[best]
        tau.add(best_pair[0], best_pair[1])
        chosen.add(best_pair)
        picks.append(best_pair)
    return picks


def _greedy_lazy(
    tau: TauState, pairs: list[tuple[int, int]], budget: int
) -> list[tuple[int, int]]:
    """CELF lazy greedy: stale upper bounds re-evaluated on demand.

    Sound because ``tau`` is submodular: a candidate's cached gain can
    only shrink as the set grows, so an entry re-evaluated at the current
    set size that still tops the heap is the true argmax.  The initial
    full scan — the dominant cost — is one batched kernel call; on-demand
    re-evaluations reuse the same kernel so cached and fresh gains round
    identically.
    """
    heap: list[tuple[float, int, tuple[int, int], int]] = []
    initial = evaluate_pair_gains(tau, pairs)
    for idx, pair in enumerate(pairs):
        gain = float(initial[idx])
        if gain > 0.0:
            heap.append((-gain, idx, pair, 0))
    heapq.heapify(heap)
    picks: list[tuple[int, int]] = []
    while heap and len(picks) < budget:
        neg_gain, idx, pair, evaluated_at = heapq.heappop(heap)
        if evaluated_at == len(picks):
            tau.add(pair[0], pair[1])
            picks.append(pair)
            continue
        gain = float(
            tau.marginal_gains(
                np.asarray([pair[0]], dtype=np.int64), pair[1]
            )[0]
        )
        if gain > 0.0:
            heapq.heappush(heap, (-gain, idx, pair, len(picks)))
    return picks
