"""Exhaustive OIPA solvers for tiny instances — the test oracles.

Two oracles:

* :func:`brute_force_oipa` enumerates every assignment plan of size
  ``<= k`` over the candidate pool and scores it on the *same* MRR
  collection a solver under test uses, so approximation-ratio assertions
  (Theorems 2 and 3 are stated w.r.t. the MRR-based objective) compare
  like with like.
* :func:`deterministic_adoption_utility` computes the exact adoption
  utility when every projected edge probability is 0 or 1 (cascades are
  then deterministic reachability) — which is precisely the regime of the
  paper's running example (Fig. 1 / Examples 1-3) and of the hardness
  construction (Sec. IV-B).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.core.plan import AssignmentPlan
from repro.core.problem import OIPAProblem
from repro.diffusion.adoption import AdoptionModel
from repro.diffusion.projection import PieceGraph, project_campaign
from repro.exceptions import SolverError
from repro.graph.digraph import TopicGraph
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import Campaign

__all__ = [
    "brute_force_oipa",
    "deterministic_adoption_utility",
    "deterministic_reach",
]


def brute_force_oipa(
    problem: OIPAProblem,
    mrr: MRRCollection,
    *,
    max_plans: int = 2_000_000,
) -> tuple[AssignmentPlan, float]:
    """Enumerate all plans with ``|S-bar| <= k``; return the best.

    The objective is monotone, so only exact-size-``k`` plans need
    enumerating unless fewer candidate pairs exist.  Guarded by
    ``max_plans`` because the space is ``C(l * |V^p|, k)``.
    """
    pairs = [
        (int(v), j)
        for j in range(problem.num_pieces)
        for v in problem.pool
    ]
    k = min(problem.k, len(pairs))
    total = _n_choose_k(len(pairs), k)
    if total > max_plans:
        raise SolverError(
            f"brute force would enumerate {total} plans (> {max_plans}); "
            "use a smaller instance"
        )
    best_plan = problem.empty_plan()
    best_utility = mrr.estimate(best_plan.seed_lists(), problem.adoption)
    for combo in combinations(pairs, k):
        seed_sets: list[set[int]] = [set() for _ in range(problem.num_pieces)]
        for v, j in combo:
            seed_sets[j].add(v)
        plan = AssignmentPlan(seed_sets)
        utility = mrr.estimate(plan.seed_lists(), problem.adoption)
        if utility > best_utility:
            best_utility = utility
            best_plan = plan
    return best_plan, best_utility


def _n_choose_k(n: int, k: int) -> int:
    import math

    return math.comb(n, k)


def deterministic_reach(piece_graph: PieceGraph, seeds) -> np.ndarray:
    """Reachable-set mask when all edge probabilities are 0 or 1."""
    probs = piece_graph.out_prob
    if probs.size and np.any((probs != 0.0) & (probs != 1.0)):
        raise SolverError(
            "deterministic reach requires all edge probabilities in {0, 1}"
        )
    n = piece_graph.n
    active = np.zeros(n, dtype=bool)
    stack = []
    for s in seeds:
        s = int(s)
        if not active[s]:
            active[s] = True
            stack.append(s)
    while stack:
        u = stack.pop()
        lo, hi = piece_graph.out_ptr[u], piece_graph.out_ptr[u + 1]
        for slot in range(lo, hi):
            if probs[slot] == 1.0:
                v = int(piece_graph.out_dst[slot])
                if not active[v]:
                    active[v] = True
                    stack.append(v)
    return active


def deterministic_adoption_utility(
    graph: TopicGraph,
    campaign: Campaign,
    plan: AssignmentPlan,
    adoption: AdoptionModel,
) -> float:
    """Exact sigma(S-bar) on a deterministic (0/1-probability) instance.

    Used to reproduce the paper's hand-worked numbers: Example 1's
    ``sigma({{a},{e}}) = 1.05`` and Example 2's non-submodularity gap.
    """
    if plan.num_pieces != campaign.num_pieces:
        raise SolverError(
            f"plan has {plan.num_pieces} pieces, campaign has "
            f"{campaign.num_pieces}"
        )
    counts = np.zeros(graph.n, dtype=np.int64)
    for j, pg in enumerate(project_campaign(graph, campaign)):
        seeds = plan.seed_sets[j]
        if not seeds:
            continue
        counts += deterministic_reach(pg, seeds)
    return float(adoption.probability(counts).sum())
