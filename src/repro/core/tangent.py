"""Concave majorants of the logistic adoption curve (Def. 6, Fig. 2, Alg. 4).

The per-sample contribution to the AU estimator is ``g(c)`` — the logistic
adoption probability of a sample covered by ``c`` distinct pieces.  ``g``
is S-shaped (convex below the inflection ``c = alpha/beta``, concave
above), so a set function summing ``g`` over samples is not submodular.
The paper's fix: replace each ``g`` by a *concave* majorant ``phi``
anchored at the sample's current count, because "concave, nondecreasing
of a coverage count" **is** monotone submodular — giving the greedy its
(1 − 1/e) guarantee.

Two majorant constructions are provided:

``tangent`` (the paper's, Fig. 2 / Algorithm 4)
    Working in the centred coordinate ``x = beta*c - alpha`` where the
    curve is the standard sigmoid ``f(x) = 1/(1+e^{-x})``: from anchor
    ``x0``, take the unique line through ``(x0, f(x0))`` tangent to the
    sigmoid at some ``t > 0``, and follow the sigmoid itself beyond ``t``.
    The tangency slope has no closed form (the paper's appendix notes
    neither ``t`` nor ``e^{-t}`` is a closed-form function of the anchor),
    so Algorithm 4's binary search over ``w ∈ (0, 1/4)`` is reproduced in
    :func:`refine_tangent_slope`.  Anchors past the inflection need no
    line: the sigmoid is already concave there.

``chord`` (our tightening, used in ablations)
    The discrete upper concave envelope (upper convex-hull chain) of the
    integer points ``(c, g(c))``, ``c = base..l`` — including the true
    zero branch ``g(0) = 0``.  Tighter than the tangent construction and
    still a valid majorant; the ablation benchmark quantifies how much
    pruning it buys.

:class:`MajorantTable` precomputes, for every possible base count
``b = 0..l``, the majorant's values and unit-step gains at all counts —
so the solvers' inner loops are pure table lookups.
"""

from __future__ import annotations

import math

import numpy as np

from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import ParameterError

__all__ = ["refine_tangent_slope", "MajorantTable"]


def _sigmoid(x: float) -> float:
    if x >= 0:
        return 1.0 / (1.0 + math.exp(-x))
    e = math.exp(x)
    return e / (1.0 + e)


def refine_tangent_slope(
    x0: float, *, tol: float = 1e-12, max_iterations: int = 200
) -> tuple[float, float]:
    """Algorithm 4 (``Refine``): slope of the tangent line from ``x0``.

    Finds ``w`` such that the line through ``(x0, f(x0))`` with slope
    ``w`` is tangent to the sigmoid at a point ``t >= 0``; returns
    ``(w, t)``.

    The search uses the paper's parameterisation: a slope ``w ∈ (0, 1/4)``
    corresponds to the tangency point ``t = log((1+s)/(1-s))`` with
    ``s = sqrt(1-4w)`` (the concave-side solution of
    ``w = f(t)(1-f(t))``).  The line through ``x0`` evaluated at ``t``
    exceeds ``f(t)`` exactly when ``w`` is too steep, so bisection
    converges monotonically.

    Requires ``x0 < 0`` (anchors past the inflection are already in the
    concave region and need no line).
    """
    if not (x0 < 0):
        raise ParameterError(
            f"tangent refinement needs an anchor below the inflection "
            f"(x0 < 0), got {x0}"
        )
    if tol <= 0:
        raise ParameterError(f"tol must be positive, got {tol}")
    f_x0 = _sigmoid(x0)
    lower, upper = 0.0, 0.25
    t = 0.0
    for _ in range(max_iterations):
        w = 0.5 * (upper + lower)
        s = math.sqrt(max(1.0 - 4.0 * w, 0.0))
        s = min(s, 1.0 - 1e-16)
        t = math.log((1.0 + s) / (1.0 - s))
        line_at_t = w * t + f_x0 - w * x0
        gap = line_at_t - _sigmoid(t)
        if abs(gap) <= tol or upper - lower <= tol:
            return w, t
        if gap > 0:
            upper = w
        else:
            lower = w
    return 0.5 * (upper + lower), t


def _upper_concave_envelope(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Values of the upper concave envelope of ``(xs, ys)`` at each ``xs``.

    ``xs`` must be strictly increasing.  Returns an array aligned with
    ``xs``; points on the hull keep their value, points below it get the
    hull's interpolated value.
    """
    hull: list[int] = []
    for i in range(xs.size):
        while len(hull) >= 2:
            i1, i2 = hull[-2], hull[-1]
            cross = (xs[i2] - xs[i1]) * (ys[i] - ys[i1]) - (
                ys[i2] - ys[i1]
            ) * (xs[i] - xs[i1])
            if cross >= 0:  # middle point is below/on the chord: drop it
                hull.pop()
            else:
                break
        hull.append(i)
    env = np.empty_like(ys)
    for seg in range(len(hull) - 1):
        i1, i2 = hull[seg], hull[seg + 1]
        for i in range(i1, i2 + 1):
            frac = (xs[i] - xs[i1]) / (xs[i2] - xs[i1])
            env[i] = ys[i1] + frac * (ys[i2] - ys[i1])
    if len(hull) == 1:
        env[:] = ys
    return np.maximum(env, ys)


class MajorantTable:
    """Per-base-count concave majorants, precomputed as lookup tables.

    Attributes
    ----------
    values:
        ``values[b, c] = phi_b(c)`` for ``b <= c <= l`` (entries with
        ``c < b`` are filled with the anchor value and never read).
    gains:
        ``gains[b, c] = phi_b(c+1) - phi_b(c)`` for ``b <= c < l`` and 0
        elsewhere — the marginal-gain lookup used by every tau
        evaluation.  Rows are non-increasing over ``c`` (concavity), which
        is what makes tau submodular.
    anchor_diag:
        ``anchor_diag[b] = phi_b(b) = values[b, b]`` — the anchor values,
        extracted once so a tau state's anchor sum is an O(l) dot with
        the coverage state's count histogram instead of an O(theta)
        per-sample gather.
    """

    __slots__ = (
        "adoption",
        "num_pieces",
        "method",
        "values",
        "gains",
        "anchor_diag",
    )

    def __init__(
        self,
        adoption: AdoptionModel,
        num_pieces: int,
        *,
        method: str = "tangent",
        tol: float = 1e-12,
    ) -> None:
        if num_pieces < 1:
            raise ParameterError(f"need at least one piece, got {num_pieces}")
        if method not in ("tangent", "chord"):
            raise ParameterError(
                f"method must be 'tangent' or 'chord', got {method!r}"
            )
        self.adoption = adoption
        self.num_pieces = int(num_pieces)
        self.method = method
        l = self.num_pieces
        self.values = np.zeros((l + 1, l + 1), dtype=np.float64)
        self.gains = np.zeros((l + 1, l + 1), dtype=np.float64)
        for base in range(l + 1):
            row = (
                self._tangent_row(base, tol)
                if method == "tangent"
                else self._chord_row(base)
            )
            self.values[base, base:] = row
            self.values[base, :base] = row[0]
            if base < l:
                self.gains[base, base:l] = np.diff(row)
        diag = np.arange(l + 1)
        self.anchor_diag = self.values[diag, diag].copy()

    # ------------------------------------------------------------------

    def _tangent_row(self, base: int, tol: float) -> np.ndarray:
        """phi_base at counts base..l via the paper's tangent construction.

        For base counts ``>= 1`` (or when the adoption model drops the
        zero branch) the anchor value is the logistic ``f(x0)`` and the
        majorant is the tangent line glued to the sigmoid, exactly
        Fig. 2.  For base count 0 under the zero-branch model the true
        contribution is ``g(0) = 0`` — anchoring the line at ``f(x0)``
        there would hand *every uncovered sample* a phantom
        ``1/(1+e^alpha)`` of bound mass and the branch-and-bound could
        never prune (tau(empty) would exceed any achievable sigma).  The
        zero-consistent anchor is the discrete concave envelope over
        ``{(0, 0), (1, f(1)), ..., (l, f(l))}``, which stays a valid
        monotone-submodular majorant and makes ``tau(empty | empty) = 0``
        — matching sigma(empty) = 0 from the paper's Example 2.
        """
        a, b = self.adoption.alpha, self.adoption.beta
        l = self.num_pieces
        if base == 0 and self.adoption.zero_if_unreached:
            return self._chord_row(0)
        counts = np.arange(base, l + 1, dtype=np.float64)
        xs = b * counts - a
        x0 = float(xs[0])
        if x0 >= 0:
            # Anchor at/past the inflection: the sigmoid is concave here.
            return np.array([_sigmoid(x) for x in xs])
        w, t = refine_tangent_slope(x0, tol=tol)
        f_x0 = _sigmoid(x0)
        row = np.empty_like(xs)
        for i, x in enumerate(xs):
            if x <= t:
                row[i] = f_x0 + w * (x - x0)
            else:
                row[i] = _sigmoid(x)
        return np.minimum(row, 1.0)

    def _chord_row(self, base: int) -> np.ndarray:
        """phi_base at counts base..l via the discrete concave envelope."""
        l = self.num_pieces
        counts = np.arange(base, l + 1, dtype=np.float64)
        g = np.asarray(self.adoption.probability(counts), dtype=np.float64)
        if counts.size == 1:
            return g
        return _upper_concave_envelope(counts, g)

    # ------------------------------------------------------------------

    def anchor(self, base: int) -> float:
        """``phi_base(base)`` — the majorant's value at its anchor."""
        return float(self.values[base, base])

    def gain(self, base: int, count: int) -> float:
        """``phi_base(count+1) - phi_base(count)`` (0 once count hits l)."""
        return float(self.gains[base, count])

    def __repr__(self) -> str:
        return (
            f"MajorantTable(method={self.method!r}, l={self.num_pieces}, "
            f"alpha={self.adoption.alpha:.4g}, beta={self.adoption.beta:.4g})"
        )
