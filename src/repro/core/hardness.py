"""The Maximum-Clique-to-OIPA reduction (Sec. IV-B).

The paper's inapproximability proof (Theorem 1) constructs, from a Max
Clique instance ``Pi_a`` on ``n`` vertices, an OIPA instance ``Pi_b``
with ``3n`` vertices (``x_i``, ``y_i``, ``r_i``), ``n`` single-topic
pieces, logistic parameters ``alpha = 2n*ln(2n)``, ``beta = 2*ln(2n)``,
and budget ``k = n``, such that (Lemma 1)

    2 * OPT(Pi_b) - 1/n  <=  OPT(Pi_a)  <=  2 * OPT(Pi_b).

The construction makes ``x_i`` and ``y_i`` the only eligible promoters of
piece ``i``: choosing ``x_i`` corresponds to putting vertex ``v_i`` into
the clique (``r_i`` then receives all pieces only if the chosen vertices
are pairwise adjacent), choosing ``y_i`` to leaving it out.

This module builds ``Pi_b`` exactly, converts between cliques and
assignment plans in both directions, and ships a small exact Max Clique
solver (Bron-Kerbosch with pivoting) so the Lemma 1 inequalities are
verifiable end-to-end in the test suite.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

from repro.core.brute_force import deterministic_adoption_utility
from repro.core.plan import AssignmentPlan
from repro.core.problem import OIPAProblem
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import SolverError
from repro.graph.digraph import TopicGraph
from repro.topics.distributions import Campaign, unit_piece

__all__ = ["CliqueReduction", "maximum_clique"]


def maximum_clique(n: int, edges: Iterable[tuple[int, int]]) -> set[int]:
    """Exact maximum clique via Bron-Kerbosch with pivoting.

    Suitable for the small instances the hardness tests exercise
    (``n`` up to a few dozen).
    """
    adj: dict[int, set[int]] = {v: set() for v in range(n)}
    for u, v in edges:
        if u == v:
            continue
        adj[u].add(v)
        adj[v].add(u)
    best: set[int] = set()

    def expand(r: set[int], p: set[int], x: set[int]) -> None:
        nonlocal best
        if not p and not x:
            if len(r) > len(best):
                best = set(r)
            return
        if len(r) + len(p) <= len(best):
            return
        pivot = max(p | x, key=lambda u: len(adj[u] & p))
        for v in list(p - adj[pivot]):
            expand(r | {v}, p & adj[v], x & adj[v])
            p.remove(v)
            x.add(v)

    expand(set(), set(range(n)), set())
    return best


class CliqueReduction:
    """The ``Pi_a -> Pi_b`` construction, with both direction mappings."""

    def __init__(self, num_vertices: int, edges: Iterable[tuple[int, int]]) -> None:
        if num_vertices < 2:
            raise SolverError(
                f"the reduction needs n >= 2 vertices, got {num_vertices}"
            )
        self.n = int(num_vertices)
        self.edges = {
            (min(int(u), int(v)), max(int(u), int(v)))
            for u, v in edges
            if u != v
        }
        for u, v in self.edges:
            if not (0 <= u < self.n and 0 <= v < self.n):
                raise SolverError(f"edge ({u}, {v}) outside vertex range")
        self._adj: dict[int, set[int]] = {v: set() for v in range(self.n)}
        for u, v in self.edges:
            self._adj[u].add(v)
            self._adj[v].add(u)
        self.graph = self._build_graph()
        self.campaign = Campaign(
            [unit_piece(i, self.n, name=f"t{i}") for i in range(self.n)]
        )
        # Step 5: alpha = 2n ln(2n), beta = 2 ln(2n) — so a vertex
        # receiving all n pieces adopts with probability exactly 1/2 and
        # one receiving <= n-1 pieces with probability <= 1/(1+(2n)^2).
        log2n = math.log(2 * self.n)
        self.adoption = AdoptionModel(alpha=2 * self.n * log2n, beta=2 * log2n)

    # ------------------------------------------------------------------
    # vertex naming
    # ------------------------------------------------------------------

    def x(self, i: int) -> int:
        """Promoter vertex ``x_i`` ("v_i joins the clique")."""
        return i

    def y(self, i: int) -> int:
        """Promoter vertex ``y_i`` ("v_i stays out")."""
        return self.n + i

    def r(self, i: int) -> int:
        """Receiver vertex ``r_i`` (stands for Pi_a's vertex ``v_i``)."""
        return 2 * self.n + i

    # ------------------------------------------------------------------

    def _build_graph(self) -> TopicGraph:
        n = self.n
        triples: list[tuple[int, int, dict[int, float]]] = []
        for i in range(n):
            # Step 3: x_i -> r_j for j == i and every neighbour of v_i.
            for j in sorted({i} | self._adj[i]):
                triples.append((self.x(i), self.r(j), {i: 1.0}))
            # Step 4: y_i -> r_j for every j != i.
            for j in range(n):
                if j != i:
                    triples.append((self.y(i), self.r(j), {i: 1.0}))
        return TopicGraph.from_edges(3 * n, n, triples)

    def problem(self) -> OIPAProblem:
        """The complete OIPA instance ``Pi_b`` (pool = all x's and y's)."""
        pool = np.arange(2 * self.n, dtype=np.int64)
        return OIPAProblem(
            self.graph, self.campaign, self.adoption, k=self.n, pool=pool
        )

    # ------------------------------------------------------------------
    # clique <-> plan mappings (the two directions of Lemma 1)
    # ------------------------------------------------------------------

    def plan_from_clique(self, clique: Iterable[int]) -> AssignmentPlan:
        """Forward direction: pick ``x_i`` inside the clique, ``y_i`` out."""
        clique = set(int(v) for v in clique)
        for v in clique:
            if not (0 <= v < self.n):
                raise SolverError(f"clique vertex {v} outside range")
        seed_sets = []
        for i in range(self.n):
            promoter = self.x(i) if i in clique else self.y(i)
            seed_sets.append({promoter})
        return AssignmentPlan(seed_sets)

    def clique_from_plan(self, plan: AssignmentPlan) -> set[int]:
        """Reverse direction: ``C(S-bar)`` mapped back to Pi_a vertices.

        ``C(S-bar)`` is the set of ``r`` vertices adjacent to *every*
        chosen promoter (the intersection of their neighbour sets); by the
        construction these correspond to vertices of a clique in Pi_a.
        """
        if plan.num_pieces != self.n:
            raise SolverError(
                f"plan has {plan.num_pieces} pieces, reduction needs {self.n}"
            )
        common: set[int] | None = None
        for j, seeds in enumerate(plan.seed_sets):
            for u in seeds:
                neighbours = {
                    int(t) for t in self.graph.successors(int(u))
                }
                common = neighbours if common is None else (common & neighbours)
        if common is None:
            return set()
        return {t - 2 * self.n for t in common if t >= 2 * self.n}

    def utility(self, plan: AssignmentPlan) -> float:
        """Exact AU of a plan on Pi_b (the instance is deterministic)."""
        return deterministic_adoption_utility(
            self.graph, self.campaign, plan, self.adoption
        )

    def __repr__(self) -> str:
        return (
            f"CliqueReduction(n={self.n}, clique_edges={len(self.edges)}, "
            f"oipa_vertices={3 * self.n})"
        )
