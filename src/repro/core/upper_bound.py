"""The submodular upper-bound function ``tau`` over MRR samples (Def. 6).

For a partial plan ``S-bar^a`` with per-sample base counts ``b_i``,

    tau(S-bar | S-bar^a) = (n / theta) * sum_i phi_{b_i}( n_i(S-bar ∪ S-bar^a) )

where ``n_i`` is the sample's distinct-piece coverage count and
``phi_{b_i}`` is the concave majorant anchored at ``b_i``
(:class:`repro.core.tangent.MajorantTable`).  Because each ``phi`` is
nondecreasing and concave, and coverage counts are coverage functions,
``tau`` is a monotone submodular set function over (vertex, piece)
assignments — the property Theorems 2 and 3 rest on.

:class:`TauState` is the mutable greedy-evaluation state: it tracks the
covered cells and current counts, answers marginal-gain queries through
the MRR inverted index, and counts every evaluation (the quantity
Theorem 4 bounds, and the currency of the BAB-vs-BAB-P ablation).
Construction is O(l): the anchor sum folds the base coverage's count
histogram against the majorant diagonal instead of gathering an
O(theta) per-sample anchor array, and both count arrays are
copy-on-write clones of the base's — the first :meth:`add` pays the one
copy, while bound computations that never commit (pruned nodes) pay
nothing.
"""

from __future__ import annotations

import numpy as np

from repro.core.coverage import CoverageState
from repro.core.tangent import MajorantTable
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import SolverError
from repro.sampling.mrr import MRRCollection
from repro.utils.frontier import segment_sums

__all__ = ["TauState"]


class TauState:
    """Greedy-evaluation state of ``tau(. | S-bar^a)``.

    Construction freezes the *base* (the partial plan's coverage, whose
    counts anchor the majorants — the "refinement" step of Fig. 2);
    subsequent :meth:`add` calls grow the candidate set ``S-bar`` along
    those fixed majorants, which is exactly what keeps the function
    submodular throughout one ``ComputeBound`` invocation.

    The base coverage is consumed: its packed rows and counts are
    shared copy-on-write with this state, so the base itself is never
    mutated through the share, but callers must not mutate the base
    while relying on this state's ``base_counts`` staying anchored.
    """

    __slots__ = (
        "mrr",
        "table",
        "adoption",
        "_base_counts",
        "bits",
        "_counts",
        "scale",
        "evaluations",
        "_value",
    )

    def __init__(
        self,
        mrr: MRRCollection,
        table: MajorantTable,
        base_coverage: CoverageState,
        adoption: AdoptionModel,
    ) -> None:
        if table.num_pieces != mrr.num_pieces:
            raise SolverError(
                f"majorant table built for l={table.num_pieces} but the MRR "
                f"collection has {mrr.num_pieces} pieces"
            )
        self.mrr = mrr
        self.table = table
        self.adoption = adoption
        # Copy-on-write clones of the base's packed cell set and counts:
        # O(l) here, and greedy growth only duplicates what it touches —
        # the base coverage is never written through the share.  The
        # frozen anchor counts are a second clone that is never mutated,
        # so they never pay a copy at all.
        self._base_counts = base_coverage._counts.clone()
        self.bits = base_coverage.bits.copy()
        self._counts = base_coverage._counts.clone()
        self.scale = mrr.n / mrr.theta
        self.evaluations = 0
        # The anchor sum over theta samples collapses to an O(l) fold of
        # the base's count histogram against the majorant diagonal:
        # sum_i phi_{b_i}(b_i) = sum_c hist[c] * values[c, c].
        hist = base_coverage.count_hist.astype(np.float64)
        self._value = float(self.scale * (hist * table.anchor_diag).sum())

    # ------------------------------------------------------------------

    @property
    def value(self) -> float:
        """Current ``tau`` value (absolute, same scale as sigma)."""
        return self._value

    @property
    def base_counts(self) -> np.ndarray:
        """The frozen anchor counts ``b_i`` (read-only view)."""
        return self._base_counts.array

    @property
    def counts(self) -> np.ndarray:
        """The growing coverage counts (read-only view)."""
        return self._counts.array

    @property
    def covered(self) -> np.ndarray:
        """Dense ``(theta, l)`` bool view of the packed cell set.

        Materialised on demand (inspection / historical API); mutating
        the returned array does not affect the state.
        """
        return self.bits.to_bool()

    def utility(self) -> float:
        """The *actual* AU estimate of the tracked coverage (Eq. 6)."""
        return self.mrr.estimate_from_counts(self.counts, self.adoption)

    def marginal_gain(self, vertex: int, piece: int) -> float:
        """``tau`` gain of adding ``(vertex, piece)`` — no mutation.

        Each call is one tau evaluation (Theorem 4's unit of work).
        """
        self.evaluations += 1
        samples = self.mrr.samples_containing(piece, vertex)
        if samples.size == 0:
            return 0.0
        fresh = samples[~self.bits.test(piece, samples)]
        if fresh.size == 0:
            return 0.0
        gains = self.table.gains[self.base_counts[fresh], self.counts[fresh]]
        return float(self.scale * gains.sum())

    def marginal_gains(self, vertices, piece: int) -> np.ndarray:
        """``tau`` gains of every ``(v, piece)`` candidate — no mutation.

        Vectorized counterpart of :meth:`marginal_gain`: the candidates'
        inverted-index slabs are gathered into flat arrays and their
        majorant gains reduced with segmented sums, so a whole candidate
        scan costs one NumPy dispatch per store-budget chunk (a single
        dispatch on the in-RAM store) instead of one Python iteration
        per candidate.  Each candidate still counts as one tau
        evaluation (Theorem 4's unit of work is unchanged), and each
        candidate's gain sees exactly its own slab, so results are
        identical for every chunking.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        gains = np.zeros(vertices.size, dtype=np.float64)
        self.evaluations += int(vertices.size)
        base_counts, counts = self.base_counts, self.counts
        for samples, deg, lo, hi in self.mrr.iter_index_slabs(
            piece, vertices, exc=SolverError
        ):
            if samples.size == 0:
                continue
            fresh = ~self.bits.test(piece, samples)
            vals = np.where(
                fresh,
                self.table.gains[base_counts[samples], counts[samples]],
                0.0,
            )
            gains[lo:hi] = segment_sums(vals, deg)
        return self.scale * gains

    def add(self, vertex: int, piece: int) -> float:
        """Commit ``(vertex, piece)``; return the realised ``tau`` gain."""
        samples = self.mrr.samples_containing(piece, vertex)
        if samples.size == 0:
            return 0.0
        fresh = samples[~self.bits.test(piece, samples)]
        if fresh.size == 0:
            return 0.0
        gains = self.table.gains[self.base_counts[fresh], self.counts[fresh]]
        gain = float(self.scale * gains.sum())
        self.bits.set_many(piece, fresh)
        self._counts.own()[fresh] += 1
        self._value += gain
        return gain

    def __repr__(self) -> str:
        return (
            f"TauState(value={self._value:.6g}, "
            f"evaluations={self.evaluations})"
        )
