"""Word-packed bitset primitives for the coverage engine.

The solvers' coverage bookkeeping is set membership over ``theta``
samples, per piece.  The historical representation — a dense
``(theta, l)`` bool matrix — costs ``theta * l`` bytes to copy on every
branch-and-bound node, which ROADMAP flagged as the dominant branching
cost.  This module packs each piece's coverage row into ``uint64``
words (64 samples per word, 8x denser than bool) and layers
copy-on-write on top, so cloning a state for a BAB branch is O(number
of piece rows) and only rows the branch actually dirties are ever
duplicated.

Two containers:

* :class:`SampleBitset` — a flat bitset over the ``theta`` samples of
  one piece; the RIS max-coverage greedy's ``covered`` vector.
* :class:`PieceBitMatrix` — one :class:`SampleBitset`-shaped row per
  piece with per-row copy-on-write; the backing store of
  :class:`repro.core.coverage.CoverageState` and
  :class:`repro.core.upper_bound.TauState`.

All index arrays are int64 sample ids; bit tests and sets are a gather,
a shift, and (for sets) one segmented OR per touched word — one NumPy
dispatch each, no Python loop over samples.
"""

from __future__ import annotations

import numpy as np

from repro import native as _native
from repro.native import kernels as _nk

__all__ = [
    "COUNT_DTYPE",
    "CowCounts",
    "PieceBitMatrix",
    "SampleBitset",
    "pack_bool",
    "popcount",
    "unpack_words",
]

#: Per-sample coverage counts are bounded by the number of pieces, so
#: int16 (32k pieces) is plenty — 4x less branch-copy traffic than the
#: historical int64 counts.
COUNT_DTYPE = np.int16

_ONE = np.uint64(1)
_WORD_SHIFT = 6  # log2(64)
_BIT_MASK = np.int64(63)


def _num_words(num_bits: int) -> int:
    return (int(num_bits) + 63) >> _WORD_SHIFT


def _bit_masks(bits: np.ndarray) -> np.ndarray:
    """``1 << (bits mod 64)`` as uint64, for int64 bit positions."""
    return _ONE << (bits & _BIT_MASK).astype(np.uint64)


def popcount(words: np.ndarray) -> int:
    """Total number of set bits across ``words`` (uint64).

    With the compiled tier live this is one word-at-a-time SWAR loop
    (no ``bitwise_count`` intermediate array); the count is exact
    either way, so the kernel is used whenever it is compiled,
    independent of the backend knob.
    """
    if words.size == 0:
        return 0
    if _native.compiled():
        return int(_nk.popcount_words(words))
    if hasattr(np, "bitwise_count"):  # NumPy >= 2.0
        return int(np.bitwise_count(words).sum())
    return int(np.unpackbits(words.view(np.uint8)).sum())


def pack_bool(mask: np.ndarray) -> np.ndarray:
    """Pack a 1-D bool array into uint64 words (bit ``i`` = ``mask[i]``)."""
    mask = np.asarray(mask, dtype=bool)
    words = np.zeros(_num_words(mask.size), dtype=np.uint64)
    set_bits(words, np.flatnonzero(mask))
    return words


def unpack_words(words: np.ndarray, num_bits: int) -> np.ndarray:
    """The inverse of :func:`pack_bool`: words back to a bool array."""
    bits = np.arange(num_bits, dtype=np.int64)
    return test_bits(words, bits)


def test_bits(words: np.ndarray, bits: np.ndarray) -> np.ndarray:
    """Boolean mask: is each of ``bits`` set in ``words``?

    ``bits`` may contain duplicates and be in any order; the result
    aligns with ``bits``.
    """
    if bits.size == 0:
        return np.zeros(0, dtype=bool)
    gathered = words[bits >> _WORD_SHIFT]
    return (gathered >> (bits & _BIT_MASK).astype(np.uint64)) & _ONE != 0


def set_bits(words: np.ndarray, bits: np.ndarray) -> None:
    """Set every bit in ``bits`` (duplicates allowed) in ``words``.

    Grouped by word: masks are OR-reduced per touched word
    (``np.bitwise_or.reduceat``) and committed with one fancy-indexed
    OR, so the cost is one dispatch regardless of how many bits share a
    word.
    """
    if bits.size == 0:
        return
    word_idx = bits >> _WORD_SHIFT
    masks = _bit_masks(bits)
    if word_idx.size > 1 and (word_idx[1:] < word_idx[:-1]).any():
        order = np.argsort(word_idx, kind="stable")
        word_idx, masks = word_idx[order], masks[order]
    starts = np.flatnonzero(
        np.concatenate(([True], word_idx[1:] != word_idx[:-1]))
    )
    words[word_idx[starts]] |= np.bitwise_or.reduceat(masks, starts)


class SampleBitset:
    """A packed bitset over ``size`` sample ids."""

    __slots__ = ("size", "words")

    def __init__(self, size: int, words: np.ndarray | None = None) -> None:
        self.size = int(size)
        if words is None:
            words = np.zeros(_num_words(size), dtype=np.uint64)
        self.words = words

    @classmethod
    def from_bool(cls, mask: np.ndarray) -> "SampleBitset":
        return cls(len(mask), pack_bool(mask))

    def test(self, bits: np.ndarray) -> np.ndarray:
        """Membership mask for ``bits`` (no bounds check — hot path)."""
        return test_bits(self.words, bits)

    def set_many(self, bits: np.ndarray) -> None:
        """Add ``bits`` to the set (idempotent)."""
        set_bits(self.words, bits)

    def count(self) -> int:
        """Popcount: how many bits are set."""
        return popcount(self.words)

    def copy(self) -> "SampleBitset":
        return SampleBitset(self.size, self.words.copy())

    def to_bool(self) -> np.ndarray:
        """Materialise the dense bool view (tests / compat only)."""
        return unpack_words(self.words, self.size)

    def __repr__(self) -> str:
        return f"SampleBitset(size={self.size}, set={self.count()})"


class CowCounts:
    """Copy-on-write per-sample counts — the bit rows' scalar sibling.

    The coverage states carry one O(theta) ``counts`` array next to the
    packed rows; eagerly duplicating it on every branch clone (and
    twice per :class:`~repro.core.upper_bound.TauState` construction)
    was the last O(theta)-per-branch copy the ROADMAP flagged.  Like
    :meth:`PieceBitMatrix.copy`, :meth:`clone` shares the backing array
    and marks both holders shared; the first mutation on either side —
    via :meth:`own` — pays the one copy, and read-only holders (a
    pruned BAB node, a tau state that never commits) never pay it.

    ``array`` is the read view; callers must route every write through
    ``own()`` first, mirroring ``PieceBitMatrix._own_row``.
    """

    __slots__ = ("array", "_shared")

    def __init__(self, size: int, dtype=COUNT_DTYPE) -> None:
        self.array = np.zeros(int(size), dtype=dtype)
        self._shared = False

    def own(self) -> np.ndarray:
        """The counts array, privately owned (duplicating if shared)."""
        if self._shared:
            self.array = self.array.copy()
            self._shared = False
        return self.array

    def clone(self) -> "CowCounts":
        """O(1) copy-on-write clone; the array is duplicated on write."""
        clone = CowCounts.__new__(CowCounts)
        clone.array = self.array
        clone._shared = True
        self._shared = True
        return clone

    def __repr__(self) -> str:
        return (
            f"CowCounts(size={self.array.size}, shared={self._shared})"
        )


class PieceBitMatrix:
    """Per-piece packed coverage rows with copy-on-write cloning.

    :meth:`copy` shares every row between parent and clone and marks
    them shared; the first mutation of a row — on either side — pays
    one ``theta / 8``-byte row duplication, and untouched rows are
    never copied.  A BAB branch that dirties one piece therefore costs
    O(words of one row) instead of O(theta * l), while both states stay
    fully independent: no write is ever visible across the share.
    """

    __slots__ = ("num_pieces", "num_samples", "num_words", "_rows", "_shared")

    def __init__(self, num_pieces: int, num_samples: int) -> None:
        self.num_pieces = int(num_pieces)
        self.num_samples = int(num_samples)
        self.num_words = _num_words(num_samples)
        self._rows = [
            np.zeros(self.num_words, dtype=np.uint64)
            for _ in range(self.num_pieces)
        ]
        self._shared = [False] * self.num_pieces

    def copy(self) -> "PieceBitMatrix":
        """O(l) copy-on-write clone; rows are duplicated only on write."""
        clone = PieceBitMatrix.__new__(PieceBitMatrix)
        clone.num_pieces = self.num_pieces
        clone.num_samples = self.num_samples
        clone.num_words = self.num_words
        clone._rows = list(self._rows)
        clone._shared = [True] * self.num_pieces
        self._shared = [True] * self.num_pieces
        return clone

    def _own_row(self, piece: int) -> np.ndarray:
        """The piece's row, privately owned (duplicating if shared)."""
        if self._shared[piece]:
            self._rows[piece] = self._rows[piece].copy()
            self._shared[piece] = False
        return self._rows[piece]

    def row(self, piece: int) -> np.ndarray:
        """Read-only view of one piece's words (do not mutate)."""
        return self._rows[piece]

    def test(self, piece: int, samples: np.ndarray) -> np.ndarray:
        """Membership mask of ``samples`` in ``piece``'s row."""
        return test_bits(self._rows[piece], samples)

    def set_many(self, piece: int, samples: np.ndarray) -> None:
        """Set ``samples`` in ``piece``'s row (idempotent, CoW-safe)."""
        if samples.size == 0:
            return
        set_bits(self._own_row(piece), samples)

    def count_cells(self) -> int:
        """Total set cells across all pieces (the repr diagnostic)."""
        return sum(popcount(row) for row in self._rows)

    def to_bool(self) -> np.ndarray:
        """Materialise the dense ``(num_samples, num_pieces)`` bool view."""
        out = np.empty((self.num_samples, self.num_pieces), dtype=bool)
        for j in range(self.num_pieces):
            out[:, j] = unpack_words(self._rows[j], self.num_samples)
        return out

    def __repr__(self) -> str:
        return (
            f"PieceBitMatrix(pieces={self.num_pieces}, "
            f"samples={self.num_samples}, set={self.count_cells()})"
        )
