"""The OIPA problem instance (Definition 1).

Bundles the social graph ``G``, the campaign ``T``, the pool of eligible
promoters ``V^p ⊆ V``, the budget ``k`` and the logistic adoption
parameters.  The experiments draw ``V^p`` as a uniform 10 % of users
("in reality not all users are eligible for promoting ads", Sec. VI-A),
which :meth:`OIPAProblem.with_random_pool` reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import AssignmentPlan
from repro.diffusion.adoption import AdoptionModel
from repro.exceptions import SolverError
from repro.graph.digraph import TopicGraph
from repro.topics.distributions import Campaign
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["OIPAProblem"]


class OIPAProblem:
    """One OIPA instance: maximise sigma(S-bar) subject to |S-bar| <= k."""

    __slots__ = ("graph", "campaign", "adoption", "k", "pool")

    def __init__(
        self,
        graph: TopicGraph,
        campaign: Campaign,
        adoption: AdoptionModel,
        k: int,
        pool: np.ndarray | None = None,
    ) -> None:
        if campaign.num_topics != graph.num_topics:
            raise SolverError(
                f"campaign topic space ({campaign.num_topics}) does not match "
                f"graph ({graph.num_topics})"
            )
        self.graph = graph
        self.campaign = campaign
        self.adoption = adoption
        self.k = check_positive_int("k", k)
        if pool is None:
            pool = np.arange(graph.n, dtype=np.int64)
        pool = np.unique(np.asarray(pool, dtype=np.int64))
        if pool.size == 0:
            raise SolverError("promoter pool V^p is empty")
        if pool.min() < 0 or pool.max() >= graph.n:
            raise SolverError("promoter pool contains out-of-range vertices")
        self.pool = pool
        self.pool.setflags(write=False)

    @classmethod
    def with_random_pool(
        cls,
        graph: TopicGraph,
        campaign: Campaign,
        adoption: AdoptionModel,
        k: int,
        *,
        pool_fraction: float = 0.1,
        seed=None,
    ) -> "OIPAProblem":
        """Draw ``V^p`` uniformly as in the experiments (10 % of ``V``)."""
        check_fraction("pool_fraction", pool_fraction)
        rng = as_generator(seed)
        size = max(1, int(round(pool_fraction * graph.n)))
        pool = rng.choice(graph.n, size=size, replace=False)
        return cls(graph, campaign, adoption, k, pool)

    # ------------------------------------------------------------------

    @property
    def num_pieces(self) -> int:
        """Campaign facet count ``l``."""
        return self.campaign.num_pieces

    @property
    def pool_size(self) -> int:
        """Number of eligible promoters ``|V^p|``."""
        return int(self.pool.size)

    def empty_plan(self) -> AssignmentPlan:
        """The empty assignment plan sized for this campaign."""
        return AssignmentPlan.empty(self.num_pieces)

    def validate_plan(self, plan: AssignmentPlan) -> None:
        """Check a plan is feasible for this instance (raises otherwise)."""
        if plan.num_pieces != self.num_pieces:
            raise SolverError(
                f"plan has {plan.num_pieces} pieces, instance has "
                f"{self.num_pieces}"
            )
        if plan.size > self.k:
            raise SolverError(
                f"plan uses {plan.size} assignments, budget is {self.k}"
            )
        pool_set = set(self.pool.tolist())
        for v, j in plan.assignments():
            if v not in pool_set:
                raise SolverError(
                    f"vertex {v} (piece {j}) is not in the promoter pool"
                )

    def __repr__(self) -> str:
        return (
            f"OIPAProblem(n={self.graph.n}, l={self.num_pieces}, "
            f"k={self.k}, |V^p|={self.pool_size}, "
            f"alpha={self.adoption.alpha:.4g}, beta={self.adoption.beta:.4g})"
        )
