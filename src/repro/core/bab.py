"""The branch-and-bound framework (Algorithm 1): ``BAB`` and ``BAB-P``.

A max-heap holds partial plans ordered by their upper-bound estimate; in
each iteration the most promising node is popped, a branch variable — the
first (vertex, piece) its greedy bound computation selected — is chosen,
and two children are created: *include* (commit the assignment) and
*exclude* (remove the pair from the piece's availability set, Alg. 1
lines 9-12).  Each child's ``ComputeBound`` (plain greedy, Alg. 2) or
``ComputeBoundPro`` (progressive, Alg. 3) returns both a complete
candidate plan (a global lower bound) and the subspace's ``tau`` upper
bound; children whose upper bound cannot beat the incumbent are pruned.

Termination: when the best remaining upper bound no longer exceeds the
incumbent (the ``L >= U`` loop condition) — or, as in the paper's
experiments (Sec. VI-A), as soon as the relative gap falls within
``gap_tolerance`` (they use 1 %).  With the greedy bound this yields the
(1 − 1/e) guarantee of Theorem 2; with the progressive bound,
(1 − 1/e − eps) per Theorem 3 — both with respect to the MRR-estimated
objective.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.core.compute_bound import (
    BoundResult,
    CandidateSpace,
    compute_bound,
)
from repro.core.coverage import CoverageState
from repro.core.plan import AssignmentPlan
from repro.core.problem import OIPAProblem
from repro.core.progressive import compute_bound_progressive
from repro.core.tangent import MajorantTable
from repro.exceptions import BudgetExhaustedError, SolverError
from repro.sampling.mrr import MRRCollection
from repro.utils.timer import Timer
from repro.utils.validation import check_non_negative, check_positive

__all__ = [
    "SolverDiagnostics",
    "SolverResult",
    "BranchAndBoundSolver",
    "solve_bab",
    "solve_bab_progressive",
]


@dataclass
class SolverDiagnostics:
    """Work counters for one solve — the ablation benchmarks' currency."""

    nodes_expanded: int = 0
    nodes_pruned: int = 0
    bounds_computed: int = 0
    tau_evaluations: int = 0
    incumbent_updates: int = 0
    heap_peak: int = 0
    elapsed_seconds: float = 0.0
    termination: str = "unknown"


@dataclass(frozen=True)
class SolverResult:
    """A solved OIPA instance."""

    plan: AssignmentPlan
    utility: float
    upper_bound: float
    diagnostics: SolverDiagnostics = field(compare=False)

    @property
    def gap(self) -> float:
        """Relative optimality gap ``(U - L) / L`` (inf when L = 0)."""
        if self.utility <= 0:
            return math.inf if self.upper_bound > 0 else 0.0
        return max(0.0, (self.upper_bound - self.utility) / self.utility)


class _Node:
    """One heap entry: a partial plan plus its bound computation."""

    __slots__ = ("plan", "candidates", "bound")

    def __init__(
        self, plan: AssignmentPlan, candidates: CandidateSpace, bound: BoundResult
    ) -> None:
        self.plan = plan
        self.candidates = candidates
        self.bound = bound


class BranchAndBoundSolver:
    """Configurable Algorithm 1 driver.

    Parameters
    ----------
    problem:
        The OIPA instance.
    mrr:
        The MRR collection the objective is estimated on.
    bound:
        ``"greedy"`` (Algorithm 2 — the paper's BAB) or ``"progressive"``
        (Algorithm 3 — BAB-P).
    epsilon:
        Threshold-decay parameter for the progressive bound (Fig. 3's
        sweep; the paper settles on 0.5).
    gap_tolerance:
        Relative early-termination gap; the experiments use 0.01.  Zero
        runs the search until ``L >= U``.
    lazy:
        Use lazy (CELF) evaluation inside the greedy bound.  Identical
        selections, fewer tau evaluations.  Defaults to ``False`` — the
        paper's Algorithm 2 is the plain rescanning greedy, and the
        BAB-vs-BAB-P efficiency comparison (Fig. 4's time panels,
        Theorem 4) is stated against that plain loop.  Set ``True`` for
        the engineering-ablation benchmark.
    majorant:
        ``"tangent"`` (the paper's Fig. 2 construction) or ``"chord"``
        (tighter discrete envelope; ablation option).
    max_nodes:
        Safety cap on heap pops.  When hit, the incumbent is returned
        with ``termination = "node_budget"`` unless ``strict_budget``.
    strict_budget:
        Raise :class:`BudgetExhaustedError` instead of returning on a
        node-budget hit.
    incumbent:
        Optional warm-start plan (e.g. the previous solve's answer on
        an updated collection).  Validated against the problem, scored
        on ``mrr``, and adopted as the initial incumbent when it beats
        the root bound's candidate — its estimate is a sound lower
        bound wherever the plan came from, so the search only gains
        pruning power; the returned plan is unchanged unless the warm
        plan genuinely wins.
    """

    def __init__(
        self,
        problem: OIPAProblem,
        mrr: MRRCollection,
        *,
        bound: str = "greedy",
        epsilon: float = 0.5,
        gap_tolerance: float = 0.01,
        lazy: bool = False,
        majorant: str = "tangent",
        max_nodes: int = 100_000,
        strict_budget: bool = False,
        incumbent: AssignmentPlan | None = None,
    ) -> None:
        if bound not in ("greedy", "progressive"):
            raise SolverError(
                f"bound must be 'greedy' or 'progressive', got {bound!r}"
            )
        if mrr.num_pieces != problem.num_pieces:
            raise SolverError(
                f"MRR collection has {mrr.num_pieces} pieces, problem has "
                f"{problem.num_pieces}"
            )
        if mrr.n != problem.graph.n:
            raise SolverError("MRR collection and problem graph sizes differ")
        check_non_negative("gap_tolerance", gap_tolerance)
        if bound == "progressive":
            check_positive("epsilon", epsilon)
        self.problem = problem
        self.mrr = mrr
        self.bound_kind = bound
        self.epsilon = float(epsilon)
        self.gap_tolerance = float(gap_tolerance)
        self.lazy = bool(lazy)
        self.max_nodes = int(max_nodes)
        self.strict_budget = bool(strict_budget)
        if incumbent is not None:
            problem.validate_plan(incumbent)
        self.warm_incumbent = incumbent
        self.table = MajorantTable(
            problem.adoption, problem.num_pieces, method=majorant
        )

    # ------------------------------------------------------------------

    def _compute_bound(
        self,
        plan: AssignmentPlan,
        candidates: CandidateSpace,
        base: CoverageState | None = None,
    ) -> BoundResult:
        if self.bound_kind == "greedy":
            return compute_bound(
                self.mrr,
                self.table,
                self.problem.adoption,
                plan,
                candidates,
                self.problem.k,
                lazy=self.lazy,
                base=base,
            )
        return compute_bound_progressive(
            self.mrr,
            self.table,
            self.problem.adoption,
            plan,
            candidates,
            self.problem.k,
            epsilon=self.epsilon,
            base=base,
        )

    def solve(self) -> SolverResult:
        """Run Algorithm 1 and return the incumbent plan."""
        problem = self.problem
        diag = SolverDiagnostics()
        timer = Timer().start()

        root_plan = problem.empty_plan()
        root_space = CandidateSpace(problem.pool, problem.num_pieces)
        root_bound = self._compute_bound(root_plan, root_space)
        diag.bounds_computed += 1
        diag.tau_evaluations += root_bound.evaluations

        incumbent = root_bound.plan
        lower = root_bound.lower
        diag.incumbent_updates += 1
        if self.warm_incumbent is not None:
            warm_lower = float(
                self.mrr.estimate(
                    self.warm_incumbent.seed_lists(), problem.adoption
                )
            )
            if warm_lower > lower:
                incumbent = self.warm_incumbent
                lower = warm_lower
                diag.incumbent_updates += 1
        upper_seen = root_bound.upper

        counter = 0
        heap: list[tuple[float, int, _Node]] = []
        heapq.heappush(
            heap, (-root_bound.upper, counter, _Node(root_plan, root_space, root_bound))
        )
        diag.heap_peak = 1
        termination = "exhausted"

        while heap:
            neg_upper, _, node = heapq.heappop(heap)
            upper = -neg_upper
            upper_seen = upper
            # Loop condition of Alg. 1 (L < U), relaxed by the
            # experiments' relative gap tolerance.
            if upper <= lower or upper <= lower * (1.0 + self.gap_tolerance):
                termination = "gap"
                upper_seen = max(lower, upper)
                break
            diag.nodes_expanded += 1
            if diag.nodes_expanded > self.max_nodes:
                termination = "node_budget"
                if self.strict_budget:
                    raise BudgetExhaustedError(
                        f"node budget {self.max_nodes} exhausted "
                        f"(gap {upper - lower:.4g})",
                        incumbent=incumbent,
                    )
                break
            # Line 8: only branch while the plan can still grow.
            if node.plan.size >= problem.k or node.bound.first_pick is None:
                continue
            v_star, j_star = node.bound.first_pick

            # Lines 9-12: include / exclude v* for piece j*.  The node's
            # coverage is rebuilt once; the include child branches off it
            # with an O(dirty words) copy-on-write clone plus one `add`,
            # and the exclude child (same plan as the node) consumes the
            # base directly.  Covered cells and counts are set-identical
            # to per-child `from_plan` rebuilds, so bounds match exactly.
            child_space = node.candidates.without(v_star, j_star)
            include_plan = node.plan.with_assignment(v_star, j_star)
            node_cov = CoverageState.from_plan(self.mrr, node.plan)
            include_cov = node_cov.copy()
            include_cov.add(v_star, j_star)
            for child_plan, child_cov in (
                (include_plan, include_cov),
                (node.plan, node_cov),
            ):
                child_bound = self._compute_bound(
                    child_plan, child_space, base=child_cov
                )
                diag.bounds_computed += 1
                diag.tau_evaluations += child_bound.evaluations
                # Lines 14-15: incumbent update.
                if child_bound.lower > lower:
                    lower = child_bound.lower
                    incumbent = child_bound.plan
                    diag.incumbent_updates += 1
                # Lines 16-17: push the subspace if it can still win.
                if child_bound.upper > lower * (1.0 + self.gap_tolerance):
                    counter += 1
                    heapq.heappush(
                        heap,
                        (
                            -child_bound.upper,
                            counter,
                            _Node(child_plan, child_space, child_bound),
                        ),
                    )
                else:
                    diag.nodes_pruned += 1
            diag.heap_peak = max(diag.heap_peak, len(heap))

        if not heap and termination == "exhausted":
            upper_seen = lower
        diag.elapsed_seconds = timer.stop()
        diag.termination = termination
        return SolverResult(
            plan=incumbent,
            utility=lower,
            upper_bound=max(lower, upper_seen),
            diagnostics=diag,
        )


def solve_bab(
    problem: OIPAProblem, mrr: MRRCollection, **kwargs
) -> SolverResult:
    """The paper's ``BAB``: branch-and-bound with the greedy bound."""
    return BranchAndBoundSolver(problem, mrr, bound="greedy", **kwargs).solve()


def solve_bab_progressive(
    problem: OIPAProblem,
    mrr: MRRCollection,
    *,
    epsilon: float = 0.5,
    **kwargs,
) -> SolverResult:
    """The paper's ``BAB-P``: branch-and-bound with the progressive bound."""
    return BranchAndBoundSolver(
        problem, mrr, bound="progressive", epsilon=epsilon, **kwargs
    ).solve()
