"""The paper's primary contribution: the OIPA problem and its solvers."""

from repro.core.plan import AssignmentPlan
from repro.core.problem import OIPAProblem
from repro.core.bitset import PieceBitMatrix, SampleBitset
from repro.core.coverage import CoverageState
from repro.core.tangent import MajorantTable, refine_tangent_slope
from repro.core.upper_bound import TauState
from repro.core.compute_bound import BoundResult, compute_bound
from repro.core.progressive import compute_bound_progressive
from repro.core.bab import (
    BranchAndBoundSolver,
    SolverDiagnostics,
    SolverResult,
    solve_bab,
    solve_bab_progressive,
)
from repro.core.brute_force import (
    brute_force_oipa,
    deterministic_adoption_utility,
)
from repro.core.hardness import CliqueReduction
from repro.core.local_search import LocalSearchResult, local_search

__all__ = [
    "AssignmentPlan",
    "OIPAProblem",
    "PieceBitMatrix",
    "SampleBitset",
    "CoverageState",
    "MajorantTable",
    "refine_tangent_slope",
    "TauState",
    "BoundResult",
    "compute_bound",
    "compute_bound_progressive",
    "BranchAndBoundSolver",
    "SolverDiagnostics",
    "SolverResult",
    "solve_bab",
    "solve_bab_progressive",
    "brute_force_oipa",
    "deterministic_adoption_utility",
    "CliqueReduction",
    "LocalSearchResult",
    "local_search",
]
