"""Command-line entry point: ``repro-experiments``.

Regenerates any table or figure of the paper at a chosen profile::

    repro-experiments table3
    repro-experiments fig4 --profile quick
    repro-experiments fig3 --theta 8000 --datasets lastfm
    repro-experiments table3 --model ic lt          # mixed-model pieces
    repro-experiments fig4 --store disk --shard-dir /tmp/shards
    repro-experiments all --out results.txt
    repro-experiments params            # print Table IV

The ``quick`` profile (default) finishes each figure in minutes on a
laptop; ``full`` uses larger graphs and theta (see
``repro.experiments.config``).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import PAPER_PARAMETER_GRID, get_profile
from repro.experiments.figures import (
    figure3_epsilon,
    figure4_promoters,
    figure5_pieces,
    figure6_beta_alpha,
    headline_claims,
    table3_datasets,
)
from repro.utils.tables import format_table

__all__ = ["main", "build_parser"]

_DRIVERS = {
    "table3": table3_datasets,
    "fig3": figure3_epsilon,
    "fig4": figure4_promoters,
    "fig5": figure5_pieces,
    "fig6": figure6_beta_alpha,
    "headline": headline_claims,
}


def _parse_workers_flag(text: str):
    """argparse type for ``--workers``: int, ``auto``, or ``serial``."""
    if text in ("auto", "serial"):
        return text
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, 'auto', or 'serial', got {text!r}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Maximizing Multifaceted "
            "Network Influence' (ICDE 2019) on synthetic stand-in datasets."
        ),
    )
    parser.add_argument(
        "target",
        choices=[*_DRIVERS, "all", "params"],
        help="which table/figure to regenerate ('all' runs everything, "
        "'params' prints the paper's Table IV grid)",
    )
    parser.add_argument(
        "--profile",
        default="quick",
        choices=["quick", "full"],
        help="experiment scale profile (default: quick)",
    )
    parser.add_argument(
        "--theta",
        type=int,
        default=None,
        help="override the profile's RR sample count per piece",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        default=None,
        metavar="NAME",
        help="restrict to a subset of datasets (lastfm dblp tweet)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the profile seed"
    )
    parser.add_argument(
        "--workers",
        default=None,
        metavar="N",
        type=_parse_workers_flag,
        help="parallel sampling fan-out: an integer pool size, 'auto', "
        "or 'serial' (default: the profile's setting — serial)",
    )
    parser.add_argument(
        "--executor",
        default=None,
        choices=["thread", "process", "spawned"],
        help="pool flavour for the parallel runtime; 'spawned' runs "
        "disk-store generation as cooperating worker processes "
        "(default: thread)",
    )
    parser.add_argument(
        "--model",
        nargs="+",
        default=None,
        choices=["ic", "lt"],
        metavar="MODEL",
        help="per-piece diffusion models, cycled across each cell's "
        "pieces (e.g. '--model ic lt' alternates IC and LT — the "
        "mixed-model multiplex workload); default: IC everywhere",
    )
    parser.add_argument(
        "--store",
        default=None,
        choices=["memory", "disk"],
        help="sample-store layer: 'memory' keeps MRR arrays in RAM, "
        "'disk' spills root-block shards to --shard-dir and bounds "
        "resident sample memory (default: the REPRO_STORE env "
        "override, else memory)",
    )
    parser.add_argument(
        "--shard-dir",
        default=None,
        metavar="PATH",
        help="root directory for disk-store shards (per-cell "
        "subdirectories are created; default: a private temp dir); "
        "requires --store disk",
    )
    parser.add_argument(
        "--max-resident-mb",
        default=None,
        type=int,
        metavar="MB",
        help="disk-store resident ceiling in MiB for shard caches and "
        "index builds (default: 256); requires --store disk",
    )
    parser.add_argument(
        "--artifact-dir",
        default=None,
        metavar="PATH",
        help="content-addressed artifact cache directory "
        "(repro.artifacts): sweep cells sharing a (graph, campaign, "
        "theta) reuse one sampled collection across the solver/k axes "
        "and across invocations; 'memory' caches in-process, 'off' "
        "disables (default: the REPRO_ARTIFACTS env override, else off)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the report to this file",
    )
    return parser


def _print_params() -> str:
    rows = [[name, ", ".join(map(str, values))] for name, values in
            PAPER_PARAMETER_GRID.items()]
    return format_table(
        ["parameter", "values"],
        rows,
        title="Table IV: parameters in the experiments",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.target == "params":
        print(_print_params())
        return 0
    profile = get_profile(args.profile)
    overrides = {}
    if args.theta is not None:
        overrides["theta"] = args.theta
    if args.datasets is not None:
        overrides["datasets"] = tuple(args.datasets)
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.executor is not None:
        overrides["executor"] = args.executor
    if args.model is not None:
        overrides["model"] = (
            args.model[0] if len(args.model) == 1 else tuple(args.model)
        )
    if args.store is not None:
        overrides["store"] = args.store
    if args.shard_dir is not None or args.max_resident_mb is not None:
        # The store may also resolve to disk via the profile or the
        # REPRO_STORE env default, so only the explicit contradiction
        # fails here; anything subtler is validated (with a clear
        # ConfigError) when the first collection resolves its store.
        if args.store == "memory":
            parser.error(
                "--shard-dir / --max-resident-mb require the disk store"
            )
        if args.shard_dir is not None:
            overrides["shard_dir"] = args.shard_dir
        if args.max_resident_mb is not None:
            overrides["max_resident_bytes"] = (
                args.max_resident_mb * 1024 * 1024
            )
    if args.artifact_dir is not None:
        overrides["artifacts"] = args.artifact_dir
    if overrides:
        profile = profile.with_overrides(**overrides)

    targets = list(_DRIVERS) if args.target == "all" else [args.target]
    sections: list[str] = []
    for name in targets:
        print(f"[repro-experiments] running {name} ...", file=sys.stderr)
        result = _DRIVERS[name](profile)
        sections.append(result.render())
    report = "\n\n\n".join(sections)
    print(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        print(f"[repro-experiments] wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
