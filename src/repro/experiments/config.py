"""Experiment configuration: the paper's Table IV grid and our profiles.

The paper's grid (Table IV)::

    k          10, 20, ..., 50, ..., 100      (default 50)
    l          1, 2, 3, 4, 5                  (default 3)
    beta/alpha 0.3, 0.5, 0.7                  (default 0.5; beta fixed at 1)
    epsilon    0.1, ..., 0.5, ..., 0.9        (default 0.5)
    theta      10^6 RR sets per piece
    V^p        uniform 10 % of V

Running that grid verbatim in pure Python would take days, so the
harness exposes *profiles*: ``quick`` (benchmark-suite scale — minutes)
and ``full`` (closer to paper scale — hours).  Both keep the paper's
piece/epsilon/ratio grids; what shrinks is the graph scale, theta, and
the k grid.  EXPERIMENTS.md reports which profile produced each number.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exceptions import ExperimentError
from repro.runtime import Runtime

__all__ = [
    "PAPER_PARAMETER_GRID",
    "ExperimentProfile",
    "QUICK_PROFILE",
    "FULL_PROFILE",
    "get_profile",
]

#: Table IV, verbatim.
PAPER_PARAMETER_GRID: dict[str, tuple] = {
    "k": (10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
    "l": (1, 2, 3, 4, 5),
    "beta_over_alpha": (0.3, 0.5, 0.7),
    "epsilon": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
}

#: Table IV defaults (the value held fixed while others sweep).
PAPER_DEFAULTS = {
    "k": 50,
    "l": 3,
    "beta_over_alpha": 0.5,
    "epsilon": 0.5,
}


@dataclass(frozen=True)
class ExperimentProfile:
    """Everything a figure driver needs to size its sweep."""

    name: str
    datasets: tuple[str, ...]
    dataset_scale: dict[str, float] = field(default_factory=dict)
    theta: int = 4_000
    k_grid: tuple[int, ...] = (5, 10, 15, 20)
    default_k: int = 10
    l_grid: tuple[int, ...] = (1, 2, 3, 4, 5)
    default_l: int = 3
    ratio_grid: tuple[float, ...] = (0.3, 0.5, 0.7)
    default_ratio: float = 0.5
    epsilon_grid: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)
    default_epsilon: float = 0.5
    pool_fraction: float = 0.1
    gap_tolerance: float = 0.01
    max_nodes: int = 3_000
    eval_theta: int | None = None  # defaults to theta
    theta_multiplier: dict[str, float] = field(default_factory=dict)
    seed: int = 2019  # ICDE year; fixed for reproducibility
    #: Sampling-runtime fan-out (``repro.sampling.parallel``): ``None``
    #: keeps the historical serial stream, ``"auto"``/int fan the
    #: (piece, root block) tasks out on a pool.  Collections are
    #: identical for every worker count, so figures stay reproducible.
    workers: int | str | None = None
    #: Per-piece diffusion models: ``None`` (IC everywhere), one name,
    #: or a sequence cycled across the pieces of each cell — the
    #: mixed-model multiplex workload (``--model ic lt`` gives IC/LT
    #: alternating pieces at every ``l`` of a sweep).  LT pieces are
    #: weight-normalised by the runner before sampling.
    model: str | tuple[str, ...] | None = None
    #: Sample-store layer (``repro.sampling.store``): ``None`` defers to
    #: the ``REPRO_STORE`` env default, ``"memory"`` pins in-RAM arrays,
    #: ``"disk"`` spills root-block shards under ``shard_dir`` (a temp
    #: directory when unset) with resident sample memory bounded by
    #: ``max_resident_bytes``.
    store: str | None = None
    shard_dir: str | None = None
    max_resident_bytes: int | None = None
    #: Pool flavour for the parallel runtime (``"thread"``/``"process"``).
    executor: str | None = None
    #: Content-addressed artifact cache (``repro.artifacts``): ``None``
    #: defers to ``REPRO_ARTIFACTS``, ``"memory"`` caches in-process, a
    #: path caches on disk so sweep cells sharing a (graph, campaign,
    #: theta) reuse one sampled collection across the solver/k axes —
    #: and across harness invocations.
    artifacts: str | None = None
    #: One :class:`repro.runtime.Runtime` carrying the whole execution
    #: policy.  The per-knob fields above remain as declarative/CLI
    #: overlays: any that are set override the corresponding ``runtime``
    #: field (see :meth:`resolved_runtime`).  ``model`` stays separate
    #: because the harness cycles it per cell (:meth:`models_for`).
    runtime: Runtime | None = None

    def resolved_runtime(self) -> Runtime:
        """The profile's execution policy as one :class:`Runtime`.

        Starts from the ``runtime`` field (or an all-defaults
        :class:`Runtime`) and overlays the legacy per-knob profile
        fields — the CLI flags keep feeding those, so ``--workers`` and
        friends override a profile-supplied runtime the same way an
        explicit kwarg overrides a ``Runtime`` field everywhere else.
        The per-cell diffusion models are *not* folded in here; the
        runner attaches :meth:`models_for`'s cycled tuple per cell.
        """
        base = self.runtime if self.runtime is not None else Runtime()
        overlays = {
            name: getattr(self, name)
            for name in (
                "workers",
                "executor",
                "store",
                "shard_dir",
                "max_resident_bytes",
                "artifacts",
            )
            if getattr(self, name) is not None
        }
        return base.replace(**overlays) if overlays else base

    def scale_for(self, dataset: str) -> float | None:
        """Scale override for ``dataset`` (None = registry default)."""
        return self.dataset_scale.get(dataset)

    def models_for(self, num_pieces: int) -> tuple[str, ...] | None:
        """The per-piece model list for a cell with ``num_pieces`` pieces.

        A configured sequence is cycled (or truncated) to the cell's
        piece count so one ``--model ic lt`` flag serves every ``l`` of
        a sweep; a scalar or ``None`` passes through unchanged.
        """
        if self.model is None or isinstance(self.model, str):
            return None if self.model is None else (self.model,) * num_pieces
        if not self.model:
            raise ExperimentError("model list must not be empty")
        cycled = tuple(
            self.model[i % len(self.model)] for i in range(num_pieces)
        )
        return cycled

    def theta_for(self, dataset: str) -> tuple[int, int]:
        """(optimisation, evaluation) sample counts for ``dataset``.

        Sparse datasets (tweet-like) have thin adoption densities, so
        their estimates need proportionally more samples; per-dataset
        multipliers keep the estimator's *relative* error comparable
        across datasets (the paper's flat theta=1e6 achieves the same by
        brute force).
        """
        mult = self.theta_multiplier.get(dataset, 1.0)
        opt = int(round(self.theta * mult))
        eval_base = self.eval_theta or self.theta
        return opt, int(round(eval_base * mult))

    def with_overrides(self, **kwargs) -> "ExperimentProfile":
        """A copy with selected fields replaced (CLI flag plumbing)."""
        return replace(self, **kwargs)


#: Benchmark-suite scale: every figure regenerates in minutes.
QUICK_PROFILE = ExperimentProfile(
    name="quick",
    datasets=("lastfm", "dblp", "tweet"),
    dataset_scale={"lastfm": 0.5, "dblp": 0.06, "tweet": 0.06},
    theta=3_000,
    k_grid=(5, 10, 15, 20),
    default_k=10,
    l_grid=(1, 2, 3, 4, 5),
    default_l=3,
    epsilon_grid=(0.1, 0.3, 0.5, 0.7, 0.9),
    max_nodes=150,
    eval_theta=12_000,
    theta_multiplier={"dblp": 2.0, "tweet": 6.0},
)

#: Fuller runs (CLI `--profile full`): paper-shaped grids, larger graphs.
FULL_PROFILE = ExperimentProfile(
    name="full",
    datasets=("lastfm", "dblp", "tweet"),
    dataset_scale={},  # registry defaults: 1.3k / 8k / 10k vertices
    theta=20_000,
    k_grid=(10, 20, 30, 40, 50),
    default_k=30,
    l_grid=(1, 2, 3, 4, 5),
    default_l=3,
    epsilon_grid=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    max_nodes=2_000,
    eval_theta=40_000,
    theta_multiplier={"dblp": 2.0, "tweet": 6.0},
)

_PROFILES = {"quick": QUICK_PROFILE, "full": FULL_PROFILE}


def get_profile(name: str) -> ExperimentProfile:
    """Look up a named profile."""
    profile = _PROFILES.get(name)
    if profile is None:
        raise ExperimentError(
            f"unknown profile {name!r}; available: {sorted(_PROFILES)}"
        )
    return profile
