"""Per-figure experiment drivers.

Each driver regenerates one table or figure of the paper's Sec. VI at
the requested profile's scale and returns a :class:`FigureResult` whose
``render()`` prints the same rows/series the paper plots.  The expected
*shapes* (who wins, how curves move) are documented per driver and
asserted by the benchmark suite; EXPERIMENTS.md records paper-vs-measured
values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datasets.registry import load_dataset
from repro.experiments.config import ExperimentProfile, QUICK_PROFILE
from repro.experiments.runner import (
    METHODS,
    prepare_instance,
    run_cell,
    run_methods,
)
from repro.utils.tables import format_series, format_table

__all__ = [
    "FigureResult",
    "table3_datasets",
    "figure3_epsilon",
    "figure4_promoters",
    "figure5_pieces",
    "figure6_beta_alpha",
    "headline_claims",
]


@dataclass
class FigureResult:
    """One regenerated table/figure: raw values plus a text rendering."""

    name: str
    description: str
    panels: dict = field(default_factory=dict)
    text: str = ""

    def render(self) -> str:
        return self.text

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


# ----------------------------------------------------------------------
# Table III — dataset statistics
# ----------------------------------------------------------------------

def table3_datasets(profile: ExperimentProfile = QUICK_PROFILE) -> FigureResult:
    """Reproduce Table III: per-dataset statistics + sample time.

    Paper values are printed next to our synthetic stand-ins' so the
    scale substitution (DESIGN.md §3) is visible in every report.
    """
    rows = []
    panels = {}
    for name in profile.datasets:
        bundle = load_dataset(name, scale=profile.scale_for(name))
        instance = prepare_instance(
            name,
            profile,
            k=profile.default_k,
            num_pieces=profile.default_l,
            beta_over_alpha=profile.default_ratio,
        )
        row = bundle.table3_row() + [round(instance.sample_seconds, 2)]
        rows.append(row)
        panels[name] = {
            "summary": bundle.summary,
            "sample_seconds": instance.sample_seconds,
            "build_seconds": bundle.build_seconds,
        }
    text = format_table(
        [
            "dataset",
            "paper |V|",
            "paper |E|",
            "paper |Z|",
            "ours |V|",
            "ours |E|",
            "avg deg",
            "|Z|",
            "topics/edge",
            "sample time (s)",
        ],
        rows,
        title="Table III: dataset statistics (paper vs this reproduction)",
    )
    return FigureResult(
        name="table3",
        description="Dataset statistics and RR sampling time",
        panels=panels,
        text=text,
    )


# ----------------------------------------------------------------------
# Figure 3 — tuning epsilon for BAB-P
# ----------------------------------------------------------------------

def figure3_epsilon(profile: ExperimentProfile = QUICK_PROFILE) -> FigureResult:
    """Reproduce Fig. 3: BAB-P adoption utility as epsilon varies.

    Expected shape: utility mildly *descends* as epsilon rises (larger
    threshold steps admit promoters earlier); the paper measures drops of
    0.08 % (lastfm), 6.6 % (dblp) and 1.4 % (tweet) from eps 0.1 to 0.9.
    """
    panels = {}
    blocks = []
    for dataset in profile.datasets:
        instance = prepare_instance(
            dataset,
            profile,
            k=profile.default_k,
            num_pieces=profile.default_l,
            beta_over_alpha=profile.default_ratio,
        )
        utilities = []
        for eps in profile.epsilon_grid:
            cell = run_cell(
                instance,
                "BAB-P",
                epsilon=eps,
                gap_tolerance=profile.gap_tolerance,
                max_nodes=profile.max_nodes,
            )
            utilities.append(cell.utility)
        panels[dataset] = {
            "epsilon": list(profile.epsilon_grid),
            "BAB-P": utilities,
        }
        blocks.append(
            format_series(
                "epsilon",
                list(profile.epsilon_grid),
                {"BAB-P utility": utilities},
                title=f"Figure 3 [{dataset}]: tuning epsilon for BAB-P",
            )
        )
    return FigureResult(
        name="figure3",
        description="BAB-P utility vs epsilon",
        panels=panels,
        text="\n\n".join(blocks),
    )


# ----------------------------------------------------------------------
# Figures 4-6 — method comparisons over k, l, beta/alpha
# ----------------------------------------------------------------------

def _sweep(
    profile: ExperimentProfile,
    x_name: str,
    x_values,
    *,
    fixed: dict,
    figure_name: str,
    figure_title: str,
) -> FigureResult:
    """Shared driver: sweep one parameter, all methods, all datasets."""
    panels = {}
    blocks = []
    for dataset in profile.datasets:
        utility = {m: [] for m in METHODS}
        times = {m: [] for m in METHODS}
        for x in x_values:
            params = dict(fixed)
            params[x_name] = x
            cells = run_methods(dataset, profile, **params)
            for m in METHODS:
                utility[m].append(cells[m].utility)
                times[m].append(cells[m].elapsed_seconds)
        panels[dataset] = {
            x_name: list(x_values),
            "utility": utility,
            "time": times,
        }
        blocks.append(
            format_series(
                x_name,
                list(x_values),
                utility,
                title=f"{figure_title} [{dataset}]: adoption utility",
            )
        )
        blocks.append(
            format_series(
                x_name,
                list(x_values),
                times,
                title=f"{figure_title} [{dataset}]: run time (s)",
            )
        )
    return FigureResult(
        name=figure_name,
        description=figure_title,
        panels=panels,
        text="\n\n".join(blocks),
    )


def figure4_promoters(profile: ExperimentProfile = QUICK_PROFILE) -> FigureResult:
    """Reproduce Fig. 4: utility & time vs the number of promoters k.

    Expected shape: utility grows with k for every method and orders
    BAB >= BAB-P > TIM > IM; BAB's run time grows fastest; BAB-P stays
    several-fold cheaper and scales best among the OIPA solvers.
    """
    return _sweep(
        profile,
        "k",
        profile.k_grid,
        fixed={
            "num_pieces": profile.default_l,
            "beta_over_alpha": profile.default_ratio,
        },
        figure_name="figure4",
        figure_title="Figure 4 (varying k)",
    )


def figure5_pieces(profile: ExperimentProfile = QUICK_PROFILE) -> FigureResult:
    """Reproduce Fig. 5: utility & time vs the number of viral pieces l.

    Expected shape: utilities rise with l (beta = 1: each extra received
    piece raises adoption probability); IM/TIM fall further behind BAB /
    BAB-P as l grows since they still spread a single piece.
    """
    return _sweep(
        profile,
        "num_pieces",
        profile.l_grid,
        fixed={
            "k": profile.default_k,
            "beta_over_alpha": profile.default_ratio,
        },
        figure_name="figure5",
        figure_title="Figure 5 (varying l)",
    )


def figure6_beta_alpha(profile: ExperimentProfile = QUICK_PROFILE) -> FigureResult:
    """Reproduce Fig. 6: utility vs the ratio beta/alpha.

    Expected shape: all utilities rise with beta/alpha (alpha shrinking
    makes adoption easier), and the BAB/BAB-P advantage over IM/TIM is
    *largest at small beta/alpha* — the regime where a user must receive
    several pieces before adoption becomes likely.
    """
    return _sweep(
        profile,
        "beta_over_alpha",
        profile.ratio_grid,
        fixed={"k": profile.default_k, "num_pieces": profile.default_l},
        figure_name="figure6",
        figure_title="Figure 6 (varying beta/alpha)",
    )


# ----------------------------------------------------------------------
# Headline claims
# ----------------------------------------------------------------------

def headline_claims(profile: ExperimentProfile = QUICK_PROFILE) -> FigureResult:
    """Check the abstract's two headline numbers at reproduction scale.

    1. Quality: BAB/BAB-P beat IM and TIM (the paper reports >= 215 %
       aggregate improvement; gains grow with l and shrink with
       beta/alpha).
    2. Efficiency: BAB-P needs far fewer tau evaluations and less time
       than BAB (paper: up to 24x speedup).
    """
    rows = []
    panels = {}
    for dataset in profile.datasets:
        cells = run_methods(
            dataset,
            profile,
            k=profile.default_k,
            num_pieces=max(profile.l_grid),
            beta_over_alpha=min(profile.ratio_grid),
        )
        bab, babp = cells["BAB"], cells["BAB-P"]
        im, tim = cells["IM"], cells["TIM"]
        best_baseline = max(im.utility, tim.utility)
        gain_pct = (
            (bab.utility / best_baseline - 1.0) * 100.0
            if best_baseline > 0
            else float("inf")
        )
        speedup_time = (
            bab.elapsed_seconds / babp.elapsed_seconds
            if babp.elapsed_seconds > 0
            else float("inf")
        )
        # Theorem 4's quantity: tau evaluations per ComputeBound call.
        # (Whole-solve eval totals confound per-bound cost with how many
        # nodes each search happened to expand before its gap closed.)
        speedup_evals = (
            bab.evaluations_per_bound / babp.evaluations_per_bound
            if babp.evaluations_per_bound > 0
            else float("inf")
        )
        panels[dataset] = {
            "utilities": {m: cells[m].utility for m in METHODS},
            "gain_vs_best_baseline_pct": gain_pct,
            "speedup_time": speedup_time,
            "speedup_evals": speedup_evals,
        }
        rows.append(
            [
                dataset,
                round(im.utility, 3),
                round(tim.utility, 3),
                round(bab.utility, 3),
                round(babp.utility, 3),
                f"{gain_pct:.0f}%",
                f"{speedup_time:.1f}x",
                f"{speedup_evals:.1f}x",
            ]
        )
    text = format_table(
        [
            "dataset",
            "IM",
            "TIM",
            "BAB",
            "BAB-P",
            "BAB gain",
            "BAB-P time speedup",
            "eval speedup",
        ],
        rows,
        title=(
            "Headline claims (hardest cell: max l, min beta/alpha): "
            "quality gain vs best baseline, BAB-P speedup vs BAB"
        ),
    )
    return FigureResult(
        name="headline",
        description="Abstract's >=215% quality / 24x speedup claims",
        panels=panels,
        text=text,
    )
