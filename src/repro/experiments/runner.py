"""Generic experiment cell runner.

One *cell* = (dataset, parameters, method) -> (utility, time,
diagnostics).  The runner mirrors the paper's measurement protocol
(Sec. VI-A):

* theta RR sets are generated per piece once and shared across methods
  ("for a fair comparison, we fix theta across all experiments");
* sampling time is excluded from per-method timings ("we exclude the
  sampling time ... since the time is the same for all compared
  approaches") and reported separately (Table III's "Sample Time" row);
* utilities are re-estimated on an *independent* evaluation MRR
  collection so no optimiser grades its own homework.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.bab import BranchAndBoundSolver
from repro.core.problem import OIPAProblem
from repro.datasets.registry import DatasetBundle, load_dataset
from repro.diffusion.adoption import AdoptionModel
from repro.diffusion.projection import project_campaign
from repro.diffusion.threshold import normalize_lt_weights
from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentProfile
from repro.im.baselines import im_baseline, tim_baseline
from repro.sampling.mrr import MRRCollection
from repro.topics.distributions import Campaign
from repro.utils.rng import spawn_generators
from repro.utils.timer import Timer

__all__ = ["CellResult", "run_cell", "run_methods", "prepare_instance"]

METHODS = ("IM", "TIM", "BAB", "BAB-P")


@dataclass(frozen=True)
class CellResult:
    """One method's outcome on one experiment cell."""

    dataset: str
    method: str
    k: int
    num_pieces: int
    beta_over_alpha: float
    epsilon: float | None
    utility: float
    elapsed_seconds: float
    tau_evaluations: int
    nodes_expanded: int
    bounds_computed: int
    sample_seconds: float

    @property
    def evaluations_per_bound(self) -> float:
        """Mean tau evaluations per ComputeBound call (Theorem 4's unit)."""
        if self.bounds_computed == 0:
            return 0.0
        return self.tau_evaluations / self.bounds_computed

    def as_row(self) -> list:
        return [
            self.dataset,
            self.method,
            self.k,
            self.num_pieces,
            self.beta_over_alpha,
            "-" if self.epsilon is None else self.epsilon,
            round(self.utility, 4),
            round(self.elapsed_seconds, 4),
            self.tau_evaluations,
            self.nodes_expanded,
        ]


@dataclass(frozen=True)
class PreparedInstance:
    """Shared per-cell state: problem + optimisation/evaluation samples."""

    bundle: DatasetBundle
    problem: OIPAProblem
    mrr_opt: MRRCollection
    mrr_eval: MRRCollection
    sample_seconds: float


def prepare_instance(
    dataset: str,
    profile: ExperimentProfile,
    *,
    k: int,
    num_pieces: int,
    beta_over_alpha: float,
) -> PreparedInstance:
    """Build the problem and both MRR collections for one cell."""
    bundle = load_dataset(dataset, scale=profile.scale_for(dataset))
    graph = bundle.graph
    # Stable (process-independent) entropy for the cell: Python's hash()
    # is salted, so derive it from the parameters directly.  The budget
    # k is deliberately NOT part of the entropy — a k-sweep (Fig. 4)
    # varies the budget over one fixed campaign/pool/sample draw, as in
    # the paper, instead of re-rolling the instance at every k.
    cell_entropy = (
        profile.seed,
        num_pieces,
        int(round(beta_over_alpha * 1000)),
        zlib.crc32(dataset.encode("utf-8")),
    )
    rng_campaign, rng_pool, rng_opt, rng_eval = spawn_generators(
        np.random.SeedSequence(cell_entropy), 4
    )
    campaign = Campaign.sample_unit(
        num_pieces, graph.num_topics, seed=rng_campaign
    )
    adoption = AdoptionModel.from_ratio(beta_over_alpha)
    problem = OIPAProblem.with_random_pool(
        graph,
        campaign,
        adoption,
        k,
        pool_fraction=profile.pool_fraction,
        seed=rng_pool,
    )
    piece_graphs = project_campaign(graph, campaign)
    models = profile.models_for(num_pieces)
    if models is not None:
        # LT pieces must satisfy the live-edge feasibility condition;
        # IC pieces keep their raw projections untouched.
        piece_graphs = [
            normalize_lt_weights(pg) if m == "lt" else pg
            for pg, m in zip(piece_graphs, models)
        ]
    opt_theta, eval_theta = profile.theta_for(dataset)
    # One Runtime for the cell; the optimisation and evaluation
    # collections only differ in their (role-keyed) shard directory.
    cell_rt = profile.resolved_runtime()
    if models is not None:
        cell_rt = cell_rt.replace(model=models)
    # The sampling seeds are *integers* drawn from the cell's spawned
    # streams (not the Generator objects themselves): equally
    # deterministic per cell, but content-addressable — so sweep cells
    # sharing a (graph, campaign, theta) reuse one sampled collection
    # through the artifact cache across the solver/k axes and across
    # harness invocations.
    seed_opt = int(rng_opt.integers(2**63))
    seed_eval = int(rng_eval.integers(2**63))

    def role_runtime(role: str):
        # The optimisation and evaluation collections of one cell (and
        # the cells of one sweep) must not share shards — each gets its
        # own subdirectory keyed by (dataset, l, role).
        return cell_rt.with_shard_subdir(
            f"{dataset}-l{num_pieces}-{role}"
        )

    with Timer() as sample_timer:
        mrr_opt = MRRCollection.generate(
            graph,
            campaign,
            opt_theta,
            seed=seed_opt,
            piece_graphs=piece_graphs,
            runtime=role_runtime("opt"),
        )
        mrr_eval = MRRCollection.generate(
            graph,
            campaign,
            eval_theta,
            seed=seed_eval,
            piece_graphs=piece_graphs,
            runtime=role_runtime("eval"),
        )
    return PreparedInstance(
        bundle=bundle,
        problem=problem,
        mrr_opt=mrr_opt,
        mrr_eval=mrr_eval,
        sample_seconds=sample_timer.elapsed,
    )


def run_cell(
    instance: PreparedInstance,
    method: str,
    *,
    epsilon: float = 0.5,
    gap_tolerance: float = 0.01,
    max_nodes: int = 3_000,
) -> CellResult:
    """Run one method on a prepared instance; evaluate independently."""
    problem, mrr = instance.problem, instance.mrr_opt
    timer = Timer().start()
    tau_evaluations = 0
    nodes = 0
    bounds = 0
    if method == "IM":
        plan = im_baseline(problem, mrr, seed=0).plan
    elif method == "TIM":
        plan = tim_baseline(problem, mrr).plan
    elif method in ("BAB", "BAB-P"):
        solver = BranchAndBoundSolver(
            problem,
            mrr,
            bound="greedy" if method == "BAB" else "progressive",
            epsilon=epsilon,
            gap_tolerance=gap_tolerance,
            max_nodes=max_nodes,
        )
        result = solver.solve()
        plan = result.plan
        tau_evaluations = result.diagnostics.tau_evaluations
        nodes = result.diagnostics.nodes_expanded
        bounds = result.diagnostics.bounds_computed
    else:
        raise ExperimentError(
            f"unknown method {method!r}; available: {METHODS}"
        )
    elapsed = timer.stop()
    utility = instance.mrr_eval.estimate(
        plan.seed_lists(), problem.adoption
    )
    return CellResult(
        dataset=instance.bundle.name,
        method=method,
        k=problem.k,
        num_pieces=problem.num_pieces,
        beta_over_alpha=problem.adoption.beta / problem.adoption.alpha,
        epsilon=epsilon if method == "BAB-P" else None,
        utility=utility,
        elapsed_seconds=elapsed,
        tau_evaluations=tau_evaluations,
        nodes_expanded=nodes,
        bounds_computed=bounds,
        sample_seconds=instance.sample_seconds,
    )


def run_methods(
    dataset: str,
    profile: ExperimentProfile,
    *,
    k: int | None = None,
    num_pieces: int | None = None,
    beta_over_alpha: float | None = None,
    epsilon: float | None = None,
    methods: tuple[str, ...] = METHODS,
) -> dict[str, CellResult]:
    """Run several methods on one shared instance (the figures' unit)."""
    k = profile.default_k if k is None else k
    num_pieces = profile.default_l if num_pieces is None else num_pieces
    ratio = (
        profile.default_ratio if beta_over_alpha is None else beta_over_alpha
    )
    eps = profile.default_epsilon if epsilon is None else epsilon
    instance = prepare_instance(
        dataset, profile, k=k, num_pieces=num_pieces, beta_over_alpha=ratio
    )
    return {
        method: run_cell(
            instance,
            method,
            epsilon=eps,
            gap_tolerance=profile.gap_tolerance,
            max_nodes=profile.max_nodes,
        )
        for method in methods
    }
