"""Experiment harness regenerating the paper's tables and figures."""

from repro.experiments.config import (
    PAPER_PARAMETER_GRID,
    ExperimentProfile,
    FULL_PROFILE,
    QUICK_PROFILE,
    get_profile,
)
from repro.experiments.runner import CellResult, run_cell, run_methods
from repro.experiments.figures import (
    FigureResult,
    figure3_epsilon,
    figure4_promoters,
    figure5_pieces,
    figure6_beta_alpha,
    headline_claims,
    table3_datasets,
)

__all__ = [
    "PAPER_PARAMETER_GRID",
    "ExperimentProfile",
    "QUICK_PROFILE",
    "FULL_PROFILE",
    "get_profile",
    "CellResult",
    "run_cell",
    "run_methods",
    "FigureResult",
    "table3_datasets",
    "figure3_epsilon",
    "figure4_promoters",
    "figure5_pieces",
    "figure6_beta_alpha",
    "headline_claims",
]
