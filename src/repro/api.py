"""The :class:`Session` facade: one execution surface for OIPA.

The library's primitives — datasets, campaigns, MRR sampling, the
BAB/BAB-P solvers, the baselines, the simulators — compose freely, but
a full pipeline historically meant threading a problem, two sample
collections, and seven execution kwargs through half a dozen calls.
``Session`` wires graph → campaign → MRR sampling → solver → evaluation
behind one object carrying a single :class:`repro.runtime.Runtime`, so
the quickstart is three lines::

    from repro import Session
    session = Session.from_dataset("lastfm", pieces=3, k=10, seed=7)
    result = session.solve("bab-p", theta=4000)

Solvers live in a declarative registry: ``session.solve(method=...)``
accepts ``"bab"``, ``"bab-p"``, ``"celf"``, ``"ris"`` (alias ``"im"``),
``"tim"``, ``"local-search"``, and ``"brute-force"``, and new solvers
register with the :func:`register_solver` decorator instead of growing
another entry-point signature.  Every solver runs on the session's
shared optimisation collection, so method comparisons follow the
paper's protocol (fixed theta across methods, independent evaluation
via :meth:`Session.evaluate`).

Determinism contract: a ``Session`` built with the same graph,
campaign, adoption, ``k`` and ``seed`` as a legacy hand-wired pipeline
produces **bit-identical** seed sets and estimates — the facade calls
exactly the same primitives with exactly the same seeds (pinned in
``tests/test_session.py``).
"""

from __future__ import annotations

import hashlib
import inspect
import json
import time
import uuid
from dataclasses import dataclass
from types import MappingProxyType

from repro.artifacts import ArtifactKey
from repro.core.bab import solve_bab, solve_bab_progressive
from repro.core.brute_force import brute_force_oipa
from repro.core.local_search import local_search
from repro.core.plan import AssignmentPlan
from repro.core.problem import OIPAProblem
from repro.datasets.registry import DatasetBundle, load_dataset
from repro.diffusion.adoption import AdoptionModel
from repro.diffusion.projection import PieceGraph, project_campaign
from repro.diffusion.simulate import simulate_adoption_utility
from repro.diffusion.threshold import normalize_lt_weights
from repro.exceptions import ConfigError, SolverError
from repro.graph.digraph import TopicGraph
from repro.im.baselines import _best_single_piece_plan, im_baseline, tim_baseline
from repro.im.greedy import celf_greedy_im
from repro.pipeline import PipelineTrace
from repro.runtime import Runtime, as_runtime, resolve_runtime
from repro.sampling.mrr import MRRCollection, resolve_models
from repro.sampling.parallel import check_executor, make_pool
from repro.topics.distributions import Campaign

__all__ = [
    "Session",
    "SessionResult",
    "available_solvers",
    "register_solver",
]


# --------------------------------------------------------------------------
# Solver registry
# --------------------------------------------------------------------------

_SOLVERS: dict[str, object] = {}

#: Solvers whose results may be served from the artifact cache.  A
#: cacheable solver must be a pure function of (problem, collection,
#: options, effective seed) — the built-ins qualify; user solvers opt
#: in via ``register_solver(..., cacheable=True)``.
_CACHEABLE_SOLVERS: set[str] = set()


def _normalize_method(name: str) -> str:
    if not isinstance(name, str) or not name.strip():
        raise ConfigError(f"solver method must be a name, got {name!r}")
    return name.strip().lower().replace("_", "-")


def register_solver(
    name: str, fn=None, *, overwrite: bool = False, cacheable: bool = False
):
    """Register a solver under ``name`` (usable as a decorator).

    A solver is ``fn(session, **options) -> (plan, estimate,
    diagnostics)``: it reads the problem and the shared optimisation
    collection off the session (``session.problem`` /
    ``session.mrr``), and returns the selected
    :class:`~repro.core.plan.AssignmentPlan`, its estimate on that
    collection, and a diagnostics mapping.  Registration is the whole
    extension surface — no entry-point signature grows.

    ``cacheable=True`` declares the solver a pure function of its
    inputs, letting the artifact cache replay its (plan, estimate,
    diagnostics) for identical keys; leave it off (the default) for
    solvers with hidden state or unseeded randomness.
    """

    def decorate(solver):
        key = _normalize_method(name)
        if key in _SOLVERS and not overwrite:
            raise ConfigError(
                f"solver {key!r} is already registered "
                "(pass overwrite=True to replace it)"
            )
        _SOLVERS[key] = solver
        if cacheable:
            _CACHEABLE_SOLVERS.add(key)
        else:
            _CACHEABLE_SOLVERS.discard(key)
        return solver

    return decorate(fn) if fn is not None else decorate


def available_solvers() -> tuple[str, ...]:
    """The registered solver names, sorted."""
    return tuple(sorted(_SOLVERS))


@dataclass(frozen=True)
class SessionResult:
    """One solver run: the plan plus its scores and diagnostics."""

    method: str
    plan: AssignmentPlan
    #: AU estimate on the session's (shared) optimisation collection.
    estimate: float
    #: AU estimate on the independent evaluation collection, when
    #: ``solve(..., evaluate=True)`` asked for one; ``None`` otherwise.
    evaluation: float | None
    diagnostics: object

    @property
    def seed_sets(self) -> tuple[frozenset[int], ...]:
        """Per-piece seed sets of the selected plan."""
        return self.plan.seed_sets


class Session:
    """One OIPA pipeline: problem, samples, solvers, evaluation.

    Parameters
    ----------
    graph:
        The social :class:`~repro.graph.digraph.TopicGraph` (or a
        :class:`~repro.datasets.registry.DatasetBundle`, whose graph is
        used and whose metadata is kept on :attr:`bundle`).
    campaign:
        The multifaceted :class:`~repro.topics.distributions.Campaign`.
    adoption:
        Logistic adoption parameters; defaults to the paper's
        ``beta/alpha = 0.5``.
    k:
        Promoter budget.
    pool / pool_fraction:
        Either an explicit promoter pool, or the fraction of ``V``
        drawn uniformly (the experiments' 10 %) with ``seed``.
    seed:
        The session's default entropy: used for the pool draw and, when
        a per-call seed is not given, for sampling — matching the
        legacy idiom of reusing one seed across the hand-wired calls.
        Falls back to ``runtime.seed``.
    runtime:
        The session-wide :class:`~repro.runtime.Runtime` execution
        policy (backend, models, workers, store, ...).
    """

    def __init__(
        self,
        graph,
        campaign: Campaign,
        adoption: AdoptionModel | None = None,
        *,
        k: int = 10,
        pool=None,
        pool_fraction: float = 0.1,
        seed=None,
        runtime: Runtime | None = None,
    ) -> None:
        self.bundle: DatasetBundle | None = None
        if isinstance(graph, DatasetBundle):
            self.bundle = graph
            graph = graph.graph
        if not isinstance(graph, TopicGraph):
            raise ConfigError(
                "Session needs a TopicGraph or DatasetBundle, got "
                f"{type(graph).__name__}"
            )
        self.graph = graph
        self.campaign = campaign
        self.adoption = (
            adoption if adoption is not None else AdoptionModel.from_ratio(0.5)
        )
        self.runtime = as_runtime(runtime)
        self.seed = seed if seed is not None else self.runtime.seed
        if pool is not None:
            self.problem = OIPAProblem(
                graph, campaign, self.adoption, k, pool
            )
        else:
            self.problem = OIPAProblem.with_random_pool(
                graph,
                campaign,
                self.adoption,
                k,
                pool_fraction=pool_fraction,
                seed=self.seed,
            )
        self._piece_graphs: list[PieceGraph] | None = None
        self._flat_graph: PieceGraph | None = None
        self._mrr: MRRCollection | None = None
        self._mrr_eval: MRRCollection | None = None
        self._eval_seed = None  # the draw the eval collection used
        self._trace = PipelineTrace()
        self._mrr_key: ArtifactKey | None = None  # sample-stage artifact
        #: (executor kind, width, executor) — the warm sampling pool,
        #: built on first parallel sample() and reused across
        #: collections; see :meth:`close`.
        self._pool: tuple[str, int, object] | None = None
        #: Incremental-lineage state (set by :meth:`sample_incremental`).
        self._inc = None
        #: The last celf-mrr run's WarmGains record (warm re-solves).
        self._celf_gains = None
        #: The last solve's normalized method (update's default).
        self._last_solve: str | None = None

    @classmethod
    def from_dataset(
        cls,
        name: str,
        *,
        pieces: int = 3,
        scale: float | None = None,
        dataset_seed: int | None = None,
        adoption: AdoptionModel | None = None,
        k: int = 10,
        pool=None,
        pool_fraction: float = 0.1,
        seed=None,
        runtime: Runtime | None = None,
    ) -> "Session":
        """Build a session from a named dataset and a sampled campaign.

        Loads the dataset, draws a ``pieces``-piece unit campaign with
        ``seed``, and wires the problem — the whole legacy quickstart
        preamble in one call.  ``dataset_seed`` overrides the dataset
        builder's deterministic default.
        """
        bundle = load_dataset(name, scale=scale, seed=dataset_seed)
        if seed is None and runtime is not None:
            seed = runtime.seed
        campaign = Campaign.sample_unit(
            pieces, bundle.graph.num_topics, seed=seed
        )
        return cls(
            bundle,
            campaign,
            adoption,
            k=k,
            pool=pool,
            pool_fraction=pool_fraction,
            seed=seed,
            runtime=runtime,
        )

    # ------------------------------------------------------------------
    # shared state
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        return self.problem.k

    @property
    def num_pieces(self) -> int:
        return self.campaign.num_pieces

    @property
    def piece_graphs(self) -> list[PieceGraph]:
        """Per-piece projections, LT pieces weight-normalised.

        Projected once and shared by sampling, solving, and the forward
        simulators.  Pieces whose resolved diffusion model is ``"lt"``
        are normalised to satisfy the live-edge feasibility condition;
        IC pieces keep their raw projections (so the pure-IC default is
        bit-identical to :meth:`MRRCollection.generate`'s internal
        projection).
        """
        if self._piece_graphs is None:
            models = resolve_models(
                resolve_runtime(self.runtime).model, self.num_pieces
            )
            self._piece_graphs = [
                normalize_lt_weights(pg) if model == "lt" else pg
                for pg, model in zip(
                    project_campaign(self.graph, self.campaign), models
                )
            ]
        return self._piece_graphs

    @property
    def flat_graph(self) -> PieceGraph:
        """The topic-blind flattened influence graph (IM baselines)."""
        if self._flat_graph is None:
            probs = self.graph.mean_edge_probabilities(
                self.campaign.vectors()
            )
            self._flat_graph = PieceGraph.from_edge_probabilities(
                self.graph, probs
            )
        return self._flat_graph

    @property
    def mrr(self) -> MRRCollection:
        """The shared optimisation collection (:meth:`sample` first)."""
        if self._mrr is None:
            raise SolverError(
                "no MRR collection yet — call session.sample(theta) or "
                "pass theta to session.solve()"
            )
        return self._mrr

    @property
    def mrr_eval(self) -> MRRCollection | None:
        """The independent evaluation collection, if generated."""
        return self._mrr_eval

    @property
    def stage_trace(self) -> PipelineTrace:
        """The pipeline-stage execution trace of this session.

        Every stage execution appends a
        :class:`~repro.pipeline.StageEvent` recording whether the stage
        ran or was served from the artifact cache;
        :meth:`~repro.pipeline.PipelineTrace.sampled` is the "did a
        warm run really skip sampling" check.  :meth:`run` clears the
        trace first, so after a ``run`` the trace covers exactly that
        invocation.
        """
        return self._trace

    def _role_runtime(self, role: str, theta: int, seed):
        """The session runtime with a per-collection shard subdir.

        The key includes the role *and* the collection's (theta, seed)
        so re-sampling at a new size (``solve(theta=...)`` again) never
        collides with an earlier collection's shards — while repeating
        the exact same integer-seeded call reloads the finished
        directory.  A non-reproducible draw (``None`` / Generator
        seeds) can never be resumed or reloaded by anyone, so those get
        a globally unique key under the configured root instead of a
        collision — across generations *and* across process runs.
        """
        rt = resolve_runtime(
            self.runtime, seed=seed if seed is not None else self.seed
        )
        parts = [role, f"theta{theta}"]
        if isinstance(rt.seed, int):
            parts.append(f"seed{rt.seed}")
        else:
            parts.append(f"run{uuid.uuid4().hex[:12]}")
        return rt.with_shard_subdir("-".join(parts))

    def _sampling_pool(self, rt):
        """The warm worker pool for ``rt``'s parallel runtime, or ``None``.

        Built on the first parallel sample and reused by every later
        collection (opt and eval alike) instead of respawning workers
        per call — the pool construction cost, and for process pools
        the interpreter + import warm-up, is paid once per session.  A
        held pool is replaced when the runtime asks for a different
        executor kind or width, or when a previous failure broke or
        shut it down; :meth:`close` (or the context manager) releases
        it.  Serial runtimes (``workers`` 0/1) never build one, and
        ``executor="spawned"`` over a disk store never borrows one —
        the distributed driver (:mod:`repro.sampling.dist`) owns its
        worker processes outright; in-RAM spawned targets degrade to
        the bit-identical process pool.
        """
        width = rt.pool_width
        if width is None or width <= 1:
            return None
        kind = check_executor(rt.executor)
        if kind == "spawned":
            from repro.sampling.store import SampleStore

            if rt.store == "disk" or isinstance(rt.store, SampleStore):
                return None
            kind = "process"
        if self._pool is not None:
            held_kind, held_width, held = self._pool
            dead = (
                getattr(held, "_broken", False)
                or getattr(held, "_shutdown", False)
                or getattr(held, "_shutdown_thread", False)
            )
            if held_kind == kind and held_width == width and not dead:
                return held
            self._close_pool()
        held = make_pool(width, executor=kind)
        if held is not None:
            self._pool = (kind, width, held)
        return held

    def _close_pool(self) -> None:
        """Shut down the held warm pool, if any (idempotent)."""
        if self._pool is None:
            return
        _kind, _width, held = self._pool
        self._pool = None
        held.shutdown(wait=True, cancel_futures=True)

    def close(self) -> None:
        """Release session resources: the warm sampling pool.

        Idempotent; the session remains usable afterwards (the next
        parallel sample simply builds a fresh pool).  ``Session`` is
        also a context manager — ``with Session(...) as s:`` closes on
        exit even when the block raises.
        """
        self._close_pool()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def sample(self, theta: int, *, seed=None) -> MRRCollection:
        """Generate (and share) the optimisation MRR collection.

        ``seed`` defaults to the session seed — the same value a legacy
        hand-wired ``MRRCollection.generate(..., seed=...)`` call would
        use, which is what keeps facade and legacy paths bit-identical.
        """
        rt = self._role_runtime("opt", theta, seed)
        start = time.perf_counter()
        try:
            self._mrr, events, self._mrr_key = MRRCollection.generate_traced(
                self.graph,
                self.campaign,
                theta,
                piece_graphs=self.piece_graphs,
                runtime=rt,
                pool=self._sampling_pool(rt),
            )
        except BaseException:
            # a failed generation may leave the pool with cancelled or
            # broken workers — release it so the next call starts clean
            self._close_pool()
            raise
        elapsed = time.perf_counter() - start
        for i, event in enumerate(events):
            # the generate call is timed as a whole; its wall-clock is
            # attributed to the first stage it reports (sample)
            stage, action = event
            self._trace.record(
                stage,
                action,
                "opt",
                seconds=elapsed if i == 0 else 0.0,
                extra=getattr(event, "extra", None),
            )
        return self._mrr

    def sample_evaluation(self, theta: int, *, seed=None) -> MRRCollection:
        """Generate the independent evaluation collection.

        ``seed`` defaults to ``session.seed + 1`` (when the session
        seed is an int) so the two collections are never generated from
        the same stream; pass it explicitly for full control.
        """
        if seed is None and isinstance(self.seed, int):
            seed = self.seed + 1
        rt = self._role_runtime("eval", theta, seed)
        start = time.perf_counter()
        try:
            self._mrr_eval, events, _eval_key = MRRCollection.generate_traced(
                self.graph,
                self.campaign,
                theta,
                piece_graphs=self.piece_graphs,
                runtime=rt,
                pool=self._sampling_pool(rt),
            )
        except BaseException:
            self._close_pool()
            raise
        elapsed = time.perf_counter() - start
        for i, event in enumerate(events):
            stage, action = event
            self._trace.record(
                stage,
                action,
                "eval",
                seconds=elapsed if i == 0 else 0.0,
                extra=getattr(event, "extra", None),
            )
        self._eval_seed = seed
        return self._mrr_eval

    def sample_incremental(self, theta: int, *, seed=None) -> MRRCollection:
        """Generate the optimisation collection on the incremental tier.

        Same role as :meth:`sample`, different stream scheme: every
        (piece, block) shard is keyed by its coordinates alone (see
        :mod:`repro.incremental.sampler`), so the session can absorb
        graph deltas and theta growth through :meth:`update` — kept
        shards are reused verbatim, appended and invalidated ones are
        regenerated bit-identically to a cold keyed generate.  The draw
        differs from :meth:`sample`'s for the same seed; within the
        incremental scheme it is just as pinned.
        """
        from repro.incremental.update import sample_incremental

        return sample_incremental(self, theta, seed=seed)

    def update(
        self,
        delta,
        *,
        theta: int | None = None,
        method: str | None = None,
        evaluate: bool = False,
        eval_theta: int | None = None,
        **options,
    ):
        """Absorb a :class:`~repro.incremental.delta.GraphDelta` and re-solve.

        Requires an incremental collection (:meth:`sample_incremental`).
        Regenerates only the delta-touched shards (plus any appended by
        ``theta`` growth), rebuilds the problem on the updated graph,
        and re-solves warm from the previous run's state.  Returns an
        :class:`~repro.incremental.update.UpdateResult` whose ``result``
        is the usual :class:`SessionResult` and whose ``trace`` is the
        :class:`~repro.incremental.update.IncrementalTrace` accounting
        of what was reused.
        """
        from repro.incremental.update import update_session

        return update_session(
            self,
            delta,
            theta=theta,
            method=method,
            evaluate=evaluate,
            eval_theta=eval_theta,
            **options,
        )

    # ------------------------------------------------------------------
    # solving and scoring
    # ------------------------------------------------------------------

    def solve(
        self,
        method: str = "bab-p",
        *,
        theta: int | None = None,
        seed=None,
        evaluate: bool = False,
        eval_theta: int | None = None,
        **options,
    ) -> SessionResult:
        """Run a registered solver on the shared sample collection.

        ``theta`` generates the optimisation collection on first use
        (or regenerates it when passed again); every method then sees
        the *same* samples — the paper's fixed-theta comparison
        protocol.  ``seed`` seeds that sampling draw and is also handed
        to solvers that declare their own ``seed`` option (the
        randomised baselines ``ris``/``im``/``celf``).
        ``evaluate=True`` also scores the plan on the independent
        evaluation collection (``eval_theta`` defaults to 4x the
        optimisation theta).  Extra keyword ``options`` go to the
        solver (e.g. ``epsilon=`` / ``max_nodes=`` for BAB-P,
        ``rounds=`` for CELF).
        """
        key = _normalize_method(method)
        solver = _SOLVERS.get(key)
        if solver is None:
            raise SolverError(
                f"unknown solver method {method!r}; available: "
                f"{', '.join(available_solvers())}"
            )
        if theta is not None or self._mrr is None:
            if theta is None:
                raise SolverError(
                    "no MRR collection yet — pass theta to solve() or "
                    "call session.sample(theta) first"
                )
            self.sample(theta, seed=seed)
        if (
            seed is not None
            and "seed" in inspect.signature(solver).parameters
        ):
            options.setdefault("seed", seed)
        start = time.perf_counter()
        plan, estimate, diagnostics, action = self._solve_stage(
            key, solver, options
        )
        self._trace.record(
            "solve", action, key, seconds=time.perf_counter() - start
        )
        self._last_solve = key
        evaluation = None
        if evaluate:
            evaluation = self.evaluate(plan, theta=eval_theta)
        return SessionResult(
            method=key,
            plan=plan,
            estimate=float(estimate),
            evaluation=evaluation,
            diagnostics=MappingProxyType(dict(diagnostics)),
        )

    def run(
        self,
        method: str = "bab-p",
        *,
        theta: int | None = None,
        seed=None,
        eval_theta: int | None = None,
        **options,
    ) -> SessionResult:
        """One full pipeline pass: plan → sample → index → solve → evaluate.

        Equivalent to ``solve(method, theta=..., evaluate=True)`` but
        framed as the staged pipeline: the :attr:`stage_trace` is reset
        first and afterwards covers exactly this invocation, recording
        for each stage whether it ran or was served from the artifact
        cache — a warm ``run`` against an artifact store performs zero
        sampling (``session.stage_trace.sampled()`` is ``False``) and
        returns results bit-identical to the cold one.
        """
        self._trace.clear()
        self._trace.record("plan", "run", "problem")
        return self.solve(
            method,
            theta=theta,
            seed=seed,
            evaluate=True,
            eval_theta=eval_theta,
            **options,
        )

    def _solve_cache_key(self, method_key: str, options: dict):
        """The solve-stage artifact (store, key), or ``(None, None)``.

        Cacheable only when the whole causal chain is pinned: a
        cache-served-able solver, a sample collection that itself came
        through the artifact layer (its key digest is the upstream
        link), an integer session seed (the randomised baselines
        default to it), and JSON-able options.
        """
        if method_key not in _CACHEABLE_SOLVERS or self._mrr_key is None:
            return None, None
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            return None, None
        rt = resolve_runtime(self.runtime, seed=self.seed)
        art_store = rt.artifact_store()
        if art_store is None:
            return None, None
        try:
            options_token = json.dumps(options, sort_keys=True)
        except (TypeError, ValueError):
            return None, None
        pool_digest = hashlib.sha256(self.problem.pool.tobytes()).hexdigest()
        adoption = self.adoption
        key = ArtifactKey(
            graph=self.graph.fingerprint(),
            campaign=self.campaign.fingerprint(),
            runtime=rt.cache_key(),
            stage="solve",
            extra=(
                f"mrr={self._mrr_key.digest[:16]}",
                f"method={method_key}",
                f"k={self.k}",
                f"pool={pool_digest[:16]}",
                f"adoption={adoption.alpha!r},{adoption.beta!r},"
                f"{adoption.zero_if_unreached}",
                f"options={options_token}",
            ),
        )
        return art_store, key

    def _solve_stage(self, method_key: str, solver, options: dict):
        """Run one solver through the artifact cache (when eligible)."""
        art_store, solve_key = self._solve_cache_key(method_key, options)
        if solve_key is not None:
            hit = art_store.get(solve_key)
            if hit is not None:
                plan = AssignmentPlan(hit.meta["seed_sets"])
                return (
                    plan,
                    float(hit.meta["estimate"]),
                    dict(hit.meta["diagnostics"]),
                    "hit",
                )
        plan, estimate, diagnostics = solver(self, **options)
        if solve_key is not None:
            meta = {
                "seed_sets": plan.seed_lists(),
                "estimate": float(estimate),
                "diagnostics": dict(diagnostics),
            }
            try:
                json.dumps(meta)
            except (TypeError, ValueError):
                pass  # non-JSON diagnostics: run fine, just never cached
            else:
                art_store.put(solve_key, meta)
        return plan, estimate, diagnostics, "run"

    def estimate(self, plan) -> float:
        """AU estimate of ``plan`` on the optimisation collection."""
        return self.mrr.estimate(_plan_of(plan).seed_lists(), self.adoption)

    def evaluate(self, plan, *, theta: int | None = None, seed=None) -> float:
        """AU estimate of ``plan`` on the independent eval collection.

        Generates the evaluation collection on first use — and
        regenerates it whenever ``theta`` or ``seed`` asks for a draw
        *different from the cached one* (a matching collection is
        reused, so a method-comparison loop with ``evaluate=True``
        samples it once); ``theta`` defaults to 4x the optimisation
        theta (the quick profile's ratio).  No optimiser grades its
        own homework.
        """
        cached = self._mrr_eval
        if theta is None:
            theta = cached.theta if cached is not None else 4 * self.mrr.theta
        if (
            cached is None
            or cached.theta != theta
            or (seed is not None and seed != self._eval_seed)
        ):
            self.sample_evaluation(theta, seed=seed)
        start = time.perf_counter()
        score = self._mrr_eval.estimate(
            _plan_of(plan).seed_lists(), self.adoption
        )
        # Scoring a plan on an existing collection is a cheap segmented
        # reduction — always executed, so the trace records a run.
        self._trace.record(
            "evaluate",
            "run",
            f"theta={theta}",
            seconds=time.perf_counter() - start,
        )
        return score

    def simulate(
        self,
        plan,
        *,
        rounds: int = 100,
        seed=None,
        return_std: bool = False,
        runtime: Runtime | None = None,
    ):
        """Forward Monte-Carlo AU of ``plan`` (ground-truth side).

        Runs on the session's (LT-normalised) piece graphs under the
        session runtime; pass ``runtime=`` to override it for this call
        — the facade takes no per-call execution kwargs.
        """
        return simulate_adoption_utility(
            self.piece_graphs,
            _plan_of(plan).seed_lists(),
            self.adoption,
            rounds=rounds,
            seed=seed if seed is not None else self.seed,
            return_std=return_std,
            runtime=runtime if runtime is not None else self.runtime,
        )

    def __repr__(self) -> str:
        sampled = self._mrr.theta if self._mrr is not None else None
        return (
            f"Session(n={self.graph.n}, l={self.num_pieces}, "
            f"k={self.k}, theta={sampled})"
        )


def _plan_of(plan) -> AssignmentPlan:
    """Accept an :class:`AssignmentPlan` or a :class:`SessionResult`."""
    if isinstance(plan, SessionResult):
        return plan.plan
    if isinstance(plan, AssignmentPlan):
        return plan
    raise SolverError(
        f"expected an AssignmentPlan or SessionResult, got "
        f"{type(plan).__name__}"
    )


# --------------------------------------------------------------------------
# Built-in solvers
# --------------------------------------------------------------------------


@register_solver("bab", cacheable=True)
def _solve_bab(session: Session, **options):
    """The paper's BAB: branch-and-bound, greedy bound (Algorithm 2)."""
    result = solve_bab(session.problem, session.mrr, **options)
    return result.plan, result.utility, _bab_diagnostics(result)


@register_solver("bab-p", cacheable=True)
def _solve_bab_progressive(session: Session, **options):
    """The paper's BAB-P: progressive bound (Algorithm 3)."""
    result = solve_bab_progressive(session.problem, session.mrr, **options)
    return result.plan, result.utility, _bab_diagnostics(result)


def _bab_diagnostics(result) -> dict:
    diag = result.diagnostics
    return {
        "upper_bound": result.upper_bound,
        "gap": result.gap,
        "termination": diag.termination,
        "nodes_expanded": diag.nodes_expanded,
        "bounds_computed": diag.bounds_computed,
        "tau_evaluations": diag.tau_evaluations,
        "elapsed_seconds": diag.elapsed_seconds,
    }


@register_solver("brute-force", cacheable=True)
def _solve_brute_force(session: Session, **options):
    """Exhaustive enumeration (small instances; the exactness oracle)."""
    plan, utility = brute_force_oipa(session.problem, session.mrr, **options)
    return plan, utility, {}


@register_solver("local-search", cacheable=True)
def _solve_local_search(session: Session, *, start=None, **options):
    """Greedy fill + first-improvement exchange search.

    ``start`` seeds the search with an existing plan (or
    :class:`SessionResult`); the default starts from the empty plan, so
    the fill phase alone reproduces plain greedy assignment.
    """
    plan = (
        _plan_of(start) if start is not None
        else session.problem.empty_plan()
    )
    result = local_search(session.problem, session.mrr, plan, **options)
    return result.plan, result.utility, {
        "initial_utility": result.initial_utility,
        "fills": result.fills,
        "swaps": result.swaps,
        "rounds": result.rounds,
        "elapsed_seconds": result.elapsed_seconds,
    }


def _flat_runtime(session: Session):
    """The session runtime restricted to the flattened baseline graph.

    The flat baselines are topic-blind *and* model-blind: the session's
    ``model`` policy describes the campaign's pieces, not the flattened
    graph (which is never LT-normalised), so — exactly like the legacy
    ``im_baseline``, which always sampled the flat graph under IC — any
    configured model is dropped and the default applies.
    """
    rt = as_runtime(session.runtime)
    if rt.model is not None:
        rt = rt.replace(model=None)
    return rt


def _ris_solver(session: Session, *, seed=None, **options):
    """RIS max coverage on the flattened graph, best single piece."""
    result = im_baseline(
        session.problem,
        session.mrr,
        seed=seed if seed is not None else session.seed,
        runtime=_flat_runtime(session),
        **options,
    )
    return result.plan, result.utility, {
        "chosen_piece": result.chosen_piece,
        "seeds": result.seeds,
        "elapsed_seconds": result.elapsed_seconds,
        "sample_seconds": result.sample_seconds,
    }


register_solver("ris", _ris_solver, cacheable=True)
register_solver("im", _ris_solver, cacheable=True)


@register_solver("tim", cacheable=True)
def _solve_tim(session: Session, **options):
    """Per-piece topic-aware RIS seeds, best single piece (TIM)."""
    result = tim_baseline(session.problem, session.mrr, **options)
    return result.plan, result.utility, {
        "chosen_piece": result.chosen_piece,
        "seeds": result.seeds,
        "elapsed_seconds": result.elapsed_seconds,
    }


@register_solver("celf", cacheable=True)
def _solve_celf(session: Session, *, rounds: int = 100, seed=None, **options):
    """Simulation-based CELF greedy on the flattened graph.

    The classical Kempe-et-al. pipeline: ``k`` seeds by lazy greedy
    over Monte-Carlo spread on the topic-blind graph, then the one seed
    set is assigned to whichever piece yields the best AU — the
    historically faithful (and slowest) baseline, useful as a
    cross-validation oracle on small instances.
    """
    seeds, spread = celf_greedy_im(
        session.flat_graph,
        session.k,
        pool=session.problem.pool,
        rounds=rounds,
        seed=seed if seed is not None else session.seed,
        runtime=_flat_runtime(session),
        **options,
    )
    plan, utility, piece = _best_single_piece_plan(
        session.problem, session.mrr, [list(seeds)] * session.num_pieces
    )
    return plan, utility, {
        "chosen_piece": piece,
        "seeds": tuple(seeds),
        "flat_spread": spread,
    }


@register_solver("celf-mrr", cacheable=True)
def _solve_celf_mrr(session: Session, *, warm=None, margin: float = 0.0):
    """Exact lazy greedy over (vertex, piece) moves on the MRR estimate.

    The incremental tier's workhorse: a full AU-objective greedy whose
    per-move pruning caps stay valid on the non-submodular objective,
    so a ``warm=`` :class:`~repro.incremental.warm.WarmGains` record
    from a previous run (inflated by the update's staleness ``margin``)
    skips most first-iteration evaluations while selecting the exact
    same plan as a cold run.  The run's own record lands on
    ``session._celf_gains`` for the next warm start.  Cold runs (no
    ``warm``) are artifact-cacheable; warm options are non-JSON and
    naturally bypass the solve cache.
    """
    from repro.incremental.warm import celf_assign

    plan, record, diagnostics = celf_assign(
        session.problem, session.mrr, warm=warm, margin=margin
    )
    session._celf_gains = record
    return plan, session.estimate(plan), diagnostics
