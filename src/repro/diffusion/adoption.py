"""The logistic adoption model (Eq. 1).

A user who receives ``x >= 1`` distinct pieces of campaign ``T`` adopts it
with probability

    p[X_v = 1 | x] = 1 / (1 + exp(alpha - beta * x)),

and with probability 0 when ``x = 0`` (Eq. 1's "0 otherwise" branch —
confirmed by the paper's Example 2, where the empty plan scores 0.00 and
``sigma({{a}, 0}) = 4 * f(1) = 0.48``).

``alpha`` controls how hard adoption is (larger = harder); ``beta``
weights the effect of each additional piece.  The experiments fix
``beta = 1`` and sweep the ratio ``beta/alpha`` (Sec. VI-E), which
:meth:`AdoptionModel.from_ratio` mirrors.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["AdoptionModel"]


class AdoptionModel:
    """Immutable logistic adoption parameters ``(alpha, beta)``."""

    __slots__ = ("alpha", "beta", "zero_if_unreached")

    def __init__(
        self, alpha: float, beta: float, *, zero_if_unreached: bool = True
    ) -> None:
        self.alpha = check_positive("alpha", alpha)
        self.beta = check_positive("beta", beta)
        # Eq. 6 as printed omits the zero branch; the worked examples keep
        # it.  Default matches the examples; flipping the switch
        # reproduces the literal Eq. 6 estimator.
        self.zero_if_unreached = bool(zero_if_unreached)

    @classmethod
    def from_ratio(
        cls, beta_over_alpha: float, *, beta: float = 1.0, **kwargs
    ) -> "AdoptionModel":
        """Build from the ``beta/alpha`` ratio the experiments sweep."""
        check_positive("beta_over_alpha", beta_over_alpha)
        return cls(alpha=beta / beta_over_alpha, beta=beta, **kwargs)

    # ------------------------------------------------------------------

    def logistic(self, pieces_received) -> np.ndarray:
        """Raw logistic value ``f(x) = 1/(1+exp(alpha - beta x))``.

        No zero branch — this is the smooth curve the tangent-line bound
        majorises.  Accepts scalars or arrays.
        """
        x = np.asarray(pieces_received, dtype=np.float64)
        out = 1.0 / (1.0 + np.exp(self.alpha - self.beta * x))
        return out if out.ndim else float(out)

    def probability(self, pieces_received) -> np.ndarray:
        """Adoption probability per Eq. 1 (with the zero branch)."""
        x = np.asarray(pieces_received, dtype=np.float64)
        p = 1.0 / (1.0 + np.exp(self.alpha - self.beta * x))
        if self.zero_if_unreached:
            p = np.where(x >= 1, p, 0.0)
        return p if p.ndim else float(p)

    def inflection_count(self) -> float:
        """The piece count at the S-curve's inflection, ``alpha / beta``.

        Below it the logistic is convex (extra pieces accelerate
        adoption); above it, concave (diminishing returns).  The tangent
        bound needs this to know when the curve is already concave.
        """
        return self.alpha / self.beta

    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AdoptionModel):
            return NotImplemented
        return (
            self.alpha == other.alpha
            and self.beta == other.beta
            and self.zero_if_unreached == other.zero_if_unreached
        )

    def __hash__(self) -> int:
        return hash((self.alpha, self.beta, self.zero_if_unreached))

    def __repr__(self) -> str:
        return (
            f"AdoptionModel(alpha={self.alpha}, beta={self.beta}, "
            f"zero_if_unreached={self.zero_if_unreached})"
        )
