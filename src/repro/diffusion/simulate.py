"""Forward Monte-Carlo simulation of piece spread and campaign adoption.

This is the ground-truth side of the reproduction: the influence process
of Sec. III-A simulated directly (independent cascade per piece), with
user adoption drawn from the logistic model of Eq. 1.  The MRR estimator
(Sec. V-A) must agree with these simulations in expectation — the test
suite checks exactly that (Lemma 2).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.diffusion.adoption import AdoptionModel
from repro.diffusion.projection import PieceGraph
from repro.exceptions import ParameterError, SamplingError
from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_piece_graphs_aligned,
    check_positive_int,
)

__all__ = [
    "simulate_cascade",
    "simulate_model_cascade",
    "simulate_piece_spread",
    "simulate_adoption_utility",
]


def simulate_cascade(
    piece_graph: PieceGraph,
    seeds: Iterable[int],
    rng,
    *,
    backend: str | None = None,
) -> np.ndarray:
    """Run one independent-cascade trial; return the activation mask.

    Seeds start active; every newly activated user gets exactly one chance
    to activate each out-neighbour, succeeding with the edge's projected
    probability (Sec. III-A).  Returns a boolean array of length ``n``.

    ``backend="batch"`` (the default) and ``backend="native"`` route
    through the vectorized frontier-at-a-time kernel of
    :mod:`repro.sampling.batch` (single forward trials are not a
    compiled hot loop); ``backend="python"`` runs the per-vertex
    reference loop below.  The variants consume the rng stream
    identically, so for the same seeded ``rng`` the activation masks
    are bit-for-bit equal.
    """
    # Imported lazily: repro.sampling pulls in this module through the
    # diffusion package, so a module-level import would be circular.
    from repro.sampling.batch import check_backend, simulate_cascade_batch

    if check_backend(backend) != "python":
        return simulate_cascade_batch(piece_graph, seeds, rng)
    n = piece_graph.n
    active = np.zeros(n, dtype=bool)
    frontier: list[int] = []
    for s in seeds:
        s = int(s)
        if not (0 <= s < n):
            raise ParameterError(f"seed {s} outside [0, {n})")
        if not active[s]:
            active[s] = True
            frontier.append(s)
    out_ptr, out_dst, out_prob = (
        piece_graph.out_ptr,
        piece_graph.out_dst,
        piece_graph.out_prob,
    )
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            lo, hi = out_ptr[u], out_ptr[u + 1]
            if lo == hi:
                continue
            draws = rng.random(hi - lo)
            hits = np.flatnonzero(draws < out_prob[lo:hi])
            for k in hits:
                v = int(out_dst[lo + k])
                if not active[v]:
                    active[v] = True
                    next_frontier.append(v)
        frontier = next_frontier
    return active


def simulate_model_cascade(
    piece_graph: PieceGraph,
    seeds,
    rng,
    *,
    model: str | None = None,
    backend: str | None = None,
    check_weights: bool = True,
) -> np.ndarray:
    """One forward trial under the named diffusion model.

    Dispatches to :func:`simulate_cascade` (``model="ic"``, the default)
    or :func:`repro.diffusion.threshold.simulate_lt_cascade`
    (``model="lt"``); ``backend`` is forwarded to the chosen kernel.
    ``check_weights=False`` skips the per-trial LT feasibility check —
    the Monte-Carlo loops below validate each immutable graph once
    instead of once per trial.
    """
    from repro.sampling.batch import check_model

    if check_model(model) == "lt":
        # Lazy import — threshold pulls in repro.sampling at call time.
        from repro.diffusion.threshold import simulate_lt_cascade

        return simulate_lt_cascade(
            piece_graph,
            seeds,
            rng,
            backend=backend,
            check_weights=check_weights,
        )
    return simulate_cascade(piece_graph, seeds, rng, backend=backend)


def _spread_chunk_task(args):
    """One rounds-chunk of :func:`simulate_piece_spread` (picklable)."""
    piece_graph, seeds, model, backend, count, seed = args
    rng = as_generator(seed)
    total = 0
    for _ in range(count):
        total += int(
            simulate_model_cascade(
                piece_graph,
                seeds,
                rng,
                model=model,
                backend=backend,
                check_weights=False,
            ).sum()
        )
    return total


def simulate_piece_spread(
    piece_graph: PieceGraph,
    seeds: Iterable[int],
    *,
    rounds: int = 100,
    seed=None,
    runtime=None,
    backend: str | None = None,
    model: str | None = None,
    workers=None,
    executor: str | None = None,
    pool=None,
) -> float:
    """Monte-Carlo estimate of the classical influence spread sigma_im(S).

    Averages the number of activated users over ``rounds`` independent
    cascade trials.  Execution policy (cascade backend, diffusion model,
    the parallel Monte-Carlo runtime) lives on one
    :class:`repro.runtime.Runtime` passed as ``runtime=`` and resolved
    with the centralized order (explicit kwarg > Runtime field >
    ``REPRO_*`` env > default); the per-call execution kwargs are
    deprecated equivalents kept for backward compatibility.  LT graphs
    should be weight-normalised first.  Estimates are identical for
    every worker count; serial is the default.  Callers evaluating many
    spreads may pass a pre-built ``pool``
    (:func:`repro.sampling.parallel.make_pool`) to reuse across calls;
    they keep ownership of its shutdown.
    """
    from repro.runtime import resolve_runtime
    from repro.sampling.batch import check_lt_feasible
    from repro.sampling.parallel import (
        parallel_map,
        round_chunks,
        spawn_task_seeds,
    )

    rt = resolve_runtime(
        runtime,
        backend=backend,
        model=model,
        workers=workers,
        executor=executor,
        seed=seed,
        caller="simulate_piece_spread",
    )
    rounds = check_positive_int("rounds", rounds)
    model = rt.single_model()
    if model == "lt":
        check_lt_feasible(piece_graph)  # once, not once per trial
    rng = as_generator(rt.seed)
    seeds = list(seeds)
    pool_width = rt.pool_width
    if pool_width is not None:
        chunks = round_chunks(rounds)
        task_seeds = spawn_task_seeds(rng, len(chunks))
        totals = parallel_map(
            _spread_chunk_task,
            [
                (piece_graph, seeds, model, rt.backend, stop - start, s)
                for (start, stop), s in zip(chunks, task_seeds)
            ],
            pool_width,
            executor=rt.executor,
            pool=pool,
        )
        return sum(totals) / rounds
    total = 0
    for _ in range(rounds):
        total += int(
            simulate_model_cascade(
                piece_graph,
                seeds,
                rng,
                model=model,
                backend=rt.backend,
                check_weights=False,
            ).sum()
        )
    return total / rounds


def _utility_chunk_task(args):
    """One rounds-chunk of :func:`simulate_adoption_utility` (picklable)."""
    piece_graphs, seed_lists, models, adoption, backend, count, seed = args
    rng = as_generator(seed)
    n = piece_graphs[0].n
    per_round = np.empty(count, dtype=np.float64)
    counts = np.zeros(n, dtype=np.int64)
    for r in range(count):
        counts[:] = 0
        for pg, seeds, piece_model in zip(piece_graphs, seed_lists, models):
            if not seeds:
                continue
            counts += simulate_model_cascade(
                pg,
                seeds,
                rng,
                model=piece_model,
                backend=backend,
                check_weights=False,
            )
        per_round[r] = float(adoption.probability(counts).sum())
    return per_round


def simulate_adoption_utility(
    piece_graphs: Sequence[PieceGraph],
    plan_seed_sets: Sequence[Iterable[int]],
    adoption: AdoptionModel,
    *,
    rounds: int = 100,
    seed=None,
    return_std: bool = False,
    runtime=None,
    backend: str | None = None,
    model=None,
    workers=None,
    executor: str | None = None,
):
    """Monte-Carlo estimate of the adoption utility sigma(S-bar) (Eq. 2).

    Each round simulates every piece's cascade independently from its
    assigned seed set, counts how many distinct pieces reached each user,
    and sums the logistic adoption probabilities.  (Summing probabilities
    rather than drawing the final Bernoulli adds no bias and removes one
    layer of variance — Rao-Blackwellisation over the adoption draw.)

    Parameters
    ----------
    piece_graphs:
        One projected graph per campaign piece.
    plan_seed_sets:
        One iterable of seed vertices per piece (the assignment plan);
        must align with ``piece_graphs``.
    adoption:
        Logistic adoption parameters.
    rounds:
        Independent simulation rounds.
    return_std:
        Also return the standard error of the estimate.
    runtime:
        One :class:`repro.runtime.Runtime` carrying the execution policy
        — cascade backend, per-piece diffusion model(s) (``"ic"`` /
        ``"lt"``, scalar or a per-piece sequence for heterogeneous
        multiplex campaigns), and the parallel Monte-Carlo runtime
        (fixed-size chunks of rounds on a thread/process pool with
        spawned child streams, merged in chunk order — estimates are
        identical for every worker count; serial is the default).
        Resolved with the centralized order (explicit kwarg > Runtime
        field > ``REPRO_*`` env > default).
    backend, model, workers, executor:
        Deprecated per-call equivalents of the ``runtime`` fields, kept
        for backward compatibility.
    """
    from repro.runtime import resolve_runtime
    from repro.sampling.batch import check_lt_feasible
    from repro.sampling.mrr import resolve_models
    from repro.sampling.parallel import (
        parallel_map,
        round_chunks,
        spawn_task_seeds,
    )

    rt = resolve_runtime(
        runtime,
        backend=backend,
        model=model,
        workers=workers,
        executor=executor,
        seed=seed,
        caller="simulate_adoption_utility",
    )
    if len(piece_graphs) != len(plan_seed_sets):
        raise ParameterError(
            f"{len(plan_seed_sets)} seed sets for {len(piece_graphs)} pieces"
        )
    if not piece_graphs:
        raise ParameterError("need at least one piece")
    rounds = check_positive_int("rounds", rounds)
    try:
        models = resolve_models(rt.model, len(piece_graphs))
    except SamplingError as exc:
        raise ParameterError(str(exc)) from None
    rng = as_generator(rt.seed)
    n = piece_graphs[0].n
    check_piece_graphs_aligned(piece_graphs, n)
    for pg, piece_model in zip(piece_graphs, models):
        if piece_model == "lt":
            check_lt_feasible(pg)  # once per piece, not once per round
    seed_lists = [list(s) for s in plan_seed_sets]
    pool_width = rt.pool_width
    if pool_width is not None:
        chunks = round_chunks(rounds)
        task_seeds = spawn_task_seeds(rng, len(chunks))
        pieces = list(piece_graphs)
        slices = parallel_map(
            _utility_chunk_task,
            [
                (pieces, seed_lists, models, adoption, rt.backend,
                 stop - start, s)
                for (start, stop), s in zip(chunks, task_seeds)
            ],
            pool_width,
            executor=rt.executor,
        )
        per_round = np.concatenate(slices)
    else:
        per_round = np.empty(rounds, dtype=np.float64)
        counts = np.zeros(n, dtype=np.int64)
        for r in range(rounds):
            counts[:] = 0
            for pg, seeds, piece_model in zip(
                piece_graphs, seed_lists, models
            ):
                if not seeds:
                    continue
                counts += simulate_model_cascade(
                    pg,
                    seeds,
                    rng,
                    model=piece_model,
                    backend=rt.backend,
                    check_weights=False,
                )
            per_round[r] = float(adoption.probability(counts).sum())
    mean = float(per_round.mean())
    if return_std:
        std_err = float(per_round.std(ddof=1) / np.sqrt(rounds)) if rounds > 1 else 0.0
        return mean, std_err
    return mean
