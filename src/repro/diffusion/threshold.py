"""The Linear Threshold (LT) diffusion model.

The paper's problem statement evaluates under the independent cascade
model, but notes (Sec. II) that classical IM is NP-hard "under the
popular independent cascade (IC) and linear threshold (LT) influence
models" with the same RIS machinery applying to both.  This module
supplies the LT substrate so OIPA instances can be built and solved on
LT semantics as well:

* :func:`normalize_lt_weights` — rescales a piece graph's incoming edge
  probabilities so each vertex's total incoming weight is at most 1
  (the LT feasibility condition);
* :func:`simulate_lt_cascade` — forward LT simulation with uniform
  random thresholds;
* :class:`LinearThresholdSampler` — RR-set sampling under LT via the
  classic single-in-neighbour random walk (Mossel-Roch equivalence: in
  the live-edge view of LT, each vertex keeps at most one incoming edge,
  chosen with probability equal to its weight).

Because both samplers emit plain RR sets, the whole OIPA stack — MRR
collections, tau bounds, BAB/BAB-P — runs unchanged on LT influence.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.projection import PieceGraph
from repro.exceptions import ParameterError, SamplingError

__all__ = [
    "normalize_lt_weights",
    "simulate_lt_cascade",
    "LinearThresholdSampler",
]


def normalize_lt_weights(piece_graph: PieceGraph) -> PieceGraph:
    """Rescale incoming weights so every vertex's in-sum is <= 1.

    Vertices whose incoming probability mass exceeds 1 have all their
    incoming weights divided by that mass; others are untouched.  The
    result is a new :class:`PieceGraph` sharing the adjacency arrays.
    """
    n = piece_graph.n
    in_ptr, in_prob = piece_graph.in_ptr, piece_graph.in_prob
    new_in = in_prob.copy()
    new_out = piece_graph.out_prob.copy()
    # Map reverse slots back to forward slots via shared ordering: the
    # reverse view was built as out_prob[in_edge]; we rebuild the
    # forward view from scratch afterwards instead of tracking indexes.
    for v in range(n):
        lo, hi = in_ptr[v], in_ptr[v + 1]
        total = float(in_prob[lo:hi].sum())
        if total > 1.0:
            new_in[lo:hi] = in_prob[lo:hi] / total
    # Rebuild forward probabilities consistently: for each reverse slot
    # we know (src, dst) and can look up the forward slot by scanning
    # the source's out-range once.
    slot_of_edge = {}
    for v in range(n):
        lo, hi = piece_graph.out_ptr[v], piece_graph.out_ptr[v + 1]
        for s in range(lo, hi):
            slot_of_edge[(v, int(piece_graph.out_dst[s]))] = s
    for v in range(n):
        lo, hi = in_ptr[v], in_ptr[v + 1]
        for s in range(lo, hi):
            u = int(piece_graph.in_src[s])
            new_out[slot_of_edge[(u, v)]] = new_in[s]
    return PieceGraph(
        n,
        piece_graph.out_ptr,
        piece_graph.out_dst,
        new_out,
        in_ptr,
        piece_graph.in_src,
        new_in,
    )


def simulate_lt_cascade(piece_graph: PieceGraph, seeds, rng) -> np.ndarray:
    """One LT trial: uniform thresholds, weighted in-neighbour sums.

    A vertex activates when the weight of its active in-neighbours
    reaches its threshold.  Requires per-vertex incoming weight sums of
    at most 1 (use :func:`normalize_lt_weights` first); raises otherwise.
    """
    n = piece_graph.n
    in_ptr, in_src, in_prob = (
        piece_graph.in_ptr,
        piece_graph.in_src,
        piece_graph.in_prob,
    )
    for v in range(n):
        if float(in_prob[in_ptr[v] : in_ptr[v + 1]].sum()) > 1.0 + 1e-9:
            raise ParameterError(
                f"vertex {v} has incoming LT weight > 1; normalise first"
            )
    thresholds = rng.random(n)
    active = np.zeros(n, dtype=bool)
    pressure = np.zeros(n, dtype=np.float64)
    frontier = []
    for s in seeds:
        s = int(s)
        if not (0 <= s < n):
            raise ParameterError(f"seed {s} outside [0, {n})")
        if not active[s]:
            active[s] = True
            frontier.append(s)
    out_ptr, out_dst, out_prob = (
        piece_graph.out_ptr,
        piece_graph.out_dst,
        piece_graph.out_prob,
    )
    while frontier:
        next_frontier = []
        for u in frontier:
            lo, hi = out_ptr[u], out_ptr[u + 1]
            for s in range(lo, hi):
                v = int(out_dst[s])
                if active[v]:
                    continue
                pressure[v] += out_prob[s]
                if pressure[v] >= thresholds[v]:
                    active[v] = True
                    next_frontier.append(v)
        frontier = next_frontier
    return active


class LinearThresholdSampler:
    """RR-set sampler under LT: a weighted single-predecessor walk.

    In LT's live-edge formulation each vertex keeps exactly one incoming
    edge ``(u, v)`` with probability ``w(u, v)`` (and none with the
    remaining mass), so a reverse-reachable set is the path followed by
    repeatedly sampling one predecessor until the walk stops or cycles.
    Drop-in compatible with :class:`repro.sampling.rr.
    ReverseReachableSampler` (same ``sample`` / ``sample_many`` API).
    """

    __slots__ = ("_graph", "_mark", "_stamp")

    def __init__(self, piece_graph: PieceGraph) -> None:
        self._graph = piece_graph
        self._mark = np.zeros(piece_graph.n, dtype=np.int64)
        self._stamp = 0

    @property
    def graph(self) -> PieceGraph:
        """The underlying (weight-normalised) piece graph."""
        return self._graph

    def sample(self, root: int, rng) -> np.ndarray:
        n = self._graph.n
        if not (0 <= root < n):
            raise SamplingError(f"root {root} outside [0, {n})")
        self._stamp += 1
        stamp = self._stamp
        mark = self._mark
        in_ptr, in_src, in_prob = (
            self._graph.in_ptr,
            self._graph.in_src,
            self._graph.in_prob,
        )
        path = [root]
        mark[root] = stamp
        current = root
        while True:
            lo, hi = in_ptr[current], in_ptr[current + 1]
            if lo == hi:
                break
            weights = in_prob[lo:hi]
            draw = rng.random()
            cumulative = 0.0
            chosen = -1
            for idx in range(weights.size):
                cumulative += weights[idx]
                if draw < cumulative:
                    chosen = idx
                    break
            if chosen < 0:
                break  # the "no live incoming edge" mass
            nxt = int(in_src[lo + chosen])
            if mark[nxt] == stamp:
                break  # walked into a cycle: stop
            mark[nxt] = stamp
            path.append(nxt)
            current = nxt
        return np.asarray(path, dtype=np.int64)

    def sample_many(self, roots, rng) -> tuple[np.ndarray, np.ndarray]:
        """CSR-flattened batch form, mirroring the IC sampler."""
        ptr = np.zeros(len(roots) + 1, dtype=np.int64)
        chunks = []
        for i, root in enumerate(roots):
            rr = self.sample(int(root), rng)
            chunks.append(rr)
            ptr[i + 1] = ptr[i] + rr.size
        nodes = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
        )
        return ptr, nodes
