"""The Linear Threshold (LT) diffusion model.

The paper's problem statement evaluates under the independent cascade
model, but notes (Sec. II) that classical IM is NP-hard "under the
popular independent cascade (IC) and linear threshold (LT) influence
models" with the same RIS machinery applying to both.  This module
supplies the LT substrate so OIPA instances can be built and solved on
LT semantics as well:

* :func:`normalize_lt_weights` — rescales a piece graph's incoming edge
  probabilities so each vertex's total incoming weight is at most 1
  (the LT feasibility condition);
* :func:`simulate_lt_cascade` — forward LT simulation with uniform
  random thresholds;
* :class:`LinearThresholdSampler` — RR-set sampling under LT via the
  classic single-in-neighbour random walk (Mossel-Roch equivalence: in
  the live-edge view of LT, each vertex keeps at most one incoming edge,
  chosen with probability equal to its weight).

Because both samplers emit plain RR sets, the whole OIPA stack — MRR
collections, tau bounds, BAB/BAB-P — runs unchanged on LT influence.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.projection import PieceGraph
from repro.exceptions import ParameterError, SamplingError
from repro.utils.frontier import Int64Buffer, segment_sums

__all__ = [
    "normalize_lt_weights",
    "simulate_lt_cascade",
    "LinearThresholdSampler",
]


def normalize_lt_weights(piece_graph: PieceGraph) -> PieceGraph:
    """Rescale incoming weights so every vertex's in-sum is <= 1.

    Vertices whose incoming probability mass exceeds 1 have all their
    incoming weights divided by that mass; others are untouched.  The
    result is a new :class:`PieceGraph` sharing the adjacency arrays.
    Negative weights are rejected (:class:`ParameterError`): silently
    rescaling them would flip the LT semantics, and every downstream
    kernel assumes nonnegative mass.

    The per-vertex scale factor depends only on the *destination*
    vertex, so the forward view is rebuilt in one vectorized division
    (``out_prob / scale[out_dst]``) instead of an edge-by-edge slot scan.
    """
    in_ptr, in_prob = piece_graph.in_ptr, piece_graph.in_prob
    if in_prob.size and float(in_prob.min()) < 0.0:
        bad = int(np.argmin(in_prob))
        raise ParameterError(
            f"negative LT edge weight {in_prob[bad]!r} at reverse slot "
            f"{bad}; weights must be nonnegative"
        )
    totals = segment_sums(in_prob, np.diff(in_ptr))
    scale = np.where(totals > 1.0, totals, 1.0)
    new_in = in_prob / np.repeat(scale, np.diff(in_ptr))
    new_out = piece_graph.out_prob / scale[piece_graph.out_dst]
    return PieceGraph(
        piece_graph.n,
        piece_graph.out_ptr,
        piece_graph.out_dst,
        new_out,
        in_ptr,
        piece_graph.in_src,
        new_in,
    )


def simulate_lt_cascade(
    piece_graph: PieceGraph,
    seeds,
    rng,
    *,
    backend: str | None = None,
    check_weights: bool = True,
) -> np.ndarray:
    """One LT trial: uniform thresholds, weighted in-neighbour sums.

    A vertex activates when the weight of its active in-neighbours
    reaches its threshold.  Requires per-vertex incoming weight sums of
    at most 1 (use :func:`normalize_lt_weights` first); raises otherwise.
    ``check_weights=False`` skips that O(E) validation — Monte-Carlo
    callers validate the immutable graph once and hoist the check out
    of their trial loops.

    ``backend="batch"`` (the default) and ``backend="native"`` route
    through the vectorized frontier-at-a-time kernel of
    :mod:`repro.sampling.batch` (the forward cascade has no separate
    compiled form — RR sampling is the hot loop, not single trials);
    ``backend="python"`` runs the per-vertex reference loop below.  Both
    consume the rng stream identically (one ``rng.random(n)`` threshold
    draw), but internal pressure bookkeeping differs in two harmless
    ways (frontier ordering, and accumulation past activation), so the
    activation masks agree up to last-ulp float rounding rather than by
    construction — see
    :func:`repro.sampling.batch.simulate_lt_cascade_batch` for the
    precise contract.
    """
    # Imported lazily: repro.sampling pulls in this module through the
    # diffusion package, so a module-level import would be circular.
    from repro.sampling.batch import (
        check_backend,
        check_lt_feasible,
        simulate_lt_cascade_batch,
    )

    if check_backend(backend) != "python":
        return simulate_lt_cascade_batch(
            piece_graph, seeds, rng, check_weights=check_weights
        )
    n = piece_graph.n
    if check_weights:
        check_lt_feasible(piece_graph)
    thresholds = rng.random(n)
    active = np.zeros(n, dtype=bool)
    pressure = np.zeros(n, dtype=np.float64)
    frontier = []
    for s in seeds:
        s = int(s)
        if not (0 <= s < n):
            raise ParameterError(f"seed {s} outside [0, {n})")
        if not active[s]:
            active[s] = True
            frontier.append(s)
    out_ptr, out_dst, out_prob = (
        piece_graph.out_ptr,
        piece_graph.out_dst,
        piece_graph.out_prob,
    )
    while frontier:
        next_frontier = []
        for u in frontier:
            lo, hi = out_ptr[u], out_ptr[u + 1]
            for s in range(lo, hi):
                v = int(out_dst[s])
                if active[v]:
                    continue
                pressure[v] += out_prob[s]
                if pressure[v] >= thresholds[v]:
                    active[v] = True
                    next_frontier.append(v)
        frontier = next_frontier
    return active


class LinearThresholdSampler:
    """RR-set sampler under LT: a weighted single-predecessor walk.

    In LT's live-edge formulation each vertex keeps exactly one incoming
    edge ``(u, v)`` with probability ``w(u, v)`` (and none with the
    remaining mass), so a reverse-reachable set is the path followed by
    repeatedly sampling one predecessor until the walk stops or cycles.
    Drop-in compatible with :class:`repro.sampling.rr.
    ReverseReachableSampler` (same ``sample`` / ``sample_many`` API,
    including the ``backend`` knob: ``"batch"`` routes ``sample_many``
    through :class:`repro.sampling.batch.BatchLTSampler`, ``"native"``
    through the compiled :class:`repro.sampling.batch.NativeLTSampler`
    (bit-identical to batch), ``"python"`` keeps the per-walk reference
    loop below).
    """

    __slots__ = ("_graph", "_mark", "_stamp", "_backend", "_batch")

    def __init__(
        self, piece_graph: PieceGraph, *, backend: str | None = None
    ) -> None:
        # Lazy import — see simulate_lt_cascade for the cycle note.
        from repro.sampling.batch import check_backend, check_lt_feasible

        # Fail loudly on un-normalised weights: with excess incoming
        # mass the walk always finds a predecessor and every RR-based
        # estimate silently inflates.
        check_lt_feasible(piece_graph)
        self._graph = piece_graph
        self._backend = check_backend(backend)
        # Engine cache keyed by engine class — see ReverseReachableSampler.
        self._batch = {}
        self._mark = np.zeros(piece_graph.n, dtype=np.int64)
        self._stamp = 0

    @property
    def graph(self) -> PieceGraph:
        """The underlying (weight-normalised) piece graph."""
        return self._graph

    @property
    def backend(self) -> str:
        """Which sampling engine ``sample_many`` routes through."""
        return self._backend

    def _batch_engine(self, backend: str):
        from repro.sampling.batch import BatchLTSampler, NativeLTSampler

        cls = NativeLTSampler if backend == "native" else BatchLTSampler
        engine = self._batch.get(cls)
        if engine is None:
            engine = self._batch[cls] = cls(self._graph)
        return engine

    def sample(self, root: int, rng) -> np.ndarray:
        n = self._graph.n
        if not (0 <= root < n):
            raise SamplingError(f"root {root} outside [0, {n})")
        self._stamp += 1
        stamp = self._stamp
        mark = self._mark
        in_ptr, in_src, in_prob = (
            self._graph.in_ptr,
            self._graph.in_src,
            self._graph.in_prob,
        )
        path = [root]
        mark[root] = stamp
        current = root
        while True:
            lo, hi = in_ptr[current], in_ptr[current + 1]
            if lo == hi:
                break
            weights = in_prob[lo:hi]
            draw = rng.random()
            cumulative = 0.0
            chosen = -1
            for idx in range(weights.size):
                cumulative += weights[idx]
                if draw < cumulative:
                    chosen = idx
                    break
            if chosen < 0:
                break  # the "no live incoming edge" mass
            nxt = int(in_src[lo + chosen])
            if mark[nxt] == stamp:
                break  # walked into a cycle: stop
            mark[nxt] = stamp
            path.append(nxt)
            current = nxt
        return np.asarray(path, dtype=np.int64)

    def sample_many(
        self, roots, rng, *, backend: str | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR-flattened batch form, mirroring the IC sampler.

        ``backend`` overrides the sampler's configured engine for this
        call (``"batch"``/``"native"``/``"python"``).
        """
        from repro.sampling.batch import check_backend

        backend = self._backend if backend is None else check_backend(backend)
        roots = np.asarray(roots, dtype=np.int64)
        if backend != "python":
            return self._batch_engine(backend).sample_many(roots, rng)
        ptr = np.zeros(len(roots) + 1, dtype=np.int64)
        nodes = Int64Buffer(2 * len(roots) + 16)
        for i, root in enumerate(roots):
            rr = self.sample(int(root), rng)
            nodes.extend(rr)
            ptr[i + 1] = ptr[i] + rr.size
        return ptr, nodes.to_array()
