"""Piece-projected influence graphs.

Each viral piece ``t_j`` "induces a homogeneous influence graph where the
influence probability of edge ``e`` is computed as ``p(t_j, e) = t_j ·
p(e)``" (Sec. V-A).  :class:`PieceGraph` materialises that projection
once per piece — both forward (for cascade simulation) and reverse (for
RR-set sampling) adjacency share the same per-edge probability array, so
the ``t · p(e)`` dot products are computed exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import TopicGraph
from repro.topics.distributions import Campaign, Piece

__all__ = ["PieceGraph", "project_campaign"]


class PieceGraph:
    """One piece's homogeneous influence graph, CSR in both directions.

    Attributes
    ----------
    n:
        Vertex count (same vertex ids as the source graph).
    out_ptr, out_dst, out_prob:
        Forward adjacency; ``out_prob[k]`` is the crossing probability of
        the edge stored at slot ``k``.
    in_ptr, in_src, in_prob:
        Reverse adjacency; ``in_prob[k]`` is the probability of the edge
        *ending* at the indexed vertex (used by reverse BFS sampling).
    """

    __slots__ = (
        "n",
        "out_ptr",
        "out_dst",
        "out_prob",
        "in_ptr",
        "in_src",
        "in_prob",
    )

    def __init__(
        self,
        n: int,
        out_ptr: np.ndarray,
        out_dst: np.ndarray,
        out_prob: np.ndarray,
        in_ptr: np.ndarray,
        in_src: np.ndarray,
        in_prob: np.ndarray,
    ) -> None:
        self.n = int(n)
        self.out_ptr = out_ptr
        self.out_dst = out_dst
        self.out_prob = out_prob
        self.in_ptr = in_ptr
        self.in_src = in_src
        self.in_prob = in_prob

    @classmethod
    def project(cls, graph: TopicGraph, piece: "Piece | np.ndarray") -> "PieceGraph":
        """Project ``graph`` onto one piece's topic distribution."""
        vector = piece.vector if isinstance(piece, Piece) else piece
        edge_prob = graph.piece_probabilities(vector)
        return cls(
            graph.n,
            graph.out_ptr,
            graph.out_dst,
            edge_prob,
            graph.in_ptr,
            graph.in_src,
            edge_prob[graph.in_edge],
        )

    @classmethod
    def from_edge_probabilities(
        cls, graph: TopicGraph, edge_prob: np.ndarray
    ) -> "PieceGraph":
        """Wrap explicit per-edge probabilities (canonical edge order).

        Used by the ``IM`` baseline, which flattens the topic vectors into
        a single scalar probability per edge.
        """
        edge_prob = np.asarray(edge_prob, dtype=np.float64)
        if edge_prob.shape != (graph.num_edges,):
            raise ValueError(
                f"edge_prob must have shape ({graph.num_edges},), "
                f"got {edge_prob.shape}"
            )
        return cls(
            graph.n,
            graph.out_ptr,
            graph.out_dst,
            edge_prob,
            graph.in_ptr,
            graph.in_src,
            edge_prob[graph.in_edge],
        )

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.out_dst.size)

    def __repr__(self) -> str:
        return f"PieceGraph(n={self.n}, m={self.num_edges})"


def project_campaign(graph: TopicGraph, campaign: Campaign) -> list[PieceGraph]:
    """Project ``graph`` onto every piece of ``campaign`` (piece order)."""
    return [PieceGraph.project(graph, piece) for piece in campaign]
