"""Diffusion substrate: adoption model, piece projection, forward simulation."""

from repro.diffusion.adoption import AdoptionModel
from repro.diffusion.projection import PieceGraph, project_campaign
from repro.diffusion.interdependent import (
    InteractionMatrix,
    simulate_interdependent_utility,
)
from repro.diffusion.threshold import (
    LinearThresholdSampler,
    normalize_lt_weights,
    simulate_lt_cascade,
)
from repro.diffusion.simulate import (
    simulate_adoption_utility,
    simulate_cascade,
    simulate_model_cascade,
    simulate_piece_spread,
)

__all__ = [
    "AdoptionModel",
    "PieceGraph",
    "project_campaign",
    "simulate_cascade",
    "simulate_model_cascade",
    "simulate_piece_spread",
    "simulate_adoption_utility",
    "InteractionMatrix",
    "simulate_interdependent_utility",
    "LinearThresholdSampler",
    "normalize_lt_weights",
    "simulate_lt_cascade",
]
