"""Interdependent piece propagation — the paper's future-work extension.

Sec. VII: "In this work, the viral pieces are spread in the network
independently.  It would be interesting to study the interdependence of
different viral pieces while still optimizing the adoption utility."

This module implements a controlled relaxation of the independence
assumption for *evaluation* (the optimisation problem stays as in the
paper; Theorem 1 makes the general interdependent case hopeless anyway):

Each ordered pair of pieces gets an interaction weight ``rho[j, j']``:

* ``rho > 0`` (complementary): having received piece ``j`` makes a user
  receptive to piece ``j'`` — each cascade of ``j'`` gets a second
  chance to cross an edge into such a user, with the failed edge
  re-tried at probability ``rho * p``;
* ``rho < 0`` (competitive): a user who received ``j`` ignores ``j'``
  with probability ``|rho|`` (the received-piece count drops).

``rho = 0`` recovers the paper's independent model exactly, which the
test suite asserts, along with the monotone directional effects.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.diffusion.adoption import AdoptionModel
from repro.diffusion.projection import PieceGraph
from repro.diffusion.simulate import simulate_cascade
from repro.exceptions import ParameterError
from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_piece_graphs_aligned,
    check_positive_int,
)

__all__ = ["InteractionMatrix", "simulate_interdependent_utility"]


class InteractionMatrix:
    """Pairwise piece-interaction weights ``rho[j, j'] in [-1, 1]``."""

    __slots__ = ("values",)

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2 or values.shape[0] != values.shape[1]:
            raise ParameterError(
                f"interaction matrix must be square, got {values.shape}"
            )
        if np.any(np.abs(values) > 1.0):
            raise ParameterError("interaction weights must lie in [-1, 1]")
        if np.any(np.diag(values) != 0.0):
            raise ParameterError("self-interaction must be zero")
        self.values = values
        self.values.setflags(write=False)

    @classmethod
    def independent(cls, num_pieces: int) -> "InteractionMatrix":
        """The paper's model: no interaction."""
        return cls(np.zeros((num_pieces, num_pieces)))

    @classmethod
    def uniform(cls, num_pieces: int, rho: float) -> "InteractionMatrix":
        """All distinct pairs share one interaction weight ``rho``."""
        values = np.full((num_pieces, num_pieces), float(rho))
        np.fill_diagonal(values, 0.0)
        return cls(values)

    @property
    def num_pieces(self) -> int:
        return int(self.values.shape[0])

    def is_independent(self) -> bool:
        return bool(np.all(self.values == 0.0))


def simulate_interdependent_utility(
    piece_graphs: Sequence[PieceGraph],
    plan_seed_sets: Sequence,
    adoption: AdoptionModel,
    interactions: InteractionMatrix,
    *,
    rounds: int = 200,
    seed=None,
) -> float:
    """Monte-Carlo AU under pairwise piece interactions.

    Pieces are simulated in index order each round.  After piece ``j``'s
    independent cascade, complementary interactions give users already
    holding earlier pieces a re-exposure chance, and competitive ones
    may make them drop piece ``j`` (see module docstring).  With an
    all-zero matrix this reduces exactly to
    :func:`repro.diffusion.simulate.simulate_adoption_utility`'s model
    (same per-round cascade draws in distribution).
    """
    if len(piece_graphs) != len(plan_seed_sets):
        raise ParameterError(
            f"{len(plan_seed_sets)} seed sets for {len(piece_graphs)} pieces"
        )
    if interactions.num_pieces != len(piece_graphs):
        raise ParameterError(
            f"interaction matrix is {interactions.num_pieces}x"
            f"{interactions.num_pieces} but there are {len(piece_graphs)} pieces"
        )
    check_positive_int("rounds", rounds)
    rng = as_generator(seed)
    n = piece_graphs[0].n
    check_piece_graphs_aligned(piece_graphs, n)
    l = len(piece_graphs)
    seed_lists = [list(s) for s in plan_seed_sets]
    rho = interactions.values
    total = 0.0
    for _ in range(rounds):
        received = np.zeros((n, l), dtype=bool)
        for j, (pg, seeds) in enumerate(zip(piece_graphs, seed_lists)):
            if seeds:
                received[:, j] = simulate_cascade(pg, seeds, rng)
            # Complementary boosts from earlier pieces: users holding
            # piece j' get an extra adoption-side exposure chance.
            for j_prev in range(j):
                r = rho[j_prev, j]
                if r > 0:
                    holders = received[:, j_prev] & ~received[:, j]
                    if np.any(holders):
                        # A re-exposure succeeds with probability r *
                        # (fraction of the network the piece reached) —
                        # a mean-field second chance.
                        reach = received[:, j].mean()
                        boost = rng.random(int(holders.sum())) < r * reach
                        idx = np.flatnonzero(holders)
                        received[idx[boost], j] = True
                elif r < 0:
                    clash = received[:, j_prev] & received[:, j]
                    if np.any(clash):
                        dropped = rng.random(int(clash.sum())) < -r
                        idx = np.flatnonzero(clash)
                        received[idx[dropped], j] = False
        counts = received.sum(axis=1)
        total += float(adoption.probability(counts).sum())
    return total / rounds
