"""Content-addressed artifact cache behind the staged pipeline.

Every expensive product of the pipeline — a sampled RR collection, its
inverted index, a solved seed-set plan — is cached under an
:class:`ArtifactKey` built from *what produced it*: the graph content
fingerprint, the campaign fingerprint, the cache-relevant slice of the
resolved runtime (:meth:`ResolvedRuntime.cache_key`), the stage name,
and stage-specific extras (theta, solver options, ...).  Identical
inputs therefore hit the cache instead of resampling, and two solvers
over the same campaign share one sampled collection.

Two backends:

- :class:`MemoryArtifactStore` — a per-process dict; ``"memory"``
  resolves to one shared process-global instance so separate Sessions
  in one interpreter share artifacts.
- :class:`DiskArtifactStore` — an on-disk object store under
  ``root/objects/<digest[:2]>/<digest>/``.  Array payloads live in
  ``arrays.npz``; directory payloads (out-of-core shard collections)
  live in the object directory itself.  ``meta.json`` is written last
  and atomically, so a half-written object is simply a miss — this
  generalizes :class:`ShardStore`'s resume fingerprint to every stage.

The store keeps persistent hit/miss/put counters in ``stats.json`` so
a warm CI pass can assert that the cache actually served.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigError, StoreError

__all__ = [
    "Artifact",
    "ArtifactKey",
    "ArtifactStore",
    "DiskArtifactStore",
    "MemoryArtifactStore",
    "piece_graphs_digest",
    "resolve_artifact_store",
]

_META = "meta.json"
_ARRAYS = "arrays.npz"
_STATS = "stats.json"
_FORMAT = 1


def piece_graphs_digest(piece_graphs: Sequence) -> str:
    """Digest of projected per-piece graphs (sha256 hex).

    Sampling consumes the *projected* piece graphs, not the topic graph
    directly — LT pieces are weight-normalised, and callers may pass
    custom projections — so sample keys hash the actual structures that
    the samplers walk.
    """
    h = hashlib.sha256()
    h.update(f"pieces:v1:l={len(piece_graphs)}:".encode())
    for pg in piece_graphs:
        h.update(f"n={pg.n}:".encode())
        h.update(pg.out_ptr.tobytes())
        h.update(pg.out_dst.tobytes())
        h.update(pg.out_prob.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class ArtifactKey:
    """What produced an artifact: the full causal input set, hashed.

    ``extra`` carries stage-specific discriminators (theta, method,
    solver options, ...) as ``"name=value"`` strings.
    """

    graph: str
    campaign: str
    runtime: str
    stage: str
    extra: tuple[str, ...] = ()

    @property
    def token(self) -> str:
        """Human-readable key string (also what gets hashed)."""
        parts = [
            f"v{_FORMAT}",
            f"graph={self.graph}",
            f"campaign={self.campaign}",
            f"runtime={self.runtime}",
            f"stage={self.stage}",
        ]
        parts.extend(self.extra)
        return ":".join(parts)

    @property
    def digest(self) -> str:
        """Content address of this key (sha256 hex of :attr:`token`)."""
        return hashlib.sha256(self.token.encode()).hexdigest()


@dataclass(frozen=True)
class Artifact:
    """A cached stage product: metadata, arrays, and/or a directory."""

    key: ArtifactKey
    meta: Mapping[str, object]
    arrays: Mapping[str, np.ndarray] = field(default_factory=dict)
    path: str | None = None


class ArtifactStore:
    """Maps :class:`ArtifactKey` → cached stage product.

    Subclasses implement ``get``/``put``.  Stores that can host
    directory payloads (shard collections) set ``hosts_directories``
    and implement ``stage_dir``/``commit``: the producer writes into
    ``stage_dir(key)`` and the artifact only becomes visible once
    ``commit`` lands its metadata, so interrupted work is a plain miss.
    """

    kind = "abstract"
    hosts_directories = False

    def get(self, key: ArtifactKey) -> Artifact | None:
        raise NotImplementedError

    def put(
        self,
        key: ArtifactKey,
        meta: Mapping[str, object],
        arrays: Mapping[str, np.ndarray] | None = None,
    ) -> Artifact:
        raise NotImplementedError

    def stage_dir(self, key: ArtifactKey) -> str:
        raise StoreError(
            f"{type(self).__name__} cannot host directory artifacts"
        )

    def commit(self, key: ArtifactKey, meta: Mapping[str, object]) -> Artifact:
        raise StoreError(
            f"{type(self).__name__} cannot host directory artifacts"
        )

    def stats(self) -> dict[str, int]:
        raise NotImplementedError


class MemoryArtifactStore(ArtifactStore):
    """In-process artifact cache: a dict keyed by the key digest."""

    kind = "memory"
    hosts_directories = False

    def __init__(self) -> None:
        self._objects: dict[str, Artifact] = {}
        self._stats = {"hits": 0, "misses": 0, "puts": 0}

    def get(self, key: ArtifactKey) -> Artifact | None:
        found = self._objects.get(key.digest)
        if found is None:
            self._stats["misses"] += 1
            return None
        self._stats["hits"] += 1
        return found

    def put(self, key, meta, arrays=None):
        artifact = Artifact(
            key=key,
            meta=dict(meta),
            arrays={k: np.asarray(v) for k, v in dict(arrays or {}).items()},
        )
        self._objects[key.digest] = artifact
        self._stats["puts"] += 1
        return artifact

    def stats(self) -> dict[str, int]:
        return dict(self._stats)

    def __len__(self) -> int:
        return len(self._objects)


class DiskArtifactStore(ArtifactStore):
    """On-disk content-addressed artifact cache.

    Layout::

        root/
          stats.json
          objects/<digest[:2]>/<digest>/
            meta.json        # commit marker — written last, atomically
            arrays.npz       # array payloads (absent for directory payloads)
            ...              # directory payloads write siblings here

    ``meta.json`` records the full key token, so a digest collision or
    a stale directory from an older key scheme is detected and treated
    as a miss rather than served.
    """

    kind = "disk"
    hosts_directories = True

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)
        os.makedirs(os.path.join(self.root, "objects"), exist_ok=True)

    # -- layout ---------------------------------------------------------

    def _object_dir(self, key: ArtifactKey) -> str:
        digest = key.digest
        return os.path.join(self.root, "objects", digest[:2], digest)

    # -- stats ----------------------------------------------------------

    def _bump(self, field_name: str) -> None:
        path = os.path.join(self.root, _STATS)
        stats = self.stats()
        stats[field_name] = stats.get(field_name, 0) + 1
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(stats, fh)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def stats(self) -> dict[str, int]:
        path = os.path.join(self.root, _STATS)
        try:
            with open(path) as fh:
                stats = json.load(fh)
        except (OSError, ValueError):
            stats = {}
        return {
            "hits": int(stats.get("hits", 0)),
            "misses": int(stats.get("misses", 0)),
            "puts": int(stats.get("puts", 0)),
        }

    # -- read -----------------------------------------------------------

    def get(self, key: ArtifactKey) -> Artifact | None:
        obj_dir = self._object_dir(key)
        meta_path = os.path.join(obj_dir, _META)
        try:
            with open(meta_path) as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            self._bump("misses")
            return None
        if meta.get("token") != key.token:
            # digest prefix collision or stale key scheme — not ours
            self._bump("misses")
            return None
        arrays: dict[str, np.ndarray] = {}
        arrays_path = os.path.join(obj_dir, _ARRAYS)
        if os.path.exists(arrays_path):
            with np.load(arrays_path) as payload:
                arrays = {name: payload[name] for name in payload.files}
        self._bump("hits")
        return Artifact(key=key, meta=meta, arrays=arrays, path=obj_dir)

    # -- write ----------------------------------------------------------

    def put(self, key, meta, arrays=None):
        obj_dir = self._object_dir(key)
        os.makedirs(obj_dir, exist_ok=True)
        if arrays:
            arrays = {k: np.asarray(v) for k, v in dict(arrays).items()}
            fd, tmp = tempfile.mkstemp(dir=obj_dir, suffix=".npz.tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.savez(fh, **arrays)
                os.replace(tmp, os.path.join(obj_dir, _ARRAYS))
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        return self.commit(key, meta)

    def stage_dir(self, key: ArtifactKey) -> str:
        """Directory a producer may write a directory payload into."""
        obj_dir = self._object_dir(key)
        os.makedirs(obj_dir, exist_ok=True)
        return obj_dir

    def commit(self, key: ArtifactKey, meta: Mapping[str, object]) -> Artifact:
        """Land ``meta.json`` last, making the artifact visible."""
        obj_dir = self._object_dir(key)
        os.makedirs(obj_dir, exist_ok=True)
        full_meta = dict(meta)
        full_meta["token"] = key.token
        fd, tmp = tempfile.mkstemp(dir=obj_dir, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(full_meta, fh)
            os.replace(tmp, os.path.join(obj_dir, _META))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._bump("puts")
        return Artifact(key=key, meta=full_meta, arrays={}, path=obj_dir)


_MEMORY_SINGLETON: MemoryArtifactStore | None = None
_DISK_INSTANCES: dict[str, DiskArtifactStore] = {}


def resolve_artifact_store(spec) -> ArtifactStore | None:
    """Resolve an ``artifacts`` spec to a store instance (or None).

    - ``None`` / ``"off"`` → no caching.
    - ``"memory"`` → the shared process-global in-memory store.
    - a path string → a :class:`DiskArtifactStore` rooted there (one
      instance per resolved path, so stats accumulate coherently).
    - an :class:`ArtifactStore` instance → itself.
    """
    global _MEMORY_SINGLETON
    if spec is None or spec == "off":
        return None
    if isinstance(spec, ArtifactStore):
        return spec
    if spec == "memory":
        if _MEMORY_SINGLETON is None:
            _MEMORY_SINGLETON = MemoryArtifactStore()
        return _MEMORY_SINGLETON
    if isinstance(spec, (str, os.PathLike)):
        root = os.path.abspath(os.fspath(spec))
        store = _DISK_INSTANCES.get(root)
        if store is None:
            store = DiskArtifactStore(root)
            _DISK_INSTANCES[root] = store
        return store
    raise ConfigError(
        "artifacts must be None, 'off', 'memory', a directory path, or an "
        f"ArtifactStore instance, got {spec!r}"
    )
