"""Content-addressed artifact cache behind the staged pipeline.

Every expensive product of the pipeline — a sampled RR collection, its
inverted index, a solved seed-set plan — is cached under an
:class:`ArtifactKey` built from *what produced it*: the graph content
fingerprint, the campaign fingerprint, the cache-relevant slice of the
resolved runtime (:meth:`ResolvedRuntime.cache_key`), the stage name,
and stage-specific extras (theta, solver options, ...).  Identical
inputs therefore hit the cache instead of resampling, and two solvers
over the same campaign share one sampled collection.

Two backends:

- :class:`MemoryArtifactStore` — a per-process dict; ``"memory"``
  resolves to one shared process-global instance so separate Sessions
  in one interpreter share artifacts.
- :class:`DiskArtifactStore` — an on-disk object store under
  ``root/objects/<digest[:2]>/<digest>/``.  Array payloads live in
  ``arrays.npz``; directory payloads (out-of-core shard collections)
  live in the object directory itself.  Producers build every object in
  a private staging directory under ``root/tmp/`` and the commit is one
  atomic directory rename, so concurrent workers missing the same key
  (the cold-start stampede) each build privately and the duplicate
  commit is a benign no-op — a half-written object can never be read as
  a hit because it is never visible under ``objects/`` at all.

The store keeps persistent hit/miss/put counters; each process writes
its own delta file under ``root/stats.d/`` (atomically, no shared
read-modify-write), and :meth:`DiskArtifactStore.stats` merges the
deltas — so N workers hammering one store lose no counts, and a
truncated legacy ``stats.json`` reads as empty instead of raising.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import shutil
import tempfile
import time
import uuid
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigError, StoreError
from repro.utils.locks import FileLease

__all__ = [
    "Artifact",
    "ArtifactKey",
    "ArtifactStore",
    "DiskArtifactStore",
    "MemoryArtifactStore",
    "ProducerFlight",
    "piece_graphs_digest",
    "resolve_artifact_store",
]

_META = "meta.json"
_ARRAYS = "arrays.npz"
_STATS = "stats.json"
_STATS_DIR = "stats.d"
_STAGING_DIR = "tmp"
_FORMAT = 1
_STAT_FIELDS = ("hits", "misses", "puts")


def piece_graphs_digest(piece_graphs: Sequence) -> str:
    """Digest of projected per-piece graphs (sha256 hex).

    Sampling consumes the *projected* piece graphs, not the topic graph
    directly — LT pieces are weight-normalised, and callers may pass
    custom projections — so sample keys hash the actual structures that
    the samplers walk.
    """
    h = hashlib.sha256()
    h.update(f"pieces:v1:l={len(piece_graphs)}:".encode())
    for pg in piece_graphs:
        h.update(f"n={pg.n}:".encode())
        h.update(pg.out_ptr.tobytes())
        h.update(pg.out_dst.tobytes())
        h.update(pg.out_prob.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class ArtifactKey:
    """What produced an artifact: the full causal input set, hashed.

    ``extra`` carries stage-specific discriminators (theta, method,
    solver options, ...) as ``"name=value"`` strings.
    """

    graph: str
    campaign: str
    runtime: str
    stage: str
    extra: tuple[str, ...] = ()

    @property
    def token(self) -> str:
        """Human-readable key string (also what gets hashed)."""
        parts = [
            f"v{_FORMAT}",
            f"graph={self.graph}",
            f"campaign={self.campaign}",
            f"runtime={self.runtime}",
            f"stage={self.stage}",
        ]
        parts.extend(self.extra)
        return ":".join(parts)

    @property
    def digest(self) -> str:
        """Content address of this key (sha256 hex of :attr:`token`)."""
        return hashlib.sha256(self.token.encode()).hexdigest()


@dataclass(frozen=True)
class Artifact:
    """A cached stage product: metadata, arrays, and/or a directory."""

    key: ArtifactKey
    meta: Mapping[str, object]
    arrays: Mapping[str, np.ndarray] = field(default_factory=dict)
    path: str | None = None


#: How long a flight waiter polls for the producer's commit before
#: giving up and producing privately (a benign duplicate).
DEFAULT_FLIGHT_TIMEOUT = 300.0
_FLIGHT_POLL = 0.05


class ProducerFlight:
    """Cross-process single-flight for one artifact key.

    On a cache miss, ``claim()`` decides whether this process produces
    the artifact (``True``) or should wait for whoever already claimed
    it; ``wait(fetch)`` polls ``fetch`` (typically ``lambda:
    store.get(key)``) until the producer commits, dies, or the timeout
    lapses.  ``wait`` returning ``None`` means *you are now the
    producer* — either the lease was inherited from a dead producer or
    the wait timed out and a private (benignly duplicated) production
    is the fallback.  ``release()`` is idempotent; callers put it in a
    ``finally`` around the production.

    This base class is the in-process store's trivial flight: claims
    always succeed (the Session layer already single-flights within a
    process), so behaviour without a disk store is unchanged.
    """

    def claim(self) -> bool:
        return True

    def wait(
        self,
        fetch,
        *,
        timeout: float = DEFAULT_FLIGHT_TIMEOUT,
        poll: float = _FLIGHT_POLL,
    ):
        return None

    def release(self) -> None:
        return None

    def __enter__(self) -> "ProducerFlight":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class _DiskProducerFlight(ProducerFlight):
    """Lease-backed flight next to the disk store's staging area.

    The lock file lives under ``root/tmp/`` (the staging directory),
    keyed by the artifact digest, so any process sharing the store's
    filesystem participates.  A claimed flight starts a keepalive so a
    long production is never stolen from a live producer; waits sleep
    with jitter (plain ``time.sleep`` — Ctrl-C interrupts immediately).
    """

    def __init__(self, root: str, key: ArtifactKey) -> None:
        path = os.path.join(
            root, _STAGING_DIR, f"{key.digest}.flight.lock"
        )
        self._lease = FileLease(path, payload={"stage": key.stage})

    def claim(self) -> bool:
        if not self._lease.try_acquire():
            return False
        self._lease.keepalive()
        return True

    def wait(
        self,
        fetch,
        *,
        timeout: float = DEFAULT_FLIGHT_TIMEOUT,
        poll: float = _FLIGHT_POLL,
    ):
        deadline = time.monotonic() + float(timeout)
        while time.monotonic() < deadline:
            time.sleep(poll * (0.5 + random.random()))
            obj = fetch()
            if obj is not None:
                return obj
            if self._lease.try_acquire():
                # Producer vanished (released without committing, or
                # died and the lease expired).  One more fetch under
                # the lock — commit-then-release is not atomic — then
                # the caller inherits the production.
                obj = fetch()
                if obj is not None:
                    self.release()
                    return obj
                self._lease.keepalive()
                return None
        return None

    def release(self) -> None:
        self._lease.release()


class ArtifactStore:
    """Maps :class:`ArtifactKey` → cached stage product.

    Subclasses implement ``get``/``put``.  Stores that can host
    directory payloads (shard collections) set ``hosts_directories``
    and implement ``stage_dir``/``commit``: the producer writes into
    ``stage_dir(key)`` and the artifact only becomes visible once
    ``commit`` lands its metadata, so interrupted work is a plain miss.
    Cross-process coordination on a miss goes through
    :meth:`producer_flight` (a no-op claim for in-process stores).
    """

    kind = "abstract"
    hosts_directories = False

    def get(self, key: ArtifactKey) -> Artifact | None:
        raise NotImplementedError

    def put(
        self,
        key: ArtifactKey,
        meta: Mapping[str, object],
        arrays: Mapping[str, np.ndarray] | None = None,
    ) -> Artifact:
        raise NotImplementedError

    def stage_dir(self, key: ArtifactKey) -> str:
        raise StoreError(
            f"{type(self).__name__} cannot host directory artifacts"
        )

    def commit(self, key: ArtifactKey, meta: Mapping[str, object]) -> Artifact:
        raise StoreError(
            f"{type(self).__name__} cannot host directory artifacts"
        )

    def producer_flight(self, key: ArtifactKey) -> ProducerFlight:
        """A single-flight handle for producing ``key`` (see above)."""
        return ProducerFlight()

    def stats(self) -> dict[str, int]:
        raise NotImplementedError


class MemoryArtifactStore(ArtifactStore):
    """In-process artifact cache: a dict keyed by the key digest."""

    kind = "memory"
    hosts_directories = False

    def __init__(self) -> None:
        self._objects: dict[str, Artifact] = {}
        self._stats = {"hits": 0, "misses": 0, "puts": 0}

    def get(self, key: ArtifactKey) -> Artifact | None:
        found = self._objects.get(key.digest)
        if found is None:
            self._stats["misses"] += 1
            return None
        self._stats["hits"] += 1
        return found

    def put(self, key, meta, arrays=None):
        artifact = Artifact(
            key=key,
            meta=dict(meta),
            arrays={k: np.asarray(v) for k, v in dict(arrays or {}).items()},
        )
        self._objects[key.digest] = artifact
        self._stats["puts"] += 1
        return artifact

    def stats(self) -> dict[str, int]:
        return dict(self._stats)

    def __len__(self) -> int:
        return len(self._objects)


class DiskArtifactStore(ArtifactStore):
    """On-disk content-addressed artifact cache.

    Layout::

        root/
          stats.json         # legacy base counters (read, never written)
          stats.d/           # one delta file per writer process
          tmp/               # private staging dirs, renamed into place
          objects/<digest[:2]>/<digest>/
            meta.json        # records the full key token
            arrays.npz       # array payloads (absent for directory payloads)
            ...              # directory payloads write siblings here

    ``meta.json`` records the full key token, so a digest collision or
    a stale directory from an older key scheme is detected and treated
    as a miss rather than served.

    Multi-process contract: any number of processes may share one root.
    Objects become visible only through an atomic directory rename out
    of ``tmp/`` (a losing racer's commit is a benign no-op), and each
    writer owns a private counter file under ``stats.d/`` so counter
    updates are never a shared read-modify-write.
    """

    kind = "disk"
    hosts_directories = True

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)
        os.makedirs(os.path.join(self.root, "objects"), exist_ok=True)
        os.makedirs(os.path.join(self.root, _STATS_DIR), exist_ok=True)
        os.makedirs(os.path.join(self.root, _STAGING_DIR), exist_ok=True)
        # This writer's private counter deltas (see stats()).
        self._delta = dict.fromkeys(_STAT_FIELDS, 0)
        self._delta_path = os.path.join(
            self.root,
            _STATS_DIR,
            f"{os.getpid()}-{uuid.uuid4().hex[:8]}.json",
        )
        # Staging dirs handed out by stage_dir(), keyed by key digest,
        # consumed by commit().
        self._staging: dict[str, str] = {}

    # -- layout ---------------------------------------------------------

    def _object_dir(self, key: ArtifactKey) -> str:
        digest = key.digest
        return os.path.join(self.root, "objects", digest[:2], digest)

    def _new_staging_dir(self) -> str:
        return tempfile.mkdtemp(
            dir=os.path.join(self.root, _STAGING_DIR), prefix="stage-"
        )

    # -- stats ----------------------------------------------------------

    def _bump(self, field_name: str) -> None:
        """Count one event — private delta file, no shared writes.

        The historical implementation read ``stats.json``, incremented,
        and wrote it back; with several processes sharing a root that
        read-modify-write lost updates.  Each writer now owns one file
        under ``stats.d/`` rewritten atomically with *its own* totals,
        and readers merge.
        """
        self._delta[field_name] += 1
        fd, tmp = tempfile.mkstemp(
            dir=os.path.join(self.root, _STATS_DIR), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self._delta, fh)
            os.replace(tmp, self._delta_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    @staticmethod
    def _read_counters(path: str) -> dict:
        """Tolerant counter read: truncated/missing/partial == empty."""
        try:
            with open(path) as fh:
                stats = json.load(fh)
        except (OSError, ValueError):
            return {}
        return stats if isinstance(stats, dict) else {}

    def stats(self) -> dict[str, int]:
        """Store-wide counters: legacy base plus every writer's deltas."""
        totals = self._read_counters(os.path.join(self.root, _STATS))
        merged = {f: int(totals.get(f, 0)) for f in _STAT_FIELDS}
        stats_dir = os.path.join(self.root, _STATS_DIR)
        try:
            names = sorted(os.listdir(stats_dir))
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".json"):
                continue
            delta = self._read_counters(os.path.join(stats_dir, name))
            for f in _STAT_FIELDS:
                merged[f] += int(delta.get(f, 0))
        return merged

    # -- read -----------------------------------------------------------

    def get(self, key: ArtifactKey) -> Artifact | None:
        obj_dir = self._object_dir(key)
        meta_path = os.path.join(obj_dir, _META)
        try:
            with open(meta_path) as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            self._bump("misses")
            return None
        if meta.get("token") != key.token:
            # digest prefix collision or stale key scheme — not ours
            self._bump("misses")
            return None
        arrays: dict[str, np.ndarray] = {}
        arrays_path = os.path.join(obj_dir, _ARRAYS)
        if os.path.exists(arrays_path):
            with np.load(arrays_path) as payload:
                arrays = {name: payload[name] for name in payload.files}
        self._bump("hits")
        return Artifact(key=key, meta=meta, arrays=arrays, path=obj_dir)

    # -- write ----------------------------------------------------------

    def put(self, key, meta, arrays=None):
        staging = self._staging.get(key.digest)
        if staging is None:
            staging = self.stage_dir(key)
        if arrays:
            arrays = {k: np.asarray(v) for k, v in dict(arrays).items()}
            with open(os.path.join(staging, _ARRAYS), "wb") as fh:
                np.savez(fh, **arrays)
        return self.commit(key, meta)

    def stage_dir(self, key: ArtifactKey) -> str:
        """A *private* staging directory for one producer's payload.

        Every call hands out a fresh directory under ``root/tmp/``, so
        two workers building the same key never share scratch files
        (the stampede used to tear each other's index-build buckets);
        :meth:`commit` renames the whole staging directory into place
        atomically.
        """
        staging = self._new_staging_dir()
        self._staging[key.digest] = staging
        return staging

    def producer_flight(self, key: ArtifactKey) -> ProducerFlight:
        """Cross-process flight: a lease file next to the staging area.

        Any process sharing ``root`` participates, so N workers
        cold-starting on one key elect one producer and the rest poll
        :meth:`get` for its commit instead of all regenerating.
        Correctness never depends on it — a timed-out or inherited
        flight falls back to private production whose duplicate commit
        is the usual benign no-op.
        """
        return _DiskProducerFlight(self.root, key)

    def _committed_token_matches(self, obj_dir: str, key: ArtifactKey) -> bool:
        meta = self._read_counters(os.path.join(obj_dir, _META))
        return meta.get("token") == key.token

    def commit(self, key: ArtifactKey, meta: Mapping[str, object]) -> Artifact:
        """Atomically publish the staged payload under ``objects/``.

        Writes ``meta.json`` into the staging directory, then renames
        the directory into its content address — one atomic operation,
        so readers only ever see absent or complete objects.  When the
        destination already exists:

        - a matching token means another worker committed the same key
          first; identical keys produce identical payloads, so the
          duplicate commit is a benign no-op (the staging copy is
          discarded);
        - a mismatched/unreadable token is a stale object from an older
          key scheme occupying our address: it is swapped out (renamed
          aside, then deleted) and the new object swapped in.
        """
        staging = self._staging.pop(key.digest, None)
        if staging is None or not os.path.isdir(staging):
            staging = self._new_staging_dir()
        full_meta = dict(meta)
        full_meta["token"] = key.token
        with open(os.path.join(staging, _META), "w") as fh:
            json.dump(full_meta, fh)
        obj_dir = self._object_dir(key)
        os.makedirs(os.path.dirname(obj_dir), exist_ok=True)
        try:
            os.rename(staging, obj_dir)
        except OSError:
            if self._committed_token_matches(obj_dir, key):
                # concurrent winner with the same key: benign duplicate
                shutil.rmtree(staging, ignore_errors=True)
            else:
                # stale occupant (older key scheme / torn legacy write):
                # swap it aside, move ours in, then drop the old one.
                aside = self._new_staging_dir()
                try:
                    os.rename(obj_dir, os.path.join(aside, "old"))
                except OSError:
                    pass  # someone else already swapped it
                try:
                    os.rename(staging, obj_dir)
                except OSError:
                    if not self._committed_token_matches(obj_dir, key):
                        shutil.rmtree(aside, ignore_errors=True)
                        raise StoreError(
                            f"cannot commit artifact {key.digest[:16]}: "
                            f"{obj_dir} is occupied by an object that is "
                            "neither this key nor replaceable — remove it "
                            "or point REPRO_ARTIFACTS at a fresh directory"
                        )
                    shutil.rmtree(staging, ignore_errors=True)
                shutil.rmtree(aside, ignore_errors=True)
        self._bump("puts")
        return Artifact(key=key, meta=full_meta, arrays={}, path=obj_dir)


_MEMORY_SINGLETON: MemoryArtifactStore | None = None
_DISK_INSTANCES: dict[str, DiskArtifactStore] = {}


def resolve_artifact_store(spec) -> ArtifactStore | None:
    """Resolve an ``artifacts`` spec to a store instance (or None).

    - ``None`` / ``"off"`` → no caching.
    - ``"memory"`` → the shared process-global in-memory store.
    - a path string → a :class:`DiskArtifactStore` rooted there (one
      instance per resolved path, so stats accumulate coherently).
    - an :class:`ArtifactStore` instance → itself.
    """
    global _MEMORY_SINGLETON
    if spec is None or spec == "off":
        return None
    if isinstance(spec, ArtifactStore):
        return spec
    if spec == "memory":
        if _MEMORY_SINGLETON is None:
            _MEMORY_SINGLETON = MemoryArtifactStore()
        return _MEMORY_SINGLETON
    if isinstance(spec, (str, os.PathLike)):
        root = os.path.abspath(os.fspath(spec))
        store = _DISK_INSTANCES.get(root)
        if store is None:
            store = DiskArtifactStore(root)
            _DISK_INSTANCES[root] = store
        return store
    raise ConfigError(
        "artifacts must be None, 'off', 'memory', a directory path, or an "
        f"ArtifactStore instance, got {spec!r}"
    )
