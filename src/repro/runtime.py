"""Unified execution policy: the :class:`Runtime` config and its resolver.

Four PRs of scaling work left the reproduction with seven execution
knobs (``backend``, ``model``, ``workers``, ``executor``, ``store``,
``shard_dir``, ``max_resident_bytes``) copy-pasted across every entry
point, each re-resolving its environment overrides on its own.  This
module is the single execution surface that replaces that scatter:

:class:`Runtime`
    A frozen dataclass owning all execution policy — sampling backend,
    diffusion model(s), worker pool + executor, sample store + shard
    directory + memory budget, and the default RNG seed.  Every field
    defaults to ``None`` ("defer to the next layer"), values are
    validated at construction (:class:`~repro.exceptions.ConfigError`),
    and one ``Runtime`` object travels through a whole pipeline instead
    of seven kwargs through every call.

:func:`resolve_runtime`
    The one resolution order, applied the same way by every entry
    point::

        explicit kwarg  >  Runtime field  >  REPRO_* env  >  default

    Explicit per-call execution kwargs remain supported for backward
    compatibility but are deprecated: when an entry point passes its
    ``caller`` name, any non-``None`` legacy knob emits a
    :class:`DeprecationWarning` pointing at the ``runtime=`` spelling.

Environment overrides (``REPRO_BACKEND``, ``REPRO_WORKERS``,
``REPRO_EXECUTOR``, ``REPRO_STORE``) are parsed here, once, at import —
the *only* place in
the tree that reads them.  The sampling modules re-export the parsed
defaults (``repro.sampling.batch.DEFAULT_BACKEND`` and friends) as the
env layer of the resolution order, so CI matrices and tests keep their
existing override points.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, replace

from repro.exceptions import ConfigError

__all__ = [
    "BACKENDS",
    "DEFAULT_ARTIFACTS",
    "DEFAULT_BACKEND",
    "DEFAULT_DIST_LAUNCH",
    "DEFAULT_EXECUTOR",
    "DEFAULT_MODEL",
    "DEFAULT_SERVICE_WORKERS",
    "DEFAULT_SPOOL_DIR",
    "DEFAULT_STORE",
    "DEFAULT_WORKERS",
    "EXECUTORS",
    "MODELS",
    "STORES",
    "ResolvedRuntime",
    "Runtime",
    "as_runtime",
    "parse_env_artifacts",
    "parse_env_choice",
    "parse_env_nonnegative_int",
    "parse_env_positive_int",
    "parse_env_workers",
    "resolve_runtime",
]

# --------------------------------------------------------------------------
# Canonical knob vocabularies.  The sampling modules import these instead
# of defining their own, so one registry feeds validation everywhere.
# --------------------------------------------------------------------------

BACKENDS = ("python", "batch", "native")
MODELS = ("ic", "lt")
EXECUTORS = ("thread", "process", "spawned")
STORES = ("memory", "disk")

DEFAULT_MODEL = "ic"


def parse_env_choice(
    name: str, text: str | None, choices: tuple[str, ...]
) -> str | None:
    """Parse a choice-valued env knob; ``None``/empty means unset.

    Returns the validated choice, or ``None`` when the variable is
    unset (the empty string supports the ``REPRO_X= cmd``
    unset-for-one-command shell idiom).  Anything else raises
    :class:`ConfigError` naming the variable and its legal values.
    """
    if not text:
        return None
    if text not in choices:
        raise ConfigError(
            f"{name} must be one of {choices}, got {text!r}"
        )
    return text


def parse_env_workers(text: str | None):
    """Parse ``REPRO_WORKERS``: serial / auto / a positive pool size.

    Returns ``None`` (serial default), ``"auto"``, or a positive int.
    ``"serial"`` and ``"0"`` are explicit serial requests; anything
    unparsable raises :class:`ConfigError` up front, so a typo in the
    CI matrix fails at entry instead of inside pool construction.
    """
    if not text:
        return None
    if text in ("serial", "0"):
        return None
    if text == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        value = 0
    if value < 1:
        raise ConfigError(
            "REPRO_WORKERS must be 'auto', 'serial', or a positive "
            f"integer, got {text!r}"
        )
    return value


def parse_env_positive_int(name: str, text: str | None) -> int | None:
    """Parse a positive-integer env knob; ``None``/empty means unset."""
    if not text:
        return None
    try:
        value = int(text)
    except ValueError:
        value = 0
    if value < 1:
        raise ConfigError(
            f"{name} must be a positive integer, got {text!r}"
        )
    return value


def parse_env_nonnegative_int(name: str, text: str | None) -> int | None:
    """Parse a ``>= 0`` integer env knob; ``None``/empty means unset.

    Unlike :func:`parse_env_positive_int`, ``0`` is a legal explicit
    value — ``REPRO_DIST_LAUNCH=0`` means "launch no workers, rely on
    hand-started ones".
    """
    if not text:
        return None
    try:
        value = int(text)
    except ValueError:
        value = -1
    if value < 0:
        raise ConfigError(
            f"{name} must be an integer >= 0, got {text!r}"
        )
    return value


def parse_env_artifacts(text: str | None):
    """Parse ``REPRO_ARTIFACTS``: off / memory / an artifact directory.

    Returns ``None`` (caching off — the default), ``"memory"``, or the
    directory path for an on-disk :class:`~repro.artifacts.DiskArtifactStore`.
    """
    if not text or text == "off":
        return None
    return text


# The env layer of the resolution order — the ONLY place in the tree
# that reads the REPRO_* variables.  An invalid value raises ConfigError
# here, at import, naming the variable; unset/empty means "library
# default".  The sampling modules re-export these (their module globals
# are what the check_*/resolve_* helpers consult, keeping the historical
# monkeypatch points for tests and the CI matrices).
DEFAULT_BACKEND = (
    parse_env_choice("REPRO_BACKEND", os.environ.get("REPRO_BACKEND"), BACKENDS)
    or "batch"
)
DEFAULT_WORKERS = parse_env_workers(os.environ.get("REPRO_WORKERS"))
DEFAULT_EXECUTOR = (
    parse_env_choice(
        "REPRO_EXECUTOR", os.environ.get("REPRO_EXECUTOR"), EXECUTORS
    )
    or "thread"
)
# Distributed-sampling coordinator: how many worker processes to launch
# (None = the resolved ``workers`` width; 0 = launch none and rely on
# hand-started ``python -m repro.sampling.worker`` processes).
DEFAULT_DIST_LAUNCH = parse_env_nonnegative_int(
    "REPRO_DIST_LAUNCH", os.environ.get("REPRO_DIST_LAUNCH")
)
DEFAULT_STORE = (
    parse_env_choice("REPRO_STORE", os.environ.get("REPRO_STORE"), STORES)
    or "memory"
)
DEFAULT_ARTIFACTS = parse_env_artifacts(os.environ.get("REPRO_ARTIFACTS"))

# Influence-service knobs (repro.service): worker-pool width of a
# JobQueue and the job-spool directory.  Parsed here — the single
# REPRO_* site — and consumed by repro.service as its env layer.
DEFAULT_SERVICE_WORKERS = (
    parse_env_positive_int(
        "REPRO_SERVICE_WORKERS", os.environ.get("REPRO_SERVICE_WORKERS")
    )
    or 2
)
DEFAULT_SPOOL_DIR = os.environ.get("REPRO_SPOOL") or None


# --------------------------------------------------------------------------
# Field validators (construction-time; resolution happens later).
# --------------------------------------------------------------------------


def _check_choice(name: str, value, choices: tuple[str, ...]):
    if value is None:
        return None
    if value not in choices:
        raise ConfigError(f"{name} must be one of {choices}, got {value!r}")
    return value


def _check_model_field(model):
    """Validate the ``model`` field: a name, a per-piece sequence, or None."""
    if model is None or model in MODELS:
        return model
    if isinstance(model, str):
        raise ConfigError(f"model must be one of {MODELS}, got {model!r}")
    try:
        models = tuple(model)
    except TypeError:
        raise ConfigError(
            f"model must be one of {MODELS} or a sequence of them, "
            f"got {model!r}"
        ) from None
    for m in models:
        _check_choice("model", m, MODELS)
    return models


def _check_workers_field(workers):
    """Validate the ``workers`` field without resolving 'auto' or env."""
    if workers is None or workers in ("auto", "serial"):
        return workers
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigError(
            f"workers must be None, 'auto', 'serial', or an int, "
            f"got {workers!r}"
        )
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    return workers


def _check_store_field(store):
    if store is None or store in STORES:
        return store
    # A pre-constructed SampleStore instance is legal everywhere the
    # name is; imported lazily to keep this module a leaf.
    from repro.sampling.store import SampleStore

    if isinstance(store, SampleStore):
        return store
    raise ConfigError(
        f"store must be one of {STORES} or a SampleStore instance, "
        f"got {store!r}"
    )


def _check_artifacts_field(artifacts):
    """Validate the ``artifacts`` field: off/memory/path/instance/None."""
    if artifacts is None or artifacts in ("memory", "off"):
        return artifacts
    if isinstance(artifacts, (str, os.PathLike)):
        return os.fspath(artifacts)
    # A pre-constructed ArtifactStore instance; imported lazily to keep
    # this module a leaf.
    from repro.artifacts import ArtifactStore

    if isinstance(artifacts, ArtifactStore):
        return artifacts
    raise ConfigError(
        "artifacts must be None, 'off', 'memory', a directory path, or "
        f"an ArtifactStore instance, got {artifacts!r}"
    )


def _check_max_resident(value):
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ConfigError(
            f"max_resident_bytes must be a positive integer, got {value!r}"
        )
    return value


class _ShardDirKeying:
    """Shared helper: key the shard directory per generated collection.

    One runtime travels through a whole pipeline, but every generated
    collection needs its own shard directory (a reused directory with
    different dimensions fails the manifest check).  Every caller that
    generates several collections off one runtime — the session's
    opt/eval roles, the adaptive doubler's attempts, the harness's
    sweep cells — derives per-collection runtimes through this one
    helper instead of re-implementing the keying.
    """

    def with_shard_subdir(self, *parts):
        """A copy whose ``shard_dir`` gains a ``parts`` subdirectory.

        No-op when no shard directory is configured (private temp dirs
        are already per-collection).
        """
        if self.shard_dir is None:
            return self
        return self.replace(
            shard_dir=os.path.join(self.shard_dir, *map(str, parts))
        )


@dataclass(frozen=True)
class Runtime(_ShardDirKeying):
    """All execution policy for one pipeline, in one frozen object.

    Every field defaults to ``None``, meaning "defer to the next layer
    of the resolution order" (``REPRO_*`` env override, then the
    library default).  Invalid values fail at construction with
    :class:`ConfigError`, so a typo surfaces where the ``Runtime`` is
    built rather than deep inside pool or kernel setup.

    Fields
    ------
    backend:
        Sampling/cascade kernel engine — ``"batch"`` (vectorized,
        default), ``"python"`` (reference loops), or ``"native"``
        (Numba-compiled tier; falls back to ``"batch"`` with a
        one-time warning when Numba is not importable — see
        :mod:`repro.native`).
    model:
        Diffusion model(s): ``"ic"`` (default) / ``"lt"``, or a
        per-piece sequence for heterogeneous multiplex campaigns.
    workers:
        Parallel-runtime fan-out: ``"serial"``/``0`` pin the serial
        path, ``"auto"`` sizes the pool to the machine, a positive int
        fixes the pool size.  ``None`` defers to ``REPRO_WORKERS``
        (else serial) like every other field.
    executor:
        Pool flavour — ``"thread"`` (default), ``"process"``, or
        ``"spawned"``.  ``"spawned"`` is the distributed runtime: disk
        generations are filled by N *independent* worker processes
        cooperating through work-leases next to the shard directory
        (launched by the coordinator, or started by hand with
        ``python -m repro.sampling.worker`` on machines sharing the
        filesystem — see DISTRIBUTED.md); entry points without a
        shard-store rendezvous degrade to a process pool.  ``None``
        defers to ``REPRO_EXECUTOR`` (else ``"thread"``).
    store:
        Sample-store layer — ``"memory"`` (default), ``"disk"``, or a
        pre-constructed :class:`~repro.sampling.store.SampleStore`.
        Names build a fresh store per generated collection; an
        *instance* is single-use (one generation — a second one fails
        loudly with :class:`~repro.exceptions.StoreError` instead of
        serving stale arrays), so pipelines that generate several
        collections off one runtime should pass a name.
    shard_dir:
        Root directory for disk-store shards (``None`` = private temp).
    max_resident_bytes:
        Resident ceiling for disk-store managed caches.
    artifacts:
        Content-addressed artifact cache — ``"memory"`` (process-wide
        dict), a directory path (on-disk store, survives processes),
        a pre-constructed :class:`~repro.artifacts.ArtifactStore`, or
        ``"off"`` to force caching off even when ``REPRO_ARTIFACTS``
        is set.  ``None`` defers to ``REPRO_ARTIFACTS`` (else off).
    seed:
        Default RNG seed policy: used whenever an entry point is not
        given a per-call ``seed``.  Anything accepted by
        :func:`repro.utils.rng.as_generator`.
    """

    backend: str | None = None
    model: object = None
    workers: object = None
    executor: str | None = None
    store: object = None
    shard_dir: str | None = None
    max_resident_bytes: int | None = None
    artifacts: object = None
    seed: object = None

    def __post_init__(self) -> None:
        _check_choice("backend", self.backend, BACKENDS)
        object.__setattr__(self, "model", _check_model_field(self.model))
        _check_workers_field(self.workers)
        _check_choice("executor", self.executor, EXECUTORS)
        _check_store_field(self.store)
        _check_max_resident(self.max_resident_bytes)
        object.__setattr__(
            self, "artifacts", _check_artifacts_field(self.artifacts)
        )
        if self.shard_dir is not None:
            object.__setattr__(self, "shard_dir", os.fspath(self.shard_dir))

    def replace(self, **changes) -> "Runtime":
        """A copy with selected fields replaced (re-validated)."""
        return replace(self, **changes)

    def resolve(self, **explicit) -> "ResolvedRuntime":
        """Resolve this runtime (see :func:`resolve_runtime`)."""
        return resolve_runtime(self, **explicit)


@dataclass(frozen=True)
class ResolvedRuntime(_ShardDirKeying):
    """A :class:`Runtime` with every layer of the order applied.

    All fields are concrete: ``backend``/``executor`` are validated
    names, ``workers`` is the resolved pool width (``0`` = the serial
    legacy path), ``store`` is a validated name or a
    :class:`~repro.sampling.store.SampleStore` instance.  Re-resolving
    a ``ResolvedRuntime`` is idempotent — concrete fields never fall
    through to the env layer again — which lets an entry point resolve
    once and hand the result to its internal helpers.
    """

    backend: str
    model: object
    workers: int
    executor: str
    store: object
    shard_dir: str | None
    max_resident_bytes: int | None
    artifacts: object
    seed: object

    @property
    def pool_width(self) -> int | None:
        """Pool size for the parallel runtime (``None`` = serial path)."""
        return self.workers or None

    def replace(self, **changes) -> "ResolvedRuntime":
        return replace(self, **changes)

    def models_for(self, num_pieces: int) -> tuple[str, ...]:
        """One validated diffusion-model name per piece."""
        from repro.sampling.mrr import resolve_models

        return resolve_models(self.model, num_pieces)

    def single_model(self) -> str:
        """The one diffusion model of a single-graph entry point.

        Scalars (and one-element sequences) resolve as usual; a
        longer per-piece sequence cannot describe a single influence
        graph and fails at entry with :class:`ConfigError`.
        """
        model = self.model
        if model is not None and not isinstance(model, str):
            if len(model) != 1:
                raise ConfigError(
                    "this entry point runs on a single influence graph "
                    f"and takes one diffusion model, got {model!r}"
                )
            model = model[0]
        from repro.sampling.batch import check_model

        return check_model(model)

    def cache_key(self) -> str:
        """The cache-relevant slice of this runtime, as a stable string.

        Only knobs that can change *results* participate: ``backend``
        (kernel engine), ``model`` (diffusion semantics), and ``seed``
        (the draw).  ``workers``/``executor`` are excluded because the
        parallel runtime is bit-identical across pool sizes and pool
        flavours — ``"spawned"`` (the distributed topology) folds in
        with thread/process pools for the same reason: the
        worker-count-independent task decomposition pins identical
        outputs for every topology — and
        ``store``/``shard_dir``/``max_resident_bytes``
        because the memory and disk stores hold the same collection —
        so a sweep may vary any of those and still share artifacts.
        ``"native"`` keys as ``"batch"``: the compiled tier is
        bit-identical to the batch kernels by contract (same draw
        order, same float accumulation — see :mod:`repro.native`), so
        the two engines share sample artifacts; ``"python"`` stays a
        distinct key because its multi-root realisations legitimately
        differ.  A non-integer seed is an unreproducible draw and keys
        as such; callers gate cache *writes* on reproducibility
        separately.
        """
        backend = "batch" if self.backend == "native" else self.backend
        model = self.model if self.model is not None else DEFAULT_MODEL
        if not isinstance(model, str):
            model = ",".join(model)
        if isinstance(self.seed, int) and not isinstance(self.seed, bool):
            seed = str(self.seed)
        else:
            seed = "unreproducible"
        return f"backend={backend}:model={model}:seed={seed}"

    def artifact_store(self):
        """The resolved artifact store instance, or ``None`` (off)."""
        from repro.artifacts import resolve_artifact_store

        return resolve_artifact_store(self.artifacts)

    def store_for_generate(self):
        """The generate-time store: an instance, or ``None``.

        ``None`` means "plain in-RAM arrays via the historical code
        path"; a disk store (or any caller-provided store instance)
        means "stream shards through the store".  Matches the legacy
        per-call semantics bit-for-bit: a resolved *default* memory
        store maps back to the historical path, while an explicitly
        constructed :class:`MemoryStore` instance still streams.
        """
        from repro.sampling.store import SampleStore, resolve_store

        if isinstance(self.store, SampleStore):
            return self.store
        resolved = resolve_store(
            self.store,
            shard_dir=self.shard_dir,
            max_resident_bytes=self.max_resident_bytes,
        )
        return resolved if resolved.kind == "disk" else None


#: The all-defaults runtime every entry point falls back on.
_DEFAULT_RUNTIME = Runtime()

#: The seven legacy execution kwargs, in resolution order.
_LEGACY_KNOBS = (
    "backend",
    "model",
    "workers",
    "executor",
    "store",
    "shard_dir",
    "max_resident_bytes",
)


def as_runtime(runtime) -> Runtime:
    """Coerce ``None`` / :class:`Runtime` into a :class:`Runtime`."""
    if runtime is None:
        return _DEFAULT_RUNTIME
    if isinstance(runtime, (Runtime, ResolvedRuntime)):
        return runtime
    raise ConfigError(
        f"runtime must be a Runtime (or None), got {type(runtime).__name__}"
    )


def resolve_runtime(
    runtime=None,
    *,
    backend=None,
    model=None,
    workers=None,
    executor=None,
    store=None,
    shard_dir=None,
    max_resident_bytes=None,
    artifacts=None,
    seed=None,
    caller: str | None = None,
    stacklevel: int = 3,
) -> ResolvedRuntime:
    """Apply the centralized resolution order and validate every knob.

    ``runtime`` is a :class:`Runtime`, a :class:`ResolvedRuntime`
    (idempotent pass-through plus overrides), or ``None``.  Each
    explicit kwarg, when not ``None``, wins over the corresponding
    runtime field; unset knobs fall through to the ``REPRO_*`` env
    layer and finally the library default.  Every knob — including ones
    a given entry point never exercises — is validated here, raising
    :class:`ConfigError`, so a bad ``executor`` string fails at entry
    even on the serial path that would historically have ignored it.

    When ``caller`` is given, any non-``None`` legacy kwarg emits a
    :class:`DeprecationWarning` naming the new ``runtime=`` spelling;
    internal code always goes through ``runtime=`` and never warns.
    """
    base = as_runtime(runtime)
    if caller is not None:
        legacy = [
            name
            for name, value in zip(
                _LEGACY_KNOBS,
                (backend, model, workers, executor, store, shard_dir,
                 max_resident_bytes),
            )
            if value is not None
        ]
        if legacy:
            warnings.warn(
                f"{caller}: the per-call execution kwargs "
                f"({', '.join(legacy)}) are deprecated; pass "
                f"runtime=Runtime({', '.join(f'{k}=...' for k in legacy)}) "
                "instead",
                DeprecationWarning,
                stacklevel=stacklevel,
            )
    # Explicit kwarg > Runtime field; env > default is applied by the
    # check_*/resolve_* helpers of the owning modules (their module
    # globals re-export the env defaults parsed above).
    from repro.sampling.batch import check_backend
    from repro.sampling.parallel import check_executor, resolve_workers
    from repro.sampling.store import SampleStore, check_store

    backend = backend if backend is not None else base.backend
    model = model if model is not None else base.model
    workers = workers if workers is not None else base.workers
    executor = executor if executor is not None else base.executor
    store = store if store is not None else base.store
    shard_dir = shard_dir if shard_dir is not None else base.shard_dir
    if max_resident_bytes is None:
        max_resident_bytes = base.max_resident_bytes
    if artifacts is None:
        artifacts = getattr(base, "artifacts", None)
    if artifacts is None:
        # Module global, read at call time so tests can monkeypatch the
        # env layer off without touching os.environ.
        artifacts = DEFAULT_ARTIFACTS
    # NB: an explicit "off" stays "off" in the resolved field (it only
    # becomes None inside artifact_store()) — normalising it here would
    # let the REPRO_ARTIFACTS default leak back in when a resolved
    # runtime is re-resolved downstream.
    artifacts = _check_artifacts_field(artifacts)
    if not isinstance(store, SampleStore):
        store = check_store(_check_store_field(store))
    return ResolvedRuntime(
        backend=check_backend(backend),
        model=_check_model_field(model),
        workers=resolve_workers(workers) or 0,
        executor=check_executor(executor),
        store=store,
        shard_dir=None if shard_dir is None else os.fspath(shard_dir),
        max_resident_bytes=_check_max_resident(max_resident_bytes),
        artifacts=artifacts,
        seed=seed if seed is not None else base.seed,
    )
