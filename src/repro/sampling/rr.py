"""Random reverse-reachable (RR) set sampling.

An RR set for root ``x`` under a homogeneous influence graph (Sec. V-A,
following Borgs et al. [7] and Tang et al. [33], [32]) is the set of
vertices that reach ``x`` in a graph sampled by keeping each edge ``e``
independently with probability ``p(e)``.  The standard equivalence: a
vertex ``u`` lands in the RR set of ``x`` with exactly the probability
that a cascade seeded at ``u`` activates ``x`` — which is what makes
``n/theta * sum_i I[R_i ∩ S ≠ ∅]`` an unbiased spread estimator.

The sampler performs a lazy reverse BFS: edges are coin-flipped only when
the traversal first considers them, which is distributionally identical
to sampling the whole graph up front (each edge is examined at most once
per trial because the BFS visits each vertex at most once).

Performance notes: a stamp array replaces per-trial ``visited``
re-allocation, and the BFS queue is a preallocated vertex buffer —
sampling is the hot loop of the whole reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.projection import PieceGraph
from repro.exceptions import SamplingError

__all__ = ["ReverseReachableSampler"]


class ReverseReachableSampler:
    """Reusable RR-set sampler bound to one projected piece graph."""

    __slots__ = ("_graph", "_mark", "_stamp", "_queue")

    def __init__(self, piece_graph: PieceGraph) -> None:
        self._graph = piece_graph
        self._mark = np.zeros(piece_graph.n, dtype=np.int64)
        self._stamp = 0
        self._queue = np.empty(max(piece_graph.n, 1), dtype=np.int64)

    @property
    def graph(self) -> PieceGraph:
        """The projected influence graph this sampler draws from."""
        return self._graph

    def sample(self, root: int, rng) -> np.ndarray:
        """Draw one random RR set for ``root``.

        Returns the member vertices as an array; the root is always
        included (a seed containing the root trivially activates it).
        """
        n = self._graph.n
        if not (0 <= root < n):
            raise SamplingError(f"root {root} outside [0, {n})")
        self._stamp += 1
        stamp = self._stamp
        mark, queue = self._mark, self._queue
        in_ptr = self._graph.in_ptr
        in_src = self._graph.in_src
        in_prob = self._graph.in_prob
        mark[root] = stamp
        queue[0] = root
        head, tail = 0, 1
        while head < tail:
            x = queue[head]
            head += 1
            lo, hi = in_ptr[x], in_ptr[x + 1]
            if lo == hi:
                continue
            draws = rng.random(hi - lo)
            hits = np.flatnonzero(draws < in_prob[lo:hi])
            for k in hits:
                u = in_src[lo + k]
                if mark[u] != stamp:
                    mark[u] = stamp
                    queue[tail] = u
                    tail += 1
        return queue[:tail].copy()

    def sample_many(self, roots: np.ndarray, rng) -> tuple[np.ndarray, np.ndarray]:
        """Draw RR sets for every root; return them CSR-flattened.

        Returns ``(ptr, nodes)`` with ``ptr`` of length ``len(roots)+1``;
        the ``i``-th RR set is ``nodes[ptr[i]:ptr[i+1]]``.
        """
        ptr = np.zeros(len(roots) + 1, dtype=np.int64)
        chunks: list[np.ndarray] = []
        for i, root in enumerate(roots):
            rr = self.sample(int(root), rng)
            chunks.append(rr)
            ptr[i + 1] = ptr[i] + rr.size
        nodes = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
        )
        return ptr, nodes
