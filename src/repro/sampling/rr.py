"""Random reverse-reachable (RR) set sampling.

An RR set for root ``x`` under a homogeneous influence graph (Sec. V-A,
following Borgs et al. [7] and Tang et al. [33], [32]) is the set of
vertices that reach ``x`` in a graph sampled by keeping each edge ``e``
independently with probability ``p(e)``.  The standard equivalence: a
vertex ``u`` lands in the RR set of ``x`` with exactly the probability
that a cascade seeded at ``u`` activates ``x`` — which is what makes
``n/theta * sum_i I[R_i ∩ S ≠ ∅]`` an unbiased spread estimator.

Three backends implement the sampling (sampling is the hot loop of the
whole reproduction):

``"batch"`` (default)
    The frontier-at-a-time NumPy engine of
    :class:`repro.sampling.batch.BatchRRSampler` — whole blocks of
    roots expanded per kernel pass.
``"native"``
    The compiled tier
    (:class:`repro.sampling.batch.NativeRRSampler`): same block driver
    and draw stream as ``"batch"``, with each level's expansion fused
    into one Numba-compiled loop.  Bit-identical to ``"batch"``; falls
    back to it (with one warning) when Numba is not importable.
``"python"``
    The reference lazy reverse BFS: edges are coin-flipped only when
    the traversal first considers them, which is distributionally
    identical to sampling the whole graph up front (each edge is
    examined at most once per trial because the BFS visits each vertex
    at most once).  A stamp array replaces per-trial ``visited``
    re-allocation, and the BFS queue is a preallocated vertex buffer.

Both backends flip the same coins and agree in distribution; the batch
backend interleaves the draws of the roots sharing a block, so
realisations for a fixed seed differ (except at ``block_size=1``, where
they are bit-for-bit identical — see :mod:`repro.sampling.batch`).
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.projection import PieceGraph
from repro.exceptions import SamplingError
from repro.sampling.batch import (
    BatchRRSampler,
    NativeRRSampler,
    check_backend,
)
from repro.utils.frontier import Int64Buffer

__all__ = ["ReverseReachableSampler"]


class ReverseReachableSampler:
    """Reusable RR-set sampler bound to one projected piece graph."""

    __slots__ = ("_graph", "_mark", "_stamp", "_queue", "_backend", "_batch")

    def __init__(
        self, piece_graph: PieceGraph, *, backend: str | None = None
    ) -> None:
        self._graph = piece_graph
        self._backend = check_backend(backend)
        # Engine cache keyed by engine class: per-call backend overrides
        # can alternate batch/native without rebuilding scratch arrays.
        self._batch: dict[type, BatchRRSampler] = {}
        # Scalar-path scratch is allocated on first use: a batch-backend
        # sampler that only ever calls sample_many never pays the
        # 16n-byte mark/queue arrays on top of the engine's own stamps.
        self._mark: np.ndarray | None = None
        self._stamp = 0
        self._queue: np.ndarray | None = None

    @property
    def graph(self) -> PieceGraph:
        """The projected influence graph this sampler draws from."""
        return self._graph

    @property
    def backend(self) -> str:
        """Which sampling engine ``sample_many`` routes through."""
        return self._backend

    def _batch_engine(self, backend: str) -> BatchRRSampler:
        cls = NativeRRSampler if backend == "native" else BatchRRSampler
        engine = self._batch.get(cls)
        if engine is None:
            engine = self._batch[cls] = cls(self._graph)
        return engine

    def sample(self, root: int, rng) -> np.ndarray:
        """Draw one random RR set for ``root``.

        Returns the member vertices as an array; the root is always
        included (a seed containing the root trivially activates it).
        Single roots always use the reference BFS — a one-root block
        consumes the rng stream identically, so the two backends cannot
        diverge here, and the scalar loop is faster for one root.
        """
        n = self._graph.n
        if not (0 <= root < n):
            raise SamplingError(f"root {root} outside [0, {n})")
        if self._mark is None:
            self._mark = np.zeros(n, dtype=np.int64)
            self._queue = np.empty(max(n, 1), dtype=np.int64)
        self._stamp += 1
        stamp = self._stamp
        mark, queue = self._mark, self._queue
        in_ptr = self._graph.in_ptr
        in_src = self._graph.in_src
        in_prob = self._graph.in_prob
        mark[root] = stamp
        queue[0] = root
        head, tail = 0, 1
        while head < tail:
            x = queue[head]
            head += 1
            lo, hi = in_ptr[x], in_ptr[x + 1]
            if lo == hi:
                continue
            draws = rng.random(hi - lo)
            hits = np.flatnonzero(draws < in_prob[lo:hi])
            for k in hits:
                u = in_src[lo + k]
                if mark[u] != stamp:
                    mark[u] = stamp
                    queue[tail] = u
                    tail += 1
        return queue[:tail].copy()

    def sample_many(
        self, roots: np.ndarray, rng, *, backend: str | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw RR sets for every root; return them CSR-flattened.

        Returns ``(ptr, nodes)`` with ``ptr`` of length ``len(roots)+1``;
        the ``i``-th RR set is ``nodes[ptr[i]:ptr[i+1]]``.  ``backend``
        overrides the sampler's configured engine for this call.
        """
        backend = self._backend if backend is None else check_backend(backend)
        roots = np.asarray(roots, dtype=np.int64)
        if backend != "python":
            return self._batch_engine(backend).sample_many(roots, rng)
        ptr = np.zeros(len(roots) + 1, dtype=np.int64)
        nodes = Int64Buffer(2 * len(roots) + 16)
        for i, root in enumerate(roots):
            rr = self.sample(int(root), rng)
            nodes.extend(rr)
            ptr[i + 1] = ptr[i] + rr.size
        return ptr, nodes.to_array()
