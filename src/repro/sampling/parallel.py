"""Parallel per-piece sampling runtime.

MRR generation is embarrassingly parallel twice over: each piece's RR
sets are independent given the shared roots, and within a piece every
block of roots is independent too.  This module turns that structure
into an explicit task decomposition — one task per (piece, root block)
— executed on a thread or process pool, with three contracts that make
the parallelism invisible to everything downstream:

* **Deterministic streams.**  Each task draws from its own child
  generator, spawned from one parent draw via
  ``numpy.random.SeedSequence.spawn``.  The task list and the seed
  assignment depend only on (theta, pieces, seed) — never on the worker
  count — so ``workers=1`` and ``workers=8`` produce bit-identical
  collections.
* **Deterministic merge.**  Results are committed in task order
  regardless of completion order.
* **Clean failure.**  A worker exception cancels the remaining tasks,
  shuts the pool down, and re-raises — no orphaned threads or hung
  futures.

``workers=None`` (the default everywhere) keeps the historical serial
path byte-for-byte: one generator threads through all pieces
sequentially, so existing pinned results are untouched.  The
``REPRO_WORKERS`` environment variable overrides that default
(``"auto"``, an integer, or ``"serial"``) so CI can run the whole suite
under the parallel runtime; per-call ``workers=0`` forces the serial
path even then.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.exceptions import ConfigError, ParameterError, SamplingError
from repro.runtime import DEFAULT_EXECUTOR, DEFAULT_WORKERS, EXECUTORS

__all__ = [
    "DEFAULT_EXECUTOR",
    "EXECUTORS",
    "make_pool",
    "parallel_map",
    "resolve_workers",
    "round_chunks",
    "sample_piece_blocks",
    "spawn_task_seeds",
    "stream_piece_blocks",
    "task_block_size",
]

# EXECUTORS / DEFAULT_EXECUTOR and the REPRO_WORKERS-aware
# DEFAULT_WORKERS are owned by repro.runtime (the single env-resolution
# site) and re-exported here; this module's globals are the layer
# resolve_workers / check_executor consult, keeping the historical
# monkeypatch points.

#: Root blocks per piece aim for this many tasks so pools stay busy
#: without drowning in per-task overhead; blocks never shrink below
#: ``_MIN_TASK_BLOCK`` roots.  Both constants are worker-independent on
#: purpose: the task decomposition (and with it every child rng stream)
#: must not change when the pool size does.
_TARGET_BLOCKS = 32
_MIN_TASK_BLOCK = 256

#: Rounds per Monte-Carlo task (same worker-independence argument).
_ROUND_CHUNK = 8


def resolve_workers(workers) -> int | None:
    """Normalise a ``workers`` knob into a pool size.

    Returns ``None`` for the serial legacy path (the default when
    neither the argument nor ``REPRO_WORKERS`` asks for a pool), or a
    positive integer pool size.  ``"auto"`` sizes the pool to the
    machine; ``0`` / ``"serial"`` force the serial path regardless of
    the environment default.
    """
    if workers is None:
        workers = DEFAULT_WORKERS
    if workers is None:
        return None
    if workers == "serial":
        return None
    if workers == "auto":
        return os.cpu_count() or 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigError(
            f"workers must be None, 'auto', 'serial', or an int, "
            f"got {workers!r}"
        )
    if workers == 0:
        return None
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    return workers


def check_executor(executor: str | None) -> str:
    """Normalise an executor choice; ``None`` means the default."""
    if executor is None:
        return DEFAULT_EXECUTOR
    if executor not in EXECUTORS:
        raise ConfigError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    return executor


def task_block_size(theta: int) -> int:
    """Roots per (piece, block) task — a function of theta alone.

    Never of the worker count: the decomposition pins the child rng
    streams, so it must be identical for every pool size.
    """
    if theta <= 0:
        raise ParameterError(f"theta must be positive, got {theta}")
    return max(_MIN_TASK_BLOCK, -(-theta // _TARGET_BLOCKS))


def round_chunks(rounds: int) -> list[tuple[int, int]]:
    """Split ``rounds`` Monte-Carlo trials into fixed-size task ranges."""
    if rounds <= 0:
        raise ParameterError(f"rounds must be positive, got {rounds}")
    return [
        (start, min(start + _ROUND_CHUNK, rounds))
        for start in range(0, rounds, _ROUND_CHUNK)
    ]


def spawn_task_seeds(rng, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent child seeds keyed by one parent draw.

    One integer is drawn from ``rng`` (keeping the caller's stream the
    single source of entropy), then ``SeedSequence.spawn`` derives
    non-overlapping children — the per-task streams of the runtime.
    """
    if count < 0:
        raise ParameterError(f"count must be >= 0, got {count}")
    root = np.random.SeedSequence(int(rng.integers(0, 2**63 - 1)))
    return root.spawn(count)


def make_pool(workers, *, executor: str | None = None):
    """A pool sized for ``workers``, or ``None`` when inline is right.

    For callers that issue many ``parallel_map`` rounds (e.g. one per
    CELF marginal-spread evaluation): build the pool once, pass it via
    ``parallel_map(..., pool=...)``, and shut it down in a ``finally``
    — instead of paying pool construction per round.

    ``executor="spawned"`` — the distributed topology — builds a
    process pool here: only disk-store *generation* has the shard-dir
    rendezvous the independent-worker runtime needs
    (:mod:`repro.sampling.dist`); every other fan-out degrades to the
    equivalent (bit-identical) process pool.
    """
    width = resolve_workers(workers)
    if width is None or width <= 1:
        return None
    pool_cls = (
        ThreadPoolExecutor
        if check_executor(executor) == "thread"
        else ProcessPoolExecutor
    )
    return pool_cls(max_workers=width)


def parallel_map(
    fn, items, workers: int, *, executor: str | None = None, pool=None
):
    """Apply ``fn`` over ``items`` on a pool; results in item order.

    ``workers <= 1`` (or a single item) runs inline — same results, no
    pool.  On a worker exception the remaining futures are cancelled
    and the exception re-raised, so a failing task can never leave the
    pool hanging; a pool constructed here is also shut down.  Passing a
    pre-built ``pool`` (see :func:`make_pool`) reuses it across calls —
    ownership, and shutdown, stay with the caller.
    """
    items = list(items)
    executor = check_executor(executor)
    if pool is not None:
        return _drain(pool, fn, items)
    width = min(int(workers), len(items))
    if width <= 1:
        return [fn(item) for item in items]
    with make_pool(width, executor=executor) as owned:
        return _drain(owned, fn, items)


def _drain(pool, fn, items):
    """Submit ``items`` and collect results in order, cancel-on-error."""
    futures = [pool.submit(fn, item) for item in items]
    try:
        return [future.result() for future in futures]
    except BaseException:
        for future in futures:
            future.cancel()
        raise


#: Per-thread sampler reuse across tasks: a sampler's stamp scratch can
#: reach tens of MB under the adaptive block heuristic, so rebuilding it
#: per (piece, block) task would re-zero that scratch ~32 times per
#: piece.  Each worker thread keeps one sampler per (model, backend)
#: and reuses it whenever the next task targets the *same* piece-graph
#: object — with piece-major task submission a thread sees runs of
#: same-piece tasks, so most rebuilds vanish.  Process workers unpickle
#: a fresh graph per task and therefore always rebuild, but the
#: one-entry-per-kind cache keeps at most one stale sampler pinned.
_task_local = threading.local()


def _cached_sampler(piece_graph, model: str, backend):
    from repro.diffusion.threshold import LinearThresholdSampler
    from repro.sampling.rr import ReverseReachableSampler

    cache = getattr(_task_local, "samplers", None)
    if cache is None:
        cache = _task_local.samplers = {}
    key = (model, backend)
    sampler = cache.get(key)
    if sampler is None or sampler.graph is not piece_graph:
        if model == "lt":
            sampler = LinearThresholdSampler(piece_graph, backend=backend)
        else:
            sampler = ReverseReachableSampler(piece_graph, backend=backend)
        cache[key] = sampler
    return sampler


def _sample_task(args):
    """One (piece, root block) unit: sample with the task's own stream.

    Module-level (not a closure) so the process executor can pickle it;
    imports are deferred to dodge the sampling <-> diffusion cycle.

    With a 6th element — a shared-memory slot spec from
    :class:`repro.sampling.shm.SharedSlabPool` — the CSR pair is
    written into the slot and only a token crosses the result queue;
    the tagged ``("arr", ptr, nodes)`` form is the per-task fallback
    when the block does not fit (or shm is unavailable in the worker).
    """
    piece_graph, model, backend, roots, seed = args[:5]
    from repro.utils.rng import as_generator

    sampler = _cached_sampler(piece_graph, model, backend)
    ptr, nodes = sampler.sample_many(roots, as_generator(seed))
    if len(args) > 5:
        from repro.sampling.shm import write_block

        token = write_block(args[5], ptr, nodes)
        if token is not None:
            return token
        return ("arr", ptr, nodes)
    return ptr, nodes


def stream_piece_blocks(
    piece_graphs,
    models,
    roots: np.ndarray,
    rng,
    *,
    backend: str | None,
    workers: int,
    executor: str | None = None,
    skip=None,
    pool=None,
):
    """Yield every (piece, root block) result in task order, as sampled.

    The streaming face of the runtime — and the out-of-core writer's
    contract: tuples ``(piece, block_index, ptr, nodes)`` are yielded
    the moment the head-of-line task finishes, with a bounded in-flight
    window (2x ``workers``) so only O(workers) block results ever sit
    in RAM, however large theta is.  The task list, block sizes, and
    child rng streams are identical to :func:`sample_piece_blocks`
    (piece-major, one spawned seed per task), so collecting this stream
    reproduces it bit-for-bit.

    ``skip`` is an optional ``(piece, block_index) -> bool`` predicate:
    skipped tasks are neither sampled nor yielded, but still consume
    their spawned seed — which is what lets a resumed shard store rerun
    only its missing blocks and land on the same collection.

    ``pool`` lends a pre-built executor (see :func:`make_pool`) — the
    warm-pool path: pending futures are still cancelled on exit, but
    shutdown stays with the caller.  On a process pool, block results
    travel through a :class:`repro.sampling.shm.SharedSlabPool` sized
    to the in-flight window instead of being pickled, with a per-task
    pickled fallback (see :mod:`repro.sampling.shm`) — the transport
    never changes the bytes, only how they cross the process boundary.
    """
    if len(piece_graphs) != len(models):
        raise SamplingError(
            f"{len(models)} models for {len(piece_graphs)} piece graphs"
        )
    theta = int(roots.size)
    block = task_block_size(theta)
    starts = list(range(0, theta, block))
    todo = []
    task_index = 0
    seeds_needed = len(piece_graphs) * len(starts)
    seeds = spawn_task_seeds(rng, seeds_needed)
    for j, (piece_graph, model) in enumerate(zip(piece_graphs, models)):
        for b, start in enumerate(starts):
            seed = seeds[task_index]
            task_index += 1
            if skip is not None and skip(j, b):
                continue
            todo.append(
                (
                    (j, b),
                    (
                        piece_graph,
                        model,
                        backend,
                        roots[start : start + block],
                        seed,
                    ),
                )
            )
    width = min(int(workers), len(todo))
    if width <= 1:
        for (j, b), args in todo:
            ptr, nodes = _sample_task(args)
            yield j, b, ptr, nodes
        return
    owned = pool is None
    if owned:
        pool = make_pool(width, executor=executor)
    slab_pool = None
    if isinstance(pool, ProcessPoolExecutor):
        from repro.sampling import shm as _shm

        slab_pool = _shm.SharedSlabPool.create(
            2 * width, _shm.slab_slot_bytes(block)
        )
    pending: deque = deque()
    iterator = iter(todo)
    submit_index = 0
    try:
        while True:
            while len(pending) < 2 * width:
                item = next(iterator, None)
                if item is None:
                    break
                coords, args = item
                if slab_pool is not None:
                    args = args + (slab_pool.slot_spec(submit_index),)
                submit_index += 1
                pending.append((coords, pool.submit(_sample_task, args)))
            if not pending:
                break
            (j, b), future = pending.popleft()
            result = future.result()
            if slab_pool is not None:
                if result[0] == "shm":
                    ptr, nodes = slab_pool.read(result)
                else:  # ("arr", ptr, nodes) — the pickled fallback
                    _, ptr, nodes = result
            else:
                ptr, nodes = result
            yield j, b, ptr, nodes
    finally:
        for _, future in pending:
            future.cancel()
        if owned:
            pool.shutdown(wait=True, cancel_futures=True)
        if slab_pool is not None:
            slab_pool.close()


def sample_piece_blocks(
    piece_graphs,
    models,
    roots: np.ndarray,
    rng,
    *,
    backend: str | None,
    workers: int,
    executor: str | None = None,
    pool=None,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Draw every piece's RR sets for ``roots``, fanned out per block.

    The task list is piece-major — piece 0's blocks, then piece 1's —
    and each task owns a spawned child stream; per-piece CSR arrays are
    reassembled by concatenating block results in task order.  Output
    is a list of ``(ptr, nodes)`` pairs aligned with ``piece_graphs``,
    identical for every ``workers`` value.  (This is
    :func:`stream_piece_blocks`, collected — the in-RAM consumer;
    ``pool`` lends a caller-owned executor exactly as there.)
    """
    theta = int(roots.size)
    collected: list[list[tuple[np.ndarray, np.ndarray]]] = [
        [] for _ in piece_graphs
    ]
    for j, _b, ptr, nodes in stream_piece_blocks(
        piece_graphs,
        models,
        roots,
        rng,
        backend=backend,
        workers=workers,
        executor=executor,
        pool=pool,
    ):
        collected[j].append((ptr, nodes))
    merged: list[tuple[np.ndarray, np.ndarray]] = []
    for chunk in collected:
        sizes = np.concatenate([np.diff(ptr) for ptr, _ in chunk])
        ptr = np.zeros(theta + 1, dtype=np.int64)
        np.cumsum(sizes, out=ptr[1:])
        nodes = np.concatenate([nodes for _, nodes in chunk])
        merged.append((ptr, nodes))
    return merged
