"""Multi-Reverse-Reachable (MRR) collections — the paper's Sec. V-A.

The MRR method extends RR sampling to multifaceted campaigns: ``theta``
root users are drawn uniformly, and for each root one RR set is generated
*per piece*, under that piece's projected influence graph.  With
``I_i^{S_j} = I[R_i^j ∩ S_j ≠ ∅]``, the adoption utility of a plan
``S-bar`` is estimated (Eq. 6 + Eq. 1's zero branch, Lemma 2) as

    sigma(S-bar) ≈ (n / theta) * sum_i g(sum_j I_i^{S_j})

where ``g`` is the logistic adoption probability (zero when no piece
covers the sample).

Besides the raw sets, the collection maintains one inverted index per
piece (vertex -> sample ids whose RR set contains the vertex).  Every
solver in :mod:`repro.core` and every RIS baseline drives its coverage
bookkeeping through these indexes.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.diffusion.adoption import AdoptionModel
from repro.diffusion.projection import PieceGraph, project_campaign
from repro.diffusion.threshold import LinearThresholdSampler
from repro.exceptions import SamplingError
from repro.graph.digraph import TopicGraph
from repro.sampling.batch import check_model
from repro.sampling.rr import ReverseReachableSampler
from repro.topics.distributions import Campaign
from repro.utils.frontier import frontier_edge_slots
from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_index_array,
    check_piece_graphs_aligned,
    check_positive_int,
)

__all__ = ["MRRCollection", "resolve_models"]


def resolve_models(model, num_pieces: int) -> tuple[str, ...]:
    """Normalise a diffusion-model choice into one name per piece.

    ``model`` may be ``None`` (the default model for every piece), a
    single name applied to every piece, or a sequence of per-piece
    names — the heterogeneous mixed-model workload of multiplex IM.
    """
    if model is None or isinstance(model, str):
        return (check_model(model),) * num_pieces
    models = tuple(check_model(m) for m in model)
    if len(models) != num_pieces:
        raise SamplingError(
            f"{len(models)} diffusion models for {num_pieces} pieces"
        )
    return models


class MRRCollection:
    """``theta`` MRR samples: per-piece RR sets sharing common roots."""

    __slots__ = (
        "n",
        "theta",
        "num_pieces",
        "roots",
        "_rr_ptr",
        "_rr_nodes",
        "_idx_ptr",
        "_idx_samples",
    )

    def __init__(
        self,
        n: int,
        roots: np.ndarray,
        rr_ptr: Sequence[np.ndarray],
        rr_nodes: Sequence[np.ndarray],
    ) -> None:
        self.n = int(n)
        self.roots = np.asarray(roots, dtype=np.int64)
        self.theta = int(self.roots.size)
        if not rr_ptr or len(rr_ptr) != len(rr_nodes):
            raise SamplingError("need one (ptr, nodes) pair per piece")
        self.num_pieces = len(rr_ptr)
        for j in range(self.num_pieces):
            if rr_ptr[j].shape != (self.theta + 1,):
                raise SamplingError(
                    f"piece {j}: ptr length {rr_ptr[j].shape} != theta+1"
                )
        self._rr_ptr = [np.asarray(p, dtype=np.int64) for p in rr_ptr]
        self._rr_nodes = [np.asarray(x, dtype=np.int64) for x in rr_nodes]
        self._idx_ptr: list[np.ndarray] = []
        self._idx_samples: list[np.ndarray] = []
        self._build_indexes()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def generate(
        cls,
        graph: TopicGraph,
        campaign: Campaign,
        theta: int,
        *,
        seed=None,
        piece_graphs: Sequence[PieceGraph] | None = None,
        backend: str | None = None,
        model=None,
        workers=None,
        executor: str | None = None,
    ) -> "MRRCollection":
        """Generate ``theta`` MRR samples for ``campaign`` on ``graph``.

        Mirrors Sec. V-A: roots are uniform over ``V``; for each root one
        RR set per piece under the piece's projection.  Pass pre-computed
        ``piece_graphs`` to skip re-projection (the experiment harness
        reuses projections between the optimisation and evaluation
        collections).  ``backend`` selects the RR sampling engine
        (``"batch"``/``"python"``, default batch — see
        :mod:`repro.sampling.batch`).  ``model`` selects the diffusion
        model (``"ic"``/``"lt"``, default IC) — either one name for every
        piece or a per-piece sequence (heterogeneous multiplex
        campaigns).  LT pieces should be weight-normalised first
        (:func:`repro.diffusion.threshold.normalize_lt_weights`).

        ``workers`` selects the sampling runtime: ``None`` (default)
        keeps the historical serial stream; ``"auto"`` or an integer
        fans the (piece, root block) tasks out on a pool with spawned
        per-task child streams (:mod:`repro.sampling.parallel`) —
        collections are bit-identical for every worker count, and
        ``executor`` picks ``"thread"`` (default) or ``"process"``
        pools.
        """
        from repro.sampling.parallel import (
            resolve_workers,
            sample_piece_blocks,
        )

        theta = check_positive_int("theta", theta)
        if graph.n == 0:
            raise SamplingError("cannot sample from an empty graph")
        rng = as_generator(seed)
        if piece_graphs is None:
            piece_graphs = project_campaign(graph, campaign)
        elif len(piece_graphs) != campaign.num_pieces:
            raise SamplingError(
                f"{len(piece_graphs)} piece graphs for "
                f"{campaign.num_pieces} pieces"
            )
        check_piece_graphs_aligned(
            piece_graphs,
            graph.n,
            reference="the campaign graph",
            exc=SamplingError,
        )
        models = resolve_models(model, campaign.num_pieces)
        roots = rng.integers(0, graph.n, size=theta)
        pool_width = resolve_workers(workers)
        if pool_width is not None:
            pairs = sample_piece_blocks(
                list(piece_graphs),
                models,
                roots,
                rng,
                backend=backend,
                workers=pool_width,
                executor=executor,
            )
            rr_ptr = [ptr for ptr, _ in pairs]
            rr_nodes = [nodes for _, nodes in pairs]
            return cls(graph.n, roots, rr_ptr, rr_nodes)
        rr_ptr: list[np.ndarray] = []
        rr_nodes: list[np.ndarray] = []
        for pg, piece_model in zip(piece_graphs, models):
            if piece_model == "lt":
                sampler = LinearThresholdSampler(pg, backend=backend)
            else:
                sampler = ReverseReachableSampler(pg, backend=backend)
            ptr, nodes = sampler.sample_many(roots, rng)
            rr_ptr.append(ptr)
            rr_nodes.append(nodes)
        return cls(graph.n, roots, rr_ptr, rr_nodes)

    def _build_indexes(self) -> None:
        """Inverted index per piece: vertex -> sorted sample ids."""
        for j in range(self.num_pieces):
            ptr, nodes = self._rr_ptr[j], self._rr_nodes[j]
            sample_of_slot = np.repeat(
                np.arange(self.theta, dtype=np.int64), np.diff(ptr)
            )
            order = np.argsort(nodes, kind="stable")
            sorted_nodes = nodes[order]
            idx_samples = sample_of_slot[order]
            idx_ptr = np.zeros(self.n + 1, dtype=np.int64)
            if sorted_nodes.size:
                counts = np.bincount(sorted_nodes, minlength=self.n)
                np.cumsum(counts, out=idx_ptr[1:])
            self._idx_ptr.append(idx_ptr)
            self._idx_samples.append(idx_samples)

    # ------------------------------------------------------------------
    # raw access
    # ------------------------------------------------------------------

    def rr_set(self, piece: int, sample: int) -> np.ndarray:
        """The RR set of ``sample`` (0-based) for ``piece``."""
        self._check_piece(piece)
        if not (0 <= sample < self.theta):
            raise SamplingError(f"sample {sample} outside [0, {self.theta})")
        ptr = self._rr_ptr[piece]
        return self._rr_nodes[piece][ptr[sample] : ptr[sample + 1]]

    def samples_containing(self, piece: int, vertex: int) -> np.ndarray:
        """Sample ids whose RR set for ``piece`` contains ``vertex``.

        This is the inverted-index lookup at the heart of every marginal
        gain computation.
        """
        self._check_piece(piece)
        if not (0 <= vertex < self.n):
            raise SamplingError(f"vertex {vertex} outside [0, {self.n})")
        ptr = self._idx_ptr[piece]
        return self._idx_samples[piece][ptr[vertex] : ptr[vertex + 1]]

    def index_arrays(self, piece: int) -> tuple[np.ndarray, np.ndarray]:
        """One piece's raw CSR inverted index ``(idx_ptr, idx_samples)``.

        ``idx_samples[idx_ptr[v]:idx_ptr[v+1]]`` are the sample ids whose
        RR set contains ``v`` — the flat arrays the vectorized coverage
        kernels (:mod:`repro.core.coverage`) gather over.  Callers must
        treat both arrays as read-only.
        """
        self._check_piece(piece)
        return self._idx_ptr[piece], self._idx_samples[piece]

    def gather_index_slabs(
        self,
        piece: int,
        vertices,
        *,
        exc: type[Exception] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate and gather many vertices' inverted-index slabs.

        The shared prologue of every batch coverage kernel: range-checks
        ``piece`` and ``vertices`` (raising ``exc``, default
        :class:`SamplingError`, so each layer keeps its own exception
        class), then returns ``(samples, deg)`` — the concatenation of
        each vertex's sample-id slab in vertex order, plus the per-vertex
        slab lengths for the caller's segmented reduction.
        """
        exc = SamplingError if exc is None else exc
        if not (0 <= piece < self.num_pieces):
            raise exc(f"piece {piece} outside [0, {self.num_pieces})")
        vertices = np.asarray(vertices, dtype=np.int64)
        check_index_array("vertex", vertices, self.n, exc=exc)
        slot_idx, deg = frontier_edge_slots(self._idx_ptr[piece], vertices)
        if slot_idx.size == 0:
            return np.zeros(0, dtype=np.int64), deg
        return self._idx_samples[piece][slot_idx], deg

    def rr_set_sizes(self, piece: int) -> np.ndarray:
        """Sizes of every RR set for ``piece``."""
        self._check_piece(piece)
        return np.diff(self._rr_ptr[piece])

    def vertex_frequencies(self, piece: int) -> np.ndarray:
        """How many RR sets of ``piece`` contain each vertex.

        Proportional to each vertex's single-seed influence spread — the
        quantity whose power-law tail Lemma 4 leans on.
        """
        self._check_piece(piece)
        return np.diff(self._idx_ptr[piece])

    def _check_piece(self, piece: int) -> None:
        if not (0 <= piece < self.num_pieces):
            raise SamplingError(
                f"piece {piece} outside [0, {self.num_pieces})"
            )

    # ------------------------------------------------------------------
    # estimation (Lemma 2)
    # ------------------------------------------------------------------

    def coverage_counts(self, plan_seed_sets: Sequence[Iterable[int]]) -> np.ndarray:
        """Distinct-piece coverage count per sample for a full plan.

        ``counts[i] = sum_j I[R_i^j ∩ S_j ≠ ∅]`` — the argument of the
        logistic in Eq. 6.
        """
        if len(plan_seed_sets) != self.num_pieces:
            raise SamplingError(
                f"plan has {len(plan_seed_sets)} seed sets for "
                f"{self.num_pieces} pieces"
            )
        counts = np.zeros(self.theta, dtype=np.int64)
        covered = np.zeros(self.theta, dtype=bool)
        for j, seeds in enumerate(plan_seed_sets):
            seeds = np.asarray(list(seeds), dtype=np.int64)
            if seeds.size == 0:
                continue
            check_index_array("vertex", seeds, self.n, exc=SamplingError)
            covered[:] = False
            slot_idx, _ = frontier_edge_slots(self._idx_ptr[j], seeds)
            covered[self._idx_samples[j][slot_idx]] = True
            counts += covered
        return counts

    def estimate(
        self,
        plan_seed_sets: Sequence[Iterable[int]],
        adoption: AdoptionModel,
    ) -> float:
        """Unbiased AU estimate of a plan (Eq. 6 with Eq. 1's zero branch)."""
        counts = self.coverage_counts(plan_seed_sets)
        return self.estimate_from_counts(counts, adoption)

    def estimate_from_counts(
        self, counts: np.ndarray, adoption: AdoptionModel
    ) -> float:
        """AU estimate given precomputed per-sample coverage counts."""
        if counts.shape != (self.theta,):
            raise SamplingError(
                f"counts must have shape ({self.theta},), got {counts.shape}"
            )
        return float(self.n / self.theta * adoption.probability(counts).sum())

    def __repr__(self) -> str:
        return (
            f"MRRCollection(theta={self.theta}, pieces={self.num_pieces}, "
            f"n={self.n})"
        )
