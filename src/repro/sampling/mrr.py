"""Multi-Reverse-Reachable (MRR) collections — the paper's Sec. V-A.

The MRR method extends RR sampling to multifaceted campaigns: ``theta``
root users are drawn uniformly, and for each root one RR set is generated
*per piece*, under that piece's projected influence graph.  With
``I_i^{S_j} = I[R_i^j ∩ S_j ≠ ∅]``, the adoption utility of a plan
``S-bar`` is estimated (Eq. 6 + Eq. 1's zero branch, Lemma 2) as

    sigma(S-bar) ≈ (n / theta) * sum_i g(sum_j I_i^{S_j})

where ``g`` is the logistic adoption probability (zero when no piece
covers the sample).

Besides the raw sets, the collection maintains one inverted index per
piece (vertex -> sample ids whose RR set contains the vertex).  Every
solver in :mod:`repro.core` and every RIS baseline drives its coverage
bookkeeping through these indexes.

Where the arrays actually live is delegated to a pluggable
:class:`~repro.sampling.store.SampleStore`: the default
:class:`~repro.sampling.store.MemoryStore` keeps everything in RAM
(bit-for-bit the historical layout), while
:class:`~repro.sampling.store.ShardStore` spills root-block shards to
disk and serves queries through bounded reads — same indexes, same
estimates, theta beyond RAM.  Batch consumers that must stay
memory-bounded iterate :meth:`MRRCollection.iter_index_slabs` instead
of gathering a whole candidate pool's slabs at once.
"""

from __future__ import annotations

import os
import random
import time
from collections.abc import Iterable, Sequence

import numpy as np

from repro.artifacts import ArtifactKey, piece_graphs_digest
from repro.diffusion.adoption import AdoptionModel
from repro.diffusion.projection import PieceGraph, project_campaign
from repro.diffusion.threshold import LinearThresholdSampler
from repro.exceptions import SamplingError, StoreBusyError, StoreError
from repro.graph.digraph import TopicGraph
from repro.sampling.batch import check_model
from repro.sampling.rr import ReverseReachableSampler
from repro.sampling.store import (
    MemoryStore,
    SampleStore,
    ShardStore,
    _chunk_bounds,
    store_fingerprint,
)
from repro.topics.distributions import Campaign
from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_index_array,
    check_piece_graphs_aligned,
    check_positive_int,
)

__all__ = ["MRRCollection", "resolve_models"]


def resolve_models(model, num_pieces: int) -> tuple[str, ...]:
    """Normalise a diffusion-model choice into one name per piece.

    ``model`` may be ``None`` (the default model for every piece), a
    single name applied to every piece, or a sequence of per-piece
    names — the heterogeneous mixed-model workload of multiplex IM.
    """
    if model is None or isinstance(model, str):
        return (check_model(model),) * num_pieces
    models = tuple(check_model(m) for m in model)
    if len(models) != num_pieces:
        raise SamplingError(
            f"{len(models)} diffusion models for {num_pieces} pieces"
        )
    return models


class MRRCollection:
    """``theta`` MRR samples: per-piece RR sets sharing common roots."""

    __slots__ = ("n", "theta", "num_pieces", "roots", "store")

    def __init__(
        self,
        n: int,
        roots: np.ndarray,
        rr_ptr: Sequence[np.ndarray] | None = None,
        rr_nodes: Sequence[np.ndarray] | None = None,
        *,
        store: SampleStore | None = None,
    ) -> None:
        self.n = int(n)
        self.roots = np.asarray(roots, dtype=np.int64)
        self.theta = int(self.roots.size)
        if store is not None:
            if rr_ptr is not None or rr_nodes is not None:
                raise SamplingError(
                    "pass raw (rr_ptr, rr_nodes) arrays or a store, not both"
                )
            if not store.finalized:
                raise StoreError(
                    "MRRCollection needs a finalized store — call "
                    "store.finalize() after committing every block"
                )
            if store.n != self.n or store.theta != self.theta:
                raise SamplingError(
                    f"store holds (n={store.n}, theta={store.theta}), "
                    f"expected (n={self.n}, theta={self.theta})"
                )
            self.num_pieces = store.num_pieces
            self.store = store
            return
        if not rr_ptr or len(rr_ptr) != len(rr_nodes):
            raise SamplingError("need one (ptr, nodes) pair per piece")
        self.num_pieces = len(rr_ptr)
        rr_ptr = [np.asarray(p, dtype=np.int64) for p in rr_ptr]
        rr_nodes = [np.asarray(x, dtype=np.int64) for x in rr_nodes]
        for j in range(self.num_pieces):
            if rr_ptr[j].shape != (self.theta + 1,):
                raise SamplingError(
                    f"piece {j}: ptr length {rr_ptr[j].shape} != theta+1"
                )
        self.store = MemoryStore.from_arrays(self.n, rr_ptr, rr_nodes)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def generate(
        cls,
        graph: TopicGraph,
        campaign: Campaign,
        theta: int,
        *,
        seed=None,
        piece_graphs: Sequence[PieceGraph] | None = None,
        runtime=None,
        backend: str | None = None,
        model=None,
        workers=None,
        executor: str | None = None,
        store=None,
        shard_dir: str | None = None,
        max_resident_bytes: int | None = None,
    ) -> "MRRCollection":
        """Generate ``theta`` MRR samples for ``campaign`` on ``graph``.

        Mirrors Sec. V-A: roots are uniform over ``V``; for each root one
        RR set per piece under the piece's projection.  Pass pre-computed
        ``piece_graphs`` to skip re-projection (the experiment harness
        reuses projections between the optimisation and evaluation
        collections).

        All execution policy — sampling ``backend``, diffusion
        ``model(s)``, the parallel runtime (``workers``/``executor``),
        and the sample-store layer (``store``/``shard_dir``/
        ``max_resident_bytes``) — lives on one
        :class:`repro.runtime.Runtime` passed as ``runtime=`` and is
        resolved with the centralized order (explicit kwarg > Runtime
        field > ``REPRO_*`` env > default).  The remaining per-call
        execution kwargs are deprecated equivalents kept for backward
        compatibility; results are bit-identical between the two
        spellings.  LT pieces should be weight-normalised first
        (:func:`repro.diffusion.threshold.normalize_lt_weights`); disk
        stores sample through the block decomposition and therefore
        match memory-store runs with ``workers >= 1`` exactly, resume
        interrupted shard directories, and reload finished ones.

        When the resolved runtime carries an artifact store
        (``Runtime(artifacts=...)`` / ``REPRO_ARTIFACTS``) and the
        generation is reproducible — integer seed, no caller-owned
        shard directory or store instance — the sampled collection is
        served from / written to the content-addressed cache; cached
        results are bit-identical to a fresh generation.
        """
        collection, _events, _key = cls.generate_traced(
            graph,
            campaign,
            theta,
            seed=seed,
            piece_graphs=piece_graphs,
            runtime=runtime,
            backend=backend,
            model=model,
            workers=workers,
            executor=executor,
            store=store,
            shard_dir=shard_dir,
            max_resident_bytes=max_resident_bytes,
            _stacklevel=4,
        )
        return collection

    @classmethod
    def generate_traced(
        cls,
        graph: TopicGraph,
        campaign: Campaign,
        theta: int,
        *,
        seed=None,
        piece_graphs: Sequence[PieceGraph] | None = None,
        runtime=None,
        backend: str | None = None,
        model=None,
        workers=None,
        executor: str | None = None,
        store=None,
        shard_dir: str | None = None,
        max_resident_bytes: int | None = None,
        pool=None,
        _stacklevel: int = 3,
    ) -> tuple["MRRCollection", list[tuple[str, str]], ArtifactKey | None]:
        """:meth:`generate` plus its pipeline trace and artifact key.

        Returns ``(collection, events, key)`` where ``events`` is a
        list of ``(stage, action)`` pairs over the ``sample`` / ``index``
        stages (``action`` is ``"run"`` or ``"hit"``), and ``key`` is
        the sample-stage :class:`~repro.artifacts.ArtifactKey` when the
        generation was cache-eligible, else ``None``.  The Session
        records the events on its pipeline trace and folds the key
        digest into downstream solve-stage keys.  A freshly-sampled
        ``("sample", "run")`` event is a
        :class:`~repro.pipeline.TraceEvent` whose ``extra`` reports the
        effective block geometry (the adaptive kernel block and the
        per-task root block).

        ``pool`` lends a caller-owned executor to the blocked sampling
        stream (the Session's warm pool); ownership and shutdown stay
        with the caller.
        """
        from repro.pipeline import TraceEvent
        from repro.runtime import resolve_runtime
        from repro.sampling.batch import adaptive_block_size, check_backend
        from repro.sampling.parallel import (
            sample_piece_blocks,
            task_block_size,
        )

        rt = resolve_runtime(
            runtime,
            backend=backend,
            model=model,
            workers=workers,
            executor=executor,
            store=store,
            shard_dir=shard_dir,
            max_resident_bytes=max_resident_bytes,
            seed=seed,
            caller="MRRCollection.generate",
            stacklevel=_stacklevel,
        )
        theta = check_positive_int("theta", theta)
        if graph.n == 0:
            raise SamplingError("cannot sample from an empty graph")
        rng = as_generator(rt.seed)
        if piece_graphs is None:
            piece_graphs = project_campaign(graph, campaign)
        elif len(piece_graphs) != campaign.num_pieces:
            raise SamplingError(
                f"{len(piece_graphs)} piece graphs for "
                f"{campaign.num_pieces} pieces"
            )
        check_piece_graphs_aligned(
            piece_graphs,
            graph.n,
            reference="the campaign graph",
            exc=SamplingError,
        )
        piece_graphs = list(piece_graphs)
        models = resolve_models(rt.model, campaign.num_pieces)
        graph_fp = graph.fingerprint()
        pieces_fp = piece_graphs_digest(piece_graphs)
        store_obj = rt.store_for_generate()

        # -- content-addressed cache -----------------------------------
        # Eligible only when the draw is reproducible (integer seed) and
        # the caller did not pin where samples live: an explicit
        # shard_dir or store *instance* is caller-owned state the cache
        # must not alias, and a directory payload (out-of-core shards)
        # needs a store that can host directories.
        art_store = rt.artifact_store()
        reproducible = isinstance(rt.seed, int) and not isinstance(
            rt.seed, bool
        )
        cacheable = (
            art_store is not None
            and reproducible
            and rt.shard_dir is None
            and not isinstance(rt.store, SampleStore)
            and (store_obj is None or art_store.hosts_directories)
        )
        pool_width = rt.pool_width
        # The two sampling decompositions draw from differently-spawned
        # child streams: the historical serial loop (in-RAM target, no
        # pool) and the (piece, root block) decomposition (any pool
        # size, and always the disk store).  Each is deterministic, but
        # they are NOT bit-identical to each other, so the key must
        # record which one produced the samples — while every pool
        # *size* of the blocked stream still shares one artifact.
        stream = (
            "serial"
            if store_obj is None and pool_width is None
            else "blocked"
        )
        key = None
        flight = None
        if cacheable:
            key = ArtifactKey(
                graph=graph_fp,
                campaign=campaign.fingerprint(),
                runtime=rt.cache_key(),
                stage="sample",
                extra=(
                    f"theta={theta}",
                    f"pieces={pieces_fp[:16]}",
                    f"stream={stream}",
                ),
            )
            got = cls._cached_or_none(art_store, key, rt, store_obj)
            if got is not None:
                return got
            # Cold miss: elect one producer across every process
            # sharing the artifact store; the rest poll for its commit
            # instead of stampeding into N identical generations.
            flight = art_store.producer_flight(key)
            if not flight.claim():
                hit = flight.wait(lambda: art_store.get(key))
                if hit is not None:
                    try:
                        return cls._from_artifact(hit, rt, store_obj)
                    except StoreBusyError:
                        pass  # fall through: regenerate privately
                # wait() came back empty: this process inherited the
                # flight from a dead producer, or timed out — either
                # way it now produces (duplicate commits stay benign).

        try:
            # The sample stage's effective block geometry (the ISSUE'd trace
            # gap): the per-task root block of the (piece, block)
            # decomposition — theta itself on the serial path — and the
            # (roots, n) kernel block adaptive sizing actually picks for it.
            task_block = theta if stream == "serial" else task_block_size(theta)
            events = [
                TraceEvent(
                    "sample",
                    "run",
                    {
                        "stream": stream,
                        "backend": check_backend(rt.backend),
                        "executor": rt.executor,
                        "workers": int(pool_width or 1),
                        "task_block": int(task_block),
                        "block_roots": adaptive_block_size(
                            graph.n, min(task_block, theta)
                        ),
                        "block_n": int(graph.n),
                    },
                ),
                ("index", "run"),
            ]
            if store_obj is not None:
                if cacheable:
                    # Host the shard directory inside the artifact object.
                    # stage_dir() hands out a *private* staging directory
                    # and commit() publishes it with one atomic rename, so
                    # concurrent workers missing this key each generate
                    # privately and the loser's commit is a benign no-op —
                    # never two producers interleaving bucket files in one
                    # directory.
                    shards_dir = os.path.join(art_store.stage_dir(key), "shards")
                    store_obj = ShardStore(
                        shards_dir, max_resident_bytes=rt.max_resident_bytes
                    )
                roots = rng.integers(0, graph.n, size=theta)
                collection = cls._generate_into_store(
                    graph.n,
                    piece_graphs,
                    models,
                    roots,
                    rng,
                    backend=rt.backend,
                    workers=pool_width or 1,
                    executor=rt.executor,
                    store=store_obj,
                    graph_fingerprint=graph_fp,
                    pieces_fingerprint=pieces_fp,
                    pool=pool,
                )
                if cacheable:
                    artifact = art_store.commit(
                        key,
                        {
                            "format": "shards",
                            "n": graph.n,
                            "theta": theta,
                            "num_pieces": campaign.num_pieces,
                        },
                    )
                    # The staging directory just moved to its content
                    # address (or lost the commit race to an identical
                    # twin): repoint the live store at the published copy.
                    store_obj.close()
                    store_obj.shard_dir = os.path.join(artifact.path, "shards")
                return collection, events, key
            roots = rng.integers(0, graph.n, size=theta)
            if pool_width is not None:
                pairs = sample_piece_blocks(
                    piece_graphs,
                    models,
                    roots,
                    rng,
                    backend=rt.backend,
                    workers=pool_width,
                    executor=rt.executor,
                    pool=pool,
                )
                rr_ptr = [ptr for ptr, _ in pairs]
                rr_nodes = [nodes for _, nodes in pairs]
            else:
                rr_ptr: list[np.ndarray] = []
                rr_nodes: list[np.ndarray] = []
                for pg, piece_model in zip(piece_graphs, models):
                    if piece_model == "lt":
                        sampler = LinearThresholdSampler(pg, backend=rt.backend)
                    else:
                        sampler = ReverseReachableSampler(pg, backend=rt.backend)
                    ptr, nodes = sampler.sample_many(roots, rng)
                    rr_ptr.append(ptr)
                    rr_nodes.append(nodes)
            collection = cls(graph.n, roots, rr_ptr, rr_nodes)
            if cacheable:
                arrays = {"roots": collection.roots}
                for j in range(collection.num_pieces):
                    ptr, nodes = collection.store.rr_arrays(j)
                    idx_ptr, idx_samples = collection.store.index_arrays(j)
                    arrays[f"rr_ptr{j}"] = ptr
                    arrays[f"rr_nodes{j}"] = nodes
                    arrays[f"idx_ptr{j}"] = idx_ptr
                    arrays[f"idx_samples{j}"] = idx_samples
                art_store.put(
                    key,
                    {
                        "format": "arrays",
                        "n": graph.n,
                        "theta": theta,
                        "num_pieces": campaign.num_pieces,
                    },
                    arrays,
                )
            return collection, events, key
        finally:
            if flight is not None:
                flight.release()

    #: Bounded retry schedule for a busy (mid-commit) cached shard dir.
    _BUSY_RETRIES = 4
    _BUSY_BACKOFF = 0.05

    @classmethod
    def _cached_or_none(cls, art_store, key, rt, store_obj):
        """The cache-hit return triple, or ``None`` on a (final) miss.

        A hit whose shard directory is *busy* — a concurrent writer on
        a shared spool mid-commit, or a pre-rename-atomic layout — is
        retryable, not corrupt: retry with exponential backoff plus
        jitter (stdlib ``random`` — the numpy streams stay untouched)
        before giving up to private regeneration.  The waits are plain
        ``time.sleep``, so Ctrl-C interrupts them immediately.
        """
        for attempt in range(cls._BUSY_RETRIES):
            hit = art_store.get(key)
            if hit is None:
                return None
            try:
                return cls._from_artifact(hit, rt, store_obj)
            except StoreBusyError:
                if attempt + 1 < cls._BUSY_RETRIES:
                    time.sleep(
                        cls._BUSY_BACKOFF
                        * (2**attempt)
                        * (0.5 + random.random())
                    )
        return None

    @classmethod
    def _from_artifact(cls, hit, rt, store_obj):
        """Rebuild a collection from a cached sample artifact.

        Two payload formats, crossed with two requested store targets:
        ``"arrays"`` carries the finalized CSR + inverted-index arrays
        (a true hit for both the sample and index stages when the
        target is in-RAM), ``"shards"`` is a finished
        :class:`ShardStore` directory hosted inside the artifact object
        (reopened in place for a disk target — zero materialisation).
        The two cross-format paths convert: shards are materialised
        into RAM with their prebuilt indexes, and arrays are re-streamed
        into a shard store (which rebuilds indexes — the one path where
        the index stage runs on a hit).
        """
        from repro.sampling.parallel import task_block_size

        meta = hit.meta
        n = int(meta["n"])
        theta = int(meta["theta"])
        num_pieces = int(meta["num_pieces"])
        key = hit.key
        if meta.get("format") == "shards":
            shards_dir = os.path.join(hit.path, "shards")
            shard = ShardStore.open(
                shards_dir, max_resident_bytes=rt.max_resident_bytes
            )
            if store_obj is None or not isinstance(store_obj, ShardStore):
                # memory target: materialise, indexes included
                collection = cls(
                    n,
                    shard.load_roots(),
                    store=MemoryStore.from_finalized_arrays(
                        n,
                        [shard.rr_arrays(j)[0] for j in range(num_pieces)],
                        [shard.rr_arrays(j)[1] for j in range(num_pieces)],
                        [shard.index_arrays(j)[0] for j in range(num_pieces)],
                        [shard.index_arrays(j)[1] for j in range(num_pieces)],
                    ),
                )
                shard.close()
            else:
                collection = cls.from_store(shard)
            return collection, [("sample", "hit"), ("index", "hit")], key
        arrays = hit.arrays
        roots = np.asarray(arrays["roots"], dtype=np.int64)
        if store_obj is not None:
            # disk target from an arrays payload: re-stream the cached
            # blocks through the shard store (rebuilds indexes).
            store_obj.begin(
                n, num_pieces, theta, task_block_size(theta),
                fingerprint=str(meta.get("token", ""))[:128] or None,
            )
            if isinstance(store_obj, ShardStore):
                store_obj.save_roots(roots)
            if not store_obj.finalized:
                block = store_obj.block_size
                for j in range(num_pieces):
                    ptr = np.asarray(arrays[f"rr_ptr{j}"], dtype=np.int64)
                    nodes = np.asarray(arrays[f"rr_nodes{j}"], dtype=np.int64)
                    for b in range(store_obj.num_blocks):
                        lo = b * block
                        hi = min(lo + block, theta)
                        if store_obj.has_block(j, b):
                            continue
                        store_obj.put_block(
                            j,
                            b,
                            ptr[lo : hi + 1] - ptr[lo],
                            nodes[ptr[lo] : ptr[hi]],
                        )
                store_obj.finalize()
            collection = cls(n, roots, store=store_obj)
            return collection, [("sample", "hit"), ("index", "run")], key
        collection = cls(
            n,
            roots,
            store=MemoryStore.from_finalized_arrays(
                n,
                [arrays[f"rr_ptr{j}"] for j in range(num_pieces)],
                [arrays[f"rr_nodes{j}"] for j in range(num_pieces)],
                [arrays[f"idx_ptr{j}"] for j in range(num_pieces)],
                [arrays[f"idx_samples{j}"] for j in range(num_pieces)],
            ),
        )
        return collection, [("sample", "hit"), ("index", "hit")], key

    @classmethod
    def _generate_into_store(
        cls,
        n: int,
        piece_graphs,
        models,
        roots: np.ndarray,
        rng,
        *,
        backend,
        workers: int,
        executor,
        store: SampleStore,
        graph_fingerprint: str | None = None,
        pieces_fingerprint: str | None = None,
        pool=None,
    ) -> "MRRCollection":
        """Stream (piece, root block) shards into ``store`` as sampled.

        Shards are committed the moment their task finishes (task
        order, bounded in-flight window), so peak RAM during generation
        is O(workers x block) instead of O(theta).  Shards already in
        the store — a resumed :class:`ShardStore` directory — are
        skipped without disturbing any other task's child stream, and a
        fully finalized store is reloaded without sampling at all.

        ``executor="spawned"`` with an on-disk :class:`ShardStore`
        routes the fill through :mod:`repro.sampling.dist`: independent
        worker processes claim task leases and stream shards into the
        directory while this process polls for completion.  The child
        seed streams are identical by construction, so the result is
        bit-for-bit the collection every other topology produces.
        """
        from repro.sampling.parallel import (
            stream_piece_blocks,
            task_block_size,
        )

        theta = int(roots.size)
        store.begin(
            n,
            len(piece_graphs),
            theta,
            task_block_size(theta),
            fingerprint=store_fingerprint(
                n,
                roots,
                models,
                backend,
                graph=graph_fingerprint,
                pieces=pieces_fingerprint,
            ),
        )
        if isinstance(store, ShardStore):
            store.save_roots(roots)
        if not store.finalized:
            if (
                executor == "spawned"
                and isinstance(store, ShardStore)
                and store.shard_dir is not None
            ):
                from repro.runtime import DEFAULT_DIST_LAUNCH
                from repro.sampling.dist import fill_store_distributed

                fill_store_distributed(
                    piece_graphs,
                    models,
                    roots,
                    rng,
                    backend=backend,
                    workers=workers,
                    store=store,
                    launch=DEFAULT_DIST_LAUNCH,
                )
            else:
                for piece, block, ptr, nodes in stream_piece_blocks(
                    piece_graphs,
                    models,
                    roots,
                    rng,
                    backend=backend,
                    workers=workers,
                    executor=executor,
                    skip=store.has_block,
                    pool=pool,
                ):
                    store.put_block(piece, block, ptr, nodes)
            store.finalize()
        return cls(n, roots, store=store)

    @classmethod
    def from_store(
        cls, store: SampleStore, roots: np.ndarray | None = None
    ) -> "MRRCollection":
        """Rebuild a collection from a finalized store.

        ``roots`` defaults to the draw a :class:`ShardStore` persisted
        at generation time (``roots.npy``), so a finished shard
        directory round-trips with ``ShardStore.open`` alone.
        """
        if roots is None:
            if not isinstance(store, ShardStore):
                raise SamplingError(
                    f"{type(store).__name__} does not persist roots — "
                    "pass them explicitly"
                )
            roots = store.load_roots()
        return cls(store.n, roots, store=store)

    # ------------------------------------------------------------------
    # raw access
    # ------------------------------------------------------------------

    @property
    def _rr_ptr(self) -> list[np.ndarray]:
        """Per-piece CSR pointers, materialised (tests / diagnostics)."""
        return [self.store.rr_arrays(j)[0] for j in range(self.num_pieces)]

    @property
    def _rr_nodes(self) -> list[np.ndarray]:
        """Per-piece CSR node arrays, materialised (tests / diagnostics)."""
        return [self.store.rr_arrays(j)[1] for j in range(self.num_pieces)]

    def rr_set(self, piece: int, sample: int) -> np.ndarray:
        """The RR set of ``sample`` (0-based) for ``piece``."""
        self._check_piece(piece)
        if not (0 <= sample < self.theta):
            raise SamplingError(f"sample {sample} outside [0, {self.theta})")
        return self.store.rr_set(piece, sample)

    def samples_containing(self, piece: int, vertex: int) -> np.ndarray:
        """Sample ids whose RR set for ``piece`` contains ``vertex``.

        This is the inverted-index lookup at the heart of every marginal
        gain computation.
        """
        self._check_piece(piece)
        if not (0 <= vertex < self.n):
            raise SamplingError(f"vertex {vertex} outside [0, {self.n})")
        ptr = self.store.idx_ptr(piece)
        return self.store.read_index_range(
            piece, int(ptr[vertex]), int(ptr[vertex + 1])
        )

    def index_arrays(self, piece: int) -> tuple[np.ndarray, np.ndarray]:
        """One piece's raw CSR inverted index ``(idx_ptr, idx_samples)``.

        ``idx_samples[idx_ptr[v]:idx_ptr[v+1]]`` are the sample ids whose
        RR set contains ``v`` — the flat arrays the vectorized coverage
        kernels (:mod:`repro.core.coverage`) gather over.  Callers must
        treat both arrays as read-only.  On a disk store this
        materialises the whole index (O(total) RAM) — bounded consumers
        use :meth:`iter_index_slabs` instead.
        """
        self._check_piece(piece)
        return self.store.index_arrays(piece)

    def gather_index_slabs(
        self,
        piece: int,
        vertices,
        *,
        exc: type[Exception] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate and gather many vertices' inverted-index slabs.

        The shared prologue of every batch coverage kernel: range-checks
        ``piece`` and ``vertices`` (raising ``exc``, default
        :class:`SamplingError`, so each layer keeps its own exception
        class), then returns ``(samples, deg)`` — the concatenation of
        each vertex's sample-id slab in vertex order, plus the per-vertex
        slab lengths for the caller's segmented reduction.
        """
        vertices = self._check_gather(piece, vertices, exc)
        return self.store.gather_index(piece, vertices)

    def iter_index_slabs(
        self,
        piece: int,
        vertices,
        *,
        exc: type[Exception] | None = None,
    ):
        """Chunked :meth:`gather_index_slabs`, bounded by the store.

        Yields ``(samples, deg, lo, hi)`` where ``samples``/``deg`` are
        the gathered slabs of ``vertices[lo:hi]``.  Chunk boundaries
        respect the store's gather budget
        (:attr:`~repro.sampling.store.SampleStore.gather_chunk_bytes`)
        so a whole-pool scan on a disk store never materialises more
        than ``max_resident_bytes`` of slab at once; the in-RAM store
        yields one chunk, preserving the historical single-dispatch
        path.  Per-vertex results are identical to the unchunked gather
        — every segmented reduction sees exactly its own slab.
        """
        vertices = self._check_gather(piece, vertices, exc)
        budget = self.store.gather_chunk_bytes
        if budget is None or vertices.size == 0:
            samples, deg = self.store.gather_index(piece, vertices)
            yield samples, deg, 0, int(vertices.size)
            return
        ptr = self.store.idx_ptr(piece)
        deg_all = ptr[vertices + 1] - ptr[vertices]
        bounds = _chunk_bounds(np.cumsum(deg_all * 8), budget)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            samples, deg = self.store.gather_index(piece, vertices[lo:hi])
            yield samples, deg, lo, hi

    def _check_gather(self, piece, vertices, exc) -> np.ndarray:
        exc = SamplingError if exc is None else exc
        if not (0 <= piece < self.num_pieces):
            raise exc(f"piece {piece} outside [0, {self.num_pieces})")
        vertices = np.asarray(vertices, dtype=np.int64)
        check_index_array("vertex", vertices, self.n, exc=exc)
        return vertices

    def rr_set_sizes(self, piece: int) -> np.ndarray:
        """Sizes of every RR set for ``piece``."""
        self._check_piece(piece)
        return self.store.rr_set_sizes(piece)

    def vertex_frequencies(self, piece: int) -> np.ndarray:
        """How many RR sets of ``piece`` contain each vertex.

        Proportional to each vertex's single-seed influence spread — the
        quantity whose power-law tail Lemma 4 leans on.
        """
        self._check_piece(piece)
        return np.diff(self.store.idx_ptr(piece))

    def _check_piece(self, piece: int) -> None:
        if not (0 <= piece < self.num_pieces):
            raise SamplingError(
                f"piece {piece} outside [0, {self.num_pieces})"
            )

    # ------------------------------------------------------------------
    # estimation (Lemma 2)
    # ------------------------------------------------------------------

    def coverage_counts(self, plan_seed_sets: Sequence[Iterable[int]]) -> np.ndarray:
        """Distinct-piece coverage count per sample for a full plan.

        ``counts[i] = sum_j I[R_i^j ∩ S_j ≠ ∅]`` — the argument of the
        logistic in Eq. 6.
        """
        if len(plan_seed_sets) != self.num_pieces:
            raise SamplingError(
                f"plan has {len(plan_seed_sets)} seed sets for "
                f"{self.num_pieces} pieces"
            )
        counts = np.zeros(self.theta, dtype=np.int64)
        covered = np.zeros(self.theta, dtype=bool)
        for j, seeds in enumerate(plan_seed_sets):
            seeds = np.asarray(list(seeds), dtype=np.int64)
            if seeds.size == 0:
                continue
            check_index_array("vertex", seeds, self.n, exc=SamplingError)
            covered[:] = False
            for samples, _deg, _lo, _hi in self.iter_index_slabs(j, seeds):
                covered[samples] = True
            counts += covered
        return counts

    def estimate(
        self,
        plan_seed_sets: Sequence[Iterable[int]],
        adoption: AdoptionModel,
    ) -> float:
        """Unbiased AU estimate of a plan (Eq. 6 with Eq. 1's zero branch)."""
        counts = self.coverage_counts(plan_seed_sets)
        return self.estimate_from_counts(counts, adoption)

    def estimate_from_counts(
        self, counts: np.ndarray, adoption: AdoptionModel
    ) -> float:
        """AU estimate given precomputed per-sample coverage counts."""
        if counts.shape != (self.theta,):
            raise SamplingError(
                f"counts must have shape ({self.theta},), got {counts.shape}"
            )
        return float(self.n / self.theta * adoption.probability(counts).sum())

    def __repr__(self) -> str:
        return (
            f"MRRCollection(theta={self.theta}, pieces={self.num_pieces}, "
            f"n={self.n}, store={self.store.kind})"
        )
